// Sharded broker fleet (serve-daemon tentpole).
//
// One sequenced Broker caps matching throughput at a single core; the
// fleet hosts N of them, each owning a deterministic partition of the
// subscription space, behind the same sequenced command API.  Partition
// rule: a subscriber's *global* id hashes to its home shard
// (FleetShardOf, a stable splitmix64 mix — no reassignment as the fleet
// grows its population), and the shard stores it under a dense *local* id.
// Churn routes to the home shard; publishes fan out to every shard and the
// per-shard interested sets are merged by the same word-level counting
// sort the broker itself uses, so the merged set — and everything decided
// from it — depends only on the subscription state, not on shard count or
// fan-out scheduling.
//
// Determinism contract (pinned by tests/test_fleet.cc): at any shard
// count, the fleet's state digest is bit-identical to FleetOracle — a
// single broker driven by the same command stream — at every sequence
// number.  The digest covers the fleet seq, the logical subscription table
// (mirrored with GroupManager's exact mutation semantics: append,
// raw-interest update, empty-rect tombstone) and a rolling match chain
// folding every publish's merged interested set.  Per-shard clustering and
// queue state are deliberately outside the digest: they depend on how the
// population is split (each shard clusters its own partition), which is
// the point of sharding, not a divergence.
//
// Durability is the clone pattern applied twice (DESIGN.md §11):
//   * each shard is an ordinary durable Broker — refresh-boundary snapshot
//     + its own write-ahead journal of re-stamped local records;
//   * the fleet itself journals the global command stream and checkpoints
//     a FleetManifest (fleet seq, match chain, per-shard seq and
//     local→global maps); manifest + shard snapshots + shard journals
//     rebuild the fleet, and the fleet journal tail replays forward.
// A late joiner bootstraps from state_reply() — the shard's snapshot plus
// the records buffered since it — and is promoted into a live shard on
// failure (serve/catchup.h; the promote.journal_handoff fail point covers
// a standby crash mid-promotion).
//
// Degraded mode composes: when a shard's journal loses durability
// mid-record, the fleet *stalls* — the record is pending, no sequence
// number advances, and heal() (driven by the serve loop's heal-probe
// timer) finishes it on every shard before the stream continues.
#pragma once

#include <cstdint>
#include <exception>
#include <iosfwd>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "broker/broker.h"
#include "io/serialize.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "workload/types.h"

namespace pubsub {

class ShardReplica;  // serve/catchup.h

// A mutation arrived while the fleet is stalled on a degraded shard, or a
// shard entered degraded mode mid-record.  The pending record completes
// through heal(); nothing is lost and no seq was consumed.
class FleetDegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FleetOptions {
  std::size_t num_shards = 1;
  // Per-shard broker options.  obs.metrics is ignored: every shard owns a
  // private registry so counters from N shards never sum into one name.
  BrokerOptions broker;
  // Fleet-level registry (fan-out metrics, per-shard gauges); nullptr =
  // fleet-owned.  Must outlive the fleet when supplied.
  MetricsRegistry* metrics = nullptr;
  // Clock for the fan-out latency histogram (a measurement, not state);
  // nullptr = owned StopwatchClock.
  Clock* trace_clock = nullptr;
};

// Per-publish outcome at the fleet level.  `interested` aliases the
// fleet's merge buffer and stays valid until the next fleet command.
struct FleetPublishOutcome {
  std::uint64_t seq = 0;
  std::span<const SubscriberId> interested;  // merged global ids, ascending
  std::size_t shards_matched = 0;  // shards contributing >= 1 subscriber
  bool refreshed = false;          // any shard re-clustered on this command
};

// Clone-pattern state transfer for one shard: the shard's refresh-boundary
// snapshot plus every shard-local record applied since it.  A ShardReplica
// built from this is at the shard's exact current seq.
struct FleetStateReply {
  int shard = -1;
  BrokerSnapshot snapshot;
  std::vector<JournalRecord> updates;  // shard-seq records > snapshot.seq
};

// Durable fleet checkpoint: the manifest plus one refresh-boundary
// snapshot per shard (see io/serialize.h for the file naming).
struct FleetCheckpoint {
  FleetManifest manifest;
  std::vector<BrokerSnapshot> shard_snapshots;
};

// Home shard of a global subscriber id: splitmix64(id) mod num_shards.
// Stable in the id (growing the population never remaps existing
// subscribers) and independent of churn history.
std::size_t FleetShardOf(SubscriberId global_id, std::size_t num_shards);

// Rolling digest of merged interested sets: chain' = fold(chain, seq,
// ids).  Folding every publish makes the fleet digest sensitive to every
// match decision without storing any of them.
std::uint64_t FleetChainFold(std::uint64_t chain, std::uint64_t seq,
                             std::span<const SubscriberId> interested);

// The shard-count-invariant fleet digest: FNV-1a over the fleet seq, the
// match chain and the logical subscription table.  Equal digests at equal
// seq mean identical future match decisions at any shard count.
std::uint64_t FleetStateDigest(std::uint64_t seq, const Workload& logical,
                               std::uint64_t match_chain);

class BrokerFleet {
 public:
  // Fresh fleet: partitions `initial` by FleetShardOf and cold-starts one
  // broker per shard.  `pub` / `network` / `clock` (optional; defaults to
  // an owned ManualClock at 0) must outlive the fleet.
  BrokerFleet(Workload initial, const PublicationModel& pub,
              const Graph& network, const FleetOptions& options = {},
              ManualClock* clock = nullptr);
  ~BrokerFleet();

  // Recovery: rebuild every shard from its snapshot + journal (truncated
  // to the manifest's per-shard seq), re-derive the logical table from the
  // manifest's local→global maps, and resume at the manifest's fleet seq.
  // The caller replays the fleet journal tail through apply() afterwards —
  // with sinks attached, so the replay regenerates the same durable bytes.
  static std::unique_ptr<BrokerFleet> Recover(
      const FleetManifest& manifest,
      std::span<const BrokerSnapshot> shard_snapshots,
      const std::vector<std::vector<JournalRecord>>& shard_journals,
      const PublicationModel& pub, const Graph& network,
      const FleetOptions& options = {}, ManualClock* clock = nullptr);

  // --- command API (stamps the fleet clock, like Broker's) --------------
  SubscriberId subscribe(NodeId node, const Rect& interest);
  void unsubscribe(SubscriberId global_id);
  void update(SubscriberId global_id, const Rect& interest);
  FleetPublishOutcome publish(NodeId origin, const Point& event);

  // Apply an already-sequenced *fleet* record (global ids, fleet seq):
  // must carry seq() + 1.  Write-ahead to the fleet journal, then routed /
  // fanned out to the shards as re-stamped local records.  Throws
  // FleetDegradedError when a shard degrades mid-record (the record is
  // then pending; call heal()), std::logic_error while a shard is down.
  FleetPublishOutcome apply(const JournalRecord& rec);

  // --- degraded-shard supervision ---------------------------------------
  // True while a record is pending on at least one degraded shard; every
  // further mutation is rejected until heal() completes it.
  bool stalled() const { return pending_active_; }
  // Heal probe (the serve loop runs this on a timer): Broker::heal_probe()
  // on every degraded shard, completing the pending record on each that
  // recovers.  Returns true once no shard is degraded and no record is
  // pending — the fleet accepts mutations again.
  bool heal();

  // --- state ------------------------------------------------------------
  std::uint64_t seq() const { return seq_; }
  std::size_t num_shards() const { return shards_.size(); }
  bool shard_alive(std::size_t k) const { return shards_[k] != nullptr; }
  // The live shard broker (throws std::logic_error while it is down).
  const Broker& shard(std::size_t k) const;
  std::uint64_t shard_seq(std::size_t k) const { return shard_seq_[k]; }
  // The logical (global) subscription table: byte-identical to the table a
  // single broker fed the same stream would hold.
  const Workload& workload() const { return logical_; }
  std::size_t live_subscribers() const { return live_count_; }
  std::uint64_t match_chain() const { return match_chain_; }
  std::uint64_t state_digest() const;
  // Merged exact interested set (global ids, sorted): the cold read path,
  // served shard-by-shard even while stalled.
  std::vector<SubscriberId> interested(const Point& event) const;

  // --- durability plumbing ----------------------------------------------
  // Fleet-level journal of the global command stream (same file format as
  // the broker journal).  Plain stream, no fail-point wrapping: the
  // per-shard WALs are the durability seams under test; this is the
  // routing log recovery replays forward.
  void set_fleet_journal(std::ostream* sink, bool write_header = true);
  // Shard k's write-ahead journal (re-stamped local records).  The fleet
  // remembers the stream and re-attaches it to a promoted or recovered
  // broker — the journal handoff.
  void set_shard_journal(std::size_t k, std::ostream* sink,
                         bool write_header = true);
  FleetCheckpoint checkpoint() const;

  // --- clone pattern / failover (serve/catchup.h drives these) ----------
  // Snapshot + buffered updates for a late joiner of shard k.
  FleetStateReply state_reply(std::size_t k) const;
  // Stream every future shard-k record to `replica` (nullptr detaches).
  // The fleet does not own it; a replica that throws InjectedCrash while
  // applying is dropped (counted) — the standby died, not the shard.
  void attach_replica(std::size_t k, ShardReplica* replica);
  void detach_replica(std::size_t k);
  ShardReplica* replica(std::size_t k) const { return replicas_[k]; }
  // Simulated primary death: the shard broker is discarded (its journal
  // stream and the fleet's bookkeeping survive).  apply() throws until the
  // shard is promoted into or recovered.
  void kill_shard(std::size_t k);
  // Failover: replay the durable journal tail into the standby (the
  // promote.journal_handoff fail point covers this window), verify it
  // reaches the shard's exact seq, re-attach the shard journal and install
  // it as the live shard.  The standby is consumed.
  void promote(std::size_t k, ShardReplica&& standby,
               std::span<const JournalRecord> journal_tail);
  // Cold failover path (no standby): Broker::Recover from the shard's
  // snapshot + journal, verified to the shard's exact seq.
  void recover_shard(std::size_t k, const BrokerSnapshot& snapshot,
                     std::span<const JournalRecord> journal);

  // --- telemetry --------------------------------------------------------
  MetricsRegistry& metrics() const { return *metrics_; }
  // Coordinator-level spans (fan-out / merge / deliver; empty unless
  // broker.obs.trace_sample > 0).  The fleet owns the sampling decision:
  // every `trace_sample`-th *fleet* seq becomes the trace id, the shards'
  // own samplers are disabled (shard_options), and each shard lane is
  // armed with Broker::set_trace_context so the whole publish shares one
  // id.
  const TraceRing& trace() const { return trace_; }
  // Every retained span — coordinator, live shards, attached replicas —
  // stable-sorted by (trace_id, shard, stage, seq) so one WriteTraceJson
  // dump holds each traced publish's complete causal tree contiguously.
  std::vector<TraceSpan> collect_spans() const;
  std::uint64_t trace_recorded() const;  // summed across all rings
  std::uint64_t trace_dropped() const;
  // Per-shard publish-latency histograms (`fleet_shard_publish_ms`,
  // kRuntime), indexed by shard, null while a shard is down — the
  // FleetWatchdog::check input.
  std::vector<const Histogram*> shard_publish_histograms() const;
  // Mutable shard access for fault-injection tests ONLY (e.g. forcing a
  // digest divergence the auditor must catch).  Mutating a shard outside
  // the fleet's sequenced stream breaks the oracle-parity invariant.
  Broker& shard_for_fault_injection(std::size_t k);

 private:
  struct RestoreTag {};
  BrokerFleet(RestoreTag, const PublicationModel& pub, const Graph& network,
              const FleetOptions& options, ManualClock* clock);

  BrokerOptions shard_options() const;
  void init_obs(std::size_t num_shards);
  void install_shard(std::size_t k, std::unique_ptr<Broker> broker);
  JournalRecord make_record(BrokerCommand cmd);
  void validate(const JournalRecord& rec) const;
  void journal_fleet_record(const JournalRecord& rec);
  FleetPublishOutcome apply_sequenced(const JournalRecord& rec);
  FleetPublishOutcome fan_out_publish(const JournalRecord& rec);
  void route_churn(const JournalRecord& rec);
  // Scatter a shard's local interested ids into the global merge words.
  void scatter(std::size_t k, std::span<const SubscriberId> local_ids);
  FleetPublishOutcome finish_publish(const JournalRecord& rec);
  void finish_churn(const JournalRecord& rec);
  void prune_buffers();
  void update_gauges();

  const PublicationModel* pub_;
  const Graph* network_;
  FleetOptions options_;
  std::unique_ptr<ManualClock> owned_clock_;
  ManualClock* clock_ = nullptr;

  std::vector<std::unique_ptr<Broker>> shards_;
  std::vector<std::uint64_t> shard_seq_;  // survives a shard kill
  std::vector<std::ostream*> shard_journal_os_;  // for the journal handoff
  std::vector<ShardReplica*> replicas_;
  // Shard-local records since each shard's last refresh-boundary snapshot
  // (the buffered half of state_reply; pruned as checkpoints advance).
  std::vector<std::vector<JournalRecord>> update_buffer_;

  // Logical (global) view: the id maps and the mirrored table.
  Workload logical_;
  std::vector<SubscriberId> global_to_local_;
  std::vector<std::vector<SubscriberId>> local_to_global_;
  std::vector<char> alive_;  // non-tombstoned globals (gauge bookkeeping)
  std::size_t live_count_ = 0;

  std::uint64_t seq_ = 0;
  std::uint64_t match_chain_ = 0;

  // Pending-record bookkeeping while stalled on a degraded shard (the
  // matched/refreshed tallies accumulate across the stall and the heal).
  bool pending_active_ = false;
  JournalRecord pending_rec_;
  std::vector<char> pending_applied_;
  std::size_t pending_shards_matched_ = 0;
  bool pending_refreshed_ = false;

  // Fan-out + merge working memory, reused per publish.
  std::vector<JournalRecord> fan_recs_;
  std::vector<PublishOutcome> fan_outcomes_;
  std::vector<std::exception_ptr> fan_errors_;
  std::vector<std::uint64_t> words_;
  std::size_t word_lo_ = 0, word_hi_ = 0;
  std::vector<SubscriberId> merged_;
  StringStream record_stream_;  // fleet journal serialization buffer

  std::ostream* fleet_journal_ = nullptr;

  // --- telemetry --------------------------------------------------------
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<StopwatchClock> owned_trace_clock_;
  Clock* trace_clock_ = nullptr;
  Counter* c_commands_ = nullptr;
  Counter* c_publishes_ = nullptr;
  Counter* c_churn_ = nullptr;
  Counter* c_stalls_ = nullptr;
  Counter* c_heals_ = nullptr;
  Counter* c_kills_ = nullptr;
  Counter* c_promotions_ = nullptr;
  Counter* c_recoveries_ = nullptr;
  Counter* c_replica_drops_ = nullptr;
  Gauge* g_shards_ = nullptr;
  Gauge* g_seq_ = nullptr;
  Gauge* g_live_ = nullptr;
  Gauge* g_stalled_ = nullptr;
  Histogram* h_interested_ = nullptr;
  Histogram* h_fanout_ms_ = nullptr;  // kRuntime wall time per fan-out
  std::vector<Gauge*> g_shard_seq_;
  std::vector<Gauge*> g_shard_subs_;
  std::vector<Gauge*> g_shard_up_;
  std::vector<Gauge*> g_shard_degraded_;
  std::vector<Histogram*> h_shard_publish_;  // kRuntime, watchdog input

  // Causal tracing (sized/armed by init_obs from broker.obs).
  TraceRing trace_{0};
  std::uint64_t trace_sample_ = 0;
  // Trace id of the record currently applying (0 = untraced).  Written on
  // the serial command path before the fan-out, read-only inside lanes.
  std::uint64_t cur_trace_id_ = 0;
};

// Aggregated fleet exposition: the fleet registry's snapshot merged with
// every live shard's registry under a distinct shard="k" label, shards
// ascending.  Stability classes survive the merge, so the
// include_runtime=false subset stays byte-identical across --threads.
MetricsSnapshot FleetScrape(const BrokerFleet& fleet,
                            bool include_runtime = true);

// Audit inputs for FleetWatchdog::audit: each live shard's actual seq and
// digest against the fleet's bookkeeping (shard_seq).
std::vector<ShardAuditSample> CollectShardAudit(const BrokerFleet& fleet);

// The single-broker oracle the fleet is measured against: one Broker fed
// the same global stream, folding each publish's interested set into the
// same match chain.  FleetStateDigest(oracle) == FleetStateDigest(fleet)
// at every seq, for every shard count — the tentpole invariant.
class FleetOracle {
 public:
  FleetOracle(Workload initial, const PublicationModel& pub,
              const Graph& network, const BrokerOptions& options = {},
              Clock* clock = nullptr);

  void apply(const JournalRecord& rec);

  std::uint64_t seq() const { return broker_.seq(); }
  std::uint64_t match_chain() const { return chain_; }
  std::uint64_t state_digest() const;
  const Broker& broker() const { return broker_; }
  // The last publish's interested set (aliases broker scratch; valid until
  // the next command) — tests compare it against the fleet's merged set.
  std::span<const SubscriberId> last_interested() const { return last_; }

 private:
  Broker broker_;
  std::uint64_t chain_ = 0;
  std::span<const SubscriberId> last_;
};

}  // namespace pubsub
