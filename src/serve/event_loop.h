// Deterministic timer-driven event loop for the serve daemon.
//
// The serve daemon is a state machine over *simulated* time: trace events
// fire at their recorded timestamps, the heal probe and the checkpointer
// fire on periodic timers, and nothing observes wall clocks.  The loop is
// a min-heap of (due time, insertion order) over a ManualClock — run()
// pops the earliest task, advances the clock to its due time, and executes
// it.  Ties break by insertion order, so two tasks due at the same
// millisecond always run in the order they were scheduled and a serve run
// is bit-reproducible at any host speed.
//
// One-shot tasks (at) drive the loop; periodic tasks (every) ride along —
// run() returns when no one-shots remain, so a heal timer alone never
// keeps the daemon spinning after the trace is exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/clock.h"

namespace pubsub {

class EventLoop {
 public:
  // `clock` must outlive the loop; the loop only ever advances it.
  explicit EventLoop(ManualClock* clock) : clock_(clock) {}

  // Run `task` once at simulated time `due_ms` (tasks already in the past
  // run immediately at the current clock, in schedule order).
  void at(double due_ms, std::function<void()> task);
  // Run `task` at first_ms, then every period_ms after (period_ms > 0).
  // Each firing re-schedules with a fresh insertion order, so a periodic
  // task due at the same instant as a later-scheduled one-shot runs first
  // on its first firing and after it on re-armed firings only if re-armed
  // later — ordering stays a pure function of the schedule calls.
  void every(double first_ms, double period_ms, std::function<void()> task);
  // Makes run() return before executing any further task.
  void stop() { stopped_ = true; }

  // Executes tasks in (due, order) sequence until no one-shot tasks remain
  // or stop() is called.  The clock never moves backwards: a task due in
  // the past runs at the current time.
  void run();

  double now_ms() const { return clock_->now_ms(); }
  bool stopped() const { return stopped_; }

 private:
  struct Timer {
    double due_ms = 0.0;
    std::uint64_t order = 0;     // insertion tiebreak
    double period_ms = 0.0;      // 0 = one-shot
    std::function<void()> task;  // shared across firings of a periodic
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.due_ms != b.due_ms) return a.due_ms > b.due_ms;
      return a.order > b.order;
    }
  };

  ManualClock* clock_;
  std::priority_queue<Timer, std::vector<Timer>, Later> heap_;
  std::uint64_t next_order_ = 0;
  std::size_t pending_oneshots_ = 0;
  bool stopped_ = false;
};

}  // namespace pubsub
