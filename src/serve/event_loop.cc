#include "serve/event_loop.h"

#include <stdexcept>
#include <utility>

namespace pubsub {

void EventLoop::at(double due_ms, std::function<void()> task) {
  heap_.push(Timer{due_ms, next_order_++, 0.0, std::move(task)});
  ++pending_oneshots_;
}

void EventLoop::every(double first_ms, double period_ms,
                      std::function<void()> task) {
  if (period_ms <= 0.0)
    throw std::invalid_argument("EventLoop::every: period must be > 0");
  heap_.push(Timer{first_ms, next_order_++, period_ms, std::move(task)});
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && pending_oneshots_ > 0 && !heap_.empty()) {
    Timer t = heap_.top();
    heap_.pop();
    clock_->advance_to(t.due_ms);
    if (t.period_ms > 0.0) {
      // Re-arm before running: a periodic task that schedules one-shots
      // observes its own next firing already in place.
      heap_.push(Timer{t.due_ms + t.period_ms, next_order_++, t.period_ms,
                       t.task});
    } else {
      --pending_oneshots_;
    }
    t.task();
  }
}

}  // namespace pubsub
