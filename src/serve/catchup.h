// Late-joiner catch-up and promotion chaos for the sharded fleet.
//
// ShardReplica is the fleet's clone-pattern late joiner: it bootstraps
// from a FleetStateReply — the shard's refresh-boundary snapshot plus the
// records buffered since it (state-request/state-reply) — which lands it
// at the shard's *exact* current sequence number.  Attached to the fleet
// it follows the live per-shard record stream; on primary death
// BrokerFleet::promote replays the durable journal tail into it (covering
// any window it missed) and installs it as the live shard.
//
// RunPromotionChaos is the scripted adversary for that failover path: it
// drives a fleet through the serve-replay command stream, repeatedly
// builds standbys (alternating streamed followers and cold joiners that
// must catch up from the journal tail), kills primaries, arms the
// promote.journal_handoff fail point so promotions die mid-replay, falls
// back to snapshot+journal shard recovery, and checks the fleet digest
// against a single-broker oracle after every cycle.  Any digest mismatch
// is a found bug.
//
// The harness owns the process-global FailPoints registry for its run:
// callers must not have fail points armed concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "broker/chaos.h"
#include "broker/replica.h"
#include "net/transit_stub.h"
#include "serve/fleet.h"

namespace pubsub {

class ShardReplica {
 public:
  // Bootstrap from a state reply for one shard.  `options` must match the
  // fleet's per-shard broker options; `pub` / `network` / `clock` must
  // outlive the replica (and the broker a later promotion hands over).
  ShardReplica(const FleetStateReply& reply, const PublicationModel& pub,
               const Graph& network, const BrokerOptions& options = {},
               Clock* clock = nullptr);

  // Apply one streamed shard record (records at or below seq() are
  // ignored; a gap throws — the standby must re-bootstrap).  When a trace
  // context is armed the apply is wrapped in a replica_apply span, so
  // catch-up appears in the publish's causal tree.
  void apply(const JournalRecord& rec);

  // One-shot, like Broker::set_trace_context: the NEXT applied record's
  // span carries `trace_id` (the fleet arms this from its record
  // listener).
  void set_trace_context(std::uint64_t trace_id) { trace_ctx_id_ = trace_id; }
  const TraceRing& trace() const { return trace_; }

  int shard() const { return shard_; }
  std::uint64_t seq() const { return replica_.seq(); }
  const Broker& broker() const { return replica_.broker(); }

  // Hand over the underlying broker (the standby is spent).  Drive this
  // through BrokerFleet::promote, which replays the journal tail and
  // verifies the seq before installing.
  std::unique_ptr<Broker> take() && { return std::move(replica_).promote(); }

 private:
  int shard_;
  BrokerReplica replica_;
  std::unique_ptr<StopwatchClock> owned_trace_clock_;
  Clock* trace_clock_ = nullptr;
  TraceRing trace_{0};
  std::uint64_t trace_ctx_id_ = 0;
};

struct PromotionChaosOptions {
  std::size_t num_shards = 3;
  std::size_t num_events = 300;  // trace length (as serve --events)
  std::size_t churn_every = 4;   // churn cadence (as serve --churn-every)
  std::uint64_t seed = 7;        // trace/churn seed (as serve --seed)
  std::uint64_t chaos_seed = 1;  // victim/timing/fault selection stream
  std::size_t cycles = 25;       // kill/promote cycles to force
  std::uint64_t snapshot_every = 40;  // fleet checkpoint cadence in commands
  BrokerOptions broker;
};

struct PromotionChaosReport {
  std::size_t commands = 0;         // schedule length (== the final seq)
  std::size_t cycles = 0;           // kill cycles executed
  std::size_t standbys_built = 0;   // ShardReplica bootstraps
  std::size_t streamed_standbys = 0;  // of those, attached live followers
  std::size_t promotions = 0;         // promotions that completed
  std::size_t handoff_crashes = 0;    // promotions killed by the fail point
  std::size_t shard_recoveries = 0;   // snapshot+journal fallbacks
  std::size_t digest_checks = 0;
  std::size_t digest_mismatches = 0;  // any non-zero value is a found bug
  std::uint64_t final_seq = 0;
  std::uint64_t final_digest = 0;
  std::uint64_t reference_digest = 0;
  bool digests_match = false;
  bool ok() const { return digests_match && digest_mismatches == 0; }
};

// Run the promotion chaos schedule.  Hermetic and deterministic in
// (opts.seed, opts.chaos_seed, opts): all journal I/O is in-memory.
PromotionChaosReport RunPromotionChaos(const TransitStubNetwork& net,
                                       const Workload& base,
                                       const PublicationModel& pub,
                                       const PromotionChaosOptions& opts);

// Multi-line human-readable rendering (pubsub_cli chaos --promotions).
std::string FormatPromotionChaosReport(const PromotionChaosReport& r);

}  // namespace pubsub
