#include "serve/catchup.h"

#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "io/serialize.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace pubsub {

ShardReplica::ShardReplica(const FleetStateReply& reply,
                           const PublicationModel& pub, const Graph& network,
                           const BrokerOptions& options, Clock* clock)
    : shard_(reply.shard),
      replica_(reply.snapshot, pub, network, options, clock),
      trace_(options.obs.trace_capacity) {
  if (options.obs.trace_clock != nullptr) {
    trace_clock_ = options.obs.trace_clock;
  } else {
    owned_trace_clock_ = std::make_unique<StopwatchClock>();
    trace_clock_ = owned_trace_clock_.get();
  }
  // The buffered half of the state reply brings the standby from the
  // snapshot boundary to the shard's exact current seq.
  for (const JournalRecord& rec : reply.updates) replica_.apply(rec);
}

void ShardReplica::apply(const JournalRecord& rec) {
  const std::uint64_t tid = trace_ctx_id_;
  trace_ctx_id_ = 0;  // one record per armed context, even on a crash
  if (tid == 0) {
    replica_.apply(rec);
    return;
  }
  const double start = trace_clock_->now_ms();
  replica_.apply(rec);
  trace_.record({tid, rec.seq, shard_, PublishStage::kReplicaApply, start,
                 trace_clock_->now_ms() - start});
}

namespace {

// Parse one shard's in-memory journal stream back into records; the
// promotion path treats this as reading the durable tail off disk.
std::vector<JournalRecord> JournalRecordsOf(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadJournalLenient(is).journal.records;
}

}  // namespace

PromotionChaosReport RunPromotionChaos(const TransitStubNetwork& net,
                                       const Workload& base,
                                       const PublicationModel& pub,
                                       const PromotionChaosOptions& opts) {
  const std::vector<JournalRecord> schedule = BuildChaosSchedule(
      net, base, opts.num_events, opts.churn_every, opts.seed);

  PromotionChaosReport report;
  report.commands = schedule.size();

  // Reference digests from the single-broker oracle, per sequence number:
  // ref[s] is the digest any fleet must show at fleet seq s.
  std::vector<std::uint64_t> ref(schedule.size() + 1);
  {
    FleetOracle oracle(base, pub, net.graph, opts.broker);
    ref[0] = oracle.state_digest();
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      oracle.apply(schedule[i]);
      ref[i + 1] = oracle.state_digest();
    }
    report.reference_digest = ref[schedule.size()];
  }

  FailPoints& fp = FailPoints::Instance();
  fp.clear();
  fp.set_seed(opts.chaos_seed);

  ManualClock clock;
  FleetOptions fopts;
  fopts.num_shards = opts.num_shards;
  fopts.broker = opts.broker;
  BrokerFleet fleet(base, pub, net.graph, fopts, &clock);

  // One in-memory "disk" journal per shard; the header is written at
  // attach and survives every kill (the stream is the durable file).
  std::vector<std::ostringstream> disks(opts.num_shards);
  for (std::size_t k = 0; k < opts.num_shards; ++k)
    fleet.set_shard_journal(k, &disks[k], /*write_header=*/true);

  FleetCheckpoint last_cp = fleet.checkpoint();
  std::size_t applied = 0;

  const auto advance = [&](std::size_t count) {
    while (count > 0 && applied < schedule.size()) {
      fleet.apply(schedule[applied]);
      ++applied;
      --count;
      if (opts.snapshot_every > 0 && applied % opts.snapshot_every == 0)
        last_cp = fleet.checkpoint();
    }
  };
  const auto check_digest = [&] {
    ++report.digest_checks;
    if (fleet.state_digest() != ref[fleet.seq()]) ++report.digest_mismatches;
  };

  // Standby options must match the fleet's per-shard brokers (which force
  // a private metrics registry per shard).
  BrokerOptions standby_opts = opts.broker;
  standby_opts.obs.metrics = nullptr;

  Rng rng(opts.chaos_seed);
  while (report.cycles < opts.cycles && applied < schedule.size()) {
    advance(static_cast<std::size_t>(rng.uniform_int(1, 10)));

    const std::size_t victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(opts.num_shards) - 1));
    auto standby = std::make_unique<ShardReplica>(fleet.state_reply(victim),
                                                  pub, net.graph, standby_opts);
    ++report.standbys_built;
    // Streamed follower vs cold joiner: an attached standby receives the
    // pre-kill records live; a cold one must catch up entirely from the
    // journal tail during promotion.
    const bool attach = rng.uniform_int(0, 1) == 1;
    if (attach) {
      fleet.attach_replica(victim, standby.get());
      ++report.streamed_standbys;
    }
    advance(static_cast<std::size_t>(rng.uniform_int(0, 6)));

    fleet.kill_shard(victim);
    ++report.cycles;
    const std::vector<JournalRecord> tail = JournalRecordsOf(disks[victim].str());

    // About half the promotions die mid-handoff at a seeded record
    // boundary; the fallback is a cold shard recovery from the last fleet
    // checkpoint plus the same durable journal.
    const bool arm = rng.uniform_int(0, 1) == 1;
    if (arm)
      fp.configure("promote.journal_handoff=crash*1^" +
                   std::to_string(rng.uniform_int(0, 2)));
    try {
      fleet.promote(victim, std::move(*standby), tail);
      ++report.promotions;
    } catch (const InjectedCrash&) {
      ++report.handoff_crashes;
      fleet.recover_shard(victim, last_cp.shard_snapshots[victim], tail);
      ++report.shard_recoveries;
    }
    fp.configure("promote.journal_handoff=off");

    check_digest();
    // A desynced shard would not fail the table digest; it would poison
    // the match chain on the next publishes.  Advance past a few and
    // re-check so every cycle also proves post-failover match parity.
    advance(static_cast<std::size_t>(rng.uniform_int(1, 6)));
    check_digest();
  }
  advance(schedule.size() - applied);

  fp.clear();
  report.final_seq = fleet.seq();
  report.final_digest = fleet.state_digest();
  report.digests_match = report.final_seq == schedule.size() &&
                         report.final_digest == report.reference_digest;
  return report;
}

std::string FormatPromotionChaosReport(const PromotionChaosReport& r) {
  std::ostringstream os;
  os << "promotion chaos: " << r.commands << " commands, " << r.cycles
     << " kill cycles\n";
  os << "  standbys built     : " << r.standbys_built << " ("
     << r.streamed_standbys << " streamed, "
     << (r.standbys_built - r.streamed_standbys) << " cold)\n";
  os << "  promotions         : " << r.promotions << "\n";
  os << "  handoff crashes    : " << r.handoff_crashes << "\n";
  os << "  shard recoveries   : " << r.shard_recoveries << "\n";
  os << "  digest checks      : " << r.digest_checks << " ("
     << r.digest_mismatches << " mismatches)\n";
  os << "  final seq          : " << r.final_seq << "\n";
  os << "  final digest       : " << std::hex << std::setfill('0')
     << std::setw(16) << r.final_digest << std::dec << std::setfill(' ')
     << (r.digests_match ? "  == reference" : "  != reference") << "\n";
  os << "  verdict            : " << (r.ok() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace pubsub
