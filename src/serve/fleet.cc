#include "serve/fleet.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <string>
#include <utility>

#include "serve/catchup.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

// Same digest primitive as the broker's state digest (FNV-1a, 64-bit).
std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// The tombstone GroupManager writes on remove: one default (empty)
// interval per dimension.  The logical mirror must reproduce it exactly or
// the fleet digest diverges from the oracle on the first unsubscribe.
Rect TombstoneRect(std::size_t dims) {
  return Rect(std::vector<Interval>(dims, Interval()));
}

}  // namespace

std::size_t FleetShardOf(SubscriberId global_id, std::size_t num_shards) {
  // splitmix64 finalizer: stable in the id, so growing the population or
  // resharding a fresh fleet never remaps an existing subscriber.
  std::uint64_t z =
      static_cast<std::uint64_t>(global_id) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % num_shards);
}

std::uint64_t FleetChainFold(std::uint64_t chain, std::uint64_t seq,
                             std::span<const SubscriberId> interested) {
  std::uint64_t h = chain ^ 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(seq);
  mix(static_cast<std::uint64_t>(interested.size()));
  for (const SubscriberId id : interested) mix(static_cast<std::uint64_t>(id));
  return h;
}

std::uint64_t FleetStateDigest(std::uint64_t seq, const Workload& logical,
                               std::uint64_t match_chain) {
  std::ostringstream os;
  os << seq << ' ' << match_chain << '\n';
  WriteWorkload(os, logical);
  return Fnv1a(os.str());
}

// ----------------------------------------------------------- construction

BrokerFleet::BrokerFleet(Workload initial, const PublicationModel& pub,
                         const Graph& network, const FleetOptions& options,
                         ManualClock* clock)
    : BrokerFleet(RestoreTag{}, pub, network, options, clock) {
  logical_ = std::move(initial);
  const std::size_t n = shards_.size();
  std::vector<Workload> parts(n);
  for (Workload& p : parts) p.space = logical_.space;
  global_to_local_.resize(logical_.num_subscribers());
  alive_.assign(logical_.num_subscribers(), 0);
  for (std::size_t g = 0; g < logical_.num_subscribers(); ++g) {
    const std::size_t k = FleetShardOf(static_cast<SubscriberId>(g), n);
    global_to_local_[g] =
        static_cast<SubscriberId>(parts[k].subscribers.size());
    local_to_global_[k].push_back(static_cast<SubscriberId>(g));
    parts[k].subscribers.push_back(logical_.subscribers[g]);
    alive_[g] = logical_.subscribers[g].interest.empty() ? 0 : 1;
    live_count_ += alive_[g];
  }
  for (std::size_t k = 0; k < n; ++k)
    install_shard(k, std::make_unique<Broker>(std::move(parts[k]), *pub_,
                                              *network_, shard_options(),
                                              clock_));
  update_gauges();
}

BrokerFleet::BrokerFleet(RestoreTag, const PublicationModel& pub,
                         const Graph& network, const FleetOptions& options,
                         ManualClock* clock)
    : pub_(&pub), network_(&network), options_(options) {
  if (options_.num_shards < 1)
    throw std::invalid_argument("BrokerFleet: num_shards must be >= 1");
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<ManualClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
  const std::size_t n = options_.num_shards;
  shards_.resize(n);
  shard_seq_.assign(n, 0);
  shard_journal_os_.assign(n, nullptr);
  replicas_.assign(n, nullptr);
  update_buffer_.resize(n);
  local_to_global_.resize(n);
  init_obs(n);
}

BrokerFleet::~BrokerFleet() = default;

BrokerOptions BrokerFleet::shard_options() const {
  BrokerOptions o = options_.broker;
  // Every shard owns a private registry: the registry is get-or-create by
  // name, so N shards sharing one would sum their counters into a single
  // series.  Shard metrics surface through shard(k).metrics().
  o.obs.metrics = nullptr;
  // The fleet owns trace sampling: shard seqs differ from fleet seqs, so a
  // shard sampling on its own would stamp trace ids no fleet span shares.
  // Sampled fleet records arm each shard via Broker::set_trace_context
  // instead.
  o.obs.trace_sample = 0;
  return o;
}

void BrokerFleet::init_obs(std::size_t num_shards) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.trace_clock != nullptr) {
    trace_clock_ = options_.trace_clock;
  } else {
    owned_trace_clock_ = std::make_unique<StopwatchClock>();
    trace_clock_ = owned_trace_clock_.get();
  }
  MetricsRegistry& m = *metrics_;
  c_commands_ = m.counter("fleet_commands_total",
                          "commands applied by the fleet (all types)");
  c_publishes_ = m.counter("fleet_publishes_total", "publish fan-outs merged");
  c_churn_ = m.counter("fleet_churn_total",
                       "subscribe/unsubscribe/update commands routed");
  c_stalls_ = m.counter("fleet_stalls_total",
                        "records left pending on a degraded shard");
  c_heals_ = m.counter("fleet_heals_total",
                       "stalled records completed through heal()");
  c_kills_ = m.counter("fleet_shard_kills_total", "shard brokers discarded");
  c_promotions_ = m.counter("fleet_promotions_total",
                            "standbys promoted into live shards");
  c_recoveries_ = m.counter("fleet_shard_recoveries_total",
                            "shards rebuilt from snapshot + journal");
  c_replica_drops_ = m.counter(
      "fleet_replica_drops_total",
      "attached replicas dropped after crashing on a streamed record");
  g_shards_ = m.gauge("fleet_shards", "configured shard count");
  g_seq_ = m.gauge("fleet_seq", "last fleet sequence number applied");
  g_live_ = m.gauge("fleet_live_subscribers",
                    "non-tombstoned subscribers across all shards");
  g_stalled_ = m.gauge("fleet_stalled",
                       "1 while a record is pending on a degraded shard");
  h_interested_ =
      m.histogram("fleet_interested_size",
                  "merged interested-set size per publish",
                  ExponentialBuckets(1.0, 2.0, 12));
  // Wall time, not state: fan-out latency depends on thread count and
  // scheduling, so it is excluded from deterministic scrapes.
  h_fanout_ms_ = m.histogram("fleet_fanout_ms",
                             "publish fan-out + merge wall time (ms)",
                             ExponentialBuckets(0.001, 4.0, 12),
                             MetricStability::kRuntime);
  trace_ = TraceRing(options_.broker.obs.trace_capacity);
  trace_sample_ = options_.broker.obs.trace_sample;
  g_shard_seq_.resize(num_shards);
  g_shard_subs_.resize(num_shards);
  g_shard_up_.resize(num_shards);
  g_shard_degraded_.resize(num_shards);
  h_shard_publish_.resize(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    const std::string shard = std::to_string(k);
    g_shard_seq_[k] = m.gauge(LabeledName("fleet_shard_seq", "shard", shard),
                              "shard broker sequence number");
    g_shard_subs_[k] =
        m.gauge(LabeledName("fleet_shard_subscribers", "shard", shard),
                "subscriber slots owned by the shard (tombstones included)");
    g_shard_up_[k] = m.gauge(LabeledName("fleet_shard_up", "shard", shard),
                             "1 while the shard broker is alive");
    g_shard_degraded_[k] =
        m.gauge(LabeledName("fleet_shard_degraded", "shard", shard),
                "1 while the shard broker is in degraded read-only mode");
    // Wall time per shard publish apply — the watchdog's skew input.
    h_shard_publish_[k] =
        m.histogram(LabeledName("fleet_shard_publish_ms", "shard", shard),
                    "per-shard publish apply wall time (ms)",
                    ExponentialBuckets(0.001, 4.0, 12),
                    MetricStability::kRuntime);
  }
}

void BrokerFleet::install_shard(std::size_t k, std::unique_ptr<Broker> broker) {
  // Every record the shard finishes — live fan-out, a heal's late apply —
  // lands in the state-reply buffer and streams to the attached standby.
  // A standby that crashes applying a record died; the shard did not, so
  // the crash is contained to a detach.
  broker->set_record_listener([this, k](const JournalRecord& rec) {
    update_buffer_[k].push_back(rec);
    ShardReplica* standby = replicas_[k];
    if (standby == nullptr) return;
    // Traced records propagate their id into the standby's replica_apply
    // span, so catch-up shows up in the same causal tree as the publish.
    if (cur_trace_id_ != 0) standby->set_trace_context(cur_trace_id_);
    try {
      standby->apply(rec);
    } catch (const InjectedCrash&) {
      replicas_[k] = nullptr;
      Inc(c_replica_drops_);
    }
  });
  shards_[k] = std::move(broker);
}

// ------------------------------------------------------------ command API

JournalRecord BrokerFleet::make_record(BrokerCommand cmd) {
  JournalRecord rec;
  rec.seq = seq_ + 1;
  cmd.time_ms = clock_->now_ms();
  rec.cmd = std::move(cmd);
  return rec;
}

SubscriberId BrokerFleet::subscribe(NodeId node, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kSubscribe;
  cmd.node = node;
  cmd.interest = interest;
  const SubscriberId id =
      static_cast<SubscriberId>(logical_.num_subscribers());
  apply_sequenced(make_record(std::move(cmd)));
  return id;
}

void BrokerFleet::unsubscribe(SubscriberId global_id) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUnsubscribe;
  cmd.subscriber = global_id;
  apply_sequenced(make_record(std::move(cmd)));
}

void BrokerFleet::update(SubscriberId global_id, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUpdate;
  cmd.subscriber = global_id;
  cmd.interest = interest;
  apply_sequenced(make_record(std::move(cmd)));
}

FleetPublishOutcome BrokerFleet::publish(NodeId origin, const Point& event) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kPublish;
  cmd.node = origin;
  cmd.point = event;
  return apply_sequenced(make_record(std::move(cmd)));
}

FleetPublishOutcome BrokerFleet::apply(const JournalRecord& rec) {
  return apply_sequenced(rec);
}

void BrokerFleet::validate(const JournalRecord& rec) const {
  if (rec.seq != seq_ + 1)
    throw std::runtime_error(
        "BrokerFleet::apply: out-of-order record (expected seq " +
        std::to_string(seq_ + 1) + ", got " + std::to_string(rec.seq) + ")");
  // Mirror Broker::validate_churn at the fleet boundary: an unknown-id
  // command must fail before the write-ahead append, or the fleet journal
  // carries a record replay can never apply.
  if (rec.cmd.type == BrokerCommandType::kUnsubscribe ||
      rec.cmd.type == BrokerCommandType::kUpdate) {
    if (rec.cmd.subscriber < 0 ||
        static_cast<std::size_t>(rec.cmd.subscriber) >=
            logical_.num_subscribers())
      throw std::out_of_range("BrokerFleet: unknown subscriber id " +
                              std::to_string(rec.cmd.subscriber));
  }
}

void BrokerFleet::journal_fleet_record(const JournalRecord& rec) {
  if (fleet_journal_ == nullptr) return;
  record_stream_.reset();
  WriteJournalRecord(record_stream_, rec, logical_.space.dims());
  const std::string& text = record_stream_.str();
  fleet_journal_->write(text.data(),
                        static_cast<std::streamsize>(text.size()));
  fleet_journal_->flush();
}

FleetPublishOutcome BrokerFleet::apply_sequenced(const JournalRecord& rec) {
  if (pending_active_)
    throw FleetDegradedError(
        "fleet is stalled: a record is pending on a degraded shard; heal() "
        "must complete it before new mutations");
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (shards_[k] == nullptr)
      throw std::logic_error("BrokerFleet: shard " + std::to_string(k) +
                             " is down (promote or recover it first)");
  validate(rec);
  // The fleet seq is the trace id: every span this record produces — here,
  // in the shard lanes, in the replicas — links back to it.
  cur_trace_id_ =
      trace_sample_ > 0 && rec.seq % trace_sample_ == 0 ? rec.seq : 0;
  // Write-ahead at the fleet level: the global record is on the routing
  // log before any shard sees its re-stamped copy.  Plain stream — the
  // per-shard WALs underneath are the durability seams the fail points
  // exercise; this log only replays routing.
  journal_fleet_record(rec);
  if (rec.cmd.type == BrokerCommandType::kPublish) return fan_out_publish(rec);
  route_churn(rec);
  FleetPublishOutcome out;
  out.seq = seq_;
  return out;
}

void BrokerFleet::route_churn(const JournalRecord& rec) {
  const std::size_t n = shards_.size();
  std::size_t k = 0;
  JournalRecord srec = rec;
  if (rec.cmd.type == BrokerCommandType::kSubscribe) {
    // The new global id is the next logical slot; its hash picks the home
    // shard, where it lands in the next local slot.
    k = FleetShardOf(static_cast<SubscriberId>(logical_.num_subscribers()), n);
  } else {
    k = FleetShardOf(rec.cmd.subscriber, n);
    srec.cmd.subscriber = global_to_local_[rec.cmd.subscriber];
  }
  srec.seq = shard_seq_[k] + 1;
  if (cur_trace_id_ != 0)
    shards_[k]->set_trace_context(cur_trace_id_, static_cast<std::int32_t>(k));
  try {
    shards_[k]->apply(srec);
  } catch (const BrokerDegradedError&) {
    // The shard lost journal durability mid-append; the fleet record is
    // pending until heal() finishes it (the shard seq was not consumed).
    pending_active_ = true;
    pending_rec_ = rec;
    pending_applied_.assign(n, 1);
    pending_applied_[k] = 0;
    Inc(c_stalls_);
    update_gauges();
    throw FleetDegradedError("fleet stalled: shard " + std::to_string(k) +
                             " degraded while applying seq " +
                             std::to_string(rec.seq));
  }
  shard_seq_[k] += 1;
  finish_churn(rec);
}

void BrokerFleet::finish_churn(const JournalRecord& rec) {
  // The logical mirror replays GroupManager's exact mutation semantics
  // (append / raw replace / tombstone, slots never reused) so the fleet
  // digest compares byte-identically with the single-broker oracle.
  switch (rec.cmd.type) {
    case BrokerCommandType::kSubscribe: {
      const SubscriberId g =
          static_cast<SubscriberId>(logical_.num_subscribers());
      const std::size_t k = FleetShardOf(g, shards_.size());
      global_to_local_.push_back(
          static_cast<SubscriberId>(local_to_global_[k].size()));
      local_to_global_[k].push_back(g);
      logical_.subscribers.push_back(Subscriber{rec.cmd.node, rec.cmd.interest});
      const char live = rec.cmd.interest.empty() ? 0 : 1;
      alive_.push_back(live);
      live_count_ += live;
      break;
    }
    case BrokerCommandType::kUnsubscribe: {
      const SubscriberId g = rec.cmd.subscriber;
      logical_.subscribers[g].interest = TombstoneRect(logical_.space.dims());
      live_count_ -= alive_[g];
      alive_[g] = 0;
      break;
    }
    case BrokerCommandType::kUpdate: {
      const SubscriberId g = rec.cmd.subscriber;
      logical_.subscribers[g].interest = rec.cmd.interest;
      const char live = rec.cmd.interest.empty() ? 0 : 1;
      live_count_ += live - alive_[g];
      alive_[g] = live;
      break;
    }
    case BrokerCommandType::kPublish:
      break;  // finish_publish
  }
  seq_ = rec.seq;
  Inc(c_commands_);
  Inc(c_churn_);
  prune_buffers();
  update_gauges();
}

FleetPublishOutcome BrokerFleet::fan_out_publish(const JournalRecord& rec) {
  const std::size_t n = shards_.size();
  fan_recs_.resize(n);
  fan_outcomes_.assign(n, PublishOutcome{});
  fan_errors_.assign(n, nullptr);
  for (std::size_t k = 0; k < n; ++k) {
    fan_recs_[k] = rec;
    fan_recs_[k].seq = shard_seq_[k] + 1;
  }
  const std::size_t need = (logical_.num_subscribers() + 63) / 64;
  if (words_.size() < need) words_.resize(need, 0);
  word_lo_ = words_.size();
  word_hi_ = 0;
  pending_shards_matched_ = 0;
  pending_refreshed_ = false;

  // Slow-shard drill: evaluated on the serial path (one eval per publish,
  // so *COUNT/^SKIP schedules stay deterministic under any --threads) and
  // applied to shard 0's observed latency below.
  double inject_delay_ms = 0.0;
  {
    FailPoints& fp = FailPoints::Instance();
    if (fp.active()) {
      const FailPointDecision d = fp.eval("fleet.shard.publish");
      if (d.action == FailAction::kDelay)
        inject_delay_ms = static_cast<double>(d.arg);
    }
  }

  // Fan out to every shard.  Each lane touches only shard-disjoint state
  // (the shard broker, its journal, its replica, its buffer slot), and the
  // merge below walks shards in index order — so the fleet's durable state
  // is bit-identical at any --threads.  Bodies must not throw: exceptions
  // are captured per shard and re-raised in shard order after the join.
  const double fan_start = trace_clock_->now_ms();
  ParallelForChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const double t0 = trace_clock_->now_ms();
      if (cur_trace_id_ != 0)
        shards_[k]->set_trace_context(cur_trace_id_,
                                      static_cast<std::int32_t>(k));
      try {
        fan_outcomes_[k] = shards_[k]->apply_with_outcome(fan_recs_[k]);
      } catch (...) {
        fan_errors_[k] = std::current_exception();
      }
      double shard_ms = trace_clock_->now_ms() - t0;
      if (k == 0) shard_ms += inject_delay_ms;
      Observe(h_shard_publish_[k], shard_ms);
    }
  });
  const double fan_ms = trace_clock_->now_ms() - fan_start;
  Observe(h_fanout_ms_, fan_ms);
  if (cur_trace_id_ != 0)
    trace_.record({cur_trace_id_, rec.seq, -1, PublishStage::kFleetFanOut,
                   fan_start, fan_ms});

  // An injected crash (or any non-degraded failure) on any shard is
  // process death: some shards applied, some did not, and only recovery
  // from the durable files reconciles them.  Degraded shards, by contrast,
  // are a survivable stall.
  for (std::size_t k = 0; k < n; ++k) {
    if (fan_errors_[k] == nullptr) continue;
    try {
      std::rethrow_exception(fan_errors_[k]);
    } catch (const BrokerDegradedError&) {
      // handled below
    }
  }

  bool any_degraded = false;
  pending_applied_.assign(n, 1);
  for (std::size_t k = 0; k < n; ++k) {
    if (fan_errors_[k] != nullptr) {
      any_degraded = true;
      pending_applied_[k] = 0;
      continue;
    }
    shard_seq_[k] += 1;
    if (fan_outcomes_[k].refreshed) pending_refreshed_ = true;
    if (!fan_outcomes_[k].interested_set.empty()) ++pending_shards_matched_;
    scatter(k, fan_outcomes_[k].interested_set);
  }
  if (any_degraded) {
    pending_active_ = true;
    pending_rec_ = rec;
    Inc(c_stalls_);
    update_gauges();
    throw FleetDegradedError(
        "fleet stalled: a shard degraded during the fan-out of seq " +
        std::to_string(rec.seq));
  }
  return finish_publish(rec);
}

void BrokerFleet::scatter(std::size_t k,
                          std::span<const SubscriberId> local_ids) {
  const std::vector<SubscriberId>& map = local_to_global_[k];
  for (const SubscriberId lid : local_ids) {
    const std::size_t g = static_cast<std::size_t>(map[lid]);
    const std::size_t w = g >> 6;
    words_[w] |= 1ull << (g & 63u);
    word_lo_ = std::min(word_lo_, w);
    word_hi_ = std::max(word_hi_, w);
  }
}

FleetPublishOutcome BrokerFleet::finish_publish(const JournalRecord& rec) {
  // Counting-sort union: OR'd bits emit in ascending global id order, so
  // the merged set is independent of shard count and fan-out interleaving.
  const double merge_start = trace_clock_->now_ms();
  merged_.clear();
  if (word_lo_ <= word_hi_) {
    for (std::size_t w = word_lo_; w <= word_hi_; ++w) {
      std::uint64_t bits = words_[w];
      words_[w] = 0;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        merged_.push_back(static_cast<SubscriberId>((w << 6) |
                                                    static_cast<std::size_t>(b)));
      }
    }
  }
  const double merge_end = trace_clock_->now_ms();
  if (cur_trace_id_ != 0)
    trace_.record({cur_trace_id_, rec.seq, -1, PublishStage::kFleetMerge,
                   merge_start, merge_end - merge_start});
  match_chain_ = FleetChainFold(match_chain_, rec.seq, merged_);
  seq_ = rec.seq;
  Inc(c_commands_);
  Inc(c_publishes_);
  Observe(h_interested_, static_cast<double>(merged_.size()));
  prune_buffers();
  update_gauges();
  FleetPublishOutcome out;
  out.seq = seq_;
  out.interested = std::span<const SubscriberId>(merged_);
  out.shards_matched = pending_shards_matched_;
  out.refreshed = pending_refreshed_;
  if (cur_trace_id_ != 0)
    trace_.record({cur_trace_id_, rec.seq, -1, PublishStage::kFleetDeliver,
                   merge_end, trace_clock_->now_ms() - merge_end});
  return out;
}

// -------------------------------------------------------- degraded shards

bool BrokerFleet::heal() {
  bool all_ok = true;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] == nullptr) {
      all_ok = false;  // a dead shard needs promote/recover, not a probe
      continue;
    }
    if (pending_active_ && pending_applied_[k] == 0) {
      // The probe re-runs the interrupted append; success means the shard
      // finished the pending record (its listener already fed the buffer
      // and the standby) and its seq advanced.
      if (!shards_[k]->heal_probe()) {
        all_ok = false;
        continue;
      }
      shard_seq_[k] += 1;
      pending_applied_[k] = 1;
      if (pending_rec_.cmd.type == BrokerCommandType::kPublish) {
        // Publishes do not mutate the subscription table, so the late
        // query reproduces the exact set the stalled fan-out would have
        // merged.
        const std::vector<SubscriberId> late =
            shards_[k]->interested(pending_rec_.cmd.point);
        if (!late.empty()) ++pending_shards_matched_;
        scatter(k, late);
      }
    } else if (!shards_[k]->heal_probe()) {
      // Covers degradation outside a stalled record (e.g. a failed journal
      // header append, which consumes no seq).
      all_ok = false;
    }
  }
  if (pending_active_ &&
      std::find(pending_applied_.begin(), pending_applied_.end(), 0) ==
          pending_applied_.end()) {
    pending_active_ = false;
    // Re-derive the pending record's trace id: a sampled publish that
    // stalled still finishes its fleet merge/deliver spans here.
    cur_trace_id_ = trace_sample_ > 0 && pending_rec_.seq % trace_sample_ == 0
                        ? pending_rec_.seq
                        : 0;
    if (pending_rec_.cmd.type == BrokerCommandType::kPublish)
      finish_publish(pending_rec_);
    else
      finish_churn(pending_rec_);
    Inc(c_heals_);
  }
  update_gauges();
  return all_ok && !pending_active_;
}

// ------------------------------------------------------------------ state

const Broker& BrokerFleet::shard(std::size_t k) const {
  if (shards_[k] == nullptr)
    throw std::logic_error("BrokerFleet: shard " + std::to_string(k) +
                           " is down");
  return *shards_[k];
}

std::uint64_t BrokerFleet::state_digest() const {
  return FleetStateDigest(seq_, logical_, match_chain_);
}

std::vector<SubscriberId> BrokerFleet::interested(const Point& event) const {
  // Cold read path, shard by shard.  Down shards are skipped: during a
  // failover window the merged read is best-effort, like any other read
  // against a partially available fleet.
  std::vector<SubscriberId> out;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] == nullptr) continue;
    for (const SubscriberId lid : shards_[k]->interested(event))
      out.push_back(local_to_global_[k][lid]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------- durability

void BrokerFleet::set_fleet_journal(std::ostream* sink, bool write_header) {
  fleet_journal_ = sink;
  if (sink != nullptr && write_header)
    WriteJournalHeader(*sink, logical_.space.dims());
}

void BrokerFleet::set_shard_journal(std::size_t k, std::ostream* sink,
                                    bool write_header) {
  shard_journal_os_[k] = sink;  // remembered for the promotion handoff
  if (shards_[k] != nullptr) shards_[k]->set_journal(sink, write_header);
}

FleetCheckpoint BrokerFleet::checkpoint() const {
  // A stalled fleet is partially applied: some shards already hold the
  // pending record, the fleet seq does not.  A manifest cut there would
  // double-apply the record on replay — refuse instead (the serve loop
  // skips checkpoints while stalled).
  if (pending_active_)
    throw std::logic_error("BrokerFleet::checkpoint: fleet is stalled");
  FleetCheckpoint cp;
  cp.manifest.seq = seq_;
  cp.manifest.match_chain = match_chain_;
  cp.manifest.shards.resize(shards_.size());
  cp.shard_snapshots.resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] == nullptr)
      throw std::logic_error(
          "BrokerFleet::checkpoint: shard " + std::to_string(k) + " is down");
    cp.manifest.shards[k].seq = shard_seq_[k];
    cp.manifest.shards[k].global_ids = local_to_global_[k];
    cp.shard_snapshots[k] = shards_[k]->snapshot();
  }
  return cp;
}

std::unique_ptr<BrokerFleet> BrokerFleet::Recover(
    const FleetManifest& manifest,
    std::span<const BrokerSnapshot> shard_snapshots,
    const std::vector<std::vector<JournalRecord>>& shard_journals,
    const PublicationModel& pub, const Graph& network,
    const FleetOptions& options, ManualClock* clock) {
  const std::size_t n = manifest.shards.size();
  if (n == 0)
    throw std::invalid_argument("BrokerFleet::Recover: empty manifest");
  if (shard_snapshots.size() != n || shard_journals.size() != n)
    throw std::invalid_argument(
        "BrokerFleet::Recover: manifest names " + std::to_string(n) +
        " shards, got " + std::to_string(shard_snapshots.size()) +
        " snapshots and " + std::to_string(shard_journals.size()) +
        " journals");
  FleetOptions opts = options;
  opts.num_shards = n;
  std::unique_ptr<BrokerFleet> fleet(
      new BrokerFleet(RestoreTag{}, pub, network, opts, clock));

  std::size_t total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    // The manifest's shard seq T_k is the durable truth: the journal may
    // run past it (records from a later, partially checkpointed epoch are
    // the serve loop's to replay through the fleet tail).
    std::vector<JournalRecord> recs;
    for (const JournalRecord& rec : shard_journals[k])
      if (rec.seq <= manifest.shards[k].seq) recs.push_back(rec);
    std::unique_ptr<Broker> b =
        Broker::Recover(shard_snapshots[k], recs, pub, network,
                        fleet->shard_options(), fleet->clock_);
    if (b->seq() != manifest.shards[k].seq)
      throw std::runtime_error(
          "BrokerFleet::Recover: shard " + std::to_string(k) +
          " reached seq " + std::to_string(b->seq()) + ", manifest says " +
          std::to_string(manifest.shards[k].seq));
    if (manifest.shards[k].global_ids.size() !=
        b->workload().num_subscribers())
      throw std::runtime_error(
          "BrokerFleet::Recover: shard " + std::to_string(k) + " holds " +
          std::to_string(b->workload().num_subscribers()) +
          " slots, manifest maps " +
          std::to_string(manifest.shards[k].global_ids.size()));
    fleet->shard_seq_[k] = b->seq();
    fleet->local_to_global_[k] = manifest.shards[k].global_ids;
    // Re-seed the state-reply buffer with the post-snapshot records so a
    // standby can bootstrap immediately after recovery.
    for (const JournalRecord& rec : recs)
      if (rec.seq > b->snapshot().seq) fleet->update_buffer_[k].push_back(rec);
    fleet->install_shard(k, std::move(b));
    total += manifest.shards[k].global_ids.size();
  }

  // Rebuild the logical table by scattering each shard's slots through its
  // local→global map; the partition must agree with FleetShardOf or the
  // manifest is corrupt.
  fleet->logical_.space = shard_snapshots[0].workload.space;
  fleet->logical_.subscribers.assign(total, Subscriber{});
  fleet->global_to_local_.assign(total, -1);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t lid = 0; lid < fleet->local_to_global_[k].size(); ++lid) {
      const SubscriberId g = fleet->local_to_global_[k][lid];
      if (g < 0 || static_cast<std::size_t>(g) >= total ||
          FleetShardOf(g, n) != k || fleet->global_to_local_[g] != -1)
        throw std::runtime_error(
            "BrokerFleet::Recover: manifest shard " + std::to_string(k) +
            " maps an invalid or duplicate global id " + std::to_string(g));
      fleet->global_to_local_[g] = static_cast<SubscriberId>(lid);
      fleet->logical_.subscribers[g] =
          fleet->shards_[k]->workload().subscribers[lid];
    }
  }
  fleet->alive_.assign(total, 0);
  for (std::size_t g = 0; g < total; ++g) {
    fleet->alive_[g] = fleet->logical_.subscribers[g].interest.empty() ? 0 : 1;
    fleet->live_count_ += fleet->alive_[g];
  }
  fleet->seq_ = manifest.seq;
  fleet->match_chain_ = manifest.match_chain;
  fleet->update_gauges();
  return fleet;
}

// -------------------------------------------- clone pattern and failover

FleetStateReply BrokerFleet::state_reply(std::size_t k) const {
  if (shards_[k] == nullptr)
    throw std::logic_error("BrokerFleet::state_reply: shard " +
                           std::to_string(k) + " is down");
  FleetStateReply reply;
  reply.shard = static_cast<int>(k);
  reply.snapshot = shards_[k]->snapshot();
  for (const JournalRecord& rec : update_buffer_[k])
    if (rec.seq > reply.snapshot.seq) reply.updates.push_back(rec);
  return reply;
}

void BrokerFleet::attach_replica(std::size_t k, ShardReplica* replica) {
  if (replica == nullptr) {
    replicas_[k] = nullptr;
    return;
  }
  if (replica->shard() != static_cast<int>(k))
    throw std::invalid_argument(
        "BrokerFleet::attach_replica: replica follows shard " +
        std::to_string(replica->shard()) + ", not " + std::to_string(k));
  // A standby behind the shard would see a sequence gap on the next fed
  // record; state_reply() bootstraps to exactly the current seq.
  if (replica->seq() != shard_seq_[k])
    throw std::invalid_argument(
        "BrokerFleet::attach_replica: standby at seq " +
        std::to_string(replica->seq()) + ", shard at " +
        std::to_string(shard_seq_[k]));
  replicas_[k] = replica;
}

void BrokerFleet::detach_replica(std::size_t k) { replicas_[k] = nullptr; }

void BrokerFleet::kill_shard(std::size_t k) {
  if (shards_[k] == nullptr)
    throw std::logic_error("BrokerFleet::kill_shard: shard " +
                           std::to_string(k) + " is already down");
  shards_[k].reset();
  Inc(c_kills_);
  update_gauges();
}

void BrokerFleet::promote(std::size_t k, ShardReplica&& standby,
                          std::span<const JournalRecord> journal_tail) {
  if (shards_[k] != nullptr)
    throw std::logic_error("BrokerFleet::promote: shard " + std::to_string(k) +
                           " is still alive");
  if (standby.shard() != static_cast<int>(k))
    throw std::invalid_argument(
        "BrokerFleet::promote: standby follows shard " +
        std::to_string(standby.shard()) + ", not " + std::to_string(k));
  // The standby is consumed from here on — even a crash mid-handoff leaves
  // it partially advanced, so it must not stay attached as a follower.
  replicas_[k] = nullptr;
  FailPoints& fp = FailPoints::Instance();
  const auto handoff_gate = [&fp] {
    if (fp.active() &&
        fp.eval("promote.journal_handoff").action != FailAction::kOff)
      throw InjectedCrash("promote.journal_handoff");
  };
  // The handoff window: replay the durable journal tail into the standby.
  // The gate sits before each step so a chaos schedule can kill the
  // promotion at any record boundary (^SKIP picks the boundary).
  handoff_gate();
  for (const JournalRecord& rec : journal_tail) {
    handoff_gate();
    standby.apply(rec);  // records at or below the standby's seq are no-ops
  }
  std::unique_ptr<Broker> broker = std::move(standby).take();
  if (broker->seq() != shard_seq_[k])
    throw std::runtime_error(
        "BrokerFleet::promote: standby reached seq " +
        std::to_string(broker->seq()) + " but shard " + std::to_string(k) +
        " requires " + std::to_string(shard_seq_[k]) +
        " (promotion would desync the fleet)");
  // Journal handoff: the promoted broker appends to the shard's existing
  // journal stream, headerless, exactly where the dead primary stopped.
  if (shard_journal_os_[k] != nullptr)
    broker->set_journal(shard_journal_os_[k], /*write_header=*/false);
  install_shard(k, std::move(broker));
  Inc(c_promotions_);
  update_gauges();
}

void BrokerFleet::recover_shard(std::size_t k, const BrokerSnapshot& snapshot,
                                std::span<const JournalRecord> journal) {
  if (shards_[k] != nullptr)
    throw std::logic_error("BrokerFleet::recover_shard: shard " +
                           std::to_string(k) + " is still alive");
  std::vector<JournalRecord> recs;
  for (const JournalRecord& rec : journal)
    if (rec.seq <= shard_seq_[k]) recs.push_back(rec);
  std::unique_ptr<Broker> broker = Broker::Recover(
      snapshot, recs, *pub_, *network_, shard_options(), clock_);
  if (broker->seq() != shard_seq_[k])
    throw std::runtime_error(
        "BrokerFleet::recover_shard: shard " + std::to_string(k) +
        " recovered to seq " + std::to_string(broker->seq()) +
        ", fleet requires " + std::to_string(shard_seq_[k]));
  if (shard_journal_os_[k] != nullptr)
    broker->set_journal(shard_journal_os_[k], /*write_header=*/false);
  update_buffer_[k].clear();
  for (const JournalRecord& rec : recs)
    if (rec.seq > broker->snapshot().seq) update_buffer_[k].push_back(rec);
  install_shard(k, std::move(broker));
  Inc(c_recoveries_);
  update_gauges();
}

// -------------------------------------------------------------- plumbing

void BrokerFleet::prune_buffers() {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] == nullptr) continue;
    const std::uint64_t floor = shards_[k]->snapshot().seq;
    std::vector<JournalRecord>& buf = update_buffer_[k];
    if (buf.empty() || buf.front().seq > floor) continue;
    auto it = buf.begin();
    while (it != buf.end() && it->seq <= floor) ++it;
    buf.erase(buf.begin(), it);
  }
}

void BrokerFleet::update_gauges() {
  Set(g_shards_, static_cast<double>(shards_.size()));
  Set(g_seq_, static_cast<double>(seq_));
  Set(g_live_, static_cast<double>(live_count_));
  Set(g_stalled_, pending_active_ ? 1.0 : 0.0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Set(g_shard_seq_[k], static_cast<double>(shard_seq_[k]));
    Set(g_shard_subs_[k], static_cast<double>(local_to_global_[k].size()));
    Set(g_shard_up_[k], shards_[k] != nullptr ? 1.0 : 0.0);
    Set(g_shard_degraded_[k],
        shards_[k] != nullptr && shards_[k]->degraded() ? 1.0 : 0.0);
  }
}

// -------------------------------------------------------------- telemetry

std::vector<TraceSpan> BrokerFleet::collect_spans() const {
  std::vector<TraceSpan> out = trace_.spans();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] != nullptr) {
      const std::vector<TraceSpan> s = shards_[k]->trace().spans();
      out.insert(out.end(), s.begin(), s.end());
    }
    if (replicas_[k] != nullptr) {
      const std::vector<TraceSpan> s = replicas_[k]->trace().spans();
      out.insert(out.end(), s.begin(), s.end());
    }
  }
  // Group each causal tree contiguously; stable so per-ring recording
  // order breaks the remaining ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
                     if (a.shard != b.shard) return a.shard < b.shard;
                     if (a.stage != b.stage) return a.stage < b.stage;
                     return a.seq < b.seq;
                   });
  return out;
}

std::uint64_t BrokerFleet::trace_recorded() const {
  std::uint64_t total = trace_.recorded();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] != nullptr) total += shards_[k]->trace().recorded();
    if (replicas_[k] != nullptr) total += replicas_[k]->trace().recorded();
  }
  return total;
}

std::uint64_t BrokerFleet::trace_dropped() const {
  std::uint64_t total = trace_.dropped();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] != nullptr) total += shards_[k]->trace().dropped();
    if (replicas_[k] != nullptr) total += replicas_[k]->trace().dropped();
  }
  return total;
}

std::vector<const Histogram*> BrokerFleet::shard_publish_histograms() const {
  std::vector<const Histogram*> out(shards_.size(), nullptr);
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (shards_[k] != nullptr) out[k] = h_shard_publish_[k];
  return out;
}

Broker& BrokerFleet::shard_for_fault_injection(std::size_t k) {
  if (shards_[k] == nullptr)
    throw std::logic_error("BrokerFleet: shard " + std::to_string(k) +
                           " is down");
  return *shards_[k];
}

MetricsSnapshot FleetScrape(const BrokerFleet& fleet, bool include_runtime) {
  MetricsSnapshot snap = fleet.metrics().scrape(include_runtime);
  for (std::size_t k = 0; k < fleet.num_shards(); ++k) {
    if (!fleet.shard_alive(k)) continue;
    snap.merge_labeled(fleet.shard(k).metrics().scrape(include_runtime),
                       "shard", std::to_string(k));
  }
  return snap;
}

std::vector<ShardAuditSample> CollectShardAudit(const BrokerFleet& fleet) {
  std::vector<ShardAuditSample> out;
  out.reserve(fleet.num_shards());
  for (std::size_t k = 0; k < fleet.num_shards(); ++k) {
    if (!fleet.shard_alive(k)) continue;
    const Broker& b = fleet.shard(k);
    out.push_back({static_cast<std::int32_t>(k), b.seq(), fleet.shard_seq(k),
                   b.state_digest()});
  }
  return out;
}

// ----------------------------------------------------------- FleetOracle

FleetOracle::FleetOracle(Workload initial, const PublicationModel& pub,
                         const Graph& network, const BrokerOptions& options,
                         Clock* clock)
    : broker_(std::move(initial), pub, network, options, clock) {}

void FleetOracle::apply(const JournalRecord& rec) {
  const bool is_publish = rec.cmd.type == BrokerCommandType::kPublish;
  const PublishOutcome out = broker_.apply_with_outcome(rec);
  if (is_publish) {
    chain_ = FleetChainFold(chain_, rec.seq, out.interested_set);
    last_ = out.interested_set;
  }
}

std::uint64_t FleetOracle::state_digest() const {
  return FleetStateDigest(broker_.seq(), broker_.workload(), chain_);
}

}  // namespace pubsub
