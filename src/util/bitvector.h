// Word-packed dynamic bit-vector.
//
// Subscriber membership vectors s(a) (paper §4.1) are bit-vectors over the
// subscriber population.  The expected-waste distance reduces to two
// "and-not + popcount" passes, so those kernels are the hot path of every
// clustering algorithm in src/core.  This class provides exactly the
// operations the clustering layer needs, on 64-bit words.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pubsub {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i) { words_[i / kWordBits] |= Mask(i); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~Mask(i); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void clear_all();

  // Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  // In-place logical operations; operands must have equal size.
  BitVector& operator|=(const BitVector& o);
  BitVector& operator&=(const BitVector& o);
  BitVector& operator^=(const BitVector& o);
  // this &= ~o
  BitVector& and_not_assign(const BitVector& o);

  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  // |this \ o| — the expected-waste kernel: count of bits set here but not
  // in o, computed without materializing a temporary.
  std::size_t count_and_not(const BitVector& o) const;
  // |this \ o| and |o \ this| together, in ONE pass over the words — the
  // fused expected-waste kernel (each word pair is loaded once and both
  // AND-NOT popcounts accumulated), half the memory traffic of two
  // count_and_not calls.  The counts are bit-identical to the two-call
  // form.
  void count_diffs(const BitVector& o, std::size_t* this_not_o,
                   std::size_t* o_not_this) const;
  // |this ∩ o|
  std::size_t count_and(const BitVector& o) const;
  // |this ∪ o|
  std::size_t count_or(const BitVector& o) const;

  // True iff every bit set here is also set in o.
  bool is_subset_of(const BitVector& o) const;
  bool intersects(const BitVector& o) const;

  // Invoke f(i) for every set bit, in increasing order.  Templated so the
  // callback inlines into the word loop — this runs on the publish hot path.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f(wi * kWordBits + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }
  std::vector<std::size_t> set_bits() const;

  // Raw 64-bit words (bit i of the vector is bit i%64 of word i/64).  Exposed
  // so hot paths can run fused word kernels (AND-NOT set difference, popcount
  // of AND) against membership vectors without per-bit calls.
  std::span<const std::uint64_t> words() const { return words_; }
  static constexpr std::size_t word_bits() { return kWordBits; }

  // FNV-1a over the words; used to merge identical membership vectors into
  // hyper-cells (paper §4.1 "Implementation Notes").
  std::size_t hash() const;

  // "1011…" (bit 0 first), for diagnostics.
  std::string to_string() const;

 private:
  static constexpr std::size_t kWordBits = 64;
  static std::uint64_t Mask(std::size_t i) {
    return std::uint64_t{1} << (i % kWordBits);
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVectorHash {
  std::size_t operator()(const BitVector& v) const { return v.hash(); }
};

}  // namespace pubsub
