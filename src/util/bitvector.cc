#include "util/bitvector.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pubsub {

void BitVector::clear_all() {
  std::fill(words_.begin(), words_.end(), 0);
}

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool BitVector::any() const {
  for (std::uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

BitVector& BitVector::operator|=(const BitVector& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVector& BitVector::and_not_assign(const BitVector& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

std::size_t BitVector::count_and_not(const BitVector& o) const {
  assert(nbits_ == o.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    n += std::popcount(words_[i] & ~o.words_[i]);
  return n;
}

void BitVector::count_diffs(const BitVector& o, std::size_t* this_not_o,
                            std::size_t* o_not_this) const {
  assert(nbits_ == o.nbits_);
  std::size_t a = 0, b = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t w = words_[i];
    const std::uint64_t v = o.words_[i];
    a += std::popcount(w & ~v);
    b += std::popcount(v & ~w);
  }
  *this_not_o = a;
  *o_not_this = b;
}

std::size_t BitVector::count_and(const BitVector& o) const {
  assert(nbits_ == o.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    n += std::popcount(words_[i] & o.words_[i]);
  return n;
}

std::size_t BitVector::count_or(const BitVector& o) const {
  assert(nbits_ == o.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    n += std::popcount(words_[i] | o.words_[i]);
  return n;
}

bool BitVector::is_subset_of(const BitVector& o) const {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  return true;
}

bool BitVector::intersects(const BitVector& o) const {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & o.words_[i]) != 0) return true;
  return false;
}

std::vector<std::size_t> BitVector::set_bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t BitVector::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= nbits_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

}  // namespace pubsub
