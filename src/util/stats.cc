#include "util/stats.h"

#include <sstream>

namespace pubsub {

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

}  // namespace pubsub
