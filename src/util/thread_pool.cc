#include "util/thread_pool.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/flags.h"

namespace pubsub {
namespace {

// True on threads currently executing a pool chunk; parallel_for from such
// a thread runs inline instead of deadlocking on its own pool.
thread_local bool t_in_parallel_region = false;

// Process-wide pool telemetry (MetricsRegistry::Default()).  All kRuntime:
// chunk counts and region times depend on the thread count and the
// scheduler, so they are excluded from the deterministic scrape.
struct PoolMetrics {
  Counter* regions;
  Counter* chunks;
  Counter* inline_runs;
  Gauge* threads;
  Gauge* last_chunks;
  Histogram* region_ms;

  static const PoolMetrics& get() {
    static const PoolMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      PoolMetrics pm;
      pm.regions = r.counter("threadpool_parallel_for_total",
                             "parallel regions dispatched to workers",
                             MetricStability::kRuntime);
      pm.chunks = r.counter("threadpool_chunks_total",
                            "chunks executed across all parallel regions",
                            MetricStability::kRuntime);
      pm.inline_runs = r.counter(
          "threadpool_inline_total",
          "parallel_for calls that ran inline (serial pool, small n, or "
          "nested region)",
          MetricStability::kRuntime);
      pm.threads = r.gauge("threadpool_threads",
                           "lanes in the global pool (callers + workers)",
                           MetricStability::kRuntime);
      pm.last_chunks = r.gauge("threadpool_last_chunks",
                               "chunks of the most recent parallel region",
                               MetricStability::kRuntime);
      pm.region_ms = r.histogram(
          "threadpool_region_ms", "wall time per dispatched parallel region",
          ExponentialBuckets(0.001, 4.0, 12), MetricStability::kRuntime);
      return pm;
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads_ = std::max(1, num_threads);
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers() {
  // No job can be in flight here (only the ctor and set_num_threads call
  // this, from the job-publishing thread), so generation_ is stable.
  const std::uint64_t spawn_generation = generation_;
  for (int lane = 1; lane < num_threads_; ++lane)
    workers_.emplace_back(
        [this, lane, spawn_generation] { worker_loop(lane, spawn_generation); });
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  shutdown_ = false;
}

void ThreadPool::set_num_threads(int num_threads) {
  num_threads = std::max(1, num_threads);
  if (num_threads == num_threads_) return;
  stop_workers();
  num_threads_ = num_threads;
  start_workers();
}

void ThreadPool::worker_loop(int lane, std::uint64_t spawn_generation) {
  std::uint64_t seen = spawn_generation;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* body;
    std::size_t n;
    std::size_t chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
      n = job_n_;
      chunk = job_chunk_;
    }
    // Fixed sharding: lane t owns [t*chunk, (t+1)*chunk) ∩ [0, n).  Lanes
    // past the job's chunk count (grain left fewer chunks than lanes) get
    // an empty range and only handshake on pending_.
    const std::size_t begin = std::min(n, static_cast<std::size_t>(lane) * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) {
      t_in_parallel_region = true;
      (*body)(begin, end);
      t_in_parallel_region = false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_parallel, std::size_t grain) {
  if (n == 0) return;
  // Task granularity: never hand a lane fewer than `grain` indices.  The
  // lane count (and thus the chunk boundaries) stays a pure function of
  // (n, num_threads, grain), preserving determinism.
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t T = static_cast<std::size_t>(num_threads_);
  const std::size_t lanes = std::min(T, (n + g - 1) / g);
  if (num_threads_ <= 1 || n < std::max<std::size_t>(min_parallel, 2) ||
      lanes <= 1 || t_in_parallel_region) {
    Inc(PoolMetrics::get().inline_runs);
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + lanes - 1) / lanes;
  const PoolMetrics& pm = PoolMetrics::get();
  StopwatchClock region_clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_n_ = n;
    job_chunk_ = chunk;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is lane 0.
  t_in_parallel_region = true;
  body(0, std::min(n, chunk));
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  body_ = nullptr;
  lock.unlock();

  const std::size_t used = std::min(lanes, (n + chunk - 1) / chunk);
  Inc(pm.regions);
  Inc(pm.chunks, used);
  Set(pm.last_chunks, static_cast<double>(used));
  Set(pm.threads, static_cast<double>(num_threads_));
  Observe(pm.region_ms, region_clock.elapsed_ms());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(1);
  return pool;
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t min_parallel, std::size_t grain) {
  ThreadPool::global().parallel_for(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      min_parallel, grain);
}

void ParallelForChunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& body,
                       std::size_t min_parallel, std::size_t grain) {
  ThreadPool::global().parallel_for(n, body, min_parallel, grain);
}

int ConfigureThreadsFromFlags(const Flags& flags) {
  int n = static_cast<int>(flags.get_int("threads", 1));
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  ThreadPool::global().set_num_threads(n);
  return n;
}

}  // namespace pubsub
