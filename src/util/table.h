// Fixed-width ASCII table printer.  The bench binaries print the same rows
// the paper's tables/figures report; this keeps their output aligned and
// grep-friendly without pulling in a formatting library.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pubsub {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Cells are stringified by the add_* helpers; a row must match the header
  // width when printed (enforced at print time).
  void add_row(std::vector<std::string> cells);

  // Convenience for building rows cell-by-cell.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable& t) : table_(t) {}
    // Commits the row; add_row throws on width mismatch, so this destructor
    // is deliberately allowed to propagate.
    ~RowBuilder() noexcept(false);
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(long long v);
    RowBuilder& cell(std::size_t v) { return cell(static_cast<long long>(v)); }
    RowBuilder& cell(int v) { return cell(static_cast<long long>(v)); }
    // Fixed-point with `digits` decimals.
    RowBuilder& cell(double v, int digits = 1);

   private:
    TextTable& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pubsub
