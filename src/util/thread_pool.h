// Deterministic fork-join parallelism for the clustering hot paths.
//
// The pool is intentionally work-stealing-free: `parallel_for` splits the
// index range [0, n) into `num_threads` contiguous, near-equal chunks with
// boundaries that are a pure function of (n, num_threads), and worker t
// always executes chunk t.  Callers obtain determinism by construction:
// every parallel region in this codebase either writes to per-index slots
// (pure map) or produces per-shard partial results that the caller merges
// in shard order (ordered reduction).  No atomics on floats, no
// order-dependent shared state — so results are bit-identical for any
// thread count, and every figure/table reproduction stays exact.
//
// The global pool defaults to 1 thread (fully serial).  Binaries opt in
// via --threads=N (ConfigureThreadsFromFlags) or set_num_threads().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pubsub {

class Flags;

class ThreadPool {
 public:
  // A pool with `num_threads` total lanes (the calling thread counts as
  // lane 0; num_threads-1 workers are spawned).  num_threads < 1 is
  // treated as 1.
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Joins existing workers and respawns with the new count.  Must not be
  // called from inside a parallel region.
  void set_num_threads(int num_threads);

  // Invokes body(begin, end) on disjoint chunks covering [0, n); blocks
  // until all chunks finish.  Chunk boundaries depend only on n,
  // num_threads() and grain.  Runs inline (single chunk) when the pool is
  // serial, n < min_parallel, the grain leaves a single chunk, or the
  // caller is itself a pool worker (no nesting).
  //
  // `grain` is the minimum indices per chunk: small jobs use
  // ceil(n / grain) lanes instead of all of them, so fork/join overhead
  // cannot dwarf the work (the task-granularity fix — a 120-index job at 8
  // threads used to pay 8 wakeups for 15-index chunks).  Idle lanes still
  // handshake on the generation, but run no body.
  //
  // The body must only write state disjoint per index, or per-chunk state
  // merged by the caller afterwards; it must not throw.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_parallel = 2, std::size_t grain = 1);

  // Process-wide pool used by the clustering/matching hot paths.
  static ThreadPool& global();

 private:
  // `spawn_generation` is the value of generation_ when the worker was
  // created; the worker only runs jobs published after it (a worker
  // spawned by a resize must not mistake an old generation for new work).
  void worker_loop(int lane, std::uint64_t spawn_generation);
  void start_workers();
  void stop_workers();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for completion
  std::uint64_t generation_ = 0;      // bumped once per parallel_for
  int pending_ = 0;                   // worker chunks not yet finished
  bool shutdown_ = false;
  // Job state for the current generation (guarded by mu_ for publication).
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 0;
};

// Applies body(i) for each i in [0, n) via ThreadPool::global().
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t min_parallel = 2, std::size_t grain = 1);

// Chunked flavor: body(begin, end) per shard, via ThreadPool::global().
void ParallelForChunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& body,
                       std::size_t min_parallel = 2, std::size_t grain = 1);

// Reads --threads=N (N >= 1; 0 means "all hardware threads") and resizes
// the global pool accordingly.  Returns the resulting thread count.
// Binaries that accept the flag call this once at startup.
int ConfigureThreadsFromFlags(const Flags& flags);

}  // namespace pubsub
