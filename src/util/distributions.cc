#include "util/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pubsub {

Zipf::Zipf(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), s_);
    cdf_[r - 1] = acc;
  }
  norm_ = acc;
  for (double& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;
}

double Zipf::pmf(std::size_t rank) const {
  assert(rank >= 1 && rank <= cdf_.size());
  return (1.0 / std::pow(static_cast<double>(rank), s_)) / norm_;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

BoundedPareto::BoundedPareto(double x_m, double alpha, double cap)
    : x_m_(x_m), alpha_(alpha), cap_(cap) {
  if (x_m <= 0 || alpha <= 0 || cap < x_m)
    throw std::invalid_argument("BoundedPareto: invalid parameters");
}

BoundedPareto BoundedPareto::FromMean(double mean, double alpha, double cap) {
  if (mean <= 0) throw std::invalid_argument("BoundedPareto: mean must be positive");
  double x_m;
  if (alpha > 1.0) {
    // E[X] = alpha * x_m / (alpha - 1) for the untruncated Pareto.
    x_m = mean * (alpha - 1.0) / alpha;
  } else {
    // Untruncated mean diverges; pick x_m so the *truncated* mean is close
    // to the target by bisection.
    double lo = 1e-9, hi = std::min(mean, cap);
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (BoundedPareto(mid, alpha, cap).mean() < mean)
        lo = mid;
      else
        hi = mid;
    }
    x_m = 0.5 * (lo + hi);
  }
  x_m = std::min(x_m, cap);
  return BoundedPareto(x_m, alpha, cap);
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse-CDF of the Pareto truncated to [x_m, cap]:
  // F(x) = (1 - (x_m/x)^a) / (1 - (x_m/cap)^a).
  const double tail_at_cap = std::pow(x_m_ / cap_, alpha_);
  const double u = rng.uniform() * (1.0 - tail_at_cap);
  return x_m_ / std::pow(1.0 - u, 1.0 / alpha_);
}

double BoundedPareto::mean() const {
  // E[X | X <= cap] for Pareto(x_m, alpha) truncated at cap.
  const double t = std::pow(x_m_ / cap_, alpha_);
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return x_m_ * std::log(cap_ / x_m_) / (1.0 - t);
  }
  const double num = alpha_ * x_m_ / (alpha_ - 1.0) *
                     (1.0 - std::pow(x_m_ / cap_, alpha_ - 1.0));
  return num / (1.0 - t);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalCdf(double x, double mu, double sigma) {
  if (sigma <= 0) return x >= mu ? 1.0 : 0.0;
  return NormalCdf((x - mu) / sigma);
}

GaussianMixture1D::GaussianMixture1D(std::vector<GaussianMode> modes)
    : modes_(std::move(modes)) {
  for (const GaussianMode& m : modes_) {
    if (m.weight < 0) throw std::invalid_argument("mixture: negative weight");
    total_weight_ += m.weight;
  }
  if (modes_.empty() || total_weight_ <= 0)
    throw std::invalid_argument("mixture: no usable modes");
}

GaussianMixture1D GaussianMixture1D::Single(double mean, double stddev) {
  return GaussianMixture1D({GaussianMode{1.0, mean, stddev}});
}

double GaussianMixture1D::sample(Rng& rng) const {
  double u = rng.uniform(0.0, total_weight_);
  for (const GaussianMode& m : modes_) {
    if (u < m.weight) return rng.normal(m.mean, m.stddev);
    u -= m.weight;
  }
  const GaussianMode& last = modes_.back();
  return rng.normal(last.mean, last.stddev);
}

double GaussianMixture1D::interval_mass(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  double mass = 0.0;
  for (const GaussianMode& m : modes_) {
    mass += m.weight *
            (NormalCdf(hi, m.mean, m.stddev) - NormalCdf(lo, m.mean, m.stddev));
  }
  return mass / total_weight_;
}

double UniformInt1D::interval_mass(double lo, double hi) const {
  // Count integers v in {0..n-1} with lo < v <= hi.
  const double lo_c = std::max(lo, -1.0);
  const double hi_c = std::min(hi, static_cast<double>(n_ - 1));
  if (hi_c <= lo_c) return 0.0;
  const long first = static_cast<long>(std::floor(lo_c)) + 1;
  const long last = static_cast<long>(std::floor(hi_c));
  const long count = std::max(0l, last - first + 1);
  return static_cast<double>(count) / n_;
}

Discrete::Discrete(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("Discrete: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Discrete: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Discrete: zero total weight");
  pmf_.reserve(weights.size());
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    pmf_.push_back(w / total);
    acc += w / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

std::size_t Discrete::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Discrete::pmf(std::size_t i) const {
  assert(i < pmf_.size());
  return pmf_[i];
}

}  // namespace pubsub
