// Wall-clock stopwatch for the runtime measurements of Figures 10 and 11.
#pragma once

#include <chrono>

namespace pubsub {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pubsub
