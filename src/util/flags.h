// Minimal --key=value command-line parsing for the bench and example
// binaries.  Unrecognized positional arguments are collected; "--help"
// handling is left to the caller.
//
// Typed getters reject malformed values (std::invalid_argument naming the
// flag) rather than truncating or aborting mid-parse.  A mistyped flag
// *name* would otherwise be silently ignored — the value map accepts any
// key — so binaries with a fixed flag set should call require_known() with
// it once after construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pubsub {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  // Flags given on the command line that are not in `known` (sorted, one
  // entry per flag).  require_known throws std::invalid_argument listing
  // them — call it with the binary's full flag set so a typo like
  // --thread=8 fails loudly instead of silently running single-threaded.
  std::vector<std::string> unknown_flags(const std::vector<std::string>& known) const;
  void require_known(const std::vector<std::string>& known) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pubsub
