// Minimal --key=value command-line parsing for the bench and example
// binaries.  Unrecognized positional arguments are collected; "--help"
// handling is left to the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pubsub {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pubsub
