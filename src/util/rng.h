// Deterministic random number generation.
//
// Every stochastic component in the library (topology generation, workload
// synthesis, approximate pairwise grouping) draws from an explicitly-passed
// Rng so that experiments are reproducible bit-for-bit given a seed, and so
// that sub-streams can be split off for independent components without
// coupling their sequences.
#pragma once

#include <cstdint>
#include <random>

namespace pubsub {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  // Derive an independent generator; mixing the salt through splitmix64
  // keeps child streams decorrelated even for consecutive salts.
  Rng split(std::uint64_t salt) const {
    std::uint64_t z = seed_mix_ + salt + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  std::mt19937_64& engine() { return engine_; }

 private:
  explicit Rng(std::uint64_t seed, int) : engine_(seed) {}

  std::mt19937_64 engine_;
  std::uint64_t seed_mix_ = engine_();
};

}  // namespace pubsub
