#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pubsub {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

TextTable::RowBuilder::~RowBuilder() noexcept(false) {
  table_.add_row(std::move(cells_));
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  cells_.push_back(os.str());
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    os << '\n';
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace pubsub
