#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace pubsub {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stoll(it->second);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("Flags: bad boolean for --" + key + ": " + v);
}

}  // namespace pubsub
