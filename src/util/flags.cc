#include "util/flags.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace pubsub {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: bad integer for --" + key + ": '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: bad number for --" + key + ": '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("Flags: bad boolean for --" + key + ": " + v);
}

std::vector<std::string> Flags::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      unknown.push_back(key);
  }
  return unknown;  // values_ is ordered, so this is sorted
}

void Flags::require_known(const std::vector<std::string>& known) const {
  const std::vector<std::string> unknown = unknown_flags(known);
  if (unknown.empty()) return;
  std::string msg = "Flags: unknown flag";
  if (unknown.size() > 1) msg += 's';
  for (const auto& key : unknown) msg += " --" + key;
  throw std::invalid_argument(msg);
}

}  // namespace pubsub
