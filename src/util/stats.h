// Streaming summary statistics (Welford) used by the simulator to aggregate
// per-event delivery costs and by the benches to report sweep results.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

namespace pubsub {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pubsub
