// Compiled-in fail-point registry (robustness tentpole).
//
// A fail point is a named site in a durability code path — journal append,
// snapshot write, record apply — where a test, the chaos driver, or an
// operator (via `pubsub_cli --failpoints` / the PUBSUB_FAILPOINTS env var)
// can deterministically inject a failure the code must survive.  The
// registry is process-global and off by default: an unconfigured process
// pays one relaxed atomic load per site evaluation.
//
// Spec grammar (comma- or semicolon-separated list):
//
//   site=ACTION[:ARG][*COUNT][^SKIP][+SEQ][@PROB]
//
//   ACTION  off    — disarm the site (useful to override an earlier entry)
//           error  — report failure: a flush site returns false (fsync
//                    error), a write site performs a short write of ARG
//                    bytes (default 0)
//           crash  — throw InjectedCrash before the operation (simulated
//                    process death; nothing reaches the sink)
//           torn   — write the first ARG bytes of the payload, then throw
//                    InjectedCrash (torn tail: a crash mid-append)
//           delay  — add ARG ms of synthetic latency at the site (SLO
//                    drills: the fleet's slow-shard watchdog test)
//   ARG     non-negative integer parameter of the action (byte count, or
//           milliseconds for delay)
//   COUNT   fire at most COUNT times, then disarm (default: unlimited)
//   SKIP    let the first SKIP matching evaluations pass before arming
//           (deterministic "fail on the Nth append" scheduling)
//   SEQ     stay dormant until the instrumented component reports sequence
//           number SEQ or later via advance_sequence() (the broker reports
//           each command's seq).  Dormant evaluations consume neither SKIP
//           nor COUNT, so a fault can target e.g. the organic checkpoint a
//           schedule knows will run at a given command.
//   PROB    fire with probability PROB per evaluation (default 1), drawn
//           from the registry's seeded generator — randomized but
//           reproducible chaos runs
//
// Examples:
//   journal.flush=error*1            fail exactly the next fsync
//   journal.write=torn:7^3           3 appends succeed, the 4th tears
//                                    after 7 bytes
//   snapshot.write=crash*1+40        crash the first snapshot write at or
//                                    after broker seq 40
//   broker.publish.post_journal=crash@0.01   1% crash after the WAL append
//
// Site names follow `component.operation[.detail]` (see DESIGN.md §9);
// KnownSites() lists every site compiled into the tree so docs, `pubsub_cli
// help`, and the chaos driver never drift from the code.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace pubsub {

// Simulated process death, thrown at a firing crash/torn fail point.  The
// intended handling is a kill/recover cycle: discard the broker, re-read
// snapshot + journal, resume.  Deliberately NOT derived from
// std::runtime_error so ordinary error handling does not swallow it.
class InjectedCrash : public std::exception {
 public:
  explicit InjectedCrash(std::string site)
      : site_(std::move(site)), what_("injected crash at fail point " + site_) {}
  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& site() const { return site_; }

 private:
  std::string site_;
  std::string what_;
};

enum class FailAction { kOff, kError, kCrash, kTorn, kDelay };

// Result of evaluating a site: what to do, and the action's byte argument.
struct FailPointDecision {
  FailAction action = FailAction::kOff;
  std::size_t arg = 0;
};

struct FailPointSite {
  const char* name;
  const char* description;
};

class FailPoints {
 public:
  // Process-global registry (the CLI and chaos driver configure one set of
  // faults per process, mirroring how an operator flag works).
  static FailPoints& Instance();

  // Parse and arm `spec` (grammar above), merging over the current
  // configuration.  Unknown sites are accepted — new call sites may exist
  // in branches — but a malformed entry throws std::invalid_argument.
  void configure(const std::string& spec);
  // Arm from PUBSUB_FAILPOINTS / PUBSUB_FAILPOINTS_SEED if set.
  void configure_from_env();
  // Disarm everything and zero hit/fire accounting.
  void clear();
  // Seed for the @PROB draws (splitmix64); default 0.
  void set_seed(std::uint64_t seed);

  // Evaluate a site: called by the instrumented code on every pass through
  // the seam.  Returns kOff unless the site is armed and due.
  FailPointDecision eval(const std::string& site);

  // Report the instrumented component's current sequence number; +SEQ
  // entries stay dormant while the last reported value is below theirs.
  // A plain store, not a running max: recovery replays from an older seq,
  // and the window should track the live position.
  void advance_sequence(std::uint64_t seq);

  // True once configure() armed anything (fast path: one atomic load).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Accounting, for tests and the chaos report.
  std::uint64_t hits(const std::string& site) const;   // evaluations
  std::uint64_t fired(const std::string& site) const;  // non-kOff results

  // Every fail-point site compiled into the tree, sorted by name.
  static const std::vector<FailPointSite>& KnownSites();

 private:
  FailPoints();
  ~FailPoints();
  FailPoints(const FailPoints&) = delete;
  FailPoints& operator=(const FailPoints&) = delete;

  std::atomic<bool> active_{false};
  struct Impl;
  Impl* impl_;
};

}  // namespace pubsub
