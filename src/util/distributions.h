// Probability distributions used by the workload generators (paper §3, §5.1):
// Zipf-like ranked popularity, bounded Pareto interval lengths, and
// one-dimensional Gaussian mixtures with closed-form CDFs (needed to compute
// exact publication probabilities of grid cells, §4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace pubsub {

// Zipf distribution over ranks 1..n with exponent `s`:
// P(rank = r) ∝ 1 / r^s.  Sampling is O(log n) by inverting the cumulative
// table built at construction.
class Zipf {
 public:
  Zipf(std::size_t n, double s = 1.0);

  std::size_t n() const { return cdf_.size(); }
  // Probability of rank r (1-based).
  double pmf(std::size_t rank) const;
  // Sample a rank in [1, n].
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
  double s_;
  double norm_;
};

// Pareto distribution with scale x_m and shape alpha, truncated to
// [x_m, cap].  The paper calls for "a Pareto-like distribution with a given
// mean" for interval lengths; `FromMean` solves for x_m given alpha > 1, or
// uses the truncated mean when alpha <= 1.
class BoundedPareto {
 public:
  BoundedPareto(double x_m, double alpha, double cap);
  static BoundedPareto FromMean(double mean, double alpha, double cap);

  double x_m() const { return x_m_; }
  double alpha() const { return alpha_; }
  double cap() const { return cap_; }

  double sample(Rng& rng) const;
  double mean() const;

 private:
  double x_m_;
  double alpha_;
  double cap_;
};

// Standard normal CDF.
double NormalCdf(double x);
// CDF of N(mu, sigma) at x; sigma == 0 degenerates to a step at mu.
double NormalCdf(double x, double mu, double sigma);

// One mode of a 1-D Gaussian mixture.
struct GaussianMode {
  double weight = 1.0;
  double mean = 0.0;
  double stddev = 1.0;
};

// 1-D Gaussian mixture: sampling plus closed-form probability mass of an
// interval (lo, hi].  Publication distributions in the paper are products of
// independent per-dimension mixtures, so per-cell publication probabilities
// multiply these masses across dimensions.
class GaussianMixture1D {
 public:
  GaussianMixture1D() = default;
  explicit GaussianMixture1D(std::vector<GaussianMode> modes);
  static GaussianMixture1D Single(double mean, double stddev);

  const std::vector<GaussianMode>& modes() const { return modes_; }

  double sample(Rng& rng) const;
  // P(lo < X <= hi).
  double interval_mass(double lo, double hi) const;

 private:
  std::vector<GaussianMode> modes_;
  double total_weight_ = 0.0;
};

// Uniform distribution over the integers {0, 1, ..., n-1} with closed-form
// interval mass, used for the §3 "uniform" publication model.
class UniformInt1D {
 public:
  explicit UniformInt1D(int n) : n_(n) {}
  int sample(Rng& rng) const { return static_cast<int>(rng.uniform_int(0, n_ - 1)); }
  // P(lo < X <= hi) where X is uniform on {0..n-1}.
  double interval_mass(double lo, double hi) const;

 private:
  int n_;
};

// Weighted discrete choice over {0..n-1}; weights need not be normalized.
class Discrete {
 public:
  explicit Discrete(std::vector<double> weights);
  std::size_t sample(Rng& rng) const;
  double pmf(std::size_t i) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace pubsub
