// Declarative command/flag table for tools/pubsub_cli.
//
// One table drives three consumers that used to drift independently:
//   * `pubsub_cli help` prints CliUsageText() verbatim;
//   * each subcommand validates its flags with CliFlagNames(command)
//     (unknown-flag typos are hard usage errors);
//   * docs/CLI.md embeds the same usage text in a fenced code block, and
//     tests/test_cli_docs.cc diffs the two byte-for-byte.
// Adding a flag therefore means editing exactly one table — forgetting the
// doc or the validator is a test failure, not a silent gap.
#pragma once

#include <string>
#include <vector>

namespace pubsub {

struct CliFlag {
  std::string name;         // without the leading "--"
  std::string value;        // value hint shown in help ("PATH", "N", ...)
  std::string description;  // one line
};

struct CliCommand {
  std::string name;
  std::string summary;             // one line for the command index
  std::vector<CliFlag> flags;      // full accepted set, common flags included
};

// Every subcommand, in help order.
const std::vector<CliCommand>& CliCommands();

// nullptr if `name` is not a subcommand.
const CliCommand* FindCliCommand(const std::string& name);

// Accepted flag names for Flags::require_known.  Throws std::out_of_range
// for an unknown command (a programming error, not a user error).
std::vector<std::string> CliFlagNames(const std::string& command);

// The full help text: command index, then one section per command listing
// each flag with its value hint and description.  `pubsub_cli help` prints
// exactly this; docs/CLI.md embeds exactly this.
std::string CliUsageText();

}  // namespace pubsub
