#include "util/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace pubsub {
namespace {

// splitmix64: tiny, seedable, and plenty for fault scheduling.
std::uint64_t NextRandom(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FailAction ActionByName(const std::string& name, const std::string& entry) {
  if (name == "off") return FailAction::kOff;
  if (name == "error") return FailAction::kError;
  if (name == "crash") return FailAction::kCrash;
  if (name == "torn") return FailAction::kTorn;
  if (name == "delay") return FailAction::kDelay;
  throw std::invalid_argument("failpoint '" + entry + "': unknown action '" +
                              name + "' (want off|error|crash|torn|delay)");
}

std::uint64_t ParseUnsigned(const std::string& tok, const std::string& entry) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("failpoint '" + entry + "': bad integer '" +
                                tok + "'");
  }
}

double ParseProbability(const std::string& tok, const std::string& entry) {
  try {
    std::size_t pos = 0;
    const double p = std::stod(tok, &pos);
    if (pos != tok.size() || p < 0.0 || p > 1.0)
      throw std::invalid_argument(tok);
    return p;
  } catch (const std::exception&) {
    throw std::invalid_argument("failpoint '" + entry +
                                "': bad probability '" + tok + "'");
  }
}

}  // namespace

struct FailPoints::Impl {
  struct Entry {
    FailAction action = FailAction::kOff;
    std::size_t arg = 0;
    std::uint64_t remaining = UINT64_MAX;  // *COUNT budget
    std::uint64_t skip = 0;                // ^SKIP evaluations to let pass
    std::uint64_t arm_at_seq = 0;          // +SEQ dormancy gate (0 = armed)
    double prob = 1.0;                     // @PROB per evaluation
  };
  mutable std::mutex mu;
  std::map<std::string, Entry> entries;
  std::map<std::string, std::uint64_t> hit_count;
  std::map<std::string, std::uint64_t> fire_count;
  std::uint64_t rng_state = 0;
  std::atomic<std::uint64_t> current_seq{0};
};

FailPoints::FailPoints() : impl_(new Impl) {}
FailPoints::~FailPoints() { delete impl_; }

FailPoints& FailPoints::Instance() {
  static FailPoints instance;
  return instance;
}

void FailPoints::configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace.
    const std::size_t b = entry.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    entry = entry.substr(b, entry.find_last_not_of(" \t") - b + 1);

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("failpoint '" + entry +
                                  "': want site=action[:arg][*count][^skip][+seq][@prob]");
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    Impl::Entry e;
    // Peel decorations from the end; each may appear at most once.
    const auto peel = [&rest, &entry](char tag) -> std::string {
      const std::size_t pos = rest.find_last_of(tag);
      if (pos == std::string::npos) return "";
      std::string tok = rest.substr(pos + 1);
      if (tok.empty())
        throw std::invalid_argument("failpoint '" + entry + "': empty '" +
                                    std::string(1, tag) + "' argument");
      rest.erase(pos);
      return tok;
    };
    // Peel order is the reverse of the grammar order.  '@' before '+' so a
    // probability like 1e+0 keeps its exponent sign.
    const std::string prob_tok = peel('@');
    const std::string seq_tok = peel('+');
    const std::string skip_tok = peel('^');
    const std::string count_tok = peel('*');
    const std::string arg_tok = peel(':');
    if (!prob_tok.empty()) e.prob = ParseProbability(prob_tok, entry);
    if (!seq_tok.empty()) e.arm_at_seq = ParseUnsigned(seq_tok, entry);
    if (!skip_tok.empty()) e.skip = ParseUnsigned(skip_tok, entry);
    if (!count_tok.empty()) e.remaining = ParseUnsigned(count_tok, entry);
    if (!arg_tok.empty())
      e.arg = static_cast<std::size_t>(ParseUnsigned(arg_tok, entry));
    e.action = ActionByName(rest, entry);

    if (e.action == FailAction::kOff)
      impl_->entries.erase(site);
    else
      impl_->entries[site] = e;
  }
  active_.store(!impl_->entries.empty(), std::memory_order_relaxed);
}

void FailPoints::configure_from_env() {
  const char* seed = std::getenv("PUBSUB_FAILPOINTS_SEED");
  if (seed != nullptr) set_seed(ParseUnsigned(seed, "PUBSUB_FAILPOINTS_SEED"));
  const char* spec = std::getenv("PUBSUB_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void FailPoints::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->entries.clear();
  impl_->hit_count.clear();
  impl_->fire_count.clear();
  impl_->current_seq.store(0, std::memory_order_relaxed);
  active_.store(false, std::memory_order_relaxed);
}

void FailPoints::advance_sequence(std::uint64_t seq) {
  impl_->current_seq.store(seq, std::memory_order_relaxed);
}

void FailPoints::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rng_state = seed;
}

FailPointDecision FailPoints::eval(const std::string& site) {
  if (!active()) return {};
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->entries.find(site);
  if (it == impl_->entries.end()) return {};
  ++impl_->hit_count[site];
  Impl::Entry& e = it->second;
  // Dormant until the component reaches the +SEQ position; dormant
  // evaluations consume neither skip nor count budget.
  if (e.arm_at_seq > 0 &&
      impl_->current_seq.load(std::memory_order_relaxed) < e.arm_at_seq)
    return {};
  if (e.skip > 0) {
    --e.skip;
    return {};
  }
  if (e.remaining == 0) return {};
  if (e.prob < 1.0) {
    const double draw = static_cast<double>(NextRandom(impl_->rng_state) >> 11) *
                        0x1.0p-53;  // uniform [0, 1)
    if (draw >= e.prob) return {};
  }
  if (e.remaining != UINT64_MAX) --e.remaining;
  ++impl_->fire_count[site];
  return {e.action, e.arg};
}

std::uint64_t FailPoints::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->hit_count.find(site);
  return it == impl_->hit_count.end() ? 0 : it->second;
}

std::uint64_t FailPoints::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->fire_count.find(site);
  return it == impl_->fire_count.end() ? 0 : it->second;
}

const std::vector<FailPointSite>& FailPoints::KnownSites() {
  // Sorted by name; DESIGN.md §9 documents the naming convention and
  // docs/OPERATIONS.md the recovery behaviour at each site.
  static const std::vector<FailPointSite> sites = {
      {"broker.publish.post_journal",
       "crash after the WAL append, before the state mutation"},
      {"broker.publish.pre_journal",
       "crash before the WAL append (command lost entirely)"},
      {"fleet.shard.publish",
       "delay = add ARG ms of synthetic publish latency on shard 0 (slow-"
       "shard drill for the watchdog)"},
      {"journal.flush", "journal fsync: error = flush failure"},
      {"journal.write", "journal append: torn/short/crashed record write"},
      {"promote.journal_handoff",
       "crash while a promoted standby replays the durable journal tail"},
      {"recover.replay", "crash while replaying the journal tail"},
      {"replica.apply", "crash applying a streamed record on a standby"},
      {"snapshot.flush", "snapshot fsync: error = flush failure"},
      {"snapshot.write", "snapshot serialization: torn/crashed write"},
      {"storage.flush",
       "page-file fsync: error = flush failure (capped backoff, then "
       "degraded read-only mode)"},
      {"storage.page.read",
       "page-file read: error = injected I/O error; crash = death mid-read"},
      {"storage.page.write",
       "page-file write: error = short write of ARG bytes (retried with "
       "backoff); torn = ARG bytes land then crash; crash = death pre-write"},
  };
  return sites;
}

}  // namespace pubsub
