#include "util/cli_spec.h"

#include <sstream>
#include <stdexcept>

namespace pubsub {
namespace {

std::vector<CliFlag> operator+(std::vector<CliFlag> a,
                               const std::vector<CliFlag>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

// Flags every subcommand accepts.
std::vector<CliFlag> CommonFlags() {
  return {
      {"threads", "N", "worker threads for parallel stages (0 = hardware)"},
      {"failpoints", "SPEC",
       "arm fail points, e.g. journal.flush=error*1 (see docs/OPERATIONS.md)"},
      {"failpoints-seed", "N", "seed for probabilistic (@PROB) fail points"},
  };
}

// Flags shared by the broker-hosting subcommands (snapshot, serve-replay,
// recover, stats, chaos).
std::vector<CliFlag> BrokerFlags() {
  return {
      {"groups", "K", "multicast groups (default 100)"},
      {"cells", "N", "popularity-ranked grid cells fed to clustering (6000)"},
      {"threshold", "T", "matcher waste threshold (0 = always use the group)"},
      {"refresh-churn", "F", "re-cluster after this churned fraction (0.05)"},
      {"refresh-waste", "R", "re-cluster above this window waste ratio (0.5)"},
      {"refresh-min-messages", "M",
       "minimum window messages before the waste trigger (200)"},
      {"refresh-passes", "N",
       "k-means pass budget per refresh; 0 = unlimited (resumable when set)"},
      {"refresh-visits", "N",
       "cell-visit budget per refresh, checked at pass ends (0 = unlimited)"},
      {"closure", "", "closure-accelerated assignment (grid-neighbor candidates)"},
      {"metrics-out", "PATH", "write a Prometheus text metrics dump"},
      {"metrics-json", "PATH", "write a JSON metrics dump"},
      {"metrics-deterministic-only", "",
       "restrict metric dumps to the byte-stable subset"},
  };
}

// Paged-storage flags for the subcommands that read or write snapshot
// artifacts (snapshot, serve-replay, recover, stats, chaos).
std::vector<CliFlag> StorageFlags() {
  return {
      {"storage", "mem|disk",
       "snapshot artifact backend: text file (mem) or paged page-file (disk)"},
      {"page-size", "BYTES", "page size for --storage=disk files (4096)"},
      {"buffer-pages", "N", "buffer-pool frames for --storage=disk (64)"},
  };
}

std::vector<CliFlag> ModelFlags() {
  return {
      {"modes", "1|4|9", "stock-model publication hot spots (default 1)"},
      {"regionalism", "R", "section3-model regional weight (default 0.4)"},
      {"tail", "uniform|gaussian", "section3-model tail shape"},
  };
}

std::vector<CliCommand> BuildCommands() {
  std::vector<CliCommand> cmds;

  cmds.push_back(
      {"gen-net",
       "generate a transit-stub network file",
       std::vector<CliFlag>{
           {"shape", "100|300|600|sec5", "paper topology preset (sec5)"},
           {"last_mile", "C", "extra per-subscriber last-mile cost (0)"},
           {"seed", "N", "topology seed (1)"},
           {"out", "PATH", "output network file (required)"},
       } + CommonFlags()});

  cmds.push_back(
      {"gen-workload",
       "generate a subscription workload against a network",
       std::vector<CliFlag>{
           {"net", "PATH", "network file from gen-net (required)"},
           {"model", "section3|stock", "subscription model (stock)"},
           {"subs", "N", "subscriber count (1000)"},
           {"seed", "N", "workload seed (2)"},
           {"regionalism", "R", "section3-model regional weight (0.4)"},
           {"tail", "uniform|gaussian", "section3-model tail shape"},
           {"out", "PATH", "output workload file (required)"},
       } + CommonFlags()});

  cmds.push_back(
      {"cluster",
       "cluster a workload's grid cells into multicast groups",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "workload file (required)"},
           {"algo", "forgy|kmeans|mst|pairs|approx-pairs",
            "clustering algorithm (forgy)"},
           {"groups", "K", "multicast groups (100)"},
           {"cells", "N", "grid cells fed to clustering (6000)"},
           {"seed", "N", "clustering seed (3)"},
           {"out", "PATH", "output clustering file (required)"},
       } + ModelFlags() + CommonFlags()});

  cmds.push_back(
      {"evaluate",
       "score a clustering against sampled events and the paper baselines",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "workload file (required)"},
           {"groups", "PATH", "clustering file from cluster (required)"},
           {"events", "N", "events to sample (300)"},
           {"seed", "N", "event seed (4)"},
           {"threshold", "T", "matcher waste threshold (0)"},
       } + ModelFlags() + CommonFlags()});

  cmds.push_back(
      {"snapshot",
       "bootstrap a seq-0 broker snapshot from a workload",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "workload file (required)"},
           {"out", "PATH", "output snapshot file (required)"},
       } + ModelFlags() + StorageFlags() + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"serve-replay",
       "drive a broker from a synthetic trading-day trace, journaling and "
       "checkpointing; exits 1 in degraded mode",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "stock workload file (required)"},
           {"events", "N", "trace length (2000)"},
           {"seed", "N", "trace/churn seed (7)"},
           {"churn-every", "K", "one churn command per K events (0 = none)"},
           {"journal", "PATH", "append every command to this journal file"},
           {"snapshot", "PATH", "checkpoint snapshots to this file"},
           {"snapshot-every", "N", "snapshot cadence in commands (500)"},
           {"trace-sample", "N", "retain spans for every N-th command (0)"},
           {"trace-out", "PATH", "write retained publish-path spans"},
           {"modes", "1|4|9", "stock-model publication hot spots (1)"},
       } + StorageFlags() + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"serve",
       "host a sharded broker fleet (clone-pattern fan-out) over the "
       "trading-day trace, with heal probes and fleet checkpoints; exits 1 "
       "on a stall or an oracle mismatch",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "stock workload file (required)"},
           {"shards", "N", "broker shards in the fleet (2)"},
           {"events", "N", "trace length (2000)"},
           {"seed", "N", "trace/churn seed (7)"},
           {"churn-every", "K", "one churn command per K events (0 = none)"},
           {"base", "PATH",
            "durable artifact base: BASE.manifest, BASE.journal, "
            "BASE.shard<k>.snap/.journal"},
           {"snapshot-every", "N", "fleet checkpoint cadence in commands (500)"},
           {"heal-every-ms", "MS", "heal-probe timer period, trace time (1000)"},
           {"resume", "", "resume from the BASE checkpoint instead of fresh"},
           {"oracle-check", "",
            "replay a single-broker oracle and require a bit-identical digest"},
           {"trace-sample", "N",
            "trace every N-th fleet seq into causal span trees (0 = off)"},
           {"trace-out", "PATH", "write the fleet trace dump (JSON spans)"},
           {"watch-every-ms", "MS",
            "watchdog timer period, trace time (500; 0 = off)"},
           {"audit-every", "N",
            "digest/seq audit cadence in fleet seqs (64; 0 = off)"},
           {"slo-skew", "R", "slow-shard alert above R x median p99 (4.0)"},
           {"slo-backlog", "N", "stall-backlog alert at N parked commands (64)"},
           {"modes", "1|4|9", "stock-model publication hot spots (1)"},
       } + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"top",
       "text dashboard over a fleet run: per-shard seq / subscribers / "
       "publish-latency quantiles plus watchdog alerts, one-shot or on an "
       "interval",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "stock workload file (required)"},
           {"shards", "N", "broker shards in the fleet (2)"},
           {"events", "N", "trace length (2000)"},
           {"seed", "N", "trace/churn seed (7)"},
           {"churn-every", "K", "one churn command per K events (0 = none)"},
           {"interval-ms", "MS",
            "dashboard period, trace time (0 = final frame only)"},
           {"slo-skew", "R", "slow-shard alert above R x median p99 (4.0)"},
           {"slo-backlog", "N", "stall-backlog alert at N parked commands (64)"},
           {"modes", "1|4|9", "stock-model publication hot spots (1)"},
       } + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"recover",
       "rebuild a broker from snapshot + journal and print its report "
       "(drops a torn journal tail with a warning)",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"snapshot", "PATH", "snapshot file (required)"},
           {"journal", "PATH", "journal to replay past the snapshot"},
       } + ModelFlags() + StorageFlags() + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"stats",
       "recover a broker, then dump every metric (Prometheus text + JSON)",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"snapshot", "PATH", "snapshot file (required)"},
           {"journal", "PATH", "journal to replay past the snapshot"},
       } + ModelFlags() + StorageFlags() + BrokerFlags() + CommonFlags()});

  cmds.push_back(
      {"chaos",
       "scripted kill/recover cycles over the serve-replay stream; verifies "
       "bit-identical recovery after every fault",
       std::vector<CliFlag>{
           {"net", "PATH", "network file (required)"},
           {"workload", "PATH", "stock workload file (required)"},
           {"events", "N", "trace length (400)"},
           {"seed", "N", "trace/churn seed (7)"},
           {"churn-every", "K", "one churn command per K events (5)"},
           {"cycles", "N", "kill/recover cycles to force (200)"},
           {"chaos-seed", "N", "fault site/timing selection seed (1)"},
           {"snapshot-every", "N", "checkpoint cadence in commands (50)"},
           {"promotions", "N",
            "also run N fleet kill/promote cycles under "
            "promote.journal_handoff (0 = skip)"},
           {"shards", "N", "fleet shards for the promotion cycles (3)"},
           {"storage-dir", "PATH",
            "also run the paged-storage drill in this directory when "
            "--storage=disk"},
           {"storage-cycles", "N", "storage-drill fault cycles (40)"},
           {"modes", "1|4|9", "stock-model publication hot spots (1)"},
       } + StorageFlags() + BrokerFlags() + CommonFlags()});

  return cmds;
}

}  // namespace

const std::vector<CliCommand>& CliCommands() {
  static const std::vector<CliCommand> kCommands = BuildCommands();
  return kCommands;
}

const CliCommand* FindCliCommand(const std::string& name) {
  for (const CliCommand& c : CliCommands())
    if (c.name == name) return &c;
  return nullptr;
}

std::vector<std::string> CliFlagNames(const std::string& command) {
  const CliCommand* c = FindCliCommand(command);
  if (c == nullptr)
    throw std::out_of_range("CliFlagNames: unknown command " + command);
  std::vector<std::string> names;
  names.reserve(c->flags.size());
  for (const CliFlag& f : c->flags) names.push_back(f.name);
  return names;
}

std::string CliUsageText() {
  std::ostringstream os;
  os << "usage: pubsub_cli <command> [--flag=value ...]\n\ncommands:\n";
  for (const CliCommand& c : CliCommands()) {
    os << "  " << c.name;
    for (std::size_t pad = c.name.size(); pad < 14; ++pad) os << ' ';
    os << c.summary << "\n";
  }
  os << "  help          print this text\n";
  for (const CliCommand& c : CliCommands()) {
    os << "\n" << c.name << "\n";
    for (const CliFlag& f : c.flags) {
      std::string lhs = "--" + f.name;
      if (!f.value.empty()) lhs += "=" + f.value;
      os << "  " << lhs;
      if (lhs.size() >= 34) os << "  ";  // over-long hint: keep a separator
      for (std::size_t pad = lhs.size(); pad < 34; ++pad) os << ' ';
      os << f.description << "\n";
    }
  }
  os << "\nexit codes: 0 ok, 1 runtime failure (including degraded mode or a "
        "chaos\nmismatch), 2 usage error.  Diagnostics go to stderr; reports "
        "and metric\ndumps go to stdout.  See docs/CLI.md and "
        "docs/OPERATIONS.md.\n";
  return os.str();
}

}  // namespace pubsub
