#include "obs/trace.h"

#include <ostream>
#include <stdexcept>

namespace pubsub {

const char* StageName(PublishStage stage) {
  switch (stage) {
    case PublishStage::kMatch:
      return "match";
    case PublishStage::kGroupSelection:
      return "group_selection";
    case PublishStage::kDeliveryPlan:
      return "delivery_plan";
    case PublishStage::kJournalFlush:
      return "journal_flush";
    case PublishStage::kFleetFanOut:
      return "fleet_fanout";
    case PublishStage::kFleetMerge:
      return "fleet_merge";
    case PublishStage::kFleetDeliver:
      return "fleet_deliver";
    case PublishStage::kReplicaApply:
      return "replica_apply";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

void TraceRing::record(const TraceSpan& span) {
  buf_[static_cast<std::size_t>(recorded_ % buf_.size())] = span;
  ++recorded_;
}

std::vector<TraceSpan> TraceRing::spans() const {
  std::vector<TraceSpan> out;
  const std::uint64_t n =
      recorded_ < buf_.size() ? recorded_ : static_cast<std::uint64_t>(buf_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = recorded_ - n; i < recorded_; ++i)
    out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
  return out;
}

void WriteTraceText(std::ostream& os, const TraceRing& ring) {
  os << "# trace capacity " << ring.capacity() << " recorded "
     << ring.recorded() << " dropped " << ring.dropped() << '\n';
  for (const TraceSpan& s : ring.spans())
    os << s.trace_id << ' ' << s.seq << ' ' << s.shard << ' '
       << StageName(s.stage) << ' ' << s.start_ms << ' ' << s.duration_ms
       << '\n';
}

}  // namespace pubsub
