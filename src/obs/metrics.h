// Deterministic, low-overhead metrics registry for the broker stack.
//
// Design (telemetry issue tentpole):
//
//   * Named counters, gauges and fixed-bucket histograms.  Hot-path
//     updates are lock-free: counters and histogram cells are sharded
//     into a fixed number of cache-line-sized slots; each thread hashes to
//     a slot (relaxed atomic add) and a scrape merges the shards in slot
//     order.  Because merge is a sum, totals are associative — the same
//     command stream yields the same counter values at any --threads.
//
//   * Every metric carries a *stability class*.  kDeterministic metrics
//     are pure functions of the applied command stream (bit-identical
//     across runs and thread counts); kRuntime metrics depend on wall
//     clocks or scheduling (stage latencies, thread-pool chunk counts)
//     and can be excluded from a scrape when byte-stable output matters.
//
//   * Registries are instantiable: each Broker owns (or is handed) one, so
//     two brokers in a process never mix counters; MetricsRegistry::Default
//     serves process-wide instrumentation (the thread pool).  Exposition
//     lives in io/serialize (WriteMetricsText / WriteMetricsJson) over the
//     plain MetricsSnapshot produced by scrape().
//
// Metric names follow prometheus conventions; a label set may be embedded
// in the name ("broker_stage_latency_ms{stage=\"match\"}") and is split
// back out by the exposition writers.
//
// Instrument sites hold nullable Metric pointers; the Inc/Set/Observe
// helpers no-op on nullptr so un-instrumented library use costs one branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pubsub {

enum class MetricKind { kCounter, kGauge, kHistogram };

// kDeterministic: a pure function of the applied command stream.
// kRuntime: depends on wall time or thread scheduling.
enum class MetricStability { kDeterministic, kRuntime };

namespace obs_internal {

inline constexpr std::size_t kShards = 16;

// Stable per-thread shard slot in [0, kShards); the first thread to touch
// the metrics layer (the serial command path) always lands in slot 0.
std::size_t ThreadShard();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) ShardCellD {
  std::atomic<double> v{0.0};
};

inline void AtomicAddD(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace obs_internal

class MetricsRegistry;

struct MetricInfo {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  MetricStability stability = MetricStability::kDeterministic;
};

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[obs_internal::ThreadShard()].v.fetch_add(n,
                                                     std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  // Re-seed to an absolute value (broker recovery adopts snapshot
  // counters).  Only safe while no other thread is incrementing.
  void reset(std::uint64_t v) {
    shards_[0].v.store(v, std::memory_order_relaxed);
    for (std::size_t i = 1; i < shards_.size(); ++i)
      shards_[i].v.store(0, std::memory_order_relaxed);
  }
  const MetricInfo& info() const { return info_; }

 private:
  friend class MetricsRegistry;
  Counter(MetricInfo info, const std::atomic<bool>* enabled)
      : info_(std::move(info)), enabled_(enabled) {}
  MetricInfo info_;
  const std::atomic<bool>* enabled_;
  std::array<obs_internal::ShardCell, obs_internal::kShards> shards_;
};

class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    obs_internal::AtomicAddD(value_, delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const MetricInfo& info() const { return info_; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricInfo info, const std::atomic<bool>* enabled)
      : info_(std::move(info)), enabled_(enabled) {}
  MetricInfo info_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

// Fixed-boundary histogram.  A value lands in the first bucket whose upper
// bound is >= value (prometheus `le` semantics); values above the last
// bound land in the implicit +Inf bucket.
class Histogram {
 public:
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) merged counts; size = bounds.size() + 1,
  // last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  const MetricInfo& info() const { return info_; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricInfo info, std::vector<double> bounds,
            const std::atomic<bool>* enabled);
  MetricInfo info_;
  std::vector<double> bounds_;
  const std::atomic<bool>* enabled_;
  // kShards blocks of (bounds.size() + 1) cells each.
  std::unique_ptr<obs_internal::ShardCell[]> cells_;
  std::array<obs_internal::ShardCellD, obs_internal::kShards> sums_;
};

// The embedded-label naming convention ("base{key=\"value\"}") the
// exposition writers split back into a label set.  Instrument sites that
// register one metric per member of a family (publish stages, fleet
// shards) build names through this so the convention has one spelling.
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);

// `count` upper bounds starting at `start`, each `factor` times the last
// (factor > 1, start > 0).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count);
// `count` upper bounds start, start+width, ...
std::vector<double> LinearBuckets(double start, double width,
                                  std::size_t count);

// One scraped metric, decoupled from the live registry so exposition and
// merging (broker registry + process registry) need no locking.
struct MetricSample {
  MetricInfo info;
  std::uint64_t counter_value = 0;          // kCounter
  double gauge_value = 0.0;                 // kGauge
  std::uint64_t hist_count = 0;             // kHistogram
  double hist_sum = 0.0;
  std::vector<double> hist_bounds;          // upper bounds, +Inf implicit
  std::vector<std::uint64_t> hist_buckets;  // per-bucket, size bounds+1
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by metric name
  // Merges `other`'s samples, keeping the name ordering.  A name present
  // on both sides combines into ONE sample (counters/gauges/histogram
  // buckets sum) — never a duplicate series; a kind or bucket-bounds
  // mismatch under the same name throws std::invalid_argument.  Callers
  // that need same-named series kept apart must label them first
  // (merge_labeled).
  void merge(const MetricsSnapshot& other);
  // Like merge, but first rewrites every incoming sample name to carry
  // `key="value"` (appended to an existing label set, e.g.
  // m{stage="match"} -> m{stage="match",key="value"}).  This is how a
  // fleet scrape keeps identical per-shard metric names apart: each
  // shard's registry merges under a distinct shard="k" label.
  void merge_labeled(const MetricsSnapshot& other, const std::string& key,
                     const std::string& value);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name; a second call with the same name returns the
  // same object (std::invalid_argument on a kind mismatch).  Registration
  // takes a lock; updates through the returned handle never do.
  Counter* counter(const std::string& name, const std::string& help,
                   MetricStability stability = MetricStability::kDeterministic);
  Gauge* gauge(const std::string& name, const std::string& help,
               MetricStability stability = MetricStability::kDeterministic);
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds,
                       MetricStability stability = MetricStability::kDeterministic);

  // Instrumentation master switch (the metrics-overhead CTest compares
  // enabled vs disabled throughput).  Disabled registries drop updates but
  // still scrape (stale values).
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(); }

  // Consistent-enough point-in-time copy, sorted by name.  With
  // include_runtime = false only kDeterministic metrics are emitted — the
  // byte-stable subset compared across --threads runs.
  MetricsSnapshot scrape(bool include_runtime = true) const;

  // Process-wide registry (thread pool and other singletons).
  static MetricsRegistry& Default();

 private:
  struct Entry {
    // Exactly one of these is set, matching info.kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;       // stable addresses
  std::atomic<bool> enabled_{true};
};

// Null-safe update helpers for instrument sites without a registry.
inline void Inc(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->observe(v);
}

}  // namespace pubsub
