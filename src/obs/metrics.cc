#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

namespace obs_internal {

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace obs_internal

Histogram::Histogram(MetricInfo info, std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : info_(std::move(info)), bounds_(std::move(bounds)), enabled_(enabled) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram '" + info_.name +
                                "': bucket bounds must be strictly increasing");
  cells_ = std::make_unique<obs_internal::ShardCell[]>(
      obs_internal::kShards * (bounds_.size() + 1));
}

void Histogram::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // First bound >= v; past-the-end = +Inf bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = obs_internal::ThreadShard();
  cells_[shard * (bounds_.size() + 1) + bucket].v.fetch_add(
      1, std::memory_order_relaxed);
  obs_internal::AtomicAddD(sums_[shard].v, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  const std::size_t stride = bounds_.size() + 1;
  for (std::size_t s = 0; s < obs_internal::kShards; ++s)
    for (std::size_t b = 0; b < stride; ++b)
      total += cells_[s * stride + b].v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  // Merge in shard order: deterministic given deterministic shard contents
  // (serial-path observers always occupy slot 0).
  double total = 0.0;
  for (const auto& s : sums_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  const std::size_t stride = bounds_.size() + 1;
  std::vector<std::uint64_t> merged(stride, 0);
  for (std::size_t s = 0; s < obs_internal::kShards; ++s)
    for (std::size_t b = 0; b < stride; ++b)
      merged[b] += cells_[s * stride + b].v.load(std::memory_order_relaxed);
  return merged;
}

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count) {
  if (start <= 0.0 || factor <= 1.0)
    throw std::invalid_argument("ExponentialBuckets: need start > 0, factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width,
                                  std::size_t count) {
  if (width <= 0.0)
    throw std::invalid_argument("LinearBuckets: need width > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    bounds.push_back(start + width * static_cast<double>(i));
  return bounds;
}

namespace {

[[noreturn]] void KindMismatch(const std::string& name) {
  throw std::invalid_argument("metric '" + name +
                              "' already registered with another kind");
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  MetricStability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    const MetricInfo& info = e->counter   ? e->counter->info()
                             : e->gauge   ? e->gauge->info()
                                          : e->histogram->info();
    if (info.name != name) continue;
    if (info.kind != MetricKind::kCounter) KindMismatch(name);
    return e->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->counter.reset(new Counter(
      MetricInfo{name, help, MetricKind::kCounter, stability}, &enabled_));
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              MetricStability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    const MetricInfo& info = e->counter   ? e->counter->info()
                             : e->gauge   ? e->gauge->info()
                                          : e->histogram->info();
    if (info.name != name) continue;
    if (info.kind != MetricKind::kGauge) KindMismatch(name);
    return e->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->gauge.reset(
      new Gauge(MetricInfo{name, help, MetricKind::kGauge, stability}, &enabled_));
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      MetricStability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    const MetricInfo& info = e->counter   ? e->counter->info()
                             : e->gauge   ? e->gauge->info()
                                          : e->histogram->info();
    if (info.name != name) continue;
    if (info.kind != MetricKind::kHistogram) KindMismatch(name);
    return e->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->histogram.reset(
      new Histogram(MetricInfo{name, help, MetricKind::kHistogram, stability},
                    std::move(upper_bounds), &enabled_));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

MetricsSnapshot MetricsRegistry::scrape(bool include_runtime) const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSample s;
      if (e->counter) {
        s.info = e->counter->info();
        s.counter_value = e->counter->value();
      } else if (e->gauge) {
        s.info = e->gauge->info();
        s.gauge_value = e->gauge->value();
      } else {
        s.info = e->histogram->info();
        s.hist_count = e->histogram->count();
        s.hist_sum = e->histogram->sum();
        s.hist_bounds = e->histogram->upper_bounds();
        s.hist_buckets = e->histogram->bucket_counts();
      }
      if (!include_runtime && s.info.stability == MetricStability::kRuntime)
        continue;
      snap.samples.push_back(std::move(s));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.info.name < b.info.name;
            });
  return snap;
}

namespace {

// Folds `src` into `dst` (same metric name on both sides).  Summing is the
// only sensible combine for every kind we have: counters and histogram
// cells are monotone sums already, and the gauges that can collide across
// registries (entry/subscriber counts) aggregate additively too.
void CombineSamples(MetricSample& dst, const MetricSample& src) {
  if (dst.info.kind != src.info.kind)
    throw std::invalid_argument("MetricsSnapshot::merge: metric '" +
                                dst.info.name + "' has conflicting kinds");
  dst.counter_value += src.counter_value;
  dst.gauge_value += src.gauge_value;
  if (dst.info.kind == MetricKind::kHistogram) {
    if (dst.hist_bounds != src.hist_bounds)
      throw std::invalid_argument("MetricsSnapshot::merge: histogram '" +
                                  dst.info.name +
                                  "' has conflicting bucket bounds");
    dst.hist_count += src.hist_count;
    dst.hist_sum += src.hist_sum;
    for (std::size_t b = 0; b < dst.hist_buckets.size(); ++b)
      dst.hist_buckets[b] += src.hist_buckets[b];
  }
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricSample& s : other.samples) {
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), s,
        [](const MetricSample& a, const MetricSample& b) {
          return a.info.name < b.info.name;
        });
    if (it != samples.end() && it->info.name == s.info.name)
      CombineSamples(*it, s);
    else
      samples.insert(it, s);
  }
}

void MetricsSnapshot::merge_labeled(const MetricsSnapshot& other,
                                    const std::string& key,
                                    const std::string& value) {
  MetricsSnapshot labeled = other;
  for (MetricSample& s : labeled.samples) {
    std::string& name = s.info.name;
    if (!name.empty() && name.back() == '}')
      name.insert(name.size() - 1, "," + key + "=\"" + value + "\"");
    else
      name = LabeledName(name, key, value);
  }
  std::stable_sort(labeled.samples.begin(), labeled.samples.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     return a.info.name < b.info.name;
                   });
  merge(labeled);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

}  // namespace pubsub
