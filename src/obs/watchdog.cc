#include "obs/watchdog.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pubsub {

const char* WatchdogAlertKindName(WatchdogAlertKind kind) {
  switch (kind) {
    case WatchdogAlertKind::kSlowShard:
      return "slow_shard";
    case WatchdogAlertKind::kStallBacklog:
      return "stall_backlog";
    case WatchdogAlertKind::kDigestDivergence:
      return "digest_divergence";
  }
  return "unknown";
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& buckets, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; q = 0 still needs rank 1.
  const double target = std::max(1.0, q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= bounds.size()) return bounds.back();  // +Inf bucket: clamp
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) return upper;
    const double before = static_cast<double>(cum - in_bucket);
    const double frac = (target - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.back();
}

FleetWatchdog::FleetWatchdog(const WatchdogOptions& options,
                             MetricsRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) return;
  // All kRuntime: alert counts depend on wall-clock timer firings, never
  // part of the deterministic scrape subset.
  c_checks_ = metrics->counter("watchdog_checks_total",
                               "Watchdog latency/backlog checks run",
                               MetricStability::kRuntime);
  c_audits_ = metrics->counter("watchdog_audits_total",
                               "Watchdog digest/seq audits run",
                               MetricStability::kRuntime);
  const auto alert_counter = [&](const char* kind) {
    return metrics->counter(
        LabeledName("watchdog_alerts_total", "kind", kind),
        "Watchdog alerts raised", MetricStability::kRuntime);
  };
  c_alerts_slow_ = alert_counter("slow_shard");
  c_alerts_backlog_ = alert_counter("stall_backlog");
  c_alerts_divergence_ = alert_counter("digest_divergence");
}

void FleetWatchdog::raise(std::vector<WatchdogAlert>* out,
                          WatchdogAlert alert) {
  switch (alert.kind) {
    case WatchdogAlertKind::kSlowShard:
      Inc(c_alerts_slow_);
      break;
    case WatchdogAlertKind::kStallBacklog:
      Inc(c_alerts_backlog_);
      break;
    case WatchdogAlertKind::kDigestDivergence:
      Inc(c_alerts_divergence_);
      break;
  }
  alerts_.push_back(alert);
  out->push_back(std::move(alert));
}

std::vector<WatchdogAlert> FleetWatchdog::check(
    double now_ms, const std::vector<const Histogram*>& shard_publish,
    std::size_t backlog) {
  ++checks_;
  Inc(c_checks_);
  std::vector<WatchdogAlert> out;
  if (slow_flagged_.size() < shard_publish.size())
    slow_flagged_.resize(shard_publish.size(), false);

  // Per-shard p99 + fleet median of the shards that have data at all.
  std::vector<double> p99(shard_publish.size(), 0.0);
  std::vector<std::uint64_t> counts(shard_publish.size(), 0);
  std::vector<double> with_data;
  for (std::size_t k = 0; k < shard_publish.size(); ++k) {
    const Histogram* h = shard_publish[k];
    if (h == nullptr) continue;
    counts[k] = h->count();
    if (counts[k] == 0) continue;
    p99[k] = HistogramQuantile(h->upper_bounds(), h->bucket_counts(), 0.99);
    with_data.push_back(p99[k]);
  }
  double median = 0.0;
  if (!with_data.empty()) {
    std::sort(with_data.begin(), with_data.end());
    median = with_data[with_data.size() / 2];
  }

  for (std::size_t k = 0; k < shard_publish.size(); ++k) {
    const bool slow =
        shard_publish[k] != nullptr && counts[k] >= options_.min_samples &&
        p99[k] > std::max(options_.min_p99_ms, options_.skew_ratio * median);
    if (slow && !slow_flagged_[k]) {
      std::ostringstream d;
      d << "shard " << k << " publish p99 " << p99[k]
        << " ms vs fleet median " << median << " ms (skew limit "
        << options_.skew_ratio << "x, floor " << options_.min_p99_ms
        << " ms)";
      raise(&out, {WatchdogAlertKind::kSlowShard,
                   static_cast<std::int32_t>(k), now_ms, d.str()});
    }
    slow_flagged_[k] = slow;
  }

  const bool over = backlog >= options_.max_backlog;
  if (over && !backlog_flagged_) {
    std::ostringstream d;
    d << "stall backlog " << backlog << " records >= limit "
      << options_.max_backlog;
    raise(&out, {WatchdogAlertKind::kStallBacklog, -1, now_ms, d.str()});
  }
  backlog_flagged_ = over;
  return out;
}

std::vector<WatchdogAlert> FleetWatchdog::audit(
    double now_ms, const std::vector<ShardAuditSample>& samples) {
  ++audits_;
  Inc(c_audits_);
  std::vector<WatchdogAlert> out;
  for (const ShardAuditSample& s : samples) {
    const std::size_t k = static_cast<std::size_t>(s.shard < 0 ? 0 : s.shard);
    if (baselines_.size() <= k) baselines_.resize(k + 1);
    Baseline& base = baselines_[k];
    bool diverged = false;
    std::ostringstream d;
    if (s.seq != s.expected_seq) {
      diverged = true;
      d << "shard " << s.shard << " at seq " << s.seq
        << " but fleet expects seq " << s.expected_seq;
    } else if (base.valid && s.seq == base.seq && s.digest != base.digest) {
      diverged = true;
      d << "shard " << s.shard << " digest changed at unchanged seq "
        << s.seq;
    }
    if (diverged && !base.flagged)
      raise(&out, {WatchdogAlertKind::kDigestDivergence, s.shard, now_ms,
                   d.str()});
    base.flagged = diverged;
    base.valid = true;
    base.seq = s.seq;
    base.digest = s.digest;
  }
  return out;
}

}  // namespace pubsub
