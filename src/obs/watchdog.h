// Fleet health/SLO watchdog + state-invariant auditor (fleet observability
// tentpole, part 3).
//
// Two independent detectors, both designed to run off the serve EventLoop
// on a timer and both free of broker/serve dependencies so they unit-test
// against raw histograms:
//
//   * check() — per-shard publish-latency skew and stall-backlog growth.
//     Each shard's p99 (read from its `fleet_shard_publish_ms` histogram
//     via HistogramQuantile) is compared against the fleet-wide median
//     p99; a shard past `skew_ratio` times the median (and past the
//     `min_p99_ms` noise floor, with at least `min_samples` observations)
//     is a slow-shard alert.  A stall backlog at or above `max_backlog`
//     pending records is a backlog alert.
//
//   * audit() — digest/seq invariant sampling.  The fleet's bookkeeping
//     says shard k must sit at `expected_seq`; a shard whose actual seq
//     disagrees, or whose digest changed while its seq did not, has
//     mutated outside the sequenced command stream (or lost a mutation).
//     This catches divergence in minutes instead of at --oracle-check
//     time.
//
// Both detectors are edge-triggered: a condition alerts once when it
// appears and re-arms only after it clears, so a persistently slow shard
// does not flood the log.  Watchdog self-metrics are kRuntime — the
// deterministic scrape subset is unaffected by when timers fire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pubsub {

enum class WatchdogAlertKind : std::uint8_t {
  kSlowShard = 0,
  kStallBacklog = 1,
  kDigestDivergence = 2,
};

const char* WatchdogAlertKindName(WatchdogAlertKind kind);

struct WatchdogAlert {
  WatchdogAlertKind kind = WatchdogAlertKind::kSlowShard;
  std::int32_t shard = -1;  // -1 = fleet-wide (backlog)
  double at_ms = 0.0;       // loop time the detector fired
  std::string detail;       // human-readable, for stderr / `top`
};

struct WatchdogOptions {
  // Slow-shard: alert when shard p99 > max(min_p99_ms, skew_ratio * median
  // p99 across shards) with >= min_samples observations.
  double skew_ratio = 4.0;
  double min_p99_ms = 1.0;
  std::uint64_t min_samples = 16;
  // Stall backlog: alert at >= max_backlog queued records.
  std::size_t max_backlog = 64;
  // Advisory audit cadence (the serve loop audits every audit_every fleet
  // seqs); audit() itself runs whenever called.
  std::uint64_t audit_every = 64;
};

// Quantile estimate from prometheus-style histogram state: `buckets` holds
// non-cumulative counts, one per upper bound plus a trailing +Inf bucket
// (Histogram::bucket_counts() layout).  Linear interpolation inside the
// containing bucket; the +Inf bucket clamps to the last finite bound.
// Returns 0 when the histogram is empty.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& buckets, double q);

// One shard's audit inputs (see CollectShardAudit in serve/fleet.h).
struct ShardAuditSample {
  std::int32_t shard = -1;
  std::uint64_t seq = 0;           // shard's actual sequence number
  std::uint64_t expected_seq = 0;  // fleet bookkeeping for this shard
  std::uint64_t digest = 0;        // shard state digest
};

class FleetWatchdog {
 public:
  // `metrics` may be null (alerts still accumulate, nothing is counted).
  explicit FleetWatchdog(const WatchdogOptions& options,
                         MetricsRegistry* metrics = nullptr);

  // Latency-skew + backlog detector.  `shard_publish[k]` is shard k's
  // publish-latency histogram (null entries — dead shards — are skipped).
  // Returns the alerts newly raised by this check.
  std::vector<WatchdogAlert> check(
      double now_ms, const std::vector<const Histogram*>& shard_publish,
      std::size_t backlog);

  // Invariant auditor.  Returns the alerts newly raised by this audit.
  std::vector<WatchdogAlert> audit(double now_ms,
                                   const std::vector<ShardAuditSample>& samples);

  // Every alert ever raised, in order.
  const std::vector<WatchdogAlert>& alerts() const { return alerts_; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t audits() const { return audits_; }

 private:
  void raise(std::vector<WatchdogAlert>* out, WatchdogAlert alert);

  WatchdogOptions options_;
  std::uint64_t checks_ = 0;
  std::uint64_t audits_ = 0;
  std::vector<WatchdogAlert> alerts_;

  // Edge-trigger state.
  std::vector<bool> slow_flagged_;
  bool backlog_flagged_ = false;
  struct Baseline {
    bool valid = false;
    bool flagged = false;
    std::uint64_t seq = 0;
    std::uint64_t digest = 0;
  };
  std::vector<Baseline> baselines_;

  // Self-telemetry (kRuntime; null when no registry was supplied).
  Counter* c_checks_ = nullptr;
  Counter* c_audits_ = nullptr;
  Counter* c_alerts_slow_ = nullptr;
  Counter* c_alerts_backlog_ = nullptr;
  Counter* c_alerts_divergence_ = nullptr;
};

}  // namespace pubsub
