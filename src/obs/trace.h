// Publish-path stage tracing (telemetry issue tentpole, part 2).
//
// Every publish walks four stages — match (interested-set + matcher
// decision), group-selection (unicast completion of interested \ group),
// delivery-plan (runtime pricing of the multicast tree / unicast fan-out)
// and journal-flush (write-ahead serialization + sink flush).  The broker
// measures each stage with a pluggable Clock (StopwatchClock live,
// ManualClock in deterministic tests) and, for every `--trace-sample`-th
// command, records the spans into a fixed-capacity ring.
//
// The ring is single-writer by construction: the broker command path is
// serial, so record() needs no synchronization.  When full it overwrites
// the oldest span and counts the drop — tracing never grows memory or
// stalls the hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pubsub {

enum class PublishStage : std::uint8_t {
  kMatch = 0,
  kGroupSelection = 1,
  kDeliveryPlan = 2,
  kJournalFlush = 3,
  // Fleet-level stages (fleet observability tentpole).  The coordinator
  // records these around the sharded publish pipeline; brokers never emit
  // them, so kNumPublishStages still sizes the per-stage broker histograms.
  kFleetFanOut = 4,
  kFleetMerge = 5,
  kFleetDeliver = 6,
  kReplicaApply = 7,
};

inline constexpr std::size_t kNumPublishStages = 4;
inline constexpr std::size_t kNumTraceStages = 8;

const char* StageName(PublishStage stage);

struct TraceSpan {
  // Fleet-assigned causal trace id.  0 = untraced / standalone sampling
  // (the broker stamps its own seq there when no fleet context is armed).
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;  // local sequence number of the traced command
  // Shard that emitted the span; -1 = fleet coordinator or a standalone
  // broker outside any fleet.
  std::int32_t shard = -1;
  PublishStage stage = PublishStage::kMatch;
  double start_ms = 0.0;     // trace-clock time at stage entry
  double duration_ms = 0.0;  // stage wall time (0 under a ManualClock)
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(const TraceSpan& span);

  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  // Spans overwritten before anyone read them.
  std::uint64_t dropped() const {
    return recorded_ > buf_.size() ? recorded_ - buf_.size() : 0;
  }

  // Retained spans, oldest first.
  std::vector<TraceSpan> spans() const;

 private:
  std::vector<TraceSpan> buf_;
  std::uint64_t recorded_ = 0;
};

// One line per span: "trace_id seq shard stage start_ms duration_ms",
// preceded by a summary header (capacity / recorded / dropped).
void WriteTraceText(std::ostream& os, const TraceRing& ring);

}  // namespace pubsub
