// Pluggable time sources for the broker service layer and the telemetry
// subsystem.
//
// The broker stamps every command with `clock->now_ms()` at submission and
// journals the stamp, so time is an *input* to the deterministic state
// machine rather than ambient state: replay and replication apply recorded
// stamps and reconstruct queueing behaviour bit-for-bit.  Tests and the
// trace-replay driver use ManualClock, advanced to each trace timestamp.
//
// StopwatchClock is the wall-time member of the family: a monotonic
// steady_clock-backed source used for *measurement* (publish-path stage
// tracing, bench timing) — never for command stamps, which must stay
// deterministic.  It deliberately has no system_clock variant: hot paths
// must not observe calendar time (satellite of the telemetry issue).
#pragma once

#include <algorithm>
#include <chrono>

namespace pubsub {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_ms() = 0;
};

// Explicitly advanced clock; never moves backwards.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start_ms = 0.0) : now_(start_ms) {}

  double now_ms() override { return now_; }
  void advance(double delta_ms) { if (delta_ms > 0.0) now_ += delta_ms; }
  void advance_to(double t_ms) { now_ = std::max(now_, t_ms); }

 private:
  double now_;
};

// Monotonic wall clock: milliseconds since construction (or the last
// restart()), measured on std::chrono::steady_clock.  Doubles as the
// stopwatch the bench binaries use for elapsed-time reporting.
class StopwatchClock final : public Clock {
 public:
  StopwatchClock() : start_(Steady::now()) {}

  double now_ms() override { return elapsed_ms(); }

  void restart() { start_ = Steady::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Steady::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Steady = std::chrono::steady_clock;
  Steady::time_point start_;
};

}  // namespace pubsub
