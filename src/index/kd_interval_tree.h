// KD-interval tree: the "unbalanced tree" alternative matching index.
//
// The paper's matching section (§4.6) names two index options: the R*-tree
// and the S-tree of Aggarwal, Wolf, Yu and Epelman [1] — an unbalanced
// spatial tree tuned for skewed data.  This is our implementation of that
// design point: a binary tree over the event space where each node splits
// one dimension at a pivot; rectangles entirely on one side descend, and
// rectangles *spanning* the pivot are stored at the node (the classic
// interval-tree generalization to k dimensions).
//
// A point-stabbing query walks a single root→leaf path (one comparison per
// level) and scans the spanning lists along it — typically far fewer
// rectangles than the total.  Skewed subscription workloads (§5.1: most
// interests near the hot spot, many wildcard sides) keep the spanning
// lists short precisely where queries land, which is the S-tree's design
// rationale.  The tree is deliberately *not* rebalanced: pivots are chosen
// as medians of the current build set, and the unbalance mirrors the data.
//
// Complements the R-tree: same SpatialIndex interface, compared head-to-
// head in bench_micro and cross-checked against the LinearIndex oracle.
#pragma once

#include <memory>

#include "index/spatial_index.h"

namespace pubsub {

class KdIntervalTree final : public SpatialIndex {
 public:
  // Rectangles per leaf before it splits.
  explicit KdIntervalTree(std::size_t leaf_capacity = 8);
  ~KdIntervalTree() override;
  KdIntervalTree(KdIntervalTree&&) noexcept;
  KdIntervalTree& operator=(KdIntervalTree&&) noexcept;
  KdIntervalTree(const KdIntervalTree&) = delete;
  KdIntervalTree& operator=(const KdIntervalTree&) = delete;

  // Build from a batch (median pivots per level).
  static KdIntervalTree Build(std::vector<std::pair<Rect, int>> items,
                              std::size_t leaf_capacity = 8);

  void insert(const Rect& r, int id) override;
  std::size_t size() const override { return size_; }

  using SpatialIndex::containing;
  using SpatialIndex::intersecting;
  using SpatialIndex::stab;
  // Emission order: the single root→leaf walk reports each node's spanning
  // list in storage (insertion) order — deterministic, a pure function of
  // the tree's build/insert history.  It is NOT sorted, and two trees
  // holding the same set via different histories (Build vs incremental
  // insert) may emit in different orders.  Callers on the sorted-set
  // convention scatter the ids into a bitset and emit ascending (see
  // Broker::interested_into) instead of sorting per query.
  void stab(const Point& p, std::vector<int>& out) const override;
  void intersecting(const Rect& r, std::vector<int>& out) const override;
  void containing(const Rect& r, std::vector<int>& out) const override;

  // Tree statistics (for the skew analysis in bench_micro).
  int height() const;
  // Rectangles stored in spanning lists of internal nodes (vs leaves).
  std::size_t spanning_count() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t leaf_capacity_;
  std::size_t size_ = 0;
};

}  // namespace pubsub
