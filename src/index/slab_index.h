// Word-parallel point-stabbing over a static rectangle set.
//
// The R-tree answers "which rectangles contain p?" by walking MBRs; for the
// batch matching hot path that DFS — pointer chasing plus per-rectangle
// interval tests — dominates the per-event cost.  This index exploits the
// repo-wide (lo, hi] interval convention instead: along each dimension the
// distinct endpoints e_0 < … < e_{m-1} split the line into m+1 elementary
// pieces (-inf, e_0], (e_0, e_1], …, (e_{m-1}, +inf), and every rectangle's
// membership is constant on each piece.  Build time precomputes, per
// dimension and piece, the bit-set of rectangles whose interval covers the
// piece; a stab is then one binary search per dimension plus a word-level
// AND across dimensions — no tree walk, no per-rectangle test.
//
// Hits are emitted in ascending id order (the bit order), so a stab doubles
// as the sorted-set kernel the broker's hot path uses.  The structure is
// static: subscription churn requires a rebuild (the dynamic side keeps the
// KdIntervalTree; this index serves the batch/simulation paths).
//
// Cost: build O(items × pieces / 64) bit-sets and (2n+1) × ceil(u/64) words
// of memory per dimension; stab O(dims × (log n + u/64) + hits).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/rect.h"

namespace pubsub {

class SlabIndex {
 public:
  SlabIndex() = default;

  // Index (rect, id) pairs; every id must lie in [0, universe).  Empty
  // rectangles are skipped (they contain no point).  All rectangles must
  // have the same dimensionality.
  SlabIndex(const std::vector<std::pair<Rect, int>>& items, std::size_t universe);

  // Append every id whose rectangle contains p to `out` (cleared on entry),
  // in ascending id order.  `tmp` is the caller's reusable word buffer —
  // steady-state stabs are allocation-free once it has grown to
  // word_count().
  void stab(const Point& p, std::vector<int>& out,
            std::vector<std::uint64_t>& tmp) const;

  std::size_t size() const { return size_; }
  std::size_t word_count() const { return words_; }

 private:
  struct Dim {
    std::vector<double> ends;            // sorted distinct finite endpoints
    std::vector<std::uint64_t> rows;     // (ends.size()+1) rows of words_
  };

  std::vector<Dim> dims_;
  std::size_t words_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pubsub
