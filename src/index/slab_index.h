// Word-parallel point-stabbing over a maintainable rectangle set.
//
// The R-tree answers "which rectangles contain p?" by walking MBRs; for the
// matching hot path that DFS — pointer chasing plus per-rectangle interval
// tests — dominates the per-event cost.  This index exploits the repo-wide
// (lo, hi] interval convention instead: along each dimension the distinct
// endpoints e_0 < … < e_{m-1} split the line into m+1 elementary pieces
// (-inf, e_0], (e_0, e_1], …, (e_{m-1}, +inf), and every rectangle's
// membership is constant on each piece.  Per dimension and piece the index
// holds the bit-set of rectangles whose interval covers the piece; a stab
// is one binary search per dimension plus a word-level AND across
// dimensions — no tree walk, no per-rectangle test.
//
// Hits are emitted in ascending id order (the bit order), so a stab doubles
// as the sorted-set kernel the broker's hot path uses.
//
// Maintainable under churn (ISSUE 6 tentpole): insert/erase/update patch
// the structure in place instead of re-deriving all elementary pieces.
//
//   * insert splices at most two new endpoints per dimension.  Inserting
//     endpoint v between e_{k-1} and e_k splits piece k into (e_{k-1}, v]
//     and (v, e_k]; membership is constant across the split, so the new
//     piece duplicates the old piece's bit-row.  Rows live in a slot pool
//     with a piece→slot indirection, so a splice moves O(pieces) 32-bit
//     slot indices plus one O(u/64) row copy — never the whole row table.
//     The id's bit is then OR-ed into the covered piece range, one word
//     per piece.
//   * erase clears the id's bit from its covered piece range and
//     dereferences its endpoints.  Endpoints whose reference count reaches
//     zero are left in place ("dead"): no live rectangle changes
//     membership there, so the adjacent rows are equal and stabs stay
//     exact — the table is merely bloated.
//   * a rebuild-threshold heuristic compacts: when the dead-endpoint count
//     crosses MaintenanceOptions' bound, the index is rebuilt from its
//     stored rectangles (amortized away by the bound; `rebuilds()` /
//     `dead_endpoints()` expose the heuristic as metrics).
//
// Amortized update cost is O(covered pieces) single-word bit operations
// plus the splice; a full rebuild is O(items × pieces / 64) — the churn
// fuzz suite in tests/test_slab_index.cc pins incremental results
// bit-identical to a from-scratch rebuild after every operation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/rect.h"

namespace pubsub {

class SlabIndex {
 public:
  // Rebuild-threshold heuristic: compact when the number of dead (zero
  // reference) endpoints both reaches min_dead_endpoints and exceeds
  // bloat_factor × live endpoints.
  struct MaintenanceOptions {
    std::size_t min_dead_endpoints = 64;
    double bloat_factor = 1.0;
  };

  SlabIndex() = default;

  // Bulk-load (rect, id) pairs; every id must lie in [0, universe).  Empty
  // rectangles are skipped (they contain no point).  All rectangles must
  // have the same dimensionality.
  SlabIndex(const std::vector<std::pair<Rect, int>>& items,
            std::size_t universe);
  SlabIndex(const std::vector<std::pair<Rect, int>>& items,
            std::size_t universe, MaintenanceOptions maint);

  // --- incremental maintenance -----------------------------------------
  // Index `rect` under `id` (>= 0; the universe grows as needed — unlike
  // the bulk constructor, which pins it).  An empty rectangle is a no-op
  // (nothing to stab).  Throws std::invalid_argument if `id` is already
  // present or the dimensionality mismatches the resident set.
  void insert(const Rect& rect, int id);
  // Remove `id`; returns false if it was not present.  May trigger a
  // threshold rebuild (see MaintenanceOptions).
  bool erase(int id);
  // erase(id) + insert(rect, id): replaces id's rectangle (id need not be
  // present; an empty `rect` degenerates to erase).
  void update(const Rect& rect, int id);

  // Append every id whose rectangle contains p to `out` (cleared on entry),
  // in ascending id order.  `tmp` is the caller's reusable word buffer —
  // steady-state stabs are allocation-free once it has grown to
  // word_count().
  void stab(const Point& p, std::vector<int>& out,
            std::vector<std::uint64_t>& tmp) const;

  bool contains(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < rects_.size() &&
           !rects_[static_cast<std::size_t>(id)].empty() &&
           rects_[static_cast<std::size_t>(id)].dims() > 0;
  }
  // Stored rectangle of a resident id (empty Rect when absent).
  const Rect& rect_of(int id) const { return rects_[static_cast<std::size_t>(id)]; }

  std::size_t size() const { return size_; }
  std::size_t word_count() const { return words_; }
  std::size_t universe() const { return universe_; }

  // --- maintenance telemetry -------------------------------------------
  // Threshold rebuilds performed by erase/update.
  std::uint64_t rebuilds() const { return rebuilds_; }
  // Endpoints spliced in by incremental inserts (lifetime count).
  std::uint64_t spliced_endpoints() const { return splices_; }
  // Current endpoint-table bloat: endpoints no live rectangle references.
  std::size_t dead_endpoints() const { return dead_ends_; }
  // Distinct endpoints resident across all dimensions (dead included).
  std::size_t endpoint_count() const { return ends_total_; }

 private:
  struct Dim {
    std::vector<double> ends;            // sorted distinct endpoints
    std::vector<std::uint32_t> refs;     // live references per endpoint
    std::vector<std::uint32_t> row_of;   // piece j -> slot in pool
    std::vector<std::uint64_t> pool;     // slot rows, stride_ words each
  };

  std::uint64_t* row(Dim& dim, std::size_t piece) {
    return &dim.pool[static_cast<std::size_t>(dim.row_of[piece]) * stride_];
  }
  const std::uint64_t* row(const Dim& dim, std::size_t piece) const {
    return &dim.pool[static_cast<std::size_t>(dim.row_of[piece]) * stride_];
  }

  void bulk_build(const std::vector<std::pair<Rect, int>>& items);
  void adopt_dims(std::size_t ndims);
  void grow_universe(std::size_t min_universe);
  // Piece range [first, last] covered by (lo, hi] in `dim`; endpoints must
  // be resident.
  std::pair<std::size_t, std::size_t> covered_range(const Dim& dim, double lo,
                                                    double hi) const;
  void add_endpoint(Dim& dim, double v);
  void drop_endpoint(Dim& dim, double v);
  void maybe_rebuild();

  std::vector<Dim> dims_;
  std::vector<Rect> rects_;  // resident rect per id (empty = absent)
  std::size_t universe_ = 0;
  std::size_t words_ = 0;   // live words per row
  std::size_t stride_ = 0;  // allocated words per slot (>= words_)
  std::size_t size_ = 0;
  std::size_t ndims_ = 0;   // locked at first resident rect
  std::size_t ends_total_ = 0;
  std::size_t dead_ends_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t splices_ = 0;
  MaintenanceOptions maint_;
};

}  // namespace pubsub
