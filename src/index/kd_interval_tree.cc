#include "index/kd_interval_tree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pubsub {
namespace {

struct Entry {
  Rect rect;
  int id;
};

void CheckInsertable(const Rect& r) {
  if (r.empty())
    throw std::invalid_argument("KdIntervalTree: empty rectangle");
  for (const Interval& iv : r.intervals())
    if (!std::isfinite(iv.lo()) || !std::isfinite(iv.hi()))
      throw std::invalid_argument("KdIntervalTree: unbounded rectangle");
}

}  // namespace

struct KdIntervalTree::Node {
  // Leaf: split_dim == -1, entries holds everything.
  // Internal: split at (split_dim, pivot); entries holds the spanners.
  int split_dim = -1;
  double pivot = 0.0;
  std::vector<Entry> entries;
  std::unique_ptr<Node> lo;  // rects with hi <= pivot in split_dim
  std::unique_ptr<Node> hi;  // rects with lo >= pivot in split_dim

  bool is_leaf() const { return split_dim < 0; }
};

KdIntervalTree::KdIntervalTree(std::size_t leaf_capacity)
    : leaf_capacity_(leaf_capacity) {
  if (leaf_capacity == 0)
    throw std::invalid_argument("KdIntervalTree: zero leaf capacity");
}

KdIntervalTree::~KdIntervalTree() = default;
KdIntervalTree::KdIntervalTree(KdIntervalTree&&) noexcept = default;
KdIntervalTree& KdIntervalTree::operator=(KdIntervalTree&&) noexcept = default;

namespace {

// Split a leaf: pick the dimension cycling with depth, pivot at the median
// of interval midpoints, redistribute.  Returns false (leaving the node a
// leaf) when no split separates anything — e.g. all rectangles identical —
// to guarantee termination.
template <typename NodeT>
bool SplitLeaf(NodeT& node, std::size_t dims, int depth) {
  const int dim = depth % static_cast<int>(dims);

  std::vector<double> mids;
  mids.reserve(node.entries.size());
  for (const Entry& e : node.entries)
    mids.push_back(0.5 * (e.rect[static_cast<std::size_t>(dim)].lo() +
                          e.rect[static_cast<std::size_t>(dim)].hi()));
  std::nth_element(mids.begin(), mids.begin() + static_cast<std::ptrdiff_t>(mids.size() / 2),
                   mids.end());
  const double pivot = mids[mids.size() / 2];

  std::vector<Entry> lo_set, hi_set, span;
  for (Entry& e : node.entries) {
    const Interval& iv = e.rect[static_cast<std::size_t>(dim)];
    if (iv.hi() <= pivot)
      lo_set.push_back(std::move(e));
    else if (iv.lo() >= pivot)
      hi_set.push_back(std::move(e));
    else
      span.push_back(std::move(e));
  }
  if (lo_set.empty() && hi_set.empty()) {
    // Nothing separates: put everything back and stay a leaf.
    node.entries = std::move(span);
    return false;
  }

  node.split_dim = dim;
  node.pivot = pivot;
  node.entries = std::move(span);
  node.lo = std::make_unique<NodeT>();
  node.lo->entries = std::move(lo_set);
  node.hi = std::make_unique<NodeT>();
  node.hi->entries = std::move(hi_set);
  return true;
}

}  // namespace

void KdIntervalTree::insert(const Rect& r, int id) {
  CheckInsertable(r);
  if (!root_) root_ = std::make_unique<Node>();

  Node* node = root_.get();
  int depth = 0;
  while (!node->is_leaf()) {
    const Interval& iv = r[static_cast<std::size_t>(node->split_dim)];
    if (iv.hi() <= node->pivot)
      node = node->lo.get();
    else if (iv.lo() >= node->pivot)
      node = node->hi.get();
    else {
      node->entries.push_back(Entry{r, id});
      ++size_;
      return;
    }
    ++depth;
  }
  node->entries.push_back(Entry{r, id});
  ++size_;
  if (node->entries.size() > leaf_capacity_) SplitLeaf(*node, r.dims(), depth);
}

KdIntervalTree KdIntervalTree::Build(std::vector<std::pair<Rect, int>> items,
                                     std::size_t leaf_capacity) {
  KdIntervalTree tree(leaf_capacity);
  for (auto& [rect, id] : items) tree.insert(rect, id);
  return tree;
}

void KdIntervalTree::stab(const Point& p, std::vector<int>& out) const {
  const Node* node = root_.get();
  while (node != nullptr) {
    for (const Entry& e : node->entries)
      if (e.rect.contains(p)) out.push_back(e.id);
    if (node->is_leaf()) break;
    node = p[static_cast<std::size_t>(node->split_dim)] <= node->pivot
               ? node->lo.get()
               : node->hi.get();
  }
}

void KdIntervalTree::intersecting(const Rect& r, std::vector<int>& out) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries)
      if (e.rect.intersects(r)) out.push_back(e.id);
    if (node->is_leaf()) continue;
    const Interval& iv = r[static_cast<std::size_t>(node->split_dim)];
    if (iv.lo() < node->pivot) stack.push_back(node->lo.get());
    if (iv.hi() > node->pivot) stack.push_back(node->hi.get());
  }
}

void KdIntervalTree::containing(const Rect& r, std::vector<int>& out) const {
  if (!root_) return;
  // A rectangle containing r must intersect r; filter the intersection set.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries)
      if (e.rect.contains(r)) out.push_back(e.id);
    if (node->is_leaf()) continue;
    const Interval& iv = r[static_cast<std::size_t>(node->split_dim)];
    if (iv.lo() < node->pivot) stack.push_back(node->lo.get());
    if (iv.hi() > node->pivot) stack.push_back(node->hi.get());
  }
}

int KdIntervalTree::height() const {
  auto walk = [](auto&& self, const Node* node) -> int {
    if (node == nullptr) return 0;
    if (node->is_leaf()) return 1;
    return 1 + std::max(self(self, node->lo.get()), self(self, node->hi.get()));
  };
  return walk(walk, root_.get());
}

std::size_t KdIntervalTree::spanning_count() const {
  auto walk = [](auto&& self, const Node* node) -> std::size_t {
    if (node == nullptr) return 0;
    if (node->is_leaf()) return 0;
    return node->entries.size() + self(self, node->lo.get()) +
           self(self, node->hi.get());
  };
  return walk(walk, root_.get());
}

}  // namespace pubsub
