// Interface for rectangle indexes supporting the matching queries of §4.6.
//
// Matching an event ω reduces to a *stabbing* query — find the stored
// rectangles containing the point ω (paper: solved with an R*-tree [5] or
// S-tree [1]).  The No-Loss machinery additionally needs *containment*
// queries (stored rectangles that fully contain a query rectangle — those
// subscribers are interested in *every* event inside it) and window
// (intersection) queries for grid-cell membership.
//
// All rectangles must be finite; workload generators clip subscription
// intervals to the attribute domains before indexing.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/rect.h"

namespace pubsub {

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual void insert(const Rect& r, int id) = 0;
  virtual std::size_t size() const = 0;

  // Ids of stored rectangles containing point p.  Order is implementation-
  // defined but must be deterministic — a pure function of the index's
  // build/insert history — so replays reproduce byte-identical downstream
  // state.  It need not be sorted; order-sensitive callers impose their own
  // (the broker scatters into a bitset and emits ascending).
  virtual void stab(const Point& p, std::vector<int>& out) const = 0;
  // Ids of stored rectangles intersecting r.
  virtual void intersecting(const Rect& r, std::vector<int>& out) const = 0;
  // Ids of stored rectangles that contain r entirely.
  virtual void containing(const Rect& r, std::vector<int>& out) const = 0;

  std::vector<int> stab(const Point& p) const {
    std::vector<int> out;
    stab(p, out);
    return out;
  }
  std::vector<int> intersecting(const Rect& r) const {
    std::vector<int> out;
    intersecting(r, out);
    return out;
  }
  std::vector<int> containing(const Rect& r) const {
    std::vector<int> out;
    containing(r, out);
    return out;
  }
};

// Brute-force reference implementation (test oracle; also the fastest
// option for very small subscription sets).
class LinearIndex final : public SpatialIndex {
 public:
  void insert(const Rect& r, int id) override;
  std::size_t size() const override { return entries_.size(); }
  using SpatialIndex::containing;
  using SpatialIndex::intersecting;
  using SpatialIndex::stab;
  void stab(const Point& p, std::vector<int>& out) const override;
  void intersecting(const Rect& r, std::vector<int>& out) const override;
  void containing(const Rect& r, std::vector<int>& out) const override;

 private:
  struct Entry {
    Rect rect;
    int id;
  };
  std::vector<Entry> entries_;
};

}  // namespace pubsub
