// R-tree over the paged storage seam: node = page, lazily loaded through a
// buffer pool (ROADMAP item 3; docs/STORAGE.md).
//
// PagedRTree mirrors RTree (index/rtree.{h,cc}) decision-for-decision —
// same Guttman quadratic split, same least-enlargement descent with the
// same tie-breaks, same STR bulk loader (shared via index/rtree_split.h) —
// so a paged tree built from the same insert history answers every query
// with the *identical* id sequence.  That is the bit-identity oracle that
// makes the storage tier drop-in: the broker can spill its index to disk
// without perturbing deterministic replay digests.
//
// Differences from RTree, all storage-driven:
//   * Nodes live in pages.  Traversal pins one page at a time (plus one
//     sibling during a split), so a --buffer-pages as small as 2 is
//     functionally correct — just slow (every visit becomes a miss).
//   * The tree's root/size/height/geometry persist in the page file's
//     header metadata; sync() is the durability point.  A file is a valid
//     tree only after a clean sync — the CLI builds page files at a temp
//     path and renames them into place, exactly like text snapshots.
//   * erase() is not offered at this tier.  The paged tree serves the
//     beyond-RAM, mostly-read tier (cold-start recovery, spilled indexes);
//     churn stays in the in-memory covering/slab structures and a rebuild
//     (BulkLoad) refreshes the paged image.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "index/spatial_index.h"
#include "storage/buffer_pool.h"

namespace pubsub {

class PagedRTree final : public SpatialIndex {
 public:
  // Start a fresh tree in `pool` (which must outlive the tree).  Throws
  // std::invalid_argument if max_entries < 4 or a node of max_entries
  // entries cannot fit one page.
  PagedRTree(BufferPool* pool, std::size_t dims, std::size_t max_entries = 8);
  // Reopen a tree previously persisted with sync() from the pool's file
  // header metadata.
  static PagedRTree Open(BufferPool* pool);
  // Sort-Tile-Recursive bulk build, mirroring RTree::BulkLoad.
  static PagedRTree BulkLoad(BufferPool* pool,
                             std::vector<std::pair<Rect, int>> items,
                             std::size_t dims, std::size_t max_entries = 8);

  // Largest max_entries for which a node fills one page payload.
  static std::size_t MaxEntriesForPage(std::uint32_t payload_size,
                                       std::size_t dims);

  void insert(const Rect& r, int id) override;
  std::size_t size() const override { return size_; }
  using SpatialIndex::containing;
  using SpatialIndex::intersecting;
  using SpatialIndex::stab;
  void stab(const Point& p, std::vector<int>& out) const override;
  void intersecting(const Rect& r, std::vector<int>& out) const override;
  void containing(const Rect& r, std::vector<int>& out) const override;

  std::size_t dims() const { return dims_; }
  std::size_t max_entries() const { return max_entries_; }
  // Number of node levels (0 for an empty tree), as RTree::height().
  int height() const { return height_; }
  BufferPool* pool() { return pool_; }

  // Persist root/size/height into the file header metadata and flush the
  // pool.  After sync() the page file reopens as this tree.
  void sync();

  // Structural checks (fanout bounds, MBR containment, uniform leaf depth,
  // stored-vs-recomputed MBR agreement, entry count == size()).
  bool check_invariants() const;

 private:
  struct Node;
  struct InsertOutcome;

  PagedRTree(BufferPool* pool, std::size_t dims, std::size_t max_entries,
             PageId root, std::size_t size, int height);

  Node load_node(PageId id) const;
  void store_node(PageId id, const Node& node);
  InsertOutcome insert_rec(PageId page, const Rect& r, int id);

  template <typename NodeTest, typename EntryTest>
  void query(NodeTest node_test, EntryTest entry_test,
             std::vector<int>& out) const;

  BufferPool* pool_;
  std::size_t dims_;
  std::size_t max_entries_;
  std::size_t min_entries_;
  PageId root_ = kNoPage;
  std::size_t size_ = 0;
  int height_ = 0;
};

}  // namespace pubsub
