#include "index/spatial_index.h"

namespace pubsub {

void LinearIndex::insert(const Rect& r, int id) {
  entries_.push_back(Entry{r, id});
}

void LinearIndex::stab(const Point& p, std::vector<int>& out) const {
  for (const Entry& e : entries_)
    if (e.rect.contains(p)) out.push_back(e.id);
}

void LinearIndex::intersecting(const Rect& r, std::vector<int>& out) const {
  for (const Entry& e : entries_)
    if (e.rect.intersects(r)) out.push_back(e.id);
}

void LinearIndex::containing(const Rect& r, std::vector<int>& out) const {
  for (const Entry& e : entries_)
    if (e.rect.contains(r)) out.push_back(e.id);
}

}  // namespace pubsub
