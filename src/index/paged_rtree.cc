#include "index/paged_rtree.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "index/rtree_split.h"
#include "storage/page_codec.h"

namespace pubsub {

using rtree_detail::CheckInsertable;
using rtree_detail::Enlargement;
using rtree_detail::Measure;
using rtree_detail::QuadraticSplit;
using storage::GetF64;
using storage::GetU32;
using storage::PutF64;
using storage::PutU32;

namespace {

// Node page payload:  [flags u32][count u32][mbr 2*dims f64][items...]
// Leaf item:      [rect 2*dims f64][id u32]
// Internal item:  [child mbr 2*dims f64][child page u32]
constexpr std::size_t kNodeHeaderBytes = 8;
constexpr std::uint32_t kLeafFlag = 1;

std::size_t RectBytes(std::size_t dims) { return 16 * dims; }
std::size_t ItemBytes(std::size_t dims) { return RectBytes(dims) + 4; }

void PutRect(char* p, const Rect& r) {
  for (std::size_t d = 0; d < r.dims(); ++d) {
    PutF64(p + 16 * d, r[d].lo());
    PutF64(p + 16 * d + 8, r[d].hi());
  }
}

Rect GetRect(const char* p, std::size_t dims) {
  std::vector<Interval> ivals;
  ivals.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    ivals.emplace_back(GetF64(p + 16 * d), GetF64(p + 16 * d + 8));
  }
  return Rect(std::move(ivals));
}

}  // namespace

// In-memory image of one node page.  Loaded, mutated, stored back; the
// page is pinned only for the duration of the copy.
struct PagedRTree::Node {
  struct LeafEntry {
    Rect rect;
    int id;
  };
  struct ChildEntry {
    Rect mbr;
    PageId page;
  };

  Rect mbr;
  bool leaf = true;
  std::vector<LeafEntry> entries;    // leaf only
  std::vector<ChildEntry> children;  // internal only

  std::size_t fanout() const { return leaf ? entries.size() : children.size(); }

  void recompute_mbr() {
    Rect m;
    if (leaf) {
      for (const LeafEntry& e : entries) m = m.dims() == 0 ? e.rect : m.hull(e.rect);
    } else {
      for (const ChildEntry& c : children) m = m.dims() == 0 ? c.mbr : m.hull(c.mbr);
    }
    mbr = m;
  }
};

struct PagedRTree::InsertOutcome {
  Rect self_mbr;  // the node's MBR after the insert (and any split)
  bool has_sibling = false;
  PageId sibling_page = kNoPage;
  Rect sibling_mbr;
};

PagedRTree::PagedRTree(BufferPool* pool, std::size_t dims,
                       std::size_t max_entries)
    : pool_(pool),
      dims_(dims),
      max_entries_(max_entries),
      min_entries_(std::max<std::size_t>(2, max_entries / 3)) {
  if (max_entries < 4)
    throw std::invalid_argument("PagedRTree: max_entries must be >= 4");
  if (dims == 0) throw std::invalid_argument("PagedRTree: dims must be >= 1");
  if (MaxEntriesForPage(pool->payload_size(), dims) < max_entries) {
    throw std::invalid_argument(
        "PagedRTree: a node of " + std::to_string(max_entries) + " entries in " +
        std::to_string(dims) + " dims does not fit a " +
        std::to_string(pool->payload_size()) + "-byte page payload");
  }
}

PagedRTree::PagedRTree(BufferPool* pool, std::size_t dims,
                       std::size_t max_entries, PageId root, std::size_t size,
                       int height)
    : PagedRTree(pool, dims, max_entries) {
  root_ = root;
  size_ = size;
  height_ = height;
}

std::size_t PagedRTree::MaxEntriesForPage(std::uint32_t payload_size,
                                          std::size_t dims) {
  const std::size_t fixed = kNodeHeaderBytes + RectBytes(dims);
  if (payload_size <= fixed) return 0;
  return (payload_size - fixed) / ItemBytes(dims);
}

PagedRTree PagedRTree::Open(BufferPool* pool) {
  const std::string& meta = pool->storage()->meta();
  std::istringstream in(meta);
  std::string tag, version;
  std::size_t dims = 0, fanout = 0, size = 0;
  std::uint32_t root = 0;
  int height = 0;
  in >> tag >> version;
  char eq = 0;
  auto field = [&](const char* name, auto& out) {
    std::string key;
    in >> key;
    const std::string want = std::string(name) + "=";
    if (key.rfind(want, 0) != 0) return false;
    std::istringstream v(key.substr(want.size()));
    v >> out;
    (void)eq;
    return !v.fail();
  };
  if (tag != "prtree" || version != "v1" || !field("dims", dims) ||
      !field("fanout", fanout) || !field("root", root) ||
      !field("size", size) || !field("height", height)) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "page file metadata is not a paged R-tree: \"" + meta +
                           "\"");
  }
  return PagedRTree(pool, dims, fanout, root, size, height);
}

void PagedRTree::sync() {
  std::ostringstream meta;
  meta << "prtree v1 dims=" << dims_ << " fanout=" << max_entries_
       << " root=" << root_ << " size=" << size_ << " height=" << height_;
  pool_->storage()->set_meta(meta.str());
  pool_->flush();
}

PagedRTree::Node PagedRTree::load_node(PageId id) const {
  PageRef ref(*pool_, id);
  const char* p = ref.data();
  Node node;
  const std::uint32_t flags = GetU32(p);
  const std::uint32_t count = GetU32(p + 4);
  node.leaf = (flags & kLeafFlag) != 0;
  if (count > max_entries_ + 1) {
    throw StorageError(StorageErrorCode::kBadPage, id,
                       "node fanout exceeds the tree's max_entries");
  }
  node.mbr = count == 0 ? Rect() : GetRect(p + kNodeHeaderBytes, dims_);
  const char* items = p + kNodeHeaderBytes + RectBytes(dims_);
  const std::size_t stride = ItemBytes(dims_);
  if (node.leaf) {
    node.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const char* item = items + i * stride;
      node.entries.push_back(Node::LeafEntry{
          GetRect(item, dims_),
          static_cast<int>(static_cast<std::int32_t>(
              GetU32(item + RectBytes(dims_))))});
    }
  } else {
    node.children.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const char* item = items + i * stride;
      node.children.push_back(Node::ChildEntry{
          GetRect(item, dims_), GetU32(item + RectBytes(dims_))});
    }
  }
  return node;
}

void PagedRTree::store_node(PageId id, const Node& node) {
  PageRef ref(*pool_, id);
  char* p = ref.data();
  std::memset(p, 0, pool_->payload_size());
  PutU32(p, node.leaf ? kLeafFlag : 0);
  PutU32(p + 4, static_cast<std::uint32_t>(node.fanout()));
  if (node.fanout() != 0) PutRect(p + kNodeHeaderBytes, node.mbr);
  char* items = p + kNodeHeaderBytes + RectBytes(dims_);
  const std::size_t stride = ItemBytes(dims_);
  if (node.leaf) {
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      char* item = items + i * stride;
      PutRect(item, node.entries[i].rect);
      PutU32(item + RectBytes(dims_),
             static_cast<std::uint32_t>(
                 static_cast<std::int32_t>(node.entries[i].id)));
    }
  } else {
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      char* item = items + i * stride;
      PutRect(item, node.children[i].mbr);
      PutU32(item + RectBytes(dims_), node.children[i].page);
    }
  }
  ref.set_dirty();
}

void PagedRTree::insert(const Rect& r, int id) {
  CheckInsertable(r);
  if (r.dims() != dims_)
    throw std::invalid_argument("PagedRTree: rectangle dims mismatch");
  if (root_ == kNoPage) {
    Node empty_root;
    empty_root.leaf = true;
    root_ = pool_->allocate();
    pool_->unpin(root_, /*dirty=*/true);
    store_node(root_, empty_root);
    height_ = 1;
  }
  InsertOutcome outcome = insert_rec(root_, r, id);
  if (outcome.has_sibling) {
    // Grow a new root over the old one and its split sibling, mirroring
    // RTree: children pushed in [old root, sibling] order.
    Node new_root;
    new_root.leaf = false;
    new_root.children.push_back(Node::ChildEntry{outcome.self_mbr, root_});
    new_root.children.push_back(
        Node::ChildEntry{outcome.sibling_mbr, outcome.sibling_page});
    new_root.recompute_mbr();
    const PageId new_root_page = pool_->allocate();
    pool_->unpin(new_root_page, /*dirty=*/true);
    store_node(new_root_page, new_root);
    root_ = new_root_page;
    ++height_;
  }
  ++size_;
}

PagedRTree::InsertOutcome PagedRTree::insert_rec(PageId page, const Rect& r,
                                                 int id) {
  Node node = load_node(page);
  node.mbr = node.fanout() == 0 ? r : node.mbr.hull(r);
  if (node.leaf) {
    node.entries.push_back(Node::LeafEntry{r, id});
    if (node.entries.size() <= max_entries_) {
      store_node(page, node);
      return InsertOutcome{node.mbr};
    }
    // Leaf split (Guttman quadratic), identical to RTree::split_leaf.
    std::vector<Node::LeafEntry> items = std::move(node.entries);
    node.entries.clear();
    Node sibling;
    sibling.leaf = true;
    QuadraticSplit(items, node.entries, sibling.entries, min_entries_,
                   [](const Node::LeafEntry& e) -> const Rect& { return e.rect; });
    node.recompute_mbr();
    sibling.recompute_mbr();
    store_node(page, node);
    const PageId sibling_page = pool_->allocate();
    pool_->unpin(sibling_page, /*dirty=*/true);
    store_node(sibling_page, sibling);
    return InsertOutcome{node.mbr, true, sibling_page, sibling.mbr};
  }

  // Choose the child needing least enlargement (ties: smaller measure),
  // scanning children in stored order exactly as RTree does.
  std::size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_measure = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const double enl = Enlargement(node.children[i].mbr, r);
    const double m = Measure(node.children[i].mbr);
    if (enl < best_enl || (enl == best_enl && m < best_measure)) {
      best_enl = enl;
      best_measure = m;
      best = i;
    }
  }
  const InsertOutcome child_outcome = insert_rec(node.children[best].page, r, id);
  node.children[best].mbr = child_outcome.self_mbr;
  if (child_outcome.has_sibling) {
    node.children.push_back(Node::ChildEntry{child_outcome.sibling_mbr,
                                             child_outcome.sibling_page});
    if (node.children.size() > max_entries_) {
      std::vector<Node::ChildEntry> items = std::move(node.children);
      node.children.clear();
      Node sibling;
      sibling.leaf = false;
      QuadraticSplit(items, node.children, sibling.children, min_entries_,
                     [](const Node::ChildEntry& c) -> const Rect& { return c.mbr; });
      node.recompute_mbr();
      sibling.recompute_mbr();
      store_node(page, node);
      const PageId sibling_page = pool_->allocate();
      pool_->unpin(sibling_page, /*dirty=*/true);
      store_node(sibling_page, sibling);
      return InsertOutcome{node.mbr, true, sibling_page, sibling.mbr};
    }
  }
  store_node(page, node);
  return InsertOutcome{node.mbr};
}

PagedRTree PagedRTree::BulkLoad(BufferPool* pool,
                                std::vector<std::pair<Rect, int>> items,
                                std::size_t dims, std::size_t max_entries) {
  PagedRTree tree(pool, dims, max_entries);
  if (items.empty()) return tree;
  for (const auto& item : items) {
    CheckInsertable(item.first);
    if (item.first.dims() != dims)
      throw std::invalid_argument("PagedRTree: rectangle dims mismatch");
  }

  auto emit = [&](const Node& node) {
    const PageId id = pool->allocate();
    pool->unpin(id, /*dirty=*/true);
    tree.store_node(id, node);
    return Node::ChildEntry{node.mbr, id};
  };

  // Sort-Tile-Recursive leaf packing, mirroring RTree::BulkLoad (same sort
  // keys, same slab arithmetic via StrSlabCount, same leaf boundaries).
  std::vector<Node::ChildEntry> level;
  auto center = [](const Rect& r, std::size_t d) {
    return 0.5 * (r[d].lo() + r[d].hi());
  };

  using Iter = std::vector<std::pair<Rect, int>>::iterator;
  auto pack = [&](auto&& self, Iter begin, Iter end, std::size_t dim) -> void {
    const std::size_t n = static_cast<std::size_t>(end - begin);
    if (dim + 1 >= dims || n <= max_entries) {
      std::sort(begin, end, [&](const auto& a, const auto& b) {
        return center(a.first, dim) < center(b.first, dim);
      });
      for (Iter it = begin; it < end; it += static_cast<std::ptrdiff_t>(
               std::min<std::size_t>(max_entries, static_cast<std::size_t>(end - it)))) {
        const std::size_t take = std::min<std::size_t>(max_entries, static_cast<std::size_t>(end - it));
        Node leaf;
        leaf.leaf = true;
        for (std::size_t i = 0; i < take; ++i)
          leaf.entries.push_back(Node::LeafEntry{(it + static_cast<std::ptrdiff_t>(i))->first,
                                                 (it + static_cast<std::ptrdiff_t>(i))->second});
        leaf.recompute_mbr();
        level.push_back(emit(leaf));
      }
      return;
    }
    std::sort(begin, end, [&](const auto& a, const auto& b) {
      return center(a.first, dim) < center(b.first, dim);
    });
    const std::size_t slabs = rtree_detail::StrSlabCount(n, max_entries, dims, dim);
    const std::size_t slab_size = (n + slabs - 1) / slabs;
    for (Iter it = begin; it < end;) {
      const std::size_t take = std::min<std::size_t>(slab_size, static_cast<std::size_t>(end - it));
      self(self, it, it + static_cast<std::ptrdiff_t>(take), dim + 1);
      it += static_cast<std::ptrdiff_t>(take);
    }
  };
  pack(pack, items.begin(), items.end(), 0);
  int height = 1;

  // Build upper levels by grouping consecutive nodes.
  while (level.size() > 1) {
    std::vector<Node::ChildEntry> parents;
    for (std::size_t i = 0; i < level.size();) {
      const std::size_t take = std::min(max_entries, level.size() - i);
      Node parent;
      parent.leaf = false;
      for (std::size_t j = 0; j < take; ++j)
        parent.children.push_back(level[i + j]);
      parent.recompute_mbr();
      parents.push_back(emit(parent));
      i += take;
    }
    level = std::move(parents);
    ++height;
  }
  tree.root_ = level.front().page;
  tree.size_ = items.size();
  tree.height_ = height;
  return tree;
}

template <typename NodeTest, typename EntryTest>
void PagedRTree::query(NodeTest node_test, EntryTest entry_test,
                       std::vector<int>& out) const {
  if (root_ == kNoPage) return;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    const Node node = load_node(page);
    if (node.fanout() == 0 || !node_test(node.mbr)) continue;
    if (node.leaf) {
      for (const Node::LeafEntry& e : node.entries)
        if (entry_test(e.rect)) out.push_back(e.id);
    } else {
      for (const Node::ChildEntry& c : node.children) stack.push_back(c.page);
    }
  }
}

void PagedRTree::stab(const Point& p, std::vector<int>& out) const {
  query([&](const Rect& mbr) { return mbr.contains(p); },
        [&](const Rect& rect) { return rect.contains(p); }, out);
}

void PagedRTree::intersecting(const Rect& r, std::vector<int>& out) const {
  query([&](const Rect& mbr) { return mbr.intersects(r); },
        [&](const Rect& rect) { return rect.intersects(r); }, out);
}

void PagedRTree::containing(const Rect& r, std::vector<int>& out) const {
  // A node can only hold an entry containing r if its MBR contains r.
  query([&](const Rect& mbr) { return mbr.contains(r); },
        [&](const Rect& rect) { return rect.contains(r); }, out);
}

bool PagedRTree::check_invariants() const {
  if (root_ == kNoPage) return size_ == 0;

  std::size_t entries = 0;
  int leaf_depth = -1;
  int max_depth = 0;
  bool ok = true;

  auto walk = [&](auto&& self, PageId page, int depth, bool is_root) -> void {
    const Node node = load_node(page);
    max_depth = std::max(max_depth, depth + 1);
    if (!is_root && node.fanout() == 0) ok = false;
    if (node.fanout() > max_entries_) ok = false;
    // The stored MBR must agree with a recomputation from the contents.
    Node copy = node;
    copy.recompute_mbr();
    if (node.fanout() != 0 && !(copy.mbr == node.mbr)) ok = false;
    if (node.leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (depth != leaf_depth) ok = false;
      entries += node.entries.size();
      for (const Node::LeafEntry& e : node.entries)
        if (!node.mbr.contains(e.rect)) ok = false;
    } else {
      if (node.children.empty()) ok = false;
      for (const Node::ChildEntry& c : node.children) {
        if (!node.mbr.contains(c.mbr)) ok = false;
        self(self, c.page, depth + 1, false);
      }
    }
  };
  walk(walk, root_, 0, true);
  return ok && entries == size_ && max_depth == height_;
}

}  // namespace pubsub
