// Guttman R-tree primitives shared by the in-memory RTree and the paged
// PagedRTree.
//
// The two trees must make *identical* structural decisions on the same
// insert/bulk-load history — the mem-vs-disk bit-identity oracle
// (tests/test_paged_rtree.cc) asserts their query outputs match
// element-for-element, which holds only if seeds, ties, and group
// assignments resolve the same way.  Centralizing the arithmetic here makes
// that a property of one function instead of two copies that can drift.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "geometry/rect.h"

namespace pubsub::rtree_detail {

// Volume-based measure used for enlargement decisions.  Rectangles here are
// finite and non-empty, so volume is positive and finite.
inline double Measure(const Rect& r) { return r.volume(); }

inline double Enlargement(const Rect& mbr, const Rect& r) {
  return Measure(mbr.hull(r)) - Measure(mbr);
}

inline void CheckInsertable(const Rect& r) {
  if (r.empty()) throw std::invalid_argument("RTree: empty rectangle");
  for (const Interval& iv : r.intervals()) {
    if (!std::isfinite(iv.lo()) || !std::isfinite(iv.hi()))
      throw std::invalid_argument("RTree: unbounded rectangle");
  }
}

// Quadratic split (Guttman): distribute `items` into two groups.  RectOf
// extracts the bounding rectangle of an item.
template <typename Item, typename RectOf>
void QuadraticSplit(std::vector<Item>& items, std::vector<Item>& out_a,
                    std::vector<Item>& out_b, std::size_t min_fill, RectOf rect_of) {
  assert(items.size() >= 2);

  // Seed selection: the pair wasting the most area if grouped together.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      const double waste = Measure(rect_of(items[i]).hull(rect_of(items[j]))) -
                           Measure(rect_of(items[i])) - Measure(rect_of(items[j]));
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Rect mbr_a = rect_of(items[seed_a]);
  Rect mbr_b = rect_of(items[seed_b]);
  out_a.push_back(std::move(items[seed_a]));
  out_b.push_back(std::move(items[seed_b]));

  std::vector<Item> rest;
  rest.reserve(items.size() - 2);
  for (std::size_t i = 0; i < items.size(); ++i)
    if (i != seed_a && i != seed_b) rest.push_back(std::move(items[i]));
  items.clear();

  while (!rest.empty()) {
    // If one group must take everything left to reach min fill, do so.
    if (out_a.size() + rest.size() == min_fill) {
      for (Item& it : rest) {
        mbr_a = mbr_a.hull(rect_of(it));
        out_a.push_back(std::move(it));
      }
      break;
    }
    if (out_b.size() + rest.size() == min_fill) {
      for (Item& it : rest) {
        mbr_b = mbr_b.hull(rect_of(it));
        out_b.push_back(std::move(it));
      }
      break;
    }

    // Pick the item with the strongest group preference.
    std::size_t best = 0;
    double best_diff = -1.0;
    double best_da = 0, best_db = 0;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const double da = Enlargement(mbr_a, rect_of(rest[i]));
      const double db = Enlargement(mbr_b, rect_of(rest[i]));
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    Item it = std::move(rest[best]);
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(best));

    const bool to_a = best_da < best_db ||
                      (best_da == best_db && out_a.size() <= out_b.size());
    if (to_a) {
      mbr_a = mbr_a.hull(rect_of(it));
      out_a.push_back(std::move(it));
    } else {
      mbr_b = mbr_b.hull(rect_of(it));
      out_b.push_back(std::move(it));
    }
  }
}

// Sort-Tile-Recursive slab arithmetic, shared so both bulk loaders cut the
// same slab boundaries.
inline std::size_t StrSlabCount(std::size_t n, std::size_t max_entries,
                                std::size_t dims, std::size_t dim) {
  const double pages =
      std::ceil(static_cast<double>(n) / static_cast<double>(max_entries));
  return static_cast<std::size_t>(std::max(
      1.0, std::ceil(std::pow(pages, 1.0 / static_cast<double>(dims - dim)))));
}

}  // namespace pubsub::rtree_detail
