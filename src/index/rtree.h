// R-tree over axis-aligned rectangles (Guttman 1984, with the STR
// bulk-loading of Leutenegger et al. as used for packed R-trees [10]).
//
// This is the matching substrate of §4.6: subscription rectangles (and the
// No-Loss group rectangles) are indexed once, and each published event
// issues a point-stabbing query.  Dynamic insertion uses least-enlargement
// subtree choice with quadratic split; `BulkLoad` packs a static rectangle
// set bottom-up with Sort-Tile-Recursive for better query performance.
//
// All stored rectangles must be finite and non-empty.
#pragma once

#include <memory>
#include <vector>

#include "index/spatial_index.h"

namespace pubsub {

class RTree final : public SpatialIndex {
 public:
  // Fan-out limits: a node holds between min_entries and max_entries
  // children (except the root, which may hold fewer).
  explicit RTree(std::size_t max_entries = 8);
  ~RTree() override;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Build a packed tree from (rect, id) pairs with Sort-Tile-Recursive.
  static RTree BulkLoad(std::vector<std::pair<Rect, int>> items,
                        std::size_t max_entries = 8);

  void insert(const Rect& r, int id) override;

  // Remove one entry whose rectangle and id match exactly (Guttman delete
  // with condensation: underfull nodes are dissolved and their entries
  // re-inserted).  Returns false if no such entry exists.  Supports
  // subscription churn without rebuilding the index.
  bool erase(const Rect& r, int id);

  std::size_t size() const override { return size_; }

  using SpatialIndex::containing;
  using SpatialIndex::intersecting;
  using SpatialIndex::stab;
  void stab(const Point& p, std::vector<int>& out) const override;
  // Allocation-free stab for the publish hot path: the traversal runs on
  // the caller's reusable stack (cleared on entry; type-erased because Node
  // is private).  Hits append to `out` in the same order as the
  // two-argument overload.
  void stab(const Point& p, std::vector<int>& out,
            std::vector<const void*>& stack) const;
  void intersecting(const Rect& r, std::vector<int>& out) const override;
  void containing(const Rect& r, std::vector<int>& out) const override;

  // Tree height (0 for an empty tree, 1 for a single leaf).
  int height() const;
  // Structural invariants (MBR containment, fan-out bounds); used by tests.
  bool check_invariants() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t max_entries_;
  std::size_t min_entries_;
  std::size_t size_ = 0;
};

}  // namespace pubsub
