#include "index/slab_index.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace pubsub {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SlabIndex::SlabIndex(const std::vector<std::pair<Rect, int>>& items,
                     std::size_t universe) {
  words_ = (universe + 63) / 64;
  std::size_t ndims = 0;
  for (const auto& [rect, id] : items) {
    if (rect.empty()) continue;
    if (id < 0 || static_cast<std::size_t>(id) >= universe)
      throw std::invalid_argument("SlabIndex: id outside universe");
    if (ndims == 0) ndims = rect.dims();
    if (rect.dims() != ndims)
      throw std::invalid_argument("SlabIndex: mixed dimensionality");
    ++size_;
  }
  if (size_ == 0) return;

  dims_.resize(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    Dim& dim = dims_[d];
    for (const auto& [rect, id] : items) {
      if (rect.empty()) continue;
      const Interval& iv = rect[d];
      if (iv.lo() != -kInf) dim.ends.push_back(iv.lo());
      if (iv.hi() != kInf) dim.ends.push_back(iv.hi());
    }
    std::sort(dim.ends.begin(), dim.ends.end());
    dim.ends.erase(std::unique(dim.ends.begin(), dim.ends.end()),
                   dim.ends.end());

    // Piece j is (e_{j-1}, e_j]; j ranges over [0, ends.size()].  An
    // interval (lo, hi] covers exactly the pieces whose bounds it encloses:
    // index(lo)+1 … index(hi) (unbounded ends extend to the edge pieces).
    dim.rows.assign((dim.ends.size() + 1) * words_, 0);
    for (const auto& [rect, id] : items) {
      if (rect.empty()) continue;
      const Interval& iv = rect[d];
      const std::size_t first =
          iv.lo() == -kInf
              ? 0
              : static_cast<std::size_t>(
                    std::lower_bound(dim.ends.begin(), dim.ends.end(), iv.lo()) -
                    dim.ends.begin()) +
                    1;
      const std::size_t last =
          iv.hi() == kInf
              ? dim.ends.size()
              : static_cast<std::size_t>(
                    std::lower_bound(dim.ends.begin(), dim.ends.end(), iv.hi()) -
                    dim.ends.begin());
      const std::size_t w = static_cast<std::size_t>(id) / 64;
      const std::uint64_t bit = std::uint64_t{1}
                                << (static_cast<std::size_t>(id) % 64);
      for (std::size_t j = first; j <= last; ++j)
        dim.rows[j * words_ + w] |= bit;
    }
  }
}

void SlabIndex::stab(const Point& p, std::vector<int>& out,
                     std::vector<std::uint64_t>& tmp) const {
  out.clear();
  if (size_ == 0 || p.size() < dims_.size()) return;
  tmp.resize(words_);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    // Piece index: first endpoint >= x (the piece's closed upper bound).
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(dim.ends.begin(), dim.ends.end(), p[d]) -
        dim.ends.begin());
    const std::uint64_t* row = &dim.rows[j * words_];
    if (d == 0) {
      std::copy(row, row + words_, tmp.begin());
    } else {
      for (std::size_t w = 0; w < words_; ++w) tmp[w] &= row[w];
    }
  }
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t word = tmp[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(static_cast<int>(w * 64 + static_cast<std::size_t>(b)));
      word &= word - 1;
    }
  }
}

}  // namespace pubsub
