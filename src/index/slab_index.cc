#include "index/slab_index.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace pubsub {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SlabIndex::SlabIndex(const std::vector<std::pair<Rect, int>>& items,
                     std::size_t universe)
    : SlabIndex(items, universe, MaintenanceOptions()) {}

SlabIndex::SlabIndex(const std::vector<std::pair<Rect, int>>& items,
                     std::size_t universe, MaintenanceOptions maint)
    : maint_(maint) {
  universe_ = universe;
  words_ = (universe + 63) / 64;
  stride_ = words_;
  rects_.assign(universe, Rect());
  for (const auto& [rect, id] : items) {
    if (rect.empty()) continue;
    if (id < 0 || static_cast<std::size_t>(id) >= universe)
      throw std::invalid_argument("SlabIndex: id outside universe");
    if (!rects_[static_cast<std::size_t>(id)].empty() &&
        rects_[static_cast<std::size_t>(id)].dims() > 0)
      throw std::invalid_argument("SlabIndex: duplicate id");
    if (ndims_ == 0) ndims_ = rect.dims();
    if (rect.dims() != ndims_)
      throw std::invalid_argument("SlabIndex: mixed dimensionality");
    rects_[static_cast<std::size_t>(id)] = rect;
    ++size_;
  }
  std::vector<std::pair<Rect, int>> live;
  live.reserve(size_);
  for (std::size_t i = 0; i < rects_.size(); ++i)
    if (rects_[i].dims() > 0 && !rects_[i].empty())
      live.emplace_back(rects_[i], static_cast<int>(i));
  bulk_build(live);
}

// Derives the full elementary-piece table for `items` (all resident, same
// dimensionality, ids in range).  Leaves the endpoint table compact: every
// endpoint referenced, no dead entries, piece j in slot j.
void SlabIndex::bulk_build(const std::vector<std::pair<Rect, int>>& items) {
  dims_.clear();
  ends_total_ = 0;
  dead_ends_ = 0;
  if (items.empty()) {
    ndims_ = 0;  // an emptied index may adopt a new dimensionality
    return;
  }

  dims_.resize(ndims_);
  for (std::size_t d = 0; d < ndims_; ++d) {
    Dim& dim = dims_[d];
    for (const auto& [rect, id] : items) {
      const Interval& iv = rect[d];
      if (iv.lo() != -kInf) dim.ends.push_back(iv.lo());
      if (iv.hi() != kInf) dim.ends.push_back(iv.hi());
    }
    std::sort(dim.ends.begin(), dim.ends.end());
    dim.ends.erase(std::unique(dim.ends.begin(), dim.ends.end()),
                   dim.ends.end());
    ends_total_ += dim.ends.size();

    dim.refs.assign(dim.ends.size(), 0);
    dim.row_of.resize(dim.ends.size() + 1);
    for (std::size_t j = 0; j < dim.row_of.size(); ++j)
      dim.row_of[j] = static_cast<std::uint32_t>(j);
    dim.pool.assign(dim.row_of.size() * stride_, 0);

    // Piece j is (e_{j-1}, e_j]; j ranges over [0, ends.size()].  An
    // interval (lo, hi] covers exactly the pieces whose bounds it encloses:
    // index(lo)+1 … index(hi) (unbounded ends extend to the edge pieces).
    for (const auto& [rect, id] : items) {
      const Interval& iv = rect[d];
      const auto [first, last] = covered_range(dim, iv.lo(), iv.hi());
      if (iv.lo() != -kInf)
        ++dim.refs[static_cast<std::size_t>(
            std::lower_bound(dim.ends.begin(), dim.ends.end(), iv.lo()) -
            dim.ends.begin())];
      if (iv.hi() != kInf)
        ++dim.refs[static_cast<std::size_t>(
            std::lower_bound(dim.ends.begin(), dim.ends.end(), iv.hi()) -
            dim.ends.begin())];
      const std::size_t w = static_cast<std::size_t>(id) / 64;
      const std::uint64_t bit = std::uint64_t{1}
                                << (static_cast<std::size_t>(id) % 64);
      for (std::size_t j = first; j <= last; ++j) row(dim, j)[w] |= bit;
    }
  }
}

void SlabIndex::adopt_dims(std::size_t ndims) {
  ndims_ = ndims;
  dims_.assign(ndims, Dim{});
  for (Dim& dim : dims_) {
    // One piece (-inf, +inf) with an all-zero row.
    dim.row_of.assign(1, 0);
    dim.pool.assign(stride_, 0);
  }
}

void SlabIndex::grow_universe(std::size_t min_universe) {
  if (min_universe <= universe_) return;
  universe_ = min_universe;
  rects_.resize(universe_);
  const std::size_t needed = (universe_ + 63) / 64;
  if (needed <= stride_) {
    words_ = needed;
    return;
  }
  // Re-stride every slot pool; doubling amortizes the copies to O(1) per
  // inserted id.
  const std::size_t new_stride = std::max(needed, stride_ * 2);
  for (Dim& dim : dims_) {
    std::vector<std::uint64_t> pool(dim.pool.size() / std::max<std::size_t>(stride_, 1) * new_stride, 0);
    const std::size_t slots = stride_ == 0 ? 0 : dim.pool.size() / stride_;
    for (std::size_t s = 0; s < slots; ++s)
      std::copy(dim.pool.begin() + static_cast<std::ptrdiff_t>(s * stride_),
                dim.pool.begin() + static_cast<std::ptrdiff_t>(s * stride_ + words_),
                pool.begin() + static_cast<std::ptrdiff_t>(s * new_stride));
    dim.pool = std::move(pool);
  }
  stride_ = new_stride;
  words_ = needed;
}

std::pair<std::size_t, std::size_t> SlabIndex::covered_range(const Dim& dim,
                                                             double lo,
                                                             double hi) const {
  const std::size_t first =
      lo == -kInf
          ? 0
          : static_cast<std::size_t>(
                std::lower_bound(dim.ends.begin(), dim.ends.end(), lo) -
                dim.ends.begin()) +
                1;
  const std::size_t last =
      hi == kInf
          ? dim.ends.size()
          : static_cast<std::size_t>(
                std::lower_bound(dim.ends.begin(), dim.ends.end(), hi) -
                dim.ends.begin());
  return {first, last};
}

// Reference endpoint `v`, splicing it into the piece decomposition if new.
void SlabIndex::add_endpoint(Dim& dim, double v) {
  const std::size_t k = static_cast<std::size_t>(
      std::lower_bound(dim.ends.begin(), dim.ends.end(), v) - dim.ends.begin());
  if (k < dim.ends.size() && dim.ends[k] == v) {
    if (dim.refs[k] == 0) --dead_ends_;
    ++dim.refs[k];
    return;
  }
  // Split piece k = (e_{k-1}, e_k] at v.  Membership is constant on the
  // piece, so both halves carry the old row: allocate a slot copying it and
  // splice the slot index in — O(pieces) index moves, one row copy.
  const std::size_t src = dim.row_of[k];
  const std::uint32_t slot =
      static_cast<std::uint32_t>(dim.pool.size() / std::max<std::size_t>(stride_, 1));
  dim.pool.resize(dim.pool.size() + stride_, 0);
  std::copy(dim.pool.begin() + static_cast<std::ptrdiff_t>(src * stride_),
            dim.pool.begin() + static_cast<std::ptrdiff_t>(src * stride_ + words_),
            dim.pool.begin() + static_cast<std::ptrdiff_t>(
                static_cast<std::size_t>(slot) * stride_));
  dim.ends.insert(dim.ends.begin() + static_cast<std::ptrdiff_t>(k), v);
  dim.refs.insert(dim.refs.begin() + static_cast<std::ptrdiff_t>(k), 1);
  dim.row_of.insert(dim.row_of.begin() + static_cast<std::ptrdiff_t>(k), slot);
  ++ends_total_;
  ++splices_;
}

void SlabIndex::drop_endpoint(Dim& dim, double v) {
  const std::size_t k = static_cast<std::size_t>(
      std::lower_bound(dim.ends.begin(), dim.ends.end(), v) - dim.ends.begin());
  if (k >= dim.ends.size() || dim.ends[k] != v || dim.refs[k] == 0)
    throw std::logic_error("SlabIndex: endpoint bookkeeping corrupted");
  if (--dim.refs[k] == 0) ++dead_ends_;  // left in place until rebuild
}

void SlabIndex::insert(const Rect& rect, int id) {
  if (id < 0) throw std::invalid_argument("SlabIndex: negative id");
  if (contains(id)) throw std::invalid_argument("SlabIndex: duplicate id");
  if (rect.empty()) return;  // contains no point: nothing to index
  if (ndims_ != 0 && rect.dims() != ndims_)
    throw std::invalid_argument("SlabIndex: mixed dimensionality");
  grow_universe(static_cast<std::size_t>(id) + 1);
  if (ndims_ == 0) adopt_dims(rect.dims());

  const std::size_t w = static_cast<std::size_t>(id) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(id) % 64);
  for (std::size_t d = 0; d < ndims_; ++d) {
    Dim& dim = dims_[d];
    const Interval& iv = rect[d];
    if (iv.lo() != -kInf) add_endpoint(dim, iv.lo());
    if (iv.hi() != kInf) add_endpoint(dim, iv.hi());
    const auto [first, last] = covered_range(dim, iv.lo(), iv.hi());
    for (std::size_t j = first; j <= last; ++j) row(dim, j)[w] |= bit;
  }
  rects_[static_cast<std::size_t>(id)] = rect;
  ++size_;
}

bool SlabIndex::erase(int id) {
  if (!contains(id)) return false;
  const Rect rect = rects_[static_cast<std::size_t>(id)];
  const std::size_t w = static_cast<std::size_t>(id) / 64;
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(id) % 64);
  for (std::size_t d = 0; d < ndims_; ++d) {
    Dim& dim = dims_[d];
    const Interval& iv = rect[d];
    const auto [first, last] = covered_range(dim, iv.lo(), iv.hi());
    for (std::size_t j = first; j <= last; ++j) row(dim, j)[w] &= ~bit;
    if (iv.lo() != -kInf) drop_endpoint(dim, iv.lo());
    if (iv.hi() != kInf) drop_endpoint(dim, iv.hi());
  }
  rects_[static_cast<std::size_t>(id)] = Rect();
  --size_;
  if (size_ == 0) {
    // Drop the piece tables outright: an emptied index may adopt a new
    // dimensionality on its next insert (mirrors bulk_build's empty case).
    dims_.clear();
    ndims_ = 0;
    ends_total_ = 0;
    dead_ends_ = 0;
    return true;
  }
  maybe_rebuild();
  return true;
}

void SlabIndex::update(const Rect& rect, int id) {
  erase(id);
  insert(rect, id);
}

void SlabIndex::maybe_rebuild() {
  if (dead_ends_ < maint_.min_dead_endpoints) return;
  const std::size_t live = ends_total_ - dead_ends_;
  if (static_cast<double>(dead_ends_) <=
      maint_.bloat_factor * static_cast<double>(live))
    return;
  std::vector<std::pair<Rect, int>> live_items;
  live_items.reserve(size_);
  for (std::size_t i = 0; i < rects_.size(); ++i)
    if (rects_[i].dims() > 0 && !rects_[i].empty())
      live_items.emplace_back(rects_[i], static_cast<int>(i));
  stride_ = words_;  // compact slot storage along with the endpoint table
  bulk_build(live_items);
  ++rebuilds_;
}

void SlabIndex::stab(const Point& p, std::vector<int>& out,
                     std::vector<std::uint64_t>& tmp) const {
  out.clear();
  if (size_ == 0 || p.size() < dims_.size()) return;
  tmp.resize(words_);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    // Piece index: first endpoint >= x (the piece's closed upper bound).
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(dim.ends.begin(), dim.ends.end(), p[d]) -
        dim.ends.begin());
    const std::uint64_t* r = row(dim, j);
    if (d == 0) {
      std::copy(r, r + words_, tmp.begin());
    } else {
      for (std::size_t w = 0; w < words_; ++w) tmp[w] &= r[w];
    }
  }
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t word = tmp[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(static_cast<int>(w * 64 + static_cast<std::size_t>(b)));
      word &= word - 1;
    }
  }
}

}  // namespace pubsub
