#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "index/rtree_split.h"

namespace pubsub {

using rtree_detail::CheckInsertable;
using rtree_detail::Enlargement;
using rtree_detail::Measure;
using rtree_detail::QuadraticSplit;

struct RTree::Node {
  struct LeafEntry {
    Rect rect;
    int id;
  };

  Rect mbr;
  bool leaf = true;
  std::vector<LeafEntry> entries;                 // leaf only
  std::vector<std::unique_ptr<Node>> children;    // internal only

  std::size_t fanout() const { return leaf ? entries.size() : children.size(); }

  void recompute_mbr() {
    Rect m;
    if (leaf) {
      for (const LeafEntry& e : entries) m = m.dims() == 0 ? e.rect : m.hull(e.rect);
    } else {
      for (const auto& c : children) m = m.dims() == 0 ? c->mbr : m.hull(c->mbr);
    }
    mbr = m;
  }
};

RTree::RTree(std::size_t max_entries)
    : max_entries_(max_entries), min_entries_(std::max<std::size_t>(2, max_entries / 3)) {
  if (max_entries < 4) throw std::invalid_argument("RTree: max_entries must be >= 4");
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::insert(const Rect& r, int id) {
  CheckInsertable(r);
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->leaf = true;
  }

  // Recursive insert; returns a new sibling if the child split.
  struct Inserter {
    RTree& tree;

    std::unique_ptr<Node> insert(Node& node, const Rect& r, int id) {
      node.mbr = node.fanout() == 0 ? r : node.mbr.hull(r);
      if (node.leaf) {
        node.entries.push_back(Node::LeafEntry{r, id});
        if (node.entries.size() <= tree.max_entries_) return nullptr;
        return split_leaf(node);
      }

      // Choose the child needing least enlargement (ties: smaller measure).
      Node* best = nullptr;
      double best_enl = std::numeric_limits<double>::infinity();
      double best_measure = std::numeric_limits<double>::infinity();
      for (const auto& c : node.children) {
        const double enl = Enlargement(c->mbr, r);
        const double m = Measure(c->mbr);
        if (enl < best_enl || (enl == best_enl && m < best_measure)) {
          best_enl = enl;
          best_measure = m;
          best = c.get();
        }
      }
      std::unique_ptr<Node> sibling = insert(*best, r, id);
      if (sibling) {
        node.children.push_back(std::move(sibling));
        if (node.children.size() > tree.max_entries_) return split_internal(node);
      }
      return nullptr;
    }

    std::unique_ptr<Node> split_leaf(Node& node) {
      std::vector<Node::LeafEntry> items = std::move(node.entries);
      node.entries.clear();
      auto sibling = std::make_unique<Node>();
      sibling->leaf = true;
      QuadraticSplit(items, node.entries, sibling->entries, tree.min_entries_,
                     [](const Node::LeafEntry& e) -> const Rect& { return e.rect; });
      node.recompute_mbr();
      sibling->recompute_mbr();
      return sibling;
    }

    std::unique_ptr<Node> split_internal(Node& node) {
      std::vector<std::unique_ptr<Node>> items = std::move(node.children);
      node.children.clear();
      auto sibling = std::make_unique<Node>();
      sibling->leaf = false;
      QuadraticSplit(items, node.children, sibling->children, tree.min_entries_,
                     [](const std::unique_ptr<Node>& n) -> const Rect& { return n->mbr; });
      node.recompute_mbr();
      sibling->recompute_mbr();
      return sibling;
    }
  };

  Inserter inserter{*this};
  std::unique_ptr<Node> sibling = inserter.insert(*root_, r, id);
  if (sibling) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->recompute_mbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

bool RTree::erase(const Rect& r, int id) {
  if (!root_) return false;

  // Recursive find-and-remove; collects leaf entries of nodes that fall
  // below the minimum fill so they can be re-inserted afterwards.
  std::vector<Node::LeafEntry> orphans;

  auto collect_leaves = [&orphans](auto&& self, Node& node) -> void {
    if (node.leaf) {
      for (Node::LeafEntry& e : node.entries) orphans.push_back(std::move(e));
      return;
    }
    for (const auto& c : node.children) self(self, *c);
  };

  auto remove = [&](auto&& self, Node& node) -> bool {
    if (!node.mbr.contains(r)) return false;
    if (node.leaf) {
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].id == id && node.entries[i].rect == r) {
          node.entries.erase(node.entries.begin() + static_cast<std::ptrdiff_t>(i));
          node.recompute_mbr();
          return true;
        }
      }
      return false;
    }
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (!self(self, *node.children[i])) continue;
      // Condense: dissolve an underfull child into the orphan pool.
      if (node.children[i]->fanout() < min_entries_) {
        collect_leaves(collect_leaves, *node.children[i]);
        node.children.erase(node.children.begin() + static_cast<std::ptrdiff_t>(i));
      }
      node.recompute_mbr();
      return true;
    }
    return false;
  };

  if (!remove(remove, *root_)) return false;
  --size_;

  // Shrink the root: an internal root with one child is replaced by it; a
  // root that lost everything is dropped.
  while (!root_->leaf && root_->children.size() == 1)
    root_ = std::move(root_->children.front());
  if (root_->fanout() == 0 && orphans.empty()) root_.reset();

  // Re-insert orphans (size_ is restored entry by entry).
  size_ -= orphans.size();
  for (Node::LeafEntry& e : orphans) insert(e.rect, e.id);
  return true;
}

RTree RTree::BulkLoad(std::vector<std::pair<Rect, int>> items, std::size_t max_entries) {
  RTree tree(max_entries);
  if (items.empty()) return tree;
  for (const auto& item : items) CheckInsertable(item.first);

  const std::size_t dims = items[0].first.dims();

  // Sort-Tile-Recursive leaf packing.
  std::vector<std::unique_ptr<Node>> level;
  auto center = [](const Rect& r, std::size_t d) {
    return 0.5 * (r[d].lo() + r[d].hi());
  };

  using Iter = std::vector<std::pair<Rect, int>>::iterator;
  auto pack = [&](auto&& self, Iter begin, Iter end, std::size_t dim) -> void {
    const std::size_t n = static_cast<std::size_t>(end - begin);
    if (dim + 1 >= dims || n <= max_entries) {
      std::sort(begin, end, [&](const auto& a, const auto& b) {
        return center(a.first, dim) < center(b.first, dim);
      });
      for (Iter it = begin; it < end; it += static_cast<std::ptrdiff_t>(
               std::min<std::size_t>(max_entries, static_cast<std::size_t>(end - it)))) {
        const std::size_t take = std::min<std::size_t>(max_entries, static_cast<std::size_t>(end - it));
        auto leaf = std::make_unique<Node>();
        leaf->leaf = true;
        for (std::size_t i = 0; i < take; ++i)
          leaf->entries.push_back(Node::LeafEntry{(it + static_cast<std::ptrdiff_t>(i))->first,
                                                  (it + static_cast<std::ptrdiff_t>(i))->second});
        leaf->recompute_mbr();
        level.push_back(std::move(leaf));
      }
      return;
    }
    std::sort(begin, end, [&](const auto& a, const auto& b) {
      return center(a.first, dim) < center(b.first, dim);
    });
    const std::size_t slabs = rtree_detail::StrSlabCount(n, max_entries, dims, dim);
    const std::size_t slab_size = (n + slabs - 1) / slabs;
    for (Iter it = begin; it < end;) {
      const std::size_t take = std::min<std::size_t>(slab_size, static_cast<std::size_t>(end - it));
      self(self, it, it + static_cast<std::ptrdiff_t>(take), dim + 1);
      it += static_cast<std::ptrdiff_t>(take);
    }
  };
  pack(pack, items.begin(), items.end(), 0);

  // Build upper levels by grouping consecutive nodes.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (std::size_t i = 0; i < level.size();) {
      const std::size_t take = std::min(max_entries, level.size() - i);
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (std::size_t j = 0; j < take; ++j)
        parent->children.push_back(std::move(level[i + j]));
      parent->recompute_mbr();
      parents.push_back(std::move(parent));
      i += take;
    }
    level = std::move(parents);
  }
  tree.root_ = std::move(level.front());
  tree.size_ = items.size();
  return tree;
}

void RTree::stab(const Point& p, std::vector<int>& out) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.contains(p)) continue;
    if (node->leaf) {
      for (const Node::LeafEntry& e : node->entries)
        if (e.rect.contains(p)) out.push_back(e.id);
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

void RTree::stab(const Point& p, std::vector<int>& out,
                 std::vector<const void*>& stack) const {
  if (!root_) return;
  stack.clear();
  stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* node = static_cast<const Node*>(stack.back());
    stack.pop_back();
    if (!node->mbr.contains(p)) continue;
    if (node->leaf) {
      for (const Node::LeafEntry& e : node->entries)
        if (e.rect.contains(p)) out.push_back(e.id);
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

void RTree::intersecting(const Rect& r, std::vector<int>& out) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.intersects(r)) continue;
    if (node->leaf) {
      for (const Node::LeafEntry& e : node->entries)
        if (e.rect.intersects(r)) out.push_back(e.id);
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

void RTree::containing(const Rect& r, std::vector<int>& out) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    // A node can only hold an entry containing r if its MBR contains r.
    if (!node->mbr.contains(r)) continue;
    if (node->leaf) {
      for (const Node::LeafEntry& e : node->entries)
        if (e.rect.contains(r)) out.push_back(e.id);
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

int RTree::height() const {
  int h = 0;
  for (const Node* n = root_.get(); n != nullptr;
       n = n->leaf ? nullptr : n->children.front().get())
    ++h;
  return h;
}

bool RTree::check_invariants() const {
  if (!root_) return size_ == 0;

  std::size_t entries = 0;
  int leaf_depth = -1;
  bool ok = true;

  auto walk = [&](auto&& self, const Node& node, int depth, bool is_root) -> void {
    if (!is_root && (node.fanout() < min_entries_ || node.fanout() > max_entries_)) {
      // Bulk-loaded rightmost nodes may legitimately be under-filled; only
      // an *empty* non-root node is always a structural error.
      if (node.fanout() == 0) ok = false;
    }
    if (node.fanout() > max_entries_) ok = false;
    if (node.leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (depth != leaf_depth) ok = false;
      entries += node.entries.size();
      for (const Node::LeafEntry& e : node.entries)
        if (!node.mbr.contains(e.rect)) ok = false;
    } else {
      if (node.children.empty()) ok = false;
      for (const auto& c : node.children) {
        if (!node.mbr.contains(c->mbr)) ok = false;
        self(self, *c, depth + 1, false);
      }
    }
  };
  walk(walk, *root_, 0, true);
  return ok && entries == size_;
}

}  // namespace pubsub
