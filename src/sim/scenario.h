// Pre-packaged experiment scenarios: the §3 preliminary-analysis setup and
// the §5.1 stock-market setup, bundling topology, subscriptions and the
// publication model under one seed.  Benches and examples build these and
// then attach a DeliverySimulator.
#pragma once

#include <cstdint>
#include <memory>

#include "net/transit_stub.h"
#include "workload/publication_model.h"
#include "workload/section3.h"
#include "workload/stock_model.h"

namespace pubsub {

struct Scenario {
  TransitStubNetwork net;
  Workload workload;
  std::unique_ptr<PublicationModel> pub;
};

// §3 model on one of the paper's network shapes.
Scenario MakeSection3Scenario(const TransitStubParams& shape, int num_subscriptions,
                              const Section3Params& params, std::uint64_t seed);

// §5.1 stock model on the 3-block 600-node network.
Scenario MakeStockScenario(int num_subscriptions, PublicationHotSpots hot_spots,
                           std::uint64_t seed,
                           const StockModelParams& params = {},
                           const TransitStubParams& shape = PaperNetSection5());

}  // namespace pubsub
