#include "sim/hybrid.h"

#include <algorithm>

namespace pubsub {

HybridCosts EvaluateHybrid(DeliverySimulator& sim,
                           std::span<const EventSample> events,
                           const MatchFn& match, HybridPolicy policy,
                           const HybridRuleParams& params) {
  HybridCosts out;
  const std::size_t ns = sim.workload().num_subscribers();

  for (const EventSample& e : events) {
    const MatchDecision d = match(e.pub.point, e.interested);

    // The three candidate deliveries for this event.
    const double unicast = sim.unicast_cost(e.pub.origin, e.interested);
    const double broadcast = sim.broadcast_cost(e.pub.origin);
    // Multicast candidate: the matcher's decision (group + residual
    // unicasts); a pure-unicast decision makes this identical to unicast.
    MatchDecision multicast_decision = d;
    if (d.group_id < 0) multicast_decision.unicast_targets = e.interested;
    const double multicast = sim.clustered_cost_network(e.pub.origin,
                                                        multicast_decision);

    enum class Choice { kUnicast, kMulticast, kBroadcast };
    Choice choice;
    if (policy == HybridPolicy::kOracle) {
      choice = Choice::kMulticast;
      double best = multicast;
      if (unicast < best) {
        best = unicast;
        choice = Choice::kUnicast;
      }
      if (broadcast < best) {
        best = broadcast;
        choice = Choice::kBroadcast;
      }
    } else {
      const double interested = static_cast<double>(e.interested.size());
      if (interested >= params.broadcast_fraction * static_cast<double>(ns)) {
        choice = Choice::kBroadcast;
      } else if (e.interested.size() <= params.unicast_max || d.group_id < 0) {
        choice = Choice::kUnicast;
      } else if (interested < params.min_group_utilization *
                                  static_cast<double>(d.group_members.size())) {
        choice = Choice::kUnicast;
      } else {
        choice = Choice::kMulticast;
      }
    }

    switch (choice) {
      case Choice::kUnicast:
        out.network += unicast;
        ++out.chose_unicast;
        break;
      case Choice::kMulticast:
        out.network += multicast;
        ++out.chose_multicast;
        break;
      case Choice::kBroadcast:
        out.network += broadcast;
        ++out.chose_broadcast;
        break;
    }
  }
  return out;
}

}  // namespace pubsub
