// Dynamic unicast / multicast / broadcast selection (paper abstract:
// "determine dynamically whether to unicast, multicast or broadcast
// information about the events over the network to the matched
// subscribers").
//
// Two deciders are provided:
//
//   * kOracle — price all three options for the event and take the
//     cheapest.  Needs the simulator (i.e., global knowledge); this is the
//     lower envelope of the three pure strategies and bounds what any
//     realtime rule can achieve.
//   * kRule — a realtime-implementable rule using only information the
//     matcher already has: the interested count and the matched group
//     size.  Broadcast when the interested set covers most subscribers;
//     unicast when it is tiny or when most of the group would be waste;
//     multicast otherwise.  Thresholds are tunable.
//
// EvaluateHybrid replays an event stream under a decider and reports the
// usual paired costs plus the per-strategy decision mix.
#pragma once

#include <cstddef>
#include <span>

#include "core/matching.h"
#include "sim/delivery.h"
#include "sim/experiment.h"

namespace pubsub {

enum class HybridPolicy { kOracle, kRule };

struct HybridRuleParams {
  // Broadcast when |interested| >= broadcast_fraction * N_S.
  double broadcast_fraction = 0.5;
  // Unicast when |interested| <= unicast_max (absolute count) …
  std::size_t unicast_max = 2;
  // … or when the matched group is mostly waste:
  // |interested| < min_group_utilization * |group|.
  double min_group_utilization = 0.02;
};

struct HybridCosts {
  double network = 0.0;
  std::size_t chose_unicast = 0;
  std::size_t chose_multicast = 0;
  std::size_t chose_broadcast = 0;
};

// `match` supplies the (grid or no-loss) decision whose group is the
// multicast candidate for each event.
HybridCosts EvaluateHybrid(DeliverySimulator& sim,
                           std::span<const EventSample> events,
                           const MatchFn& match, HybridPolicy policy,
                           const HybridRuleParams& params = {});

}  // namespace pubsub
