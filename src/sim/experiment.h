// Experiment harness: shared event sampling, baseline evaluation and the
// paper's "improvement percentage" normalization (§5.2):
//
//   0 %   improvement = unicast cost,
//   100 % improvement = ideal multicast cost (per-event exact groups),
//   improvement(c)    = (unicast − c) / (unicast − ideal) · 100.
//
// All strategies are evaluated over the *same* pre-sampled event stream so
// comparisons are paired.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/matching.h"
#include "sim/delivery.h"
#include "workload/publication_model.h"

namespace pubsub {

struct EventSample {
  Publication pub;
  std::vector<SubscriberId> interested;
};

// Draw `count` events and precompute their interested sets.
std::vector<EventSample> SampleEvents(const DeliverySimulator& sim,
                                      const PublicationModel& model,
                                      std::size_t count, Rng& rng);

struct BaselineCosts {
  double unicast = 0.0;
  double broadcast = 0.0;
  double ideal = 0.0;      // network-supported, per-event exact groups
  double ideal_app = 0.0;  // application-level flavor
  std::size_t events = 0;
};

BaselineCosts EvaluateBaselines(DeliverySimulator& sim,
                                std::span<const EventSample> events,
                                bool with_applevel_ideal = false);

// (unicast − cost) / (unicast − ideal) · 100; clamps nothing — a strategy
// worse than unicast reports a negative improvement, as in the paper's
// plots.
double ImprovementPercent(double cost, const BaselineCosts& base);

// Aggregate result of running one matcher over an event stream.
struct ClusteredCosts {
  double network = 0.0;   // network-supported multicast delivery cost
  double applevel = 0.0;  // application-level delivery cost
  std::size_t multicast_events = 0;
  std::size_t unicast_events = 0;
  std::size_t wasted_deliveries = 0;  // messages to uninterested subscribers
};

using MatchFn =
    std::function<MatchDecision(const Point&, std::span<const SubscriberId>)>;

// Match decisions are computed in a batch over ThreadPool::global() (cost
// accumulation stays serial and in event order, so totals are
// bit-identical for any thread count).  When the global pool has more than
// one thread, `match` must be safe to invoke concurrently — the built-in
// matchers are; a stateful custom lambda is only safe at --threads=1.
ClusteredCosts EvaluateMatcher(DeliverySimulator& sim,
                               std::span<const EventSample> events,
                               const MatchFn& match);

inline MatchFn MatcherFn(const GridMatcher& m) {
  return [&m](const Point& p, std::span<const SubscriberId> interested) {
    return m.match(p, interested);
  };
}
inline MatchFn MatcherFn(const NoLossMatcher& m) {
  return [&m](const Point& p, std::span<const SubscriberId> interested) {
    return m.match(p, interested);
  };
}

}  // namespace pubsub
