#include "sim/experiment.h"

namespace pubsub {

std::vector<EventSample> SampleEvents(const DeliverySimulator& sim,
                                      const PublicationModel& model,
                                      std::size_t count, Rng& rng) {
  std::vector<EventSample> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EventSample e;
    e.pub = model.sample(rng);
    e.interested = sim.interested(e.pub.point);
    events.push_back(std::move(e));
  }
  return events;
}

BaselineCosts EvaluateBaselines(DeliverySimulator& sim,
                                std::span<const EventSample> events,
                                bool with_applevel_ideal) {
  BaselineCosts base;
  base.events = events.size();
  for (const EventSample& e : events) {
    base.unicast += sim.unicast_cost(e.pub.origin, e.interested);
    base.broadcast += sim.broadcast_cost(e.pub.origin);
    base.ideal += sim.ideal_cost(e.pub.origin, e.interested);
    if (with_applevel_ideal)
      base.ideal_app += sim.ideal_cost_applevel(e.pub.origin, e.interested);
  }
  return base;
}

double ImprovementPercent(double cost, const BaselineCosts& base) {
  const double denom = base.unicast - base.ideal;
  if (denom <= 0.0) return 0.0;
  return (base.unicast - cost) / denom * 100.0;
}

ClusteredCosts EvaluateMatcher(DeliverySimulator& sim,
                               std::span<const EventSample> events,
                               const MatchFn& match) {
  ClusteredCosts out;
  for (const EventSample& e : events) {
    const MatchDecision d = match(e.pub.point, e.interested);
    out.network += sim.clustered_cost_network(e.pub.origin, d);
    out.applevel += sim.clustered_cost_applevel(e.pub.origin, d);
    if (d.group_id >= 0) {
      ++out.multicast_events;
      out.wasted_deliveries += DeliverySimulator::wasted_deliveries(d, e.interested);
    } else {
      ++out.unicast_events;
    }
  }
  return out;
}

}  // namespace pubsub
