#include "sim/experiment.h"

#include "util/thread_pool.h"

namespace pubsub {

std::vector<EventSample> SampleEvents(const DeliverySimulator& sim,
                                      const PublicationModel& model,
                                      std::size_t count, Rng& rng) {
  // Sampling consumes the Rng serially (the stream must not depend on the
  // thread count); the interested-set stabbing queries are pure per-event
  // lookups and fan out across the pool.
  std::vector<EventSample> events(count);
  for (std::size_t i = 0; i < count; ++i) events[i].pub = model.sample(rng);
  ParallelFor(
      count,
      [&](std::size_t i) { events[i].interested = sim.interested(events[i].pub.point); },
      /*min_parallel=*/16);
  return events;
}

BaselineCosts EvaluateBaselines(DeliverySimulator& sim,
                                std::span<const EventSample> events,
                                bool with_applevel_ideal) {
  BaselineCosts base;
  base.events = events.size();
  for (const EventSample& e : events) {
    base.unicast += sim.unicast_cost(e.pub.origin, e.interested);
    base.broadcast += sim.broadcast_cost(e.pub.origin);
    base.ideal += sim.ideal_cost(e.pub.origin, e.interested);
    if (with_applevel_ideal)
      base.ideal_app += sim.ideal_cost_applevel(e.pub.origin, e.interested);
  }
  return base;
}

double ImprovementPercent(double cost, const BaselineCosts& base) {
  const double denom = base.unicast - base.ideal;
  if (denom <= 0.0) return 0.0;
  return (base.unicast - cost) / denom * 100.0;
}

ClusteredCosts EvaluateMatcher(DeliverySimulator& sim,
                               std::span<const EventSample> events,
                               const MatchFn& match) {
  // Phase 1 (parallel): per-event match decisions.  Matchers are const and
  // pure, so each slot write is independent and the decisions are identical
  // for any thread count.  Phase 2 (serial, event order): cost accumulation
  // — the simulator caches shortest-path trees, and summing doubles in a
  // fixed order keeps the totals bit-identical.
  std::vector<MatchDecision> decisions(events.size());
  ParallelFor(
      events.size(),
      [&](std::size_t i) {
        decisions[i] = match(events[i].pub.point, events[i].interested);
      },
      /*min_parallel=*/16);

  ClusteredCosts out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventSample& e = events[i];
    const MatchDecision& d = decisions[i];
    out.network += sim.clustered_cost_network(e.pub.origin, d);
    out.applevel += sim.clustered_cost_applevel(e.pub.origin, d);
    if (d.group_id >= 0) {
      ++out.multicast_events;
      out.wasted_deliveries += DeliverySimulator::wasted_deliveries(d, e.interested);
    } else {
      ++out.unicast_events;
    }
  }
  return out;
}

}  // namespace pubsub
