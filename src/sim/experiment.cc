#include "sim/experiment.h"

#include <deque>
#include <mutex>

#include "util/thread_pool.h"

namespace pubsub {

namespace {
// Minimum events per chunk for the batch-match fan-out.  A match is cheap
// (one stab + a few comparisons), so without a floor an 8-lane split of a
// small batch pays more in wakeups than it saves in work.
constexpr std::size_t kMatchGrain = 256;
}  // namespace

std::vector<EventSample> SampleEvents(const DeliverySimulator& sim,
                                      const PublicationModel& model,
                                      std::size_t count, Rng& rng) {
  // Sampling consumes the Rng serially (the stream must not depend on the
  // thread count); the interested-set stabbing queries are pure per-event
  // lookups and fan out across the pool.
  std::vector<EventSample> events(count);
  for (std::size_t i = 0; i < count; ++i) events[i].pub = model.sample(rng);
  ParallelFor(
      count,
      [&](std::size_t i) { events[i].interested = sim.interested(events[i].pub.point); },
      /*min_parallel=*/16, /*grain=*/64);
  return events;
}

BaselineCosts EvaluateBaselines(DeliverySimulator& sim,
                                std::span<const EventSample> events,
                                bool with_applevel_ideal) {
  BaselineCosts base;
  base.events = events.size();
  for (const EventSample& e : events) {
    base.unicast += sim.unicast_cost(e.pub.origin, e.interested);
    base.broadcast += sim.broadcast_cost(e.pub.origin);
    base.ideal += sim.ideal_cost(e.pub.origin, e.interested);
    if (with_applevel_ideal)
      base.ideal_app += sim.ideal_cost_applevel(e.pub.origin, e.interested);
  }
  return base;
}

double ImprovementPercent(double cost, const BaselineCosts& base) {
  const double denom = base.unicast - base.ideal;
  if (denom <= 0.0) return 0.0;
  return (base.unicast - cost) / denom * 100.0;
}

ClusteredCosts EvaluateMatcher(DeliverySimulator& sim,
                               std::span<const EventSample> events,
                               const MatchFn& match) {
  // Phase 1 (parallel, chunked): per-event match decisions.  A decision's
  // unicast span may alias the matching thread's scratch, which the same
  // thread's *next* match clobbers — so each chunk copies its unicast ids
  // into a chunk-local pool before moving on.  Slot writes to `metas` are a
  // pure per-index map and the chunk pools are append-only within a chunk,
  // so the per-event content is identical for any thread count or grain.
  // Phase 2 (serial, event order): cost accumulation — the simulator caches
  // shortest-path trees, and summing doubles in a fixed order keeps the
  // totals bit-identical.
  struct Meta {
    int group_id = -1;
    std::span<const SubscriberId> group_members;  // stable: points into matcher
    const std::vector<SubscriberId>* pool = nullptr;
    std::size_t uni_off = 0;
    std::size_t uni_len = 0;
  };
  std::vector<Meta> metas(events.size());
  std::deque<std::vector<SubscriberId>> pools;  // deque: stable element addresses
  std::mutex pools_mu;
  ParallelForChunks(
      events.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<SubscriberId>* pool;
        {
          std::lock_guard<std::mutex> lock(pools_mu);
          pool = &pools.emplace_back();
        }
        pool->reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const MatchDecision d =
              match(events[i].pub.point, events[i].interested);
          Meta& m = metas[i];
          m.group_id = d.group_id;
          m.group_members = d.group_members;
          m.pool = pool;
          m.uni_off = pool->size();
          pool->insert(pool->end(), d.unicast_targets.begin(),
                       d.unicast_targets.end());
          m.uni_len = pool->size() - m.uni_off;
        }
      },
      /*min_parallel=*/16, kMatchGrain);

  ClusteredCosts out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventSample& e = events[i];
    const Meta& m = metas[i];
    MatchDecision d;
    d.group_id = m.group_id;
    d.group_members = m.group_members;
    d.unicast_targets =
        std::span<const SubscriberId>(*m.pool).subspan(m.uni_off, m.uni_len);
    out.network += sim.clustered_cost_network(e.pub.origin, d);
    out.applevel += sim.clustered_cost_applevel(e.pub.origin, d);
    if (d.group_id >= 0) {
      ++out.multicast_events;
      out.wasted_deliveries += DeliverySimulator::wasted_deliveries(d, e.interested);
    } else {
      ++out.unicast_events;
    }
  }
  return out;
}

}  // namespace pubsub
