#include "sim/link_load.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pubsub {

LinkLoadTracker::LinkLoadTracker(const Graph& g)
    : graph_(&g),
      load_(static_cast<std::size_t>(g.num_edges()), 0.0),
      stamp_(static_cast<std::size_t>(g.num_nodes()), 0) {}

void LinkLoadTracker::reset() {
  std::fill(load_.begin(), load_.end(), 0.0);
}

void LinkLoadTracker::add_unicast(const ShortestPathTree& spt,
                                  std::span<const NodeId> targets,
                                  double message_bytes) {
  for (const NodeId t : targets) {
    if (!spt.reachable(t))
      throw std::invalid_argument("LinkLoadTracker: unreachable target");
    for (NodeId v = t; spt.parent[static_cast<std::size_t>(v)] != -1;
         v = spt.parent[static_cast<std::size_t>(v)])
      load_[static_cast<std::size_t>(spt.parent_edge[static_cast<std::size_t>(v)])] +=
          message_bytes;
  }
}

void LinkLoadTracker::add_multicast(const ShortestPathTree& spt,
                                    std::span<const NodeId> members,
                                    double message_bytes) {
  ++epoch_;
  stamp_[static_cast<std::size_t>(spt.root)] = epoch_;
  for (const NodeId m : members) {
    if (!spt.reachable(m))
      throw std::invalid_argument("LinkLoadTracker: unreachable member");
    for (NodeId v = m; stamp_[static_cast<std::size_t>(v)] != epoch_;
         v = spt.parent[static_cast<std::size_t>(v)]) {
      stamp_[static_cast<std::size_t>(v)] = epoch_;
      load_[static_cast<std::size_t>(spt.parent_edge[static_cast<std::size_t>(v)])] +=
          message_bytes;
    }
  }
}

void LinkLoadTracker::add_broadcast(const ShortestPathTree& spt, double message_bytes) {
  for (std::size_t v = 0; v < spt.parent.size(); ++v)
    if (spt.parent[v] != -1)
      load_[static_cast<std::size_t>(spt.parent_edge[v])] += message_bytes;
}

double LinkLoadTracker::total_bytes() const {
  double total = 0;
  for (const double l : load_) total += l;
  return total;
}

double LinkLoadTracker::max_link_load() const {
  double m = 0;
  for (const double l : load_) m = std::max(m, l);
  return m;
}

double LinkLoadTracker::load_quantile(double q) const {
  std::vector<double> used;
  for (const double l : load_)
    if (l > 0) used.push_back(l);
  if (used.empty()) return 0.0;
  std::sort(used.begin(), used.end());
  const double pos = q * static_cast<double>(used.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(pos));
  return used[std::min(idx, used.size() - 1)];
}

std::size_t LinkLoadTracker::links_used() const {
  std::size_t n = 0;
  for (const double l : load_)
    if (l > 0) ++n;
  return n;
}

}  // namespace pubsub
