// Per-event delivery cost simulation.
//
// Implements §5.2's cost accounting: "the cost of communication was
// computed by summing up the edge costs on the links on which
// communication takes place."  Accounting rules (matching the paper's
// tables, where unicast cost scales with the subscription count):
//
//   * a unicast message to a subscriber pays the full publisher→node
//     shortest-path cost — one message per subscriber, even when several
//     subscribers share a node;
//   * a multicast to a group pays each link of the delivery tree once
//     (network-supported: publisher-rooted pruned SPT; application-level:
//     MST over the members' unicast-distance metric closure), regardless
//     of how many member subscribers sit behind each node;
//   * broadcast pays the publisher's full SPT.
//
// The simulator caches one shortest-path tree per publisher origin and
// owns the R-tree over subscription rectangles used for exact matching.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/matching.h"
#include "index/rtree.h"
#include "index/slab_index.h"
#include "net/graph.h"
#include "net/multicast.h"
#include "net/shortest_path.h"
#include "workload/types.h"

namespace pubsub {

class DeliverySimulator {
 public:
  DeliverySimulator(const Graph& network, const Workload& wl);

  const Workload& workload() const { return *workload_; }

  // Exact interested subscribers for an event (R-tree stabbing query, in
  // the tree's traversal order — the order the sim experiments are pinned
  // to).
  std::vector<SubscriberId> interested(const Point& p) const;
  // Batch-phase kernel: the same set via the word-parallel SlabIndex,
  // emitted in ascending id order (the broker's sorted-set convention) into
  // `out` (cleared on entry).  `tmp` is the caller's reusable word buffer;
  // steady-state calls are allocation-free.
  void interested_into(const Point& p, std::vector<SubscriberId>& out,
                       std::vector<std::uint64_t>& tmp) const;

  // Baseline strategies.
  double unicast_cost(NodeId origin, std::span<const SubscriberId> subs);
  double broadcast_cost(NodeId origin);
  // Ideal multicast: pruned SPT over exactly the interested nodes.
  double ideal_cost(NodeId origin, std::span<const SubscriberId> subs);

  // Clustered delivery: multicast tree over the decision's group members
  // (if any) plus unicasts to the decision's unicast targets.
  // Network-supported flavor.
  double clustered_cost_network(NodeId origin, const MatchDecision& d);
  // Application-level flavor (group relayed over member MST).
  double clustered_cost_applevel(NodeId origin, const MatchDecision& d);

  // App-level equivalent of ideal multicast (for completeness/metrics).
  double ideal_cost_applevel(NodeId origin, std::span<const SubscriberId> subs);

  // Number of group members not interested in the event — the realized
  // waste of one delivery (0 for no-loss groups).
  static std::size_t wasted_deliveries(const MatchDecision& d,
                                       std::span<const SubscriberId> interested);

 private:
  const ShortestPathTree& spt(NodeId origin);
  const DistanceMatrix& distances();
  std::vector<NodeId>& nodes_of(std::span<const SubscriberId> subs);

  const Graph* network_;
  const Workload* workload_;
  RTree sub_index_;
  SlabIndex slab_index_;
  PrunedSptCost pruner_;
  std::unordered_map<NodeId, ShortestPathTree> spt_cache_;
  std::unique_ptr<DistanceMatrix> dm_;  // built on first app-level query
  std::vector<NodeId> node_scratch_;
};

}  // namespace pubsub
