// Per-link load accounting (paper §6, discussion item 4).
//
// The paper's cost metric sums edge costs per delivery and "implicitly
// assum[es] that there are no delays caused by congestion of network
// links … reasonable when the message size is small (1K or less).  If the
// messages have large sizes, a different type of communication cost
// evaluation must be used."  This tracker is that different evaluation:
// it accumulates bytes per physical link across a batch of deliveries, so
// strategies can be compared on *hot-spot load* (max / percentile link
// traffic) instead of — or in addition to — summed cost.
//
// Unicast pushes the full message over every edge of the publisher→node
// path once per subscriber; a multicast tree pushes it over each tree edge
// once.  The same accounting rules as sim/delivery.h, with bytes instead
// of abstract cost.
#pragma once

#include <span>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"

namespace pubsub {

class LinkLoadTracker {
 public:
  explicit LinkLoadTracker(const Graph& g);

  void reset();

  // One unicast message of `message_bytes` along the spt path to each
  // target (duplicates pay again, as in UnicastCost).
  void add_unicast(const ShortestPathTree& spt, std::span<const NodeId> targets,
                   double message_bytes);

  // One multicast message over the pruned SPT covering `members` (each
  // tree edge carries the message once).
  void add_multicast(const ShortestPathTree& spt, std::span<const NodeId> members,
                     double message_bytes);

  // One broadcast over the full SPT.
  void add_broadcast(const ShortestPathTree& spt, double message_bytes);

  double load(EdgeId e) const { return load_[static_cast<std::size_t>(e)]; }
  const std::vector<double>& loads() const { return load_; }

  double total_bytes() const;
  double max_link_load() const;
  // Load at the q-quantile over links carrying any traffic (q in [0,1]).
  double load_quantile(double q) const;
  // Number of links that carried anything.
  std::size_t links_used() const;

 private:
  const Graph* graph_;
  std::vector<double> load_;    // indexed by EdgeId
  std::vector<int> stamp_;      // per-node epoch marks for tree walks
  int epoch_ = 0;
};

}  // namespace pubsub
