#include "sim/delivery.h"

#include <stdexcept>

namespace pubsub {

DeliverySimulator::DeliverySimulator(const Graph& network, const Workload& wl)
    : network_(&network), workload_(&wl), pruner_(network) {
  const Rect domain = wl.space.domain_rect();
  std::vector<std::pair<Rect, int>> items;
  items.reserve(wl.subscribers.size());
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    const Rect r = wl.subscribers[i].interest.intersection(domain);
    if (!r.empty()) items.emplace_back(r, static_cast<int>(i));
  }
  slab_index_ = SlabIndex(items, wl.subscribers.size());
  sub_index_ = RTree::BulkLoad(std::move(items));
}

std::vector<SubscriberId> DeliverySimulator::interested(const Point& p) const {
  return sub_index_.stab(p);
}

void DeliverySimulator::interested_into(const Point& p,
                                        std::vector<SubscriberId>& out,
                                        std::vector<std::uint64_t>& tmp) const {
  slab_index_.stab(p, out, tmp);
}

const ShortestPathTree& DeliverySimulator::spt(NodeId origin) {
  const auto it = spt_cache_.find(origin);
  if (it != spt_cache_.end()) return it->second;
  return spt_cache_.emplace(origin, Dijkstra(*network_, origin)).first->second;
}

const DistanceMatrix& DeliverySimulator::distances() {
  if (!dm_) dm_ = std::make_unique<DistanceMatrix>(*network_);
  return *dm_;
}

std::vector<NodeId>& DeliverySimulator::nodes_of(std::span<const SubscriberId> subs) {
  node_scratch_.clear();
  for (const SubscriberId s : subs)
    node_scratch_.push_back(workload_->subscribers[static_cast<std::size_t>(s)].node);
  return node_scratch_;
}

double DeliverySimulator::unicast_cost(NodeId origin, std::span<const SubscriberId> subs) {
  return UnicastCost(spt(origin), nodes_of(subs));
}

double DeliverySimulator::broadcast_cost(NodeId origin) {
  return BroadcastCost(spt(origin));
}

double DeliverySimulator::ideal_cost(NodeId origin, std::span<const SubscriberId> subs) {
  return pruner_.cost(spt(origin), nodes_of(subs));
}

double DeliverySimulator::ideal_cost_applevel(NodeId origin,
                                              std::span<const SubscriberId> subs) {
  return AppLevelMulticastCost(distances(), origin, nodes_of(subs));
}

double DeliverySimulator::clustered_cost_network(NodeId origin, const MatchDecision& d) {
  double cost = 0.0;
  if (d.group_id >= 0) cost += pruner_.cost(spt(origin), nodes_of(d.group_members));
  if (!d.unicast_targets.empty()) cost += UnicastCost(spt(origin), nodes_of(d.unicast_targets));
  return cost;
}

double DeliverySimulator::clustered_cost_applevel(NodeId origin, const MatchDecision& d) {
  double cost = 0.0;
  if (d.group_id >= 0)
    cost += AppLevelMulticastCost(distances(), origin, nodes_of(d.group_members));
  if (!d.unicast_targets.empty()) cost += UnicastCost(spt(origin), nodes_of(d.unicast_targets));
  return cost;
}

std::size_t DeliverySimulator::wasted_deliveries(const MatchDecision& d,
                                                 std::span<const SubscriberId> interested) {
  if (d.group_id < 0) return 0;
  std::size_t wasted = 0;
  for (const SubscriberId m : d.group_members) {
    bool found = false;
    for (const SubscriberId s : interested)
      if (s == m) {
        found = true;
        break;
      }
    if (!found) ++wasted;
  }
  return wasted;
}

}  // namespace pubsub
