#include "sim/scenario.h"

namespace pubsub {

Scenario MakeSection3Scenario(const TransitStubParams& shape, int num_subscriptions,
                              const Section3Params& params, std::uint64_t seed) {
  Rng master(seed);
  Scenario s;
  Rng net_rng = master.split(1);
  s.net = GenerateTransitStub(shape, net_rng);
  Rng sub_rng = master.split(2);
  s.workload = GenerateSection3Subscriptions(s.net, num_subscriptions, params, sub_rng);
  s.pub = MakeSection3PublicationModel(s.net, params);
  return s;
}

Scenario MakeStockScenario(int num_subscriptions, PublicationHotSpots hot_spots,
                           std::uint64_t seed, const StockModelParams& params,
                           const TransitStubParams& shape) {
  Rng master(seed);
  Scenario s;
  Rng net_rng = master.split(1);
  s.net = GenerateTransitStub(shape, net_rng);
  Rng sub_rng = master.split(2);
  s.workload = GenerateStockSubscriptions(s.net, num_subscriptions, params, sub_rng);
  s.pub = MakeStockPublicationModel(s.net, hot_spots, params);
  return s;
}

}  // namespace pubsub
