// Half-open interval (lo, hi] on the real line.
//
// The paper (§1) assumes WLOG that every subscription predicate range is
// open on the left and closed on the right so that adjacent ranges tile the
// domain without overlap.  Unbounded ends are represented with ±infinity,
// matching the (−∞,+∞) / (n,+∞) / (−∞,n] cases of the §5.1 subscription
// model.
#pragma once

#include <limits>
#include <string>

namespace pubsub {

class Interval {
 public:
  // Default: the empty interval.
  constexpr Interval() = default;
  // (lo, hi]; an interval with hi <= lo is empty.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  static constexpr Interval All() { return Interval(-kInf, kInf); }
  // (-inf, hi]
  static constexpr Interval AtMost(double hi) { return Interval(-kInf, hi); }
  // (lo, +inf)
  static constexpr Interval GreaterThan(double lo) { return Interval(lo, kInf); }
  // Interval containing exactly the integer value v: (v-1, v].
  static constexpr Interval Point(double v) { return Interval(v - 1.0, v); }

  constexpr double lo() const { return lo_; }
  constexpr double hi() const { return hi_; }

  constexpr bool empty() const { return hi_ <= lo_; }
  constexpr bool is_all() const { return lo_ == -kInf && hi_ == kInf; }
  // Length; +inf for unbounded non-empty intervals.
  constexpr double length() const { return empty() ? 0.0 : hi_ - lo_; }

  // Membership of a point under the (lo, hi] convention.
  constexpr bool contains(double x) const { return x > lo_ && x <= hi_; }
  // Interval containment: empty intervals are contained in everything.
  constexpr bool contains(const Interval& o) const {
    return o.empty() || (lo_ <= o.lo_ && o.hi_ <= hi_);
  }
  constexpr bool intersects(const Interval& o) const {
    return !intersection(o).empty();
  }
  constexpr Interval intersection(const Interval& o) const {
    return Interval(lo_ > o.lo_ ? lo_ : o.lo_, hi_ < o.hi_ ? hi_ : o.hi_);
  }
  // Smallest interval containing both (the hull, not the union).
  constexpr Interval hull(const Interval& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Interval(lo_ < o.lo_ ? lo_ : o.lo_, hi_ > o.hi_ ? hi_ : o.hi_);
  }

  // Structural equality; all empty intervals compare equal.
  constexpr bool operator==(const Interval& o) const {
    if (empty() && o.empty()) return true;
    return lo_ == o.lo_ && hi_ == o.hi_;
  }

  std::string to_string() const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace pubsub
