// Axis-aligned rectangle in the event space Ω ⊆ R^N.
//
// A subscription is a conjunction of per-attribute range predicates — one
// Interval per dimension (paper §1/§2); a published event is a Point.  A
// dimension left at Interval::All() is the paper's "don't care" (*)
// wildcard.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/interval.h"

namespace pubsub {

using Point = std::vector<double>;

class Rect {
 public:
  Rect() = default;
  // N-dimensional all-space rectangle.
  explicit Rect(std::size_t dims) : ivals_(dims, Interval::All()) {}
  explicit Rect(std::vector<Interval> ivals) : ivals_(std::move(ivals)) {}

  std::size_t dims() const { return ivals_.size(); }
  const Interval& operator[](std::size_t d) const { return ivals_[d]; }
  Interval& operator[](std::size_t d) { return ivals_[d]; }
  const std::vector<Interval>& intervals() const { return ivals_; }

  // A rectangle is empty iff any dimension is empty.
  bool empty() const;
  // Product of finite side lengths; +inf if any side is unbounded.
  double volume() const;

  bool contains(const Point& p) const;
  bool contains(const Rect& o) const;
  bool intersects(const Rect& o) const;
  Rect intersection(const Rect& o) const;
  // Smallest rectangle containing both; used by the R-tree for MBRs.
  Rect hull(const Rect& o) const;

  bool operator==(const Rect& o) const { return ivals_ == o.ivals_; }

  std::string to_string() const;

 private:
  std::vector<Interval> ivals_;
};

}  // namespace pubsub
