#include "geometry/interval.h"

#include <sstream>

namespace pubsub {

std::string Interval::to_string() const {
  if (empty()) return "()";
  if (is_all()) return "(*)";
  std::ostringstream os;
  os << '(';
  if (lo_ == -kInf)
    os << "-inf";
  else
    os << lo_;
  os << ", ";
  if (hi_ == kInf)
    os << "+inf)";
  else
    os << hi_ << ']';
  return os.str();
}

}  // namespace pubsub
