// Event space descriptor.
//
// The paper's event spaces are products of finite discrete attribute
// domains: the §3 model is {stub-id} × {0..20}³ and the §5.1 stock model is
// {bst} × {name} × {quote} × {volume} with each attribute taking integer
// values.  An integer value v is embedded on the real line as the half-open
// unit interval (v−1, v], so the whole domain of a dimension with n values
// is (−1, n−1] and adjacent values tile it exactly.  Grids, subscription
// rectangles and publication points all live in this embedding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/rect.h"

namespace pubsub {

struct DimensionSpec {
  std::string name;
  // Attribute takes integer values 0 .. domain_size-1.
  int domain_size = 0;
};

class EventSpace {
 public:
  EventSpace() = default;
  explicit EventSpace(std::vector<DimensionSpec> dims);

  std::size_t dims() const { return dims_.size(); }
  const DimensionSpec& dim(std::size_t d) const { return dims_[d]; }

  // Real-line interval covering the whole domain of dimension d: (−1, n−1].
  Interval domain_interval(std::size_t d) const;
  // Full-domain rectangle.
  Rect domain_rect() const;

  // Interval representing the single integer value v in dimension d.
  static Interval value_interval(int v) { return Interval::Point(v); }
  // Point coordinate for integer value v (the right end of its interval).
  static double value_coord(int v) { return static_cast<double>(v); }

  // Clamp an arbitrary real sample into the valid coordinate range of
  // dimension d, then round to the nearest integer value's coordinate.
  double clamp_to_domain(std::size_t d, double x) const;

  // Total number of unit cells in the integer lattice.
  std::size_t lattice_size() const;

  std::string to_string() const;

 private:
  std::vector<DimensionSpec> dims_;
};

}  // namespace pubsub
