#include "geometry/rect.h"

#include <cassert>
#include <sstream>

namespace pubsub {

bool Rect::empty() const {
  if (ivals_.empty()) return true;
  for (const Interval& iv : ivals_)
    if (iv.empty()) return true;
  return false;
}

double Rect::volume() const {
  if (empty()) return 0.0;
  double v = 1.0;
  for (const Interval& iv : ivals_) v *= iv.length();
  return v;
}

bool Rect::contains(const Point& p) const {
  assert(p.size() == ivals_.size());
  for (std::size_t d = 0; d < ivals_.size(); ++d)
    if (!ivals_[d].contains(p[d])) return false;
  return !ivals_.empty();
}

bool Rect::contains(const Rect& o) const {
  assert(o.dims() == dims());
  if (o.empty()) return true;
  for (std::size_t d = 0; d < ivals_.size(); ++d)
    if (!ivals_[d].contains(o.ivals_[d])) return false;
  return true;
}

bool Rect::intersects(const Rect& o) const {
  assert(o.dims() == dims());
  if (ivals_.empty()) return false;
  for (std::size_t d = 0; d < ivals_.size(); ++d)
    if (!ivals_[d].intersects(o.ivals_[d])) return false;
  return true;
}

Rect Rect::intersection(const Rect& o) const {
  assert(o.dims() == dims());
  std::vector<Interval> out;
  out.reserve(ivals_.size());
  for (std::size_t d = 0; d < ivals_.size(); ++d)
    out.push_back(ivals_[d].intersection(o.ivals_[d]));
  return Rect(std::move(out));
}

Rect Rect::hull(const Rect& o) const {
  assert(o.dims() == dims());
  if (empty()) return o;
  if (o.empty()) return *this;
  std::vector<Interval> out;
  out.reserve(ivals_.size());
  for (std::size_t d = 0; d < ivals_.size(); ++d)
    out.push_back(ivals_[d].hull(o.ivals_[d]));
  return Rect(std::move(out));
}

std::string Rect::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t d = 0; d < ivals_.size(); ++d) {
    if (d) os << " x ";
    os << ivals_[d].to_string();
  }
  os << ']';
  return os.str();
}

}  // namespace pubsub
