#include "geometry/event_space.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pubsub {

EventSpace::EventSpace(std::vector<DimensionSpec> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("EventSpace: no dimensions");
  for (const DimensionSpec& d : dims_)
    if (d.domain_size <= 0)
      throw std::invalid_argument("EventSpace: non-positive domain for " + d.name);
}

Interval EventSpace::domain_interval(std::size_t d) const {
  return Interval(-1.0, static_cast<double>(dims_[d].domain_size - 1));
}

Rect EventSpace::domain_rect() const {
  std::vector<Interval> ivals;
  ivals.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d)
    ivals.push_back(domain_interval(d));
  return Rect(std::move(ivals));
}

double EventSpace::clamp_to_domain(std::size_t d, double x) const {
  const double hi = static_cast<double>(dims_[d].domain_size - 1);
  double v = std::round(x);
  if (v < 0.0) v = 0.0;
  if (v > hi) v = hi;
  return v;
}

std::size_t EventSpace::lattice_size() const {
  std::size_t n = 1;
  for (const DimensionSpec& d : dims_) n *= static_cast<std::size_t>(d.domain_size);
  return n;
}

std::string EventSpace::to_string() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d) os << " x ";
    os << dims_[d].name << "[" << dims_[d].domain_size << "]";
  }
  return os.str();
}

}  // namespace pubsub
