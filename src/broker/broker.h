// Durable, deterministic single-node broker service (§6 items 5–6).
//
// The repo's clustering/matching stack is a set of libraries the caller
// wires together per experiment; Broker packages them as a *service*:
// GroupManager owns the clustering lifecycle, GridMatcher serves match
// decisions, DeliveryRuntime prices time, and a RefreshPolicy decides when
// to re-cluster — all behind a sequenced command API:
//
//   subscribe / unsubscribe / update / publish
//
// Durability follows the clone-server pattern (state = snapshot +
// sequenced update stream):
//
//   * every command becomes a JournalRecord (monotone seq, broker-clock
//     stamp) appended to a write-ahead journal *before* it is applied;
//   * snapshots are captured at refresh boundaries, where the table, grid
//     and clustering agree and the policy's waste window is empty;
//   * recovery = load the latest snapshot, rebuild the grid from its table
//     (a pure function), adopt its clustering verbatim, restore queue
//     state, then replay the journal tail.  Replay applies each record's
//     *recorded* timestamp, so the recovered broker is bit-identical to an
//     uninterrupted run — match decisions, latencies and counters alike.
//
// Determinism inputs are explicit: a pluggable Clock stamps commands, and
// nothing in the command path draws randomness (clustering warm starts are
// deterministic; drivers that want stochastic churn seed their own Rng and
// the resulting commands are journaled).  The live subscription index is
// kept incrementally (RTree insert/erase) and stab results are sorted, so
// interested sets do not depend on index history.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "broker/clock.h"
#include "broker/refresh_policy.h"
#include "broker/types.h"
#include "core/group_manager.h"
#include "index/rtree.h"
#include "runtime/delivery_runtime.h"

namespace pubsub {

struct BrokerOptions {
  GroupManagerOptions group;
  RefreshPolicyOptions refresh;
  RuntimeParams runtime;
};

// Per-publish outcome: the match decision (with the caller-side unicast
// completion applied) plus delivery timing.
struct PublishOutcome {
  std::uint64_t seq = 0;
  int group_id = -1;       // -1 = pure unicast
  std::size_t group_size = 0;
  // Interested subscribers served by unicast: the matcher's fallback set,
  // plus interested \ group when a group was used (the between-refresh
  // window contract — see core/group_manager.h).  Sorted ascending.
  std::vector<SubscriberId> unicast_targets;
  std::size_t interested = 0;
  std::size_t wasted = 0;  // group members not interested
  bool refreshed = false;  // this command triggered a refresh
  DeliveryTiming timing;   // group latencies first, then unicast targets'
};

class Broker {
 public:
  // Fresh broker: clusters `initial` cold and starts at seq 0.  `pub`,
  // `network` and `clock` (optional; defaults to an owned ManualClock at 0)
  // must outlive the broker.
  Broker(Workload initial, const PublicationModel& pub, const Graph& network,
         const BrokerOptions& options = {}, Clock* clock = nullptr);

  // Recovery: bootstrap from `snapshot`, then replay `journal` records with
  // seq > snapshot.seq (earlier records are skipped; a gap throws
  // std::runtime_error).  Stats resume from the snapshot, with
  // snapshot_bytes / replayed_records recording the recovery provenance.
  static std::unique_ptr<Broker> Recover(const BrokerSnapshot& snapshot,
                                         std::span<const JournalRecord> journal,
                                         const PublicationModel& pub,
                                         const Graph& network,
                                         const BrokerOptions& options = {},
                                         Clock* clock = nullptr);

  // --- durability plumbing ---------------------------------------------
  // Append journal records to `sink` (nullptr detaches).  With
  // `write_header`, emits the journal header first — pass false when
  // resuming an existing journal file.  Records are flushed per command.
  void set_journal(std::ostream* sink, bool write_header = true);
  // Live update stream (primary → warm standby): invoked after each
  // locally submitted command is applied.
  void set_record_listener(std::function<void(const JournalRecord&)> listener);

  // --- command API ------------------------------------------------------
  SubscriberId subscribe(NodeId node, const Rect& interest);
  void unsubscribe(SubscriberId id);
  void update(SubscriberId id, const Rect& interest);
  PublishOutcome publish(NodeId origin, const Point& event);

  // Apply an already-sequenced record (replication / replay): must carry
  // seq() + 1 and is applied with its recorded timestamp.  Journals to the
  // sink and notifies the listener like a local command.
  void apply(const JournalRecord& rec);

  // --- state ------------------------------------------------------------
  std::uint64_t seq() const { return seq_; }
  const BrokerStats& stats() const { return stats_; }
  const GroupManager& groups() const { return *mgr_; }
  const Workload& workload() const { return mgr_->workload(); }
  double last_command_time_ms() const { return last_time_ms_; }

  // Exact interested set for an event against the live table (sorted).
  std::vector<SubscriberId> interested(const Point& event) const;

  // Latest refresh-boundary snapshot (see types.h).  write_snapshot
  // serializes it and returns the byte count.
  const BrokerSnapshot& snapshot() const { return checkpoint_; }
  std::uint64_t write_snapshot(std::ostream& os) const;

  // FNV-1a digest of the durable state (seq, live table, clustering,
  // churn bookkeeping, queue state); equal digests at equal seq mean two
  // brokers will make identical decisions from here on.
  std::uint64_t state_digest() const;

 private:
  struct RestoreTag {};
  Broker(RestoreTag, const BrokerSnapshot& snapshot,
         const PublicationModel& pub, const Graph& network,
         const BrokerOptions& options, Clock* clock);

  JournalRecord make_record(BrokerCommand cmd);
  PublishOutcome apply_record(const JournalRecord& rec);
  void apply_churn(const BrokerCommand& cmd);
  PublishOutcome apply_publish(const BrokerCommand& cmd);
  void maybe_refresh(PublishOutcome* outcome);
  void capture_checkpoint();
  void bootstrap_index();
  void index_insert(SubscriberId id, const Rect& interest);
  void index_erase(SubscriberId id);
  std::vector<NodeId> nodes_of(std::span<const SubscriberId> subs) const;

  const PublicationModel* pub_;
  const Graph* network_;
  BrokerOptions options_;
  std::unique_ptr<GroupManager> mgr_;
  std::unique_ptr<DeliveryRuntime> runtime_;
  RefreshPolicy policy_;
  std::unique_ptr<ManualClock> owned_clock_;
  Clock* clock_;

  // Live subscription index over domain-clipped interests; indexed_rect_
  // remembers each id's stored rectangle (dims()==0 = not indexed).
  RTree live_index_;
  std::vector<Rect> indexed_rect_;

  std::ostream* journal_ = nullptr;
  std::function<void(const JournalRecord&)> listener_;
  std::uint64_t seq_ = 0;
  double last_time_ms_ = 0.0;
  BrokerStats stats_;
  BrokerSnapshot checkpoint_;
};

}  // namespace pubsub
