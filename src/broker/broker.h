// Durable, deterministic single-node broker service (§6 items 5–6).
//
// The repo's clustering/matching stack is a set of libraries the caller
// wires together per experiment; Broker packages them as a *service*:
// GroupManager owns the clustering lifecycle, GridMatcher serves match
// decisions, DeliveryRuntime prices time, and a RefreshPolicy decides when
// to re-cluster — all behind a sequenced command API:
//
//   subscribe / unsubscribe / update / publish
//
// Durability follows the clone-server pattern (state = snapshot +
// sequenced update stream):
//
//   * every command becomes a JournalRecord (monotone seq, broker-clock
//     stamp) appended to a write-ahead journal *before* it is applied;
//   * snapshots are captured at refresh boundaries, where the table, grid
//     and clustering agree and the policy's waste window is empty;
//   * recovery = load the latest snapshot, rebuild the grid from its table
//     (a pure function), adopt its clustering verbatim, restore queue
//     state, then replay the journal tail.  Replay applies each record's
//     *recorded* timestamp, so the recovered broker is bit-identical to an
//     uninterrupted run — match decisions, latencies and counters alike.
//
// Determinism inputs are explicit: a pluggable Clock stamps commands, and
// nothing in the command path draws randomness (clustering warm starts are
// deterministic; drivers that want stochastic churn seed their own Rng and
// the resulting commands are journaled).  The live subscription index is a
// covering table (core/covering.h) over an incrementally maintained slab
// index (index/slab_index.h); stab results are emitted in ascending order
// by a counting sort, so interested sets do not depend on index history.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/clock.h"
#include "broker/refresh_policy.h"
#include "broker/types.h"
#include "core/covering.h"
#include "core/group_manager.h"
#include "core/match_scratch.h"
#include "index/slab_index.h"
#include "io/file.h"
#include "io/string_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/delivery_runtime.h"

namespace pubsub {

// Telemetry wiring (all optional; the broker is fully instrumented either
// way — with no registry supplied it owns a private one, so counters from
// two brokers in a process never mix).
struct BrokerObsOptions {
  // Registry receiving every broker/groups/matcher/runtime metric; nullptr
  // = broker-owned.  Must outlive the broker when supplied.
  MetricsRegistry* metrics = nullptr;
  // Clock for stage spans (match / group-selection / delivery-plan /
  // journal-flush).  nullptr = owned StopwatchClock (wall time); tests
  // inject a ManualClock for deterministic traces.  This is distinct from
  // the broker's command clock: command stamps are replayed state, stage
  // durations are measurements.
  Clock* trace_clock = nullptr;
  // Ring capacity for retained spans (oldest overwritten beyond it).
  std::size_t trace_capacity = 512;
  // Record spans for every N-th command (0 disables the ring; stage
  // latency histograms are always fed).
  std::uint64_t trace_sample = 0;
};

// How the broker responds to journal-flush failures (fsync errors, short
// writes that make no progress).  A failed flush is retried with capped
// exponential backoff — deterministic when the command clock is a
// ManualClock, which the broker advances by each backoff delay — and when
// the budget is exhausted the broker *degrades* instead of crashing: the
// rejected command is rolled off, matching keeps serving reads, and every
// further mutation throws BrokerDegradedError until clear_degraded()
// verifies the sink again (see docs/OPERATIONS.md, "Degraded mode").
struct DurabilityOptions {
  std::size_t flush_retries = 4;   // retries after the first failed attempt
  double backoff_base_ms = 1.0;    // first retry delay
  double backoff_cap_ms = 64.0;    // delay ceiling (base * 2^k clamped)
};

struct BrokerOptions {
  GroupManagerOptions group;
  RefreshPolicyOptions refresh;
  RuntimeParams runtime;
  DurabilityOptions durability;
  BrokerObsOptions obs;
};

// A mutation arrived while the broker is in read-only degraded mode (the
// journal could not be made durable).  Distinct from other failures so
// callers can shed writes and keep reading.
class BrokerDegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Per-publish outcome: the match decision (with the caller-side unicast
// completion applied) plus delivery timing.
//
// Zero-copy: unicast_targets and timing.latencies_ms alias the broker's
// publish scratch and stay valid until the broker's next command (publish,
// churn, apply or clear_degraded).  Copy them out to keep them longer
// (DESIGN.md §10).
struct PublishOutcome {
  std::uint64_t seq = 0;
  int group_id = -1;       // -1 = pure unicast
  std::size_t group_size = 0;
  // Interested subscribers served by unicast: the matcher's fallback set,
  // plus interested \ group when a group was used (the between-refresh
  // window contract — see core/group_manager.h).  Sorted ascending.
  std::span<const SubscriberId> unicast_targets;
  // The full interested set for the event, sorted ascending (the
  // counting-sort emission of interested_into).  A sharded fleet merges
  // these per-shard sets into the global decision (src/serve/fleet.h).
  std::span<const SubscriberId> interested_set;
  std::size_t interested = 0;
  std::size_t wasted = 0;  // group members not interested
  bool refreshed = false;  // this command triggered a refresh
  DeliveryTiming timing;   // group latencies first, then unicast targets'
};

class Broker {
 public:
  // Fresh broker: clusters `initial` cold and starts at seq 0.  `pub`,
  // `network` and `clock` (optional; defaults to an owned ManualClock at 0)
  // must outlive the broker.
  Broker(Workload initial, const PublicationModel& pub, const Graph& network,
         const BrokerOptions& options = {}, Clock* clock = nullptr);

  // Recovery: bootstrap from `snapshot`, then replay `journal` records with
  // seq > snapshot.seq (earlier records are skipped; a gap throws
  // std::runtime_error).  Stats resume from the snapshot, with
  // snapshot_bytes / replayed_records recording the recovery provenance.
  static std::unique_ptr<Broker> Recover(const BrokerSnapshot& snapshot,
                                         std::span<const JournalRecord> journal,
                                         const PublicationModel& pub,
                                         const Graph& network,
                                         const BrokerOptions& options = {},
                                         Clock* clock = nullptr);

  // --- durability plumbing ---------------------------------------------
  // Append journal records to `sink` (nullptr detaches).  With
  // `write_header`, emits the journal header first — pass false when
  // resuming an existing journal file.  Records are flushed per command.
  // The stream is wrapped in a StreamSink under the "journal.*" fail-point
  // sites; use set_journal_sink to supply a custom FileSink.
  void set_journal(std::ostream* sink, bool write_header = true);
  // As set_journal, but with an injectable sink (must outlive the broker;
  // nullptr detaches).
  void set_journal_sink(FileSink* sink, bool write_header = true);
  // Live update stream (primary → warm standby): invoked after each
  // locally submitted command is applied.
  void set_record_listener(std::function<void(const JournalRecord&)> listener);

  // --- command API ------------------------------------------------------
  SubscriberId subscribe(NodeId node, const Rect& interest);
  void unsubscribe(SubscriberId id);
  void update(SubscriberId id, const Rect& interest);
  PublishOutcome publish(NodeId origin, const Point& event);

  // Apply an already-sequenced record (replication / replay): must carry
  // seq() + 1 and is applied with its recorded timestamp.  Journals to the
  // sink and notifies the listener like a local command.
  void apply(const JournalRecord& rec);
  // As apply(), but returns the publish outcome (default-constructed for
  // churn records).  The fleet fan-out path needs the per-shard interested
  // set; plain apply() discards it.
  PublishOutcome apply_with_outcome(const JournalRecord& rec);

  // --- state ------------------------------------------------------------
  std::uint64_t seq() const { return seq_; }
  // Service counters, materialized from the metrics registry (the registry
  // is the single source of truth; BrokerStats remains the serialized
  // snapshot form).  Returned by value — binding a const reference at call
  // sites stays valid through lifetime extension.
  BrokerStats stats() const;
  const GroupManager& groups() const { return *mgr_; }
  const Workload& workload() const { return mgr_->workload(); }
  double last_command_time_ms() const { return last_time_ms_; }

  // Exact interested set for an event against the live table (sorted).
  std::vector<SubscriberId> interested(const Point& event) const;

  // Read-only match decision: the group (if any) plus the unicast
  // completion the broker *would* use for this event, with no journaling,
  // no delivery-timing mutation and no refresh — the lookup path degraded
  // mode keeps serving.
  struct MatchOutcome {
    int group_id = -1;  // -1 = pure unicast
    std::size_t group_size = 0;
    std::vector<SubscriberId> unicast_targets;  // sorted ascending
    std::size_t interested = 0;
  };
  MatchOutcome match(const Point& event) const;

  // --- degraded mode ----------------------------------------------------
  // True once a journal append exhausted its retry budget: mutations
  // (subscribe/unsubscribe/update/publish/apply) throw BrokerDegradedError,
  // reads (interested/match/stats/snapshot) keep serving.
  bool degraded() const { return degraded_; }
  // Probe the journal sink again (operator action after fixing storage).
  // Returns true — and re-enables mutations — iff the interrupted append
  // completes and the sink flushes clean.  Because part of the rejected
  // record may already be on disk, the append is *finished*, not abandoned:
  // on success the command that triggered degradation takes effect (its
  // seq is consumed), exactly as if the original caller had retried it.
  bool clear_degraded();
  // Supervision hook (serve-loop heal timer): clear_degraded() plus probe
  // accounting, and a cheap no-op on a healthy broker.  Returns true when
  // the broker is (or becomes) healthy.  Probe counters are kRuntime —
  // probes are driven by timers, not by the journaled command stream, so a
  // recovered broker legitimately reports different values.
  bool heal_probe();

  // Latest refresh-boundary snapshot (see types.h).  write_snapshot
  // serializes it and returns the byte count.
  const BrokerSnapshot& snapshot() const { return checkpoint_; }
  std::uint64_t write_snapshot(std::ostream& os) const;

  // FNV-1a digest of the durable state (seq, live table, clustering,
  // churn bookkeeping, queue state); equal digests at equal seq mean two
  // brokers will make identical decisions from here on.
  std::uint64_t state_digest() const;

  // --- telemetry --------------------------------------------------------
  // The registry serving this broker (owned unless options.obs.metrics was
  // supplied).  scrape(false) yields the deterministic subset.
  MetricsRegistry& metrics() const { return *metrics_; }
  // Retained publish-path spans (empty unless trace_sample > 0).
  const TraceRing& trace() const { return trace_; }
  // Arm a fleet-assigned causal trace context for the NEXT applied record:
  // that record's spans are forced into the ring (regardless of
  // trace_sample) tagged with `trace_id` and `shard`, then the context
  // disarms.  A standalone broker never arms this; its sampled spans carry
  // trace_id = seq and shard = -1.
  void set_trace_context(std::uint64_t trace_id, std::int32_t shard);

 private:
  struct RestoreTag {};
  Broker(RestoreTag, const BrokerSnapshot& snapshot,
         const PublicationModel& pub, const Graph& network,
         const BrokerOptions& options, Clock* clock);

  JournalRecord make_record(BrokerCommand cmd);
  PublishOutcome apply_record(const JournalRecord& rec);
  PublishOutcome finish_apply(const JournalRecord& rec);
  // Durable append with short-write/flush retries and capped exponential
  // backoff; `rec` is the record the bytes encode (nullptr for the header,
  // which is not byte-accounted and has no state to carry into degraded
  // mode).  Throws BrokerDegradedError once the retry budget is spent.
  void journal_append(const std::string& text, const JournalRecord* rec);
  [[noreturn]] void enter_degraded(const std::string& why,
                                   const std::string& text, std::size_t offset,
                                   const JournalRecord* rec);
  // Reject invalid churn commands BEFORE the write-ahead append: a command
  // that would fail mid-apply must fail identically on live submit, apply()
  // and journal replay, without consuming a sequence number or reaching
  // the journal/replica (an unknown-id unsubscribe that got journaled
  // would desync the replica digest and crash recovery).
  void validate_churn(const BrokerCommand& cmd) const;
  void apply_churn(const BrokerCommand& cmd);
  PublishOutcome apply_publish(const BrokerCommand& cmd);
  void maybe_refresh(PublishOutcome* outcome);
  void capture_checkpoint();
  void bootstrap_index();
  void restore_index(const CoveringState& state);
  void rebuild_slab();
  void index_insert(SubscriberId id, const Rect& interest);
  void index_erase(SubscriberId id);
  void index_update(SubscriberId id, const Rect& interest);
  void apply_index_delta();
  // Sorted interested set for `event`, emitted into `s.interested` via a
  // word-level counting sort over `s.words`; the interested bits (and
  // s.word_lo/word_hi) are left set for the completion kernel — the caller
  // must s.clear_words() when done.
  std::span<const SubscriberId> interested_into(const Point& event,
                                                MatchScratch& s) const;
  std::span<const NodeId> nodes_into(std::span<const SubscriberId> subs,
                                     std::vector<NodeId>& out) const;
  void init_obs(const BrokerOptions& options);
  void seed_stats(const BrokerStats& s);
  void update_derived_gauges();

  const PublicationModel* pub_;
  const Graph* network_;
  BrokerOptions options_;
  std::unique_ptr<GroupManager> mgr_;
  std::unique_ptr<DeliveryRuntime> runtime_;
  RefreshPolicy policy_;
  std::unique_ptr<ManualClock> owned_clock_;
  Clock* clock_;

  // Live subscription index over domain-clipped interests (DESIGN.md §10):
  // the covering table dedups equal interests and nests contained ones, so
  // the slab index holds one entry per *maximal distinct rectangle* —
  // matcher state grows with distinct interest, not subscriber count, and
  // churn on a known rectangle never touches the index.
  CoveringTable covering_;
  SlabIndex slab_;
  CoveringTable::Delta delta_;  // reused per churn command

  // Journal sink: either caller-supplied or an owned StreamSink wrapper
  // around the std::ostream passed to set_journal.
  FileSink* journal_ = nullptr;
  std::unique_ptr<StreamSink> owned_journal_sink_;
  bool degraded_ = false;
  // The append interrupted by degradation: bytes [0, pending_offset_) were
  // accepted by the sink before the budget ran out, so clear_degraded()
  // must finish this exact text before any new record may be appended.
  std::string pending_text_;
  std::size_t pending_offset_ = 0;
  bool pending_is_record_ = false;
  JournalRecord pending_rec_;
  std::function<void(const JournalRecord&)> listener_;
  std::uint64_t seq_ = 0;
  double last_time_ms_ = 0.0;
  BrokerSnapshot checkpoint_;

  // Publish-path working memory (DESIGN.md §10): every per-event buffer —
  // stab hits, interested set, completion targets, node lists, latencies,
  // serialized journal bytes, the local publish record — is reused across
  // commands, so steady-state publish performs zero heap allocations.
  // mutable: the read paths (interested/match) share the same scratch.
  mutable MatchScratch scratch_;
  StringStream journal_stream_;
  JournalRecord publish_rec_;

  // --- telemetry (set once by init_obs, then never null) ---------------
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<StopwatchClock> owned_trace_clock_;
  Clock* trace_clock_ = nullptr;
  TraceRing trace_;
  std::uint64_t trace_sample_ = 0;
  // One-shot fleet trace context (see set_trace_context).
  std::uint64_t trace_ctx_id_ = 0;
  std::int32_t trace_ctx_shard_ = -1;
  bool trace_ctx_armed_ = false;

  // Deterministic command counters (BrokerStats is a view over these).
  Counter* c_commands_ = nullptr;
  Counter* c_subscribes_ = nullptr;
  Counter* c_unsubscribes_ = nullptr;
  Counter* c_updates_ = nullptr;
  Counter* c_publishes_ = nullptr;
  Counter* c_events_matched_ = nullptr;
  Counter* c_multicast_events_ = nullptr;
  Counter* c_unicast_events_ = nullptr;
  Counter* c_messages_emitted_ = nullptr;
  Counter* c_wasted_ = nullptr;
  Counter* c_refreshes_ = nullptr;
  Counter* c_full_rebuilds_ = nullptr;
  Counter* c_journal_bytes_ = nullptr;
  Counter* c_refresh_by_churn_ = nullptr;
  Counter* c_refresh_by_waste_ = nullptr;
  Counter* c_refresh_by_resume_ = nullptr;
  Counter* c_replayed_ = nullptr;
  Counter* c_flush_failures_ = nullptr;
  Counter* c_flush_retries_ = nullptr;
  Counter* c_degraded_entries_ = nullptr;
  Counter* c_mutations_rejected_ = nullptr;
  Counter* c_heal_probes_ = nullptr;
  Counter* c_heal_successes_ = nullptr;
  Gauge* g_degraded_ = nullptr;
  Gauge* g_snapshot_bytes_ = nullptr;
  Gauge* g_recovery_progress_ = nullptr;
  Gauge* g_seq_ = nullptr;
  Gauge* g_live_subscribers_ = nullptr;
  Gauge* g_covering_entries_ = nullptr;
  Gauge* g_covering_indexed_ = nullptr;
  Gauge* g_covered_subscribers_ = nullptr;
  Gauge* g_slab_endpoints_ = nullptr;
  Gauge* g_slab_dead_endpoints_ = nullptr;
  Gauge* g_slab_rebuilds_ = nullptr;
  Gauge* g_slab_splices_ = nullptr;
  Gauge* g_window_waste_ratio_ = nullptr;
  Gauge* g_waste_ratio_ = nullptr;
  Gauge* g_cost_per_event_ = nullptr;
  Histogram* h_interested_ = nullptr;
  Histogram* h_group_size_ = nullptr;
  Histogram* h_delivery_ms_ = nullptr;
  Histogram* h_queue_wait_ms_ = nullptr;
  Histogram* h_service_ms_ = nullptr;
  // Wall-clock (kRuntime) stage spans, indexed by PublishStage.
  Histogram* h_stage_[kNumPublishStages] = {};
  Histogram* h_journal_flush_ms_ = nullptr;
};

}  // namespace pubsub
