// When should a live broker re-cluster?
//
// GroupManager leaves the refresh decision to its caller; in a service
// setting that decision is policy, not plumbing, so it lives in one object
// with two triggers (§6 item 5 — groups "need to be constantly updated"):
//
//   * churned fraction — enough of the table changed since the last
//     refresh that the clustering no longer reflects it;
//   * waste ratio — deliveries since the last refresh wasted too large a
//     fraction of emitted messages, the observable symptom of a stale
//     clustering (only meaningful once pending churn exists: refreshing an
//     unchanged table cannot reduce waste and would spin).
//
// The waste window resets on refresh, so policy state at a refresh
// boundary is empty — which is why broker snapshots (taken at those
// boundaries) need not serialize it.
#pragma once

#include <cstddef>

namespace pubsub {

struct RefreshPolicyOptions {
  // Refresh when pending churn reaches this fraction of the table
  // (<= 0 disables the trigger).
  double churn_fraction = 0.05;
  // Refresh when wasted deliveries reach this fraction of the messages
  // emitted since the last refresh (<= 0 disables the trigger).
  double waste_ratio = 0.5;
  // Minimum emitted messages before the waste ratio is trusted.
  std::size_t min_messages = 200;
};

// Which trigger fired (for telemetry: the broker counts refreshes by
// cause).  Churn is checked first, so a window that trips both reports
// kChurn — the cheaper, more direct signal.  kResume is decided by the
// broker, not this policy: when the last refresh ran out of its budget
// (GroupManager::refresh_incomplete), the next publish continues the
// re-balancing even though no policy trigger fired.
enum class RefreshTrigger { kNone, kChurn, kWaste, kResume };

class RefreshPolicy {
 public:
  explicit RefreshPolicy(const RefreshPolicyOptions& options = {})
      : options_(options) {}

  const RefreshPolicyOptions& options() const { return options_; }

  // Record one delivery's outcome into the current window.
  void on_publish(std::size_t emitted, std::size_t wasted) {
    window_emitted_ += emitted;
    window_wasted_ += wasted;
  }

  // Resets the waste window; call after every GroupManager::refresh().
  void on_refresh() {
    window_emitted_ = 0;
    window_wasted_ = 0;
  }

  RefreshTrigger trigger(std::size_t pending_churn, std::size_t table_size) const {
    if (pending_churn == 0 || table_size == 0) return RefreshTrigger::kNone;
    if (options_.churn_fraction > 0.0 &&
        static_cast<double>(pending_churn) >=
            options_.churn_fraction * static_cast<double>(table_size))
      return RefreshTrigger::kChurn;
    if (options_.waste_ratio > 0.0 && window_emitted_ >= options_.min_messages &&
        static_cast<double>(window_wasted_) >=
            options_.waste_ratio * static_cast<double>(window_emitted_))
      return RefreshTrigger::kWaste;
    return RefreshTrigger::kNone;
  }

  bool should_refresh(std::size_t pending_churn, std::size_t table_size) const {
    return trigger(pending_churn, table_size) != RefreshTrigger::kNone;
  }

  std::size_t window_emitted() const { return window_emitted_; }
  std::size_t window_wasted() const { return window_wasted_; }

 private:
  RefreshPolicyOptions options_;
  std::size_t window_emitted_ = 0;
  std::size_t window_wasted_ = 0;
};

}  // namespace pubsub
