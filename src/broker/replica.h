// Warm-standby replication (clone pattern): a replica bootstraps from a
// primary snapshot, applies the primary's live record stream (wire it to
// Broker::set_record_listener or feed journal tails), and can be promoted
// to a full broker at any moment.  Because every input the primary acted
// on is in the stream — including timestamps — the promoted broker's state
// digest and all future match decisions are bit-identical to the
// primary's at the same sequence number (examples/broker_failover.cpp and
// tests/test_broker.cc demonstrate the failover).
#pragma once

#include <memory>

#include "broker/broker.h"

namespace pubsub {

class BrokerReplica {
 public:
  // `pub` / `network` / `clock` must outlive the replica (and the broker a
  // later promote() returns).  `options` must match the primary's.
  BrokerReplica(const BrokerSnapshot& snapshot, const PublicationModel& pub,
                const Graph& network, const BrokerOptions& options = {},
                Clock* clock = nullptr);

  // Apply one streamed record.  Records at or below the applied sequence
  // are ignored (stream reconnects may resend); a gap beyond seq() + 1
  // throws std::runtime_error — the replica lost updates and must
  // re-bootstrap from a newer snapshot.
  void apply(const JournalRecord& rec);

  std::uint64_t seq() const { return broker_->seq(); }
  const Broker& broker() const { return *broker_; }

  // Failover: hand over the underlying broker (the replica is spent).
  // The caller attaches its own journal sink / listener and starts serving.
  std::unique_ptr<Broker> promote() &&;

 private:
  std::unique_ptr<Broker> broker_;
};

}  // namespace pubsub
