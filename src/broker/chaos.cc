#include "broker/chaos.h"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "broker/replica.h"
#include "io/serialize.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/stock_model.h"
#include "workload/trace.h"

namespace pubsub {

std::vector<JournalRecord> BuildChaosSchedule(const TransitStubNetwork& net,
                                              const Workload& base,
                                              std::size_t num_events,
                                              std::size_t churn_every,
                                              std::uint64_t seed) {
  // Draw-for-draw replica of serve-replay: trace first, then a split churn
  // stream, with per-step sub-streams salted by the trace index.  Changing
  // any draw here breaks serve-replay/chaos stream equivalence — both are
  // pinned by tests.
  Rng trace_rng(seed);
  const std::vector<TraceEvent> trace =
      GenerateStockTrace(net, {}, {}, num_events, trace_rng);
  Rng churn_rng = trace_rng.split(1);

  std::vector<SubscriberId> live(base.num_subscribers());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<SubscriberId>(i);
  auto next_id = static_cast<SubscriberId>(base.num_subscribers());

  std::vector<JournalRecord> schedule;
  schedule.reserve(trace.size() +
                   (churn_every > 0 ? trace.size() / churn_every : 0));
  std::uint64_t seq = 0;
  const auto push = [&](BrokerCommand cmd, double time_ms) {
    cmd.time_ms = time_ms;
    JournalRecord rec;
    rec.seq = ++seq;
    rec.cmd = std::move(cmd);
    schedule.push_back(std::move(rec));
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double now_ms = trace[i].timestamp * 1000.0;
    if (churn_every > 0 && (i + 1) % churn_every == 0) {
      auto action = churn_rng.uniform_int(0, 2);
      if (live.empty()) action = 0;  // nothing left to update/remove
      if (action == 0) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kSubscribe;
        cmd.node = one.subscribers[0].node;
        cmd.interest = one.subscribers[0].interest;
        push(std::move(cmd), now_ms);
        live.push_back(next_id++);
      } else if (action == 1 || live.size() <= 1) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kUpdate;
        cmd.subscriber = live[pick];
        cmd.interest = one.subscribers[0].interest;
        push(std::move(cmd), now_ms);
      } else {
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kUnsubscribe;
        cmd.subscriber = live[pick];
        push(std::move(cmd), now_ms);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    BrokerCommand cmd;
    cmd.type = BrokerCommandType::kPublish;
    cmd.node = trace[i].pub.origin;
    cmd.point = trace[i].pub.point;
    push(std::move(cmd), now_ms);
  }
  return schedule;
}

namespace {

// Kill-style faults rotated through by the driver.  `torn:` gets a byte
// count appended at arm time.
struct KillSite {
  const char* site;
  const char* action;
};
constexpr KillSite kKillSites[] = {
    {"journal.write", "crash"},
    {"journal.write", "torn:"},
    {"journal.flush", "crash"},
    {"broker.publish.pre_journal", "crash"},
    {"broker.publish.post_journal", "crash"},
    {"snapshot.write", "crash"},
    {"snapshot.flush", "crash"},
    {"replica.apply", "crash"},
};

}  // namespace

ChaosReport RunChaos(const TransitStubNetwork& net, const Workload& base,
                     const PublicationModel& pub, const ChaosOptions& opts) {
  FailPoints& fp = FailPoints::Instance();
  fp.clear();

  ChaosReport report;
  const std::vector<JournalRecord> schedule = BuildChaosSchedule(
      net, base, opts.num_events, opts.churn_every, opts.seed);
  report.commands = schedule.size();
  const std::uint64_t last_seq = schedule.empty() ? 0 : schedule.back().seq;

  // Un-faulted reference run: one digest per sequence number, so any
  // recovered incarnation can be checked at whatever seq it landed on.
  std::vector<std::uint64_t> ref_digest(static_cast<std::size_t>(last_seq) + 1);
  {
    Broker ref(base, pub, net.graph, opts.broker);
    ref_digest[0] = ref.state_digest();
    for (const JournalRecord& rec : schedule) {
      ref.apply(rec);
      ref_digest[static_cast<std::size_t>(rec.seq)] = ref.state_digest();
    }
    report.reference_digest = ref_digest[static_cast<std::size_t>(last_seq)];
  }

  // The "disk": what survives a kill.  The sink stream models an append-only
  // file whose accepted bytes persist (fsync failures are injected
  // separately at journal.flush); snapshots replace atomically, so a crash
  // mid-write leaves the previous snapshot in place.
  std::string disk_journal;
  std::string disk_snapshot;

  std::unique_ptr<Broker> broker;
  std::unique_ptr<std::ostringstream> sink;
  std::unique_ptr<BrokerReplica> replica;

  const auto persist_journal = [&] {
    if (sink != nullptr) disk_journal = sink->str();
  };
  const auto snapshot_now = [&] {
    std::ostringstream os;
    broker->write_snapshot(os);  // may throw InjectedCrash (snapshot.write)
    disk_snapshot = os.str();
  };
  const auto record_kill = [&](const std::string& site) {
    ++report.cycles;
    ++report.kills_by_site[site];
  };

  // Re-bootstrap the warm standby from the disk and catch it up from the
  // journal (records at or below its seq are ignored by the replica).
  const auto rebuild_replica = [&] {
    persist_journal();
    std::istringstream sin(disk_snapshot);
    const BrokerSnapshot snap = ReadBrokerSnapshot(sin);
    auto rep =
        std::make_unique<BrokerReplica>(snap, pub, net.graph, opts.broker);
    std::istringstream jin(disk_journal);
    const JournalReadResult jr = ReadJournalLenient(jin);
    for (const JournalRecord& rec : jr.journal.records) rep->apply(rec);
    return rep;
  };

  // Stream one applied record to the replica; an injected replication
  // crash kills only the replica, which a later clean phase rebuilds.
  const auto replica_feed = [&](const JournalRecord& rec) {
    if (replica == nullptr) return;
    try {
      replica->apply(rec);
    } catch (const InjectedCrash& e) {
      record_kill(e.site());
      ++report.replica_rebuilds;
      replica.reset();
    }
  };

  // Kill/recover: parse the disk (dropping a torn tail and truncating the
  // journal to the last complete record, as a real recovery would), rebuild
  // the broker, reattach the journal, and verify bit-identity with the
  // reference at the recovered seq.  Returns false if recovery itself was
  // killed (recover.replay armed).
  const auto recover = [&]() -> bool {
    std::istringstream jin(disk_journal);
    JournalReadResult jr = ReadJournalLenient(jin);
    if (jr.torn_tail) {
      ++report.torn_tails;
      std::ostringstream os;
      WriteJournalHeader(os, jr.journal.dims);
      for (const JournalRecord& rec : jr.journal.records)
        WriteJournalRecord(os, rec, jr.journal.dims);
      disk_journal = os.str();
    }
    std::istringstream sin(disk_snapshot);
    const BrokerSnapshot snap = ReadBrokerSnapshot(sin);
    try {
      broker =
          Broker::Recover(snap, jr.journal.records, pub, net.graph, opts.broker);
    } catch (const InjectedCrash& e) {
      record_kill(e.site());
      broker.reset();
      return false;
    }
    ++report.recoveries;
    sink = std::make_unique<std::ostringstream>(disk_journal, std::ios::ate);
    broker->set_journal(sink.get(), /*write_header=*/false);
    ++report.digest_checks;
    if (broker->state_digest() !=
        ref_digest[static_cast<std::size_t>(broker->seq())])
      ++report.digest_mismatches;
    // Records that became durable but were never streamed (e.g. a crash
    // between the WAL append and the listener) reach the replica here.
    for (const JournalRecord& rec : jr.journal.records) replica_feed(rec);
    return true;
  };

  // Apply up to max_cmds scheduled commands with whatever fault is armed.
  // A BrokerDegradedError is handled in place: fail points are cleared,
  // clear_degraded() completes the interrupted append (consuming the seq),
  // and the run continues — that IS the graceful-degradation path.
  const auto drive = [&](std::size_t max_cmds) {
    for (std::size_t n = 0;
         n < max_cmds && broker != nullptr && broker->seq() < last_seq; ++n) {
      const JournalRecord& rec =
          schedule[static_cast<std::size_t>(broker->seq())];
      try {
        broker->apply(rec);
        replica_feed(rec);
        if (opts.snapshot_every > 0 &&
            broker->seq() % opts.snapshot_every == 0)
          snapshot_now();
      } catch (const InjectedCrash& e) {
        persist_journal();
        record_kill(e.site());
        broker.reset();
        sink.reset();
        return;
      } catch (const BrokerDegradedError&) {
        ++report.degraded_entries;
        fp.clear();
        if (!broker->clear_degraded())
          throw std::logic_error(
              "chaos: clear_degraded failed with fail points disarmed");
        replica_feed(rec);  // the pending command took effect on clearing
        ++report.digest_checks;
        if (broker->state_digest() !=
            ref_digest[static_cast<std::size_t>(broker->seq())])
          ++report.digest_mismatches;
        return;  // fault spent
      }
    }
  };

  // Boot the first incarnation fresh (cold clustering, seq 0) and lay down
  // the initial disk state.
  broker = std::make_unique<Broker>(base, pub, net.graph, opts.broker);
  {
    std::ostringstream header;
    WriteJournalHeader(header, base.space.dims());
    disk_journal = header.str();
  }
  sink = std::make_unique<std::ostringstream>(disk_journal, std::ios::ate);
  broker->set_journal(sink.get(), /*write_header=*/false);
  snapshot_now();
  replica = rebuild_replica();

  Rng chaos_rng(opts.chaos_seed);
  while (true) {
    // Clean phase: nothing armed while we recover, rebuild and make the
    // guaranteed one-command forward progress of this round.
    fp.clear();
    if (broker == nullptr) {
      if (report.cycles < opts.cycles && chaos_rng.uniform_int(0, 3) == 0)
        fp.configure("recover.replay=crash*1^" +
                     std::to_string(chaos_rng.uniform_int(0, 3)));
      const bool ok = recover();
      fp.clear();
      if (!ok) continue;
    }
    if (replica == nullptr) replica = rebuild_replica();
    if (broker->seq() < last_seq) {
      const JournalRecord& rec =
          schedule[static_cast<std::size_t>(broker->seq())];
      broker->apply(rec);
      replica_feed(rec);
      if (opts.snapshot_every > 0 && broker->seq() % opts.snapshot_every == 0)
        snapshot_now();
    }

    if (report.cycles >= opts.cycles) {
      // Fault budget spent: run the rest of the schedule clean.
      while (broker->seq() < last_seq) {
        const JournalRecord& rec =
            schedule[static_cast<std::size_t>(broker->seq())];
        broker->apply(rec);
        replica_feed(rec);
        if (opts.snapshot_every > 0 && broker->seq() % opts.snapshot_every == 0)
          snapshot_now();
      }
      break;
    }

    if (broker->seq() >= last_seq) {
      // Commands exhausted with budget left: cycle hard kills (and armed
      // recoveries) over the remaining journal tail.
      std::istringstream sin(disk_snapshot);
      if (ReadBrokerSnapshot(sin).seq >= last_seq) break;  // nothing to replay
      persist_journal();
      broker.reset();
      sink.reset();
      record_kill("external.kill");
      continue;
    }

    // Arm one scripted fault and drive into it.  Roughly one round in five
    // exercises degraded mode (persistent fsync failure) instead of a kill.
    if (chaos_rng.uniform_int(0, 4) == 0) {
      fp.configure("journal.flush=error");
      drive(10);
    } else {
      const auto& ks = kKillSites[static_cast<std::size_t>(chaos_rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(kKillSites)) - 1))];
      std::string spec = std::string(ks.site) + "=" + ks.action;
      if (spec.back() == ':')  // torn: pick how many bytes land
        spec += std::to_string(chaos_rng.uniform_int(1, 40));
      const bool snapshot_site = spec.rfind("snapshot.", 0) == 0;
      if (snapshot_site && opts.snapshot_every > 0) {
        // Arm the fault at the next organic checkpoint (+SEQ keeps it
        // dormant until the broker reaches that command) and drive the
        // schedule into it, so the fault fires on the natural cadence path
        // inside drive() instead of a forced snapshot call.
        const std::uint64_t next =
            (broker->seq() / opts.snapshot_every + 1) * opts.snapshot_every;
        spec += "*1+" + std::to_string(next);
        fp.configure(spec);
        drive(static_cast<std::size_t>(next - broker->seq()) + 1);
      } else if (snapshot_site) {
        // No cadence configured: snapshots never happen organically, so
        // force one into the armed fault.
        spec += "*1^" + std::to_string(chaos_rng.uniform_int(0, 3));
        fp.configure(spec);
        drive(1);
        if (broker != nullptr) {
          try {
            snapshot_now();
          } catch (const InjectedCrash& e) {
            persist_journal();
            record_kill(e.site());
            broker.reset();
            sink.reset();
          }
        }
      } else {
        spec += "*1^" + std::to_string(chaos_rng.uniform_int(0, 3));
        fp.configure(spec);
        drive(10);
      }
    }
    fp.clear();
  }

  fp.clear();
  report.final_seq = broker->seq();
  report.final_digest = broker->state_digest();
  report.digests_match = report.final_seq == last_seq &&
                         report.final_digest == report.reference_digest &&
                         report.digest_mismatches == 0;
  if (replica == nullptr) replica = rebuild_replica();
  report.replica_digest = replica->broker().state_digest();
  report.replica_matches = replica->seq() == last_seq &&
                           report.replica_digest == report.reference_digest;
  return report;
}

std::string FormatChaosReport(const ChaosReport& r) {
  std::ostringstream os;
  os << "commands          " << r.commands << " (final seq " << r.final_seq
     << ")\n"
     << "kill/recover      " << r.cycles << " kills, " << r.recoveries
     << " recoveries, " << r.torn_tails << " torn tails dropped\n"
     << "degraded rounds   " << r.degraded_entries << "\n"
     << "replica rebuilds  " << r.replica_rebuilds << "\n"
     << "digest checks     " << r.digest_checks << " ("
     << r.digest_mismatches << " mismatches)\n";
  os << "kills by site\n";
  for (const auto& [site, n] : r.kills_by_site)
    os << "  " << site << "  " << n << "\n";
  os << std::hex;
  os << "final digest      " << r.final_digest << "\n"
     << "reference digest  " << r.reference_digest << "\n"
     << "replica digest    " << r.replica_digest << "\n";
  os << std::dec;
  os << "verdict           "
     << (r.digests_match && r.replica_matches && r.digest_mismatches == 0
             ? "bit-identical"
             : "MISMATCH")
     << "\n";
  return os.str();
}

}  // namespace pubsub
