#include "broker/chaos.h"

#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "broker/replica.h"
#include "index/paged_rtree.h"
#include "index/rtree.h"
#include "io/serialize.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/stock_model.h"
#include "workload/trace.h"

namespace pubsub {

std::vector<JournalRecord> BuildChaosSchedule(const TransitStubNetwork& net,
                                              const Workload& base,
                                              std::size_t num_events,
                                              std::size_t churn_every,
                                              std::uint64_t seed) {
  // Draw-for-draw replica of serve-replay: trace first, then a split churn
  // stream, with per-step sub-streams salted by the trace index.  Changing
  // any draw here breaks serve-replay/chaos stream equivalence — both are
  // pinned by tests.
  Rng trace_rng(seed);
  const std::vector<TraceEvent> trace =
      GenerateStockTrace(net, {}, {}, num_events, trace_rng);
  Rng churn_rng = trace_rng.split(1);

  std::vector<SubscriberId> live(base.num_subscribers());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<SubscriberId>(i);
  auto next_id = static_cast<SubscriberId>(base.num_subscribers());

  std::vector<JournalRecord> schedule;
  schedule.reserve(trace.size() +
                   (churn_every > 0 ? trace.size() / churn_every : 0));
  std::uint64_t seq = 0;
  const auto push = [&](BrokerCommand cmd, double time_ms) {
    cmd.time_ms = time_ms;
    JournalRecord rec;
    rec.seq = ++seq;
    rec.cmd = std::move(cmd);
    schedule.push_back(std::move(rec));
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double now_ms = trace[i].timestamp * 1000.0;
    if (churn_every > 0 && (i + 1) % churn_every == 0) {
      auto action = churn_rng.uniform_int(0, 2);
      if (live.empty()) action = 0;  // nothing left to update/remove
      if (action == 0) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kSubscribe;
        cmd.node = one.subscribers[0].node;
        cmd.interest = one.subscribers[0].interest;
        push(std::move(cmd), now_ms);
        live.push_back(next_id++);
      } else if (action == 1 || live.size() <= 1) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kUpdate;
        cmd.subscriber = live[pick];
        cmd.interest = one.subscribers[0].interest;
        push(std::move(cmd), now_ms);
      } else {
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        BrokerCommand cmd;
        cmd.type = BrokerCommandType::kUnsubscribe;
        cmd.subscriber = live[pick];
        push(std::move(cmd), now_ms);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    BrokerCommand cmd;
    cmd.type = BrokerCommandType::kPublish;
    cmd.node = trace[i].pub.origin;
    cmd.point = trace[i].pub.point;
    push(std::move(cmd), now_ms);
  }
  return schedule;
}

namespace {

// Kill-style faults rotated through by the driver.  `torn:` gets a byte
// count appended at arm time.
struct KillSite {
  const char* site;
  const char* action;
};
constexpr KillSite kKillSites[] = {
    {"journal.write", "crash"},
    {"journal.write", "torn:"},
    {"journal.flush", "crash"},
    {"broker.publish.pre_journal", "crash"},
    {"broker.publish.post_journal", "crash"},
    {"snapshot.write", "crash"},
    {"snapshot.flush", "crash"},
    {"replica.apply", "crash"},
};

}  // namespace

ChaosReport RunChaos(const TransitStubNetwork& net, const Workload& base,
                     const PublicationModel& pub, const ChaosOptions& opts) {
  FailPoints& fp = FailPoints::Instance();
  fp.clear();

  ChaosReport report;
  const std::vector<JournalRecord> schedule = BuildChaosSchedule(
      net, base, opts.num_events, opts.churn_every, opts.seed);
  report.commands = schedule.size();
  const std::uint64_t last_seq = schedule.empty() ? 0 : schedule.back().seq;

  // Un-faulted reference run: one digest per sequence number, so any
  // recovered incarnation can be checked at whatever seq it landed on.
  std::vector<std::uint64_t> ref_digest(static_cast<std::size_t>(last_seq) + 1);
  {
    Broker ref(base, pub, net.graph, opts.broker);
    ref_digest[0] = ref.state_digest();
    for (const JournalRecord& rec : schedule) {
      ref.apply(rec);
      ref_digest[static_cast<std::size_t>(rec.seq)] = ref.state_digest();
    }
    report.reference_digest = ref_digest[static_cast<std::size_t>(last_seq)];
  }

  // The "disk": what survives a kill.  The sink stream models an append-only
  // file whose accepted bytes persist (fsync failures are injected
  // separately at journal.flush); snapshots replace atomically, so a crash
  // mid-write leaves the previous snapshot in place.
  std::string disk_journal;
  std::string disk_snapshot;

  std::unique_ptr<Broker> broker;
  std::unique_ptr<std::ostringstream> sink;
  std::unique_ptr<BrokerReplica> replica;

  const auto persist_journal = [&] {
    if (sink != nullptr) disk_journal = sink->str();
  };
  const auto snapshot_now = [&] {
    std::ostringstream os;
    broker->write_snapshot(os);  // may throw InjectedCrash (snapshot.write)
    disk_snapshot = os.str();
  };
  const auto record_kill = [&](const std::string& site) {
    ++report.cycles;
    ++report.kills_by_site[site];
  };

  // Re-bootstrap the warm standby from the disk and catch it up from the
  // journal (records at or below its seq are ignored by the replica).
  const auto rebuild_replica = [&] {
    persist_journal();
    std::istringstream sin(disk_snapshot);
    const BrokerSnapshot snap = ReadBrokerSnapshot(sin);
    auto rep =
        std::make_unique<BrokerReplica>(snap, pub, net.graph, opts.broker);
    std::istringstream jin(disk_journal);
    const JournalReadResult jr = ReadJournalLenient(jin);
    for (const JournalRecord& rec : jr.journal.records) rep->apply(rec);
    return rep;
  };

  // Stream one applied record to the replica; an injected replication
  // crash kills only the replica, which a later clean phase rebuilds.
  const auto replica_feed = [&](const JournalRecord& rec) {
    if (replica == nullptr) return;
    try {
      replica->apply(rec);
    } catch (const InjectedCrash& e) {
      record_kill(e.site());
      ++report.replica_rebuilds;
      replica.reset();
    }
  };

  // Kill/recover: parse the disk (dropping a torn tail and truncating the
  // journal to the last complete record, as a real recovery would), rebuild
  // the broker, reattach the journal, and verify bit-identity with the
  // reference at the recovered seq.  Returns false if recovery itself was
  // killed (recover.replay armed).
  const auto recover = [&]() -> bool {
    std::istringstream jin(disk_journal);
    JournalReadResult jr = ReadJournalLenient(jin);
    if (jr.torn_tail) {
      ++report.torn_tails;
      std::ostringstream os;
      WriteJournalHeader(os, jr.journal.dims);
      for (const JournalRecord& rec : jr.journal.records)
        WriteJournalRecord(os, rec, jr.journal.dims);
      disk_journal = os.str();
    }
    std::istringstream sin(disk_snapshot);
    const BrokerSnapshot snap = ReadBrokerSnapshot(sin);
    try {
      broker =
          Broker::Recover(snap, jr.journal.records, pub, net.graph, opts.broker);
    } catch (const InjectedCrash& e) {
      record_kill(e.site());
      broker.reset();
      return false;
    }
    ++report.recoveries;
    sink = std::make_unique<std::ostringstream>(disk_journal, std::ios::ate);
    broker->set_journal(sink.get(), /*write_header=*/false);
    ++report.digest_checks;
    if (broker->state_digest() !=
        ref_digest[static_cast<std::size_t>(broker->seq())])
      ++report.digest_mismatches;
    // Records that became durable but were never streamed (e.g. a crash
    // between the WAL append and the listener) reach the replica here.
    for (const JournalRecord& rec : jr.journal.records) replica_feed(rec);
    return true;
  };

  // Apply up to max_cmds scheduled commands with whatever fault is armed.
  // A BrokerDegradedError is handled in place: fail points are cleared,
  // clear_degraded() completes the interrupted append (consuming the seq),
  // and the run continues — that IS the graceful-degradation path.
  const auto drive = [&](std::size_t max_cmds) {
    for (std::size_t n = 0;
         n < max_cmds && broker != nullptr && broker->seq() < last_seq; ++n) {
      const JournalRecord& rec =
          schedule[static_cast<std::size_t>(broker->seq())];
      try {
        broker->apply(rec);
        replica_feed(rec);
        if (opts.snapshot_every > 0 &&
            broker->seq() % opts.snapshot_every == 0)
          snapshot_now();
      } catch (const InjectedCrash& e) {
        persist_journal();
        record_kill(e.site());
        broker.reset();
        sink.reset();
        return;
      } catch (const BrokerDegradedError&) {
        ++report.degraded_entries;
        fp.clear();
        if (!broker->clear_degraded())
          throw std::logic_error(
              "chaos: clear_degraded failed with fail points disarmed");
        replica_feed(rec);  // the pending command took effect on clearing
        ++report.digest_checks;
        if (broker->state_digest() !=
            ref_digest[static_cast<std::size_t>(broker->seq())])
          ++report.digest_mismatches;
        return;  // fault spent
      }
    }
  };

  // Boot the first incarnation fresh (cold clustering, seq 0) and lay down
  // the initial disk state.
  broker = std::make_unique<Broker>(base, pub, net.graph, opts.broker);
  {
    std::ostringstream header;
    WriteJournalHeader(header, base.space.dims());
    disk_journal = header.str();
  }
  sink = std::make_unique<std::ostringstream>(disk_journal, std::ios::ate);
  broker->set_journal(sink.get(), /*write_header=*/false);
  snapshot_now();
  replica = rebuild_replica();

  Rng chaos_rng(opts.chaos_seed);
  while (true) {
    // Clean phase: nothing armed while we recover, rebuild and make the
    // guaranteed one-command forward progress of this round.
    fp.clear();
    if (broker == nullptr) {
      if (report.cycles < opts.cycles && chaos_rng.uniform_int(0, 3) == 0)
        fp.configure("recover.replay=crash*1^" +
                     std::to_string(chaos_rng.uniform_int(0, 3)));
      const bool ok = recover();
      fp.clear();
      if (!ok) continue;
    }
    if (replica == nullptr) replica = rebuild_replica();
    if (broker->seq() < last_seq) {
      const JournalRecord& rec =
          schedule[static_cast<std::size_t>(broker->seq())];
      broker->apply(rec);
      replica_feed(rec);
      if (opts.snapshot_every > 0 && broker->seq() % opts.snapshot_every == 0)
        snapshot_now();
    }

    if (report.cycles >= opts.cycles) {
      // Fault budget spent: run the rest of the schedule clean.
      while (broker->seq() < last_seq) {
        const JournalRecord& rec =
            schedule[static_cast<std::size_t>(broker->seq())];
        broker->apply(rec);
        replica_feed(rec);
        if (opts.snapshot_every > 0 && broker->seq() % opts.snapshot_every == 0)
          snapshot_now();
      }
      break;
    }

    if (broker->seq() >= last_seq) {
      // Commands exhausted with budget left: cycle hard kills (and armed
      // recoveries) over the remaining journal tail.
      std::istringstream sin(disk_snapshot);
      if (ReadBrokerSnapshot(sin).seq >= last_seq) break;  // nothing to replay
      persist_journal();
      broker.reset();
      sink.reset();
      record_kill("external.kill");
      continue;
    }

    // Arm one scripted fault and drive into it.  Roughly one round in five
    // exercises degraded mode (persistent fsync failure) instead of a kill.
    if (chaos_rng.uniform_int(0, 4) == 0) {
      fp.configure("journal.flush=error");
      drive(10);
    } else {
      const auto& ks = kKillSites[static_cast<std::size_t>(chaos_rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(kKillSites)) - 1))];
      std::string spec = std::string(ks.site) + "=" + ks.action;
      if (spec.back() == ':')  // torn: pick how many bytes land
        spec += std::to_string(chaos_rng.uniform_int(1, 40));
      const bool snapshot_site = spec.rfind("snapshot.", 0) == 0;
      if (snapshot_site && opts.snapshot_every > 0) {
        // Arm the fault at the next organic checkpoint (+SEQ keeps it
        // dormant until the broker reaches that command) and drive the
        // schedule into it, so the fault fires on the natural cadence path
        // inside drive() instead of a forced snapshot call.
        const std::uint64_t next =
            (broker->seq() / opts.snapshot_every + 1) * opts.snapshot_every;
        spec += "*1+" + std::to_string(next);
        fp.configure(spec);
        drive(static_cast<std::size_t>(next - broker->seq()) + 1);
      } else if (snapshot_site) {
        // No cadence configured: snapshots never happen organically, so
        // force one into the armed fault.
        spec += "*1^" + std::to_string(chaos_rng.uniform_int(0, 3));
        fp.configure(spec);
        drive(1);
        if (broker != nullptr) {
          try {
            snapshot_now();
          } catch (const InjectedCrash& e) {
            persist_journal();
            record_kill(e.site());
            broker.reset();
            sink.reset();
          }
        }
      } else {
        spec += "*1^" + std::to_string(chaos_rng.uniform_int(0, 3));
        fp.configure(spec);
        drive(10);
      }
    }
    fp.clear();
  }

  fp.clear();
  report.final_seq = broker->seq();
  report.final_digest = broker->state_digest();
  report.digests_match = report.final_seq == last_seq &&
                         report.final_digest == report.reference_digest &&
                         report.digest_mismatches == 0;
  if (replica == nullptr) replica = rebuild_replica();
  report.replica_digest = replica->broker().state_digest();
  report.replica_matches = replica->seq() == last_seq &&
                           report.replica_digest == report.reference_digest;
  return report;
}

std::string FormatChaosReport(const ChaosReport& r) {
  std::ostringstream os;
  os << "commands          " << r.commands << " (final seq " << r.final_seq
     << ")\n"
     << "kill/recover      " << r.cycles << " kills, " << r.recoveries
     << " recoveries, " << r.torn_tails << " torn tails dropped\n"
     << "degraded rounds   " << r.degraded_entries << "\n"
     << "replica rebuilds  " << r.replica_rebuilds << "\n"
     << "digest checks     " << r.digest_checks << " ("
     << r.digest_mismatches << " mismatches)\n";
  os << "kills by site\n";
  for (const auto& [site, n] : r.kills_by_site)
    os << "  " << site << "  " << n << "\n";
  os << std::hex;
  os << "final digest      " << r.final_digest << "\n"
     << "reference digest  " << r.reference_digest << "\n"
     << "replica digest    " << r.replica_digest << "\n";
  os << std::dec;
  os << "verdict           "
     << (r.digests_match && r.replica_matches && r.digest_mismatches == 0
             ? "bit-identical"
             : "MISMATCH")
     << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Real-filesystem storage chaos

namespace {

constexpr std::size_t kStorageFanout = 8;

// Deterministic rect/probe workload for the drill (independent of the
// broker trace machinery — the unit under test is the storage tier).
struct StorageWorkload {
  std::vector<std::pair<Rect, int>> rects;
  std::vector<Point> points;
  std::vector<Rect> windows;
};

StorageWorkload MakeStorageWorkload(const StorageChaosOptions& opts) {
  Rng rng(opts.seed);
  StorageWorkload w;
  w.rects.reserve(opts.num_rects);
  for (std::size_t i = 0; i < opts.num_rects; ++i) {
    std::vector<Interval> ivals;
    ivals.reserve(opts.dims);
    for (std::size_t d = 0; d < opts.dims; ++d) {
      const double lo = rng.uniform(0.0, 100.0);
      ivals.emplace_back(lo, lo + rng.uniform(0.1, 20.0));
    }
    w.rects.emplace_back(Rect(std::move(ivals)), static_cast<int>(i));
  }
  for (std::size_t q = 0; q < opts.queries; ++q) {
    Point p(opts.dims);
    for (std::size_t d = 0; d < opts.dims; ++d) p[d] = rng.uniform(0.0, 110.0);
    w.points.push_back(std::move(p));
    std::vector<Interval> ivals;
    ivals.reserve(opts.dims);
    for (std::size_t d = 0; d < opts.dims; ++d) {
      const double lo = rng.uniform(0.0, 100.0);
      ivals.emplace_back(lo, lo + rng.uniform(0.1, 30.0));
    }
    w.windows.emplace_back(std::move(ivals));
  }
  return w;
}

// Exact element-wise equality — the bit-identity bar, not set equality.
bool SameIds(const std::vector<int>& a, const std::vector<int>& b) {
  return a == b;
}

}  // namespace

StorageChaosReport RunStorageChaos(const StorageChaosOptions& opts) {
  namespace fs = std::filesystem;
  if (opts.dir.empty()) {
    throw std::invalid_argument("RunStorageChaos: opts.dir must be set");
  }
  fs::create_directories(fs::path(opts.dir));
  FailPoints& fp = FailPoints::Instance();
  fp.clear();

  const StorageWorkload w = MakeStorageWorkload(opts);

  // In-memory reference: the plain RTree over the same insert history.
  RTree ref(kStorageFanout);
  for (const auto& [rect, id] : w.rects) ref.insert(rect, id);

  const fs::path good = fs::path(opts.dir) / "storage_chaos.pagefile";
  const fs::path tmp = fs::path(opts.dir) / "storage_chaos.pagefile.tmp";
  std::error_code ec;
  fs::remove(good, ec);
  fs::remove(tmp, ec);

  DiskStorageManager::Options so;
  so.page_size = opts.page_size;
  BufferPool::Options po;
  po.capacity = opts.buffer_pages;

  StorageChaosReport rep;

  // Build a full tree into the temp path and sync it; any injected fault
  // propagates out with the temp file abandoned (the atomic-replace
  // protocol: a file is a tree only after a clean build + rename).
  const auto build_tmp = [&]() {
    auto sm = DiskStorageManager::Create(tmp.string(), so);
    BufferPool pool(sm.get(), po);
    PagedRTree tree(&pool, opts.dims, kStorageFanout);
    for (const auto& [rect, id] : w.rects) tree.insert(rect, id);
    tree.sync();
  };
  const auto commit_tmp = [&]() {
    fs::rename(tmp, good);  // atomic replace, as io/serialize SaveToFileAtomic
  };

  // Query parity against the reference.  Returns true if every probe
  // answered and matched; a StorageError (torn/CRC/read fault) aborts the
  // pass and reports which outcome occurred via `detected`.
  const auto parity = [&](const fs::path& file, bool* detected) -> bool {
    bool all_match = true;
    try {
      DiskStorageManager::OpenReport openrep;
      auto sm = DiskStorageManager::Open(file.string(), so, &openrep);
      if (openrep.clipped_pages > 0 && detected != nullptr) *detected = true;
      BufferPool pool(sm.get(), po);
      PagedRTree tree = PagedRTree::Open(&pool);
      for (const Point& p : w.points)
        all_match = all_match && SameIds(tree.stab(p), ref.stab(p));
      for (const Rect& r : w.windows) {
        all_match = all_match && SameIds(tree.intersecting(r), ref.intersecting(r));
        all_match = all_match && SameIds(tree.containing(r), ref.containing(r));
      }
    } catch (const StorageError&) {
      if (detected != nullptr) *detected = true;
      return true;  // typed detection, not a parity verdict
    }
    ++rep.parity_checks;
    if (!all_match) ++rep.parity_mismatches;
    return all_match;
  };

  // Bootstrap: one clean build committed as the good file.
  build_tmp();
  commit_tmp();
  parity(good, nullptr);

  Rng chaos(opts.chaos_seed);
  for (std::size_t cycle = 0; cycle < opts.cycles; ++cycle) {
    ++rep.cycles;
    const std::size_t mode = cycle % 7;
    switch (mode) {
      case 0:    // crash mid-build: temp abandoned, good file must survive
      case 1: {  // torn page write mid-build: same recovery protocol
        const std::size_t skip =
            static_cast<std::size_t>(chaos.uniform_int(0, 300));
        const std::size_t arg = static_cast<std::size_t>(
            chaos.uniform_int(0, opts.page_size - 1));
        fp.configure(mode == 0
                         ? "storage.page.write=crash*1^" + std::to_string(skip)
                         : "storage.page.write=torn:" + std::to_string(arg) +
                               "*1^" + std::to_string(skip));
        bool crashed = false;
        try {
          build_tmp();
        } catch (const InjectedCrash&) {
          crashed = true;
        }
        fp.clear();
        if (crashed) {
          ++rep.crashes;
          ++rep.faults_by_site["storage.page.write"];
          fs::remove(tmp, ec);
          build_tmp();  // recovery: rebuild from the source of truth
          ++rep.rebuilds;
        }
        commit_tmp();
        parity(good, nullptr);
        break;
      }
      case 2: {  // short page write: the retry loop must absorb it
        const std::size_t skip =
            static_cast<std::size_t>(chaos.uniform_int(0, 300));
        const std::size_t arg = static_cast<std::size_t>(
            chaos.uniform_int(0, opts.page_size - 1));
        fp.configure("storage.page.write=error:" + std::to_string(arg) +
                     "*1^" + std::to_string(skip));
        build_tmp();  // must succeed despite the injected short write
        if (fp.fired("storage.page.write") > 0) {
          ++rep.short_writes;
          ++rep.faults_by_site["storage.page.write"];
        }
        fp.clear();
        commit_tmp();
        parity(good, nullptr);
        break;
      }
      case 3: {  // single flush failure: healed by one backoff retry
        fp.configure("storage.flush=error*1");
        build_tmp();
        if (fp.fired("storage.flush") > 0) {
          ++rep.flush_retries;
          ++rep.faults_by_site["storage.flush"];
        }
        fp.clear();
        commit_tmp();
        parity(good, nullptr);
        break;
      }
      case 4: {  // persistent flush failure: degraded mode, then recovery
        auto sm = DiskStorageManager::Create(tmp.string(), so);
        {
          BufferPool pool(sm.get(), po);
          PagedRTree tree(&pool, opts.dims, kStorageFanout);
          for (const auto& [rect, id] : w.rects) tree.insert(rect, id);
          fp.configure("storage.flush=error*100");
          bool degraded = false;
          try {
            tree.sync();
          } catch (const StorageDegradedError&) {
            degraded = true;
          }
          fp.clear();
          if (degraded) {
            ++rep.degraded_entries;
            ++rep.faults_by_site["storage.flush"];
            if (!sm->clear_degraded()) ++rep.parity_mismatches;  // must heal
            tree.sync();  // finish the interrupted durability point
          }
        }
        sm.reset();
        commit_tmp();
        parity(good, nullptr);
        break;
      }
      case 5: {  // injected read error during queries on the good file
        const std::size_t skip =
            static_cast<std::size_t>(chaos.uniform_int(0, 200));
        fp.configure("storage.page.read=error*1^" + std::to_string(skip));
        bool detected = false;
        parity(good, &detected);
        if (fp.fired("storage.page.read") > 0) {
          ++rep.read_errors;
          ++rep.faults_by_site["storage.page.read"];
        }
        fp.clear();
        parity(good, nullptr);  // clean re-run must be bit-identical
        break;
      }
      default: {  // physical torn tail: truncate a copy at a random offset
        fs::copy_file(good, tmp, fs::copy_options::overwrite_existing);
        const std::uint64_t size = fs::file_size(tmp);
        const std::uint64_t cut = static_cast<std::uint64_t>(
            chaos.uniform_int(0, static_cast<std::int64_t>(size - 1)));
        fs::resize_file(tmp, cut);
        bool detected = false;
        parity(tmp, &detected);
        if (detected) ++rep.torn_tails;
        fs::remove(tmp, ec);
        break;
      }
    }
  }

  fp.clear();
  fs::remove(good, ec);
  fs::remove(tmp, ec);
  return rep;
}

std::string FormatStorageChaosReport(const StorageChaosReport& r) {
  std::ostringstream os;
  os << "storage cycles    " << r.cycles << "\n"
     << "crashes survived  " << r.crashes << " (" << r.rebuilds
     << " rebuilds)\n"
     << "short writes      " << r.short_writes << " healed by retry\n"
     << "flush retries     " << r.flush_retries << " healed by backoff\n"
     << "degraded rounds   " << r.degraded_entries
     << " (degrade -> clear -> resume)\n"
     << "read errors       " << r.read_errors << " surfaced as typed errors\n"
     << "torn tails        " << r.torn_tails << " detected at reopen\n"
     << "parity checks     " << r.parity_checks << " ("
     << r.parity_mismatches << " mismatches)\n";
  os << "faults by site\n";
  for (const auto& [site, n] : r.faults_by_site)
    os << "  " << site << "  " << n << "\n";
  os << "verdict           "
     << (r.ok() ? "bit-identical" : "MISMATCH") << "\n";
  return os.str();
}

}  // namespace pubsub
