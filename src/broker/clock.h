// Moved to obs/clock.h so the telemetry layer (publish-path tracing, bench
// stopwatches) can share the Clock family without depending on the broker.
// This forwarding header keeps existing includes working.
#pragma once

#include "obs/clock.h"
