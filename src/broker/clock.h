// Pluggable time source for the broker service layer.
//
// The broker stamps every command with `clock->now_ms()` at submission and
// journals the stamp, so time is an *input* to the deterministic state
// machine rather than ambient state: replay and replication apply recorded
// stamps and reconstruct queueing behaviour bit-for-bit.  Tests and the
// trace-replay driver use ManualClock, advanced to each trace timestamp.
#pragma once

#include <algorithm>

namespace pubsub {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_ms() = 0;
};

// Explicitly advanced clock; never moves backwards.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start_ms = 0.0) : now_(start_ms) {}

  double now_ms() override { return now_; }
  void advance(double delta_ms) { if (delta_ms > 0.0) now_ += delta_ms; }
  void advance_to(double t_ms) { now_ = std::max(now_, t_ms); }

 private:
  double now_;
};

}  // namespace pubsub
