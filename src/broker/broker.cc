#include "broker/broker.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/serialize.h"
#include "util/failpoint.h"

namespace pubsub {
namespace {

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Broker::Broker(Workload initial, const PublicationModel& pub,
               const Graph& network, const BrokerOptions& options, Clock* clock)
    : pub_(&pub),
      network_(&network),
      options_(options),
      policy_(options.refresh),
      trace_(options.obs.trace_capacity) {
  init_obs(options);
  mgr_ = std::make_unique<GroupManager>(std::move(initial), pub, options_.group);
  runtime_ =
      std::make_unique<DeliveryRuntime>(network, options_.runtime, metrics_);
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<ManualClock>();
    clock = owned_clock_.get();
  }
  clock_ = clock;
  bootstrap_index();
  update_derived_gauges();
  capture_checkpoint();
}

Broker::Broker(RestoreTag, const BrokerSnapshot& snapshot,
               const PublicationModel& pub, const Graph& network,
               const BrokerOptions& options, Clock* clock)
    : pub_(&pub),
      network_(&network),
      options_(options),
      policy_(options.refresh),
      trace_(options.obs.trace_capacity) {
  if (static_cast<std::size_t>(snapshot.num_groups) != options.group.num_groups)
    throw std::invalid_argument(
        "Broker: snapshot group count (" + std::to_string(snapshot.num_groups) +
        ") does not match options (" +
        std::to_string(options.group.num_groups) + ")");
  init_obs(options);
  // Adopt the snapshot's clustering verbatim (no re-clustering) along with
  // its warm/cold bookkeeping.
  mgr_ = std::make_unique<GroupManager>(
      snapshot.workload, pub, options_.group, snapshot.assignment,
      static_cast<std::size_t>(snapshot.churn_since_full_build));
  runtime_ =
      std::make_unique<DeliveryRuntime>(network, options_.runtime, metrics_);
  runtime_->restore_queue_state(snapshot.queue_state);
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<ManualClock>();
    clock = owned_clock_.get();
  }
  clock_ = clock;
  seq_ = snapshot.seq;
  seed_stats(snapshot.stats);
  // v3 snapshots carry the covering table verbatim; older ones (or an
  // empty table) rebuild it from the workload — same observable behavior,
  // the canonical ascending bootstrap yields the same maximal index set.
  if (snapshot.covering.entries.empty())
    bootstrap_index();
  else
    restore_index(snapshot.covering);
  update_derived_gauges();
  checkpoint_ = snapshot;
}

void Broker::init_obs(const BrokerOptions& options) {
  metrics_ = options.obs.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // GroupManager and the matchers it builds share this broker's registry.
  options_.group.metrics = metrics_;
  trace_clock_ = options.obs.trace_clock;
  if (trace_clock_ == nullptr) {
    owned_trace_clock_ = std::make_unique<StopwatchClock>();
    trace_clock_ = owned_trace_clock_.get();
  }
  trace_sample_ = options.obs.trace_sample;

  MetricsRegistry& r = *metrics_;
  c_commands_ = r.counter("broker_commands_total", "commands applied");
  c_subscribes_ = r.counter("broker_subscribe_total", "subscribe commands");
  c_unsubscribes_ =
      r.counter("broker_unsubscribe_total", "unsubscribe commands");
  c_updates_ = r.counter("broker_update_total", "update commands");
  c_publishes_ = r.counter("broker_publish_total", "publish commands");
  c_events_matched_ = r.counter("broker_events_matched_total",
                                "publishes with >= 1 interested subscriber");
  c_multicast_events_ = r.counter("broker_multicast_events_total",
                                  "publishes delivered via a multicast group");
  c_unicast_events_ = r.counter("broker_unicast_events_total",
                                "publishes delivered purely by unicast");
  c_messages_emitted_ = r.counter(
      "broker_messages_emitted_total",
      "group deliveries + unicast messages across all publishes");
  c_wasted_ = r.counter("broker_wasted_deliveries_total",
                        "group deliveries to uninterested subscribers");
  c_refreshes_ = r.counter("broker_refresh_total", "re-clustering refreshes");
  c_full_rebuilds_ = r.counter("broker_full_rebuild_total",
                               "refreshes that fell back to a cold build");
  c_journal_bytes_ = r.counter("broker_journal_bytes_total",
                               "serialized bytes of the journal stream");
  c_refresh_by_churn_ =
      r.counter(LabeledName("broker_refresh_trigger_total", "cause", "churn"),
                "refreshes fired by the churned-fraction trigger");
  c_refresh_by_waste_ =
      r.counter(LabeledName("broker_refresh_trigger_total", "cause", "waste"),
                "refreshes fired by the waste-ratio trigger");
  c_refresh_by_resume_ =
      r.counter(LabeledName("broker_refresh_trigger_total", "cause", "resume"),
                "refreshes continuing a budget-exhausted re-clustering");
  c_replayed_ = r.counter("broker_recovery_replayed_records",
                          "journal tail records applied at recovery");
  c_flush_failures_ =
      r.counter("broker_journal_flush_failures_total",
                "journal append/flush attempts that failed");
  c_flush_retries_ = r.counter("broker_journal_flush_retries_total",
                               "backoff retries of failed journal appends");
  c_degraded_entries_ =
      r.counter("broker_degraded_entered_total",
                "times the broker entered read-only degraded mode");
  c_mutations_rejected_ =
      r.counter("broker_mutations_rejected_total",
                "commands rejected while in degraded mode");
  // Heal probes are timer-driven (serve loop), not journaled commands, so
  // their counts are runtime-only: a recovered broker has no probe history.
  c_heal_probes_ = r.counter("broker_heal_probe_total",
                             "degraded-mode heal probes attempted",
                             MetricStability::kRuntime);
  c_heal_successes_ = r.counter("broker_heal_success_total",
                                "heal probes that cleared degraded mode",
                                MetricStability::kRuntime);
  g_degraded_ =
      r.gauge("broker_degraded", "1 while in read-only degraded mode, else 0");
  g_snapshot_bytes_ = r.gauge("broker_recovery_snapshot_bytes",
                              "size of the bootstrap snapshot");
  g_recovery_progress_ = r.gauge(
      "broker_recovery_progress",
      "fraction of the journal tail replayed (1 once recovery finished)");
  g_seq_ = r.gauge("broker_seq", "last applied sequence number");
  g_live_subscribers_ = r.gauge(
      "broker_live_subscribers",
      "subscribers with a live in-domain interest (covering riders)");
  g_covering_entries_ = r.gauge(
      "broker_covering_entries",
      "distinct interest rectangles resident in the covering table");
  g_covering_indexed_ = r.gauge(
      "broker_covering_indexed_entries",
      "covering entries resident in the slab index (maximal rectangles)");
  g_covered_subscribers_ = r.gauge(
      "broker_covered_subscribers",
      "subscribers riding a covered (non-indexed) entry");
  // Slab maintenance telemetry depends on *index history* (a recovered
  // broker bulk-builds a compact slab), so it is runtime-only — unlike the
  // covering gauges above, which are pure functions of the live table.
  g_slab_endpoints_ =
      r.gauge("broker_slab_endpoints",
              "slab-index endpoints resident across all dimensions",
              MetricStability::kRuntime);
  g_slab_dead_endpoints_ =
      r.gauge("broker_slab_dead_endpoints",
              "slab-index endpoints no live entry references (table bloat)",
              MetricStability::kRuntime);
  g_slab_rebuilds_ =
      r.gauge("broker_slab_rebuilds",
              "threshold rebuilds performed by the slab index",
              MetricStability::kRuntime);
  g_slab_splices_ =
      r.gauge("broker_slab_spliced_endpoints",
              "endpoints spliced in by incremental slab inserts",
              MetricStability::kRuntime);
  g_window_waste_ratio_ =
      r.gauge("broker_window_waste_ratio",
              "wasted/emitted over the current refresh-policy window");
  g_waste_ratio_ =
      r.gauge("broker_waste_ratio", "cumulative wasted/emitted messages");
  g_cost_per_event_ = r.gauge("broker_cost_per_event",
                              "cumulative messages emitted per publish");
  h_interested_ =
      r.histogram("broker_interested_count",
                  "interested subscribers per publish",
                  ExponentialBuckets(1.0, 2.0, 12));
  h_group_size_ = r.histogram("broker_group_size",
                              "members of the matched multicast group",
                              ExponentialBuckets(1.0, 2.0, 12));
  h_delivery_ms_ = r.histogram(
      "broker_delivery_latency_ms",
      "modelled publication->subscriber latency (per target)",
      ExponentialBuckets(0.01, 2.0, 16));
  h_queue_wait_ms_ =
      r.histogram("broker_queue_wait_ms", "modelled broker queueing delay",
                  ExponentialBuckets(0.01, 2.0, 16));
  h_service_ms_ =
      r.histogram("broker_service_ms", "modelled broker service time",
                  ExponentialBuckets(0.01, 2.0, 16));
  for (std::size_t s = 0; s < kNumPublishStages; ++s)
    h_stage_[s] = r.histogram(
        LabeledName("broker_stage_latency_ms", "stage",
                    StageName(static_cast<PublishStage>(s))),
        "trace-clock wall time per publish-path stage",
        ExponentialBuckets(0.001, 4.0, 12), MetricStability::kRuntime);
  h_journal_flush_ms_ = r.histogram(
      "broker_journal_flush_ms",
      "trace-clock time serializing + flushing one journal record",
      ExponentialBuckets(0.001, 4.0, 12), MetricStability::kRuntime);
}

BrokerStats Broker::stats() const {
  BrokerStats s;
  s.commands_applied = c_commands_->value();
  s.subscribes = c_subscribes_->value();
  s.unsubscribes = c_unsubscribes_->value();
  s.updates = c_updates_->value();
  s.publishes = c_publishes_->value();
  s.events_matched = c_events_matched_->value();
  s.multicast_events = c_multicast_events_->value();
  s.unicast_events = c_unicast_events_->value();
  s.messages_emitted = c_messages_emitted_->value();
  s.wasted_deliveries = c_wasted_->value();
  s.refreshes = c_refreshes_->value();
  s.full_rebuilds = c_full_rebuilds_->value();
  s.journal_bytes = c_journal_bytes_->value();
  s.snapshot_bytes = static_cast<std::uint64_t>(g_snapshot_bytes_->value());
  s.replayed_records = c_replayed_->value();
  s.journal_flush_failures = c_flush_failures_->value();
  s.journal_flush_retries = c_flush_retries_->value();
  s.degraded_entries = c_degraded_entries_->value();
  s.mutations_rejected = c_mutations_rejected_->value();
  return s;
}

void Broker::seed_stats(const BrokerStats& s) {
  c_commands_->reset(s.commands_applied);
  c_subscribes_->reset(s.subscribes);
  c_unsubscribes_->reset(s.unsubscribes);
  c_updates_->reset(s.updates);
  c_publishes_->reset(s.publishes);
  c_events_matched_->reset(s.events_matched);
  c_multicast_events_->reset(s.multicast_events);
  c_unicast_events_->reset(s.unicast_events);
  c_messages_emitted_->reset(s.messages_emitted);
  c_wasted_->reset(s.wasted_deliveries);
  c_refreshes_->reset(s.refreshes);
  c_full_rebuilds_->reset(s.full_rebuilds);
  c_journal_bytes_->reset(s.journal_bytes);
  // Recovery provenance describes *this* instance's bootstrap, not the
  // snapshotted broker's; Recover() fills it in.
  g_snapshot_bytes_->set(0.0);
  c_replayed_->reset(0);
  // Fault provenance, by contrast, is history worth keeping: an operator
  // recovering a degraded broker should still see what storage did to it
  // (`pubsub_cli stats` reads exactly these).
  c_flush_failures_->reset(s.journal_flush_failures);
  c_flush_retries_->reset(s.journal_flush_retries);
  c_degraded_entries_->reset(s.degraded_entries);
  c_mutations_rejected_->reset(s.mutations_rejected);
}

void Broker::update_derived_gauges() {
  Set(g_seq_, static_cast<double>(seq_));
  Set(g_live_subscribers_, static_cast<double>(covering_.subscriber_count()));
  Set(g_covering_entries_, static_cast<double>(covering_.entry_count()));
  Set(g_covering_indexed_, static_cast<double>(covering_.indexed_count()));
  Set(g_covered_subscribers_,
      static_cast<double>(covering_.covered_subscriber_count()));
  Set(g_slab_endpoints_, static_cast<double>(slab_.endpoint_count()));
  Set(g_slab_dead_endpoints_, static_cast<double>(slab_.dead_endpoints()));
  Set(g_slab_rebuilds_, static_cast<double>(slab_.rebuilds()));
  Set(g_slab_splices_, static_cast<double>(slab_.spliced_endpoints()));
  const std::uint64_t emitted = policy_.window_emitted();
  Set(g_window_waste_ratio_,
      emitted == 0 ? 0.0
                   : static_cast<double>(policy_.window_wasted()) /
                         static_cast<double>(emitted));
  const std::uint64_t pubs = c_publishes_->value();
  const std::uint64_t msgs = c_messages_emitted_->value();
  Set(g_cost_per_event_,
      pubs == 0 ? 0.0 : static_cast<double>(msgs) / static_cast<double>(pubs));
  Set(g_waste_ratio_, msgs == 0 ? 0.0
                                : static_cast<double>(c_wasted_->value()) /
                                      static_cast<double>(msgs));
}

// Bulk-load the covering table from the current table (ascending
// subscriber order — canonical, so two brokers bootstrapping the same
// workload agree exactly) and derive the slab index from it.  Tombstoned
// and out-of-domain interests clip to empty and stay unindexed.
void Broker::bootstrap_index() {
  covering_ = CoveringTable();
  const Rect domain = mgr_->workload().space.domain_rect();
  const std::size_t n = mgr_->workload().num_subscribers();
  delta_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Rect clipped =
        mgr_->workload().subscribers[i].interest.intersection(domain);
    if (clipped.empty()) continue;
    covering_.subscribe(static_cast<SubscriberId>(i), clipped, delta_);
  }
  delta_.clear();  // the bulk rebuild below supersedes the incremental ops
  rebuild_slab();
}

// Adopt a snapshot's covering image verbatim (exact state, including entry
// ids and free-list order) and derive the slab index from it.
void Broker::restore_index(const CoveringState& state) {
  covering_.import_state(state);
  rebuild_slab();
}

void Broker::rebuild_slab() {
  slab_ = SlabIndex(covering_.indexed_entries(), covering_.entry_capacity());
  Set(g_live_subscribers_,
      static_cast<double>(covering_.subscriber_count()));
}

std::unique_ptr<Broker> Broker::Recover(const BrokerSnapshot& snapshot,
                                        std::span<const JournalRecord> journal,
                                        const PublicationModel& pub,
                                        const Graph& network,
                                        const BrokerOptions& options,
                                        Clock* clock) {
  std::unique_ptr<Broker> b(
      new Broker(RestoreTag{}, snapshot, pub, network, options, clock));
  {
    std::ostringstream ss;
    WriteBrokerSnapshot(ss, snapshot);
    Set(b->g_snapshot_bytes_, static_cast<double>(ss.str().size()));
  }
  b->checkpoint_.stats = b->stats();
  std::size_t tail = 0;
  for (const JournalRecord& rec : journal)
    if (rec.seq > snapshot.seq) ++tail;
  std::size_t replayed = 0;
  FailPoints& fp = FailPoints::Instance();
  for (const JournalRecord& rec : journal) {
    if (rec.seq <= snapshot.seq) continue;  // already in the snapshot
    if (fp.active() && fp.eval("recover.replay").action != FailAction::kOff)
      throw InjectedCrash("recover.replay");
    if (rec.seq != b->seq_ + 1)
      throw std::runtime_error("Broker::Recover: journal gap (expected seq " +
                               std::to_string(b->seq_ + 1) + ", got " +
                               std::to_string(rec.seq) + ")");
    Inc(b->c_replayed_);
    b->apply_record(rec);
    ++replayed;
    Set(b->g_recovery_progress_, static_cast<double>(replayed) /
                                     static_cast<double>(tail));
  }
  Set(b->g_recovery_progress_, 1.0);
  return b;
}

void Broker::set_journal(std::ostream* sink, bool write_header) {
  if (sink == nullptr) {
    set_journal_sink(nullptr, false);
    owned_journal_sink_.reset();
    return;
  }
  owned_journal_sink_ = std::make_unique<StreamSink>(*sink, "journal");
  set_journal_sink(owned_journal_sink_.get(), write_header);
}

void Broker::set_journal_sink(FileSink* sink, bool write_header) {
  journal_ = sink;
  if (sink != nullptr && write_header) {
    std::ostringstream ss;
    WriteJournalHeader(ss, mgr_->workload().space.dims());
    journal_append(ss.str(), nullptr);
  }
}

void Broker::set_record_listener(
    std::function<void(const JournalRecord&)> listener) {
  listener_ = std::move(listener);
}

JournalRecord Broker::make_record(BrokerCommand cmd) {
  JournalRecord rec;
  rec.seq = seq_ + 1;
  cmd.time_ms = clock_->now_ms();
  rec.cmd = std::move(cmd);
  return rec;
}

SubscriberId Broker::subscribe(NodeId node, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kSubscribe;
  cmd.node = node;
  cmd.interest = interest;
  apply_record(make_record(std::move(cmd)));
  return static_cast<SubscriberId>(mgr_->workload().num_subscribers() - 1);
}

void Broker::unsubscribe(SubscriberId id) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUnsubscribe;
  cmd.subscriber = id;
  apply_record(make_record(std::move(cmd)));
}

void Broker::update(SubscriberId id, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUpdate;
  cmd.subscriber = id;
  cmd.interest = interest;
  apply_record(make_record(std::move(cmd)));
}

PublishOutcome Broker::publish(NodeId origin, const Point& event) {
  // Publishes reuse a dedicated record so the point buffer's capacity
  // survives across events (churn commands keep the allocating make_record
  // path; they are off the hot path and carry Rect payloads).
  JournalRecord& rec = publish_rec_;
  rec.cmd.type = BrokerCommandType::kPublish;
  rec.cmd.node = origin;
  rec.cmd.point.assign(event.begin(), event.end());
  rec.cmd.time_ms = clock_->now_ms();
  rec.seq = seq_ + 1;
  return apply_record(rec);
}

void Broker::apply(const JournalRecord& rec) { apply_with_outcome(rec); }

PublishOutcome Broker::apply_with_outcome(const JournalRecord& rec) {
  if (rec.seq != seq_ + 1)
    throw std::runtime_error("Broker::apply: out-of-order record (expected seq " +
                             std::to_string(seq_ + 1) + ", got " +
                             std::to_string(rec.seq) + ")");
  return apply_record(rec);
}

PublishOutcome Broker::apply_record(const JournalRecord& rec) {
  if (degraded_) {
    Inc(c_mutations_rejected_);
    throw BrokerDegradedError(
        "broker is degraded (read-only): journal durability lost; seq " +
        std::to_string(rec.seq) + " rejected");
  }
  if (rec.seq != seq_ + 1)
    throw std::runtime_error("Broker: non-contiguous sequence number");
  validate_churn(rec.cmd);
  const bool sampled =
      trace_ctx_armed_ || (trace_sample_ > 0 && rec.seq % trace_sample_ == 0);
  FailPoints& fp = FailPoints::Instance();
  // Feed the broker's command sequence to the fail-point layer so +SEQ
  // (arm-at-seq) specs can target a specific command — e.g. the organic
  // checkpoint a chaos schedule knows is coming.
  if (fp.active()) fp.advance_sequence(rec.seq);
  const bool is_publish = rec.cmd.type == BrokerCommandType::kPublish;
  if (fp.active() && is_publish &&
      fp.eval("broker.publish.pre_journal").action != FailAction::kOff)
    throw InjectedCrash("broker.publish.pre_journal");
  // Write-ahead: the record is durable (and its size accounted) before the
  // state mutation.  Serialization also validates the command against the
  // event space.
  {
    const double flush_start = trace_clock_->now_ms();
    journal_stream_.reset();
    WriteJournalRecord(journal_stream_, rec, mgr_->workload().space.dims());
    journal_append(journal_stream_.str(), &rec);
    const double flush_ms = trace_clock_->now_ms() - flush_start;
    Observe(h_journal_flush_ms_, flush_ms);
    Observe(h_stage_[static_cast<std::size_t>(PublishStage::kJournalFlush)],
            flush_ms);
    if (sampled)
      trace_.record({trace_ctx_armed_ ? trace_ctx_id_ : rec.seq, rec.seq,
                     trace_ctx_shard_, PublishStage::kJournalFlush,
                     flush_start, flush_ms});
  }
  if (fp.active() && is_publish &&
      fp.eval("broker.publish.post_journal").action != FailAction::kOff)
    throw InjectedCrash("broker.publish.post_journal");
  return finish_apply(rec);
}

// Everything after the record is durable: the crash-recovery contract is
// that rerunning this half from the journal reproduces the mutation.
PublishOutcome Broker::finish_apply(const JournalRecord& rec) {
  seq_ = rec.seq;
  last_time_ms_ = rec.cmd.time_ms;

  PublishOutcome out;
  if (rec.cmd.type == BrokerCommandType::kPublish) {
    out = apply_publish(rec.cmd);
  } else {
    apply_churn(rec.cmd);
  }
  out.seq = seq_;
  Inc(c_commands_);
  maybe_refresh(&out);
  update_derived_gauges();
  if (listener_) listener_(rec);
  // The fleet context covers exactly one record (clear_degraded's late
  // success lands here too, so a stalled-then-healed publish still traces).
  trace_ctx_armed_ = false;
  trace_ctx_shard_ = -1;
  trace_ctx_id_ = 0;
  return out;
}

void Broker::set_trace_context(std::uint64_t trace_id, std::int32_t shard) {
  trace_ctx_id_ = trace_id;
  trace_ctx_shard_ = shard;
  trace_ctx_armed_ = true;
}

void Broker::journal_append(const std::string& text, const JournalRecord* rec) {
  if (journal_ == nullptr) {
    // No sink attached (replay, tests): the stream size is still accounted
    // so journal_bytes matches a broker that did write these records.
    if (rec != nullptr) Inc(c_journal_bytes_, text.size());
    return;
  }
  const DurabilityOptions& d = options_.durability;
  std::size_t offset = 0;
  std::size_t failures = 0;
  double delay_ms = d.backoff_base_ms;
  const auto on_failure = [&](const char* what) {
    Inc(c_flush_failures_);
    if (failures >= d.flush_retries) enter_degraded(what, text, offset, rec);
    ++failures;
    Inc(c_flush_retries_);
    // Capped exponential backoff.  With a ManualClock (the deterministic
    // default) the broker advances time itself so retry schedules replay
    // exactly; under a wall clock the delay is advisory — the caller owns
    // actual sleeping.
    if (auto* manual = dynamic_cast<ManualClock*>(clock_))
      manual->advance(delay_ms);
    delay_ms = std::min(delay_ms * 2.0, d.backoff_cap_ms);
  };
  while (offset < text.size()) {
    const std::size_t wrote =
        journal_->write(text.data() + offset, text.size() - offset);
    offset += wrote;
    if (offset >= text.size()) break;
    // A short write that made progress is retried immediately with the
    // remainder (ordinary POSIX append semantics); only a stalled sink
    // spends retry budget.
    if (wrote == 0) on_failure("journal write made no progress");
  }
  while (!journal_->flush()) on_failure("journal flush (fsync) failed");
  if (rec != nullptr) Inc(c_journal_bytes_, text.size());
}

void Broker::enter_degraded(const std::string& why, const std::string& text,
                            std::size_t offset, const JournalRecord* rec) {
  degraded_ = true;
  pending_text_ = text;
  pending_offset_ = offset;
  pending_is_record_ = rec != nullptr;
  if (rec != nullptr) pending_rec_ = *rec;
  Inc(c_degraded_entries_);
  Set(g_degraded_, 1.0);
  throw BrokerDegradedError(
      "broker degraded (read-only): " + why + " after " +
      std::to_string(options_.durability.flush_retries) + " retries");
}

bool Broker::clear_degraded() {
  if (!degraded_) return true;
  if (journal_ != nullptr) {
    // Finish the interrupted append before anything else: its prefix may
    // already be on disk, and abandoning it would hand the same seq to the
    // next command — a duplicate no reader accepts.
    while (pending_offset_ < pending_text_.size()) {
      const std::size_t wrote =
          journal_->write(pending_text_.data() + pending_offset_,
                          pending_text_.size() - pending_offset_);
      if (wrote == 0) {
        Inc(c_flush_failures_);
        return false;
      }
      pending_offset_ += wrote;
    }
    if (!journal_->flush()) {
      Inc(c_flush_failures_);
      return false;
    }
  }
  degraded_ = false;
  Set(g_degraded_, 0.0);
  if (pending_is_record_) {
    Inc(c_journal_bytes_, pending_text_.size());
    const JournalRecord rec = pending_rec_;
    pending_is_record_ = false;
    pending_text_.clear();
    pending_offset_ = 0;
    // The record is durable now, so the command takes effect — the caller
    // that saw BrokerDegradedError observes it as a late success.
    finish_apply(rec);
  } else {
    pending_text_.clear();
    pending_offset_ = 0;
  }
  return true;
}

bool Broker::heal_probe() {
  if (!degraded_) return true;
  Inc(c_heal_probes_);
  const bool healed = clear_degraded();
  if (healed) Inc(c_heal_successes_);
  return healed;
}

void Broker::validate_churn(const BrokerCommand& cmd) const {
  // Only checks serialization cannot do: WriteJournalRecord already
  // rejects interest/point dimensionality mismatches before any byte
  // reaches the sink, but it cannot know the subscriber table — an
  // unknown-id unsubscribe/update must be caught here, pre-journal, or the
  // record lands in the journal (and consumes a seq) while the mutation
  // throws, desyncing every replica and crashing recovery replay.
  if (cmd.type != BrokerCommandType::kUnsubscribe &&
      cmd.type != BrokerCommandType::kUpdate)
    return;
  if (cmd.subscriber < 0 ||
      static_cast<std::size_t>(cmd.subscriber) >=
          mgr_->workload().num_subscribers())
    throw std::out_of_range("Broker: unknown subscriber id " +
                            std::to_string(cmd.subscriber));
}

void Broker::apply_churn(const BrokerCommand& cmd) {
  switch (cmd.type) {
    case BrokerCommandType::kSubscribe: {
      const SubscriberId id = mgr_->add_subscriber(cmd.node, cmd.interest);
      index_insert(id, cmd.interest);
      Inc(c_subscribes_);
      break;
    }
    case BrokerCommandType::kUnsubscribe:
      mgr_->remove_subscriber(cmd.subscriber);
      index_erase(cmd.subscriber);
      Inc(c_unsubscribes_);
      break;
    case BrokerCommandType::kUpdate:
      mgr_->update_subscriber(cmd.subscriber, cmd.interest);
      index_update(cmd.subscriber, cmd.interest);
      Inc(c_updates_);
      break;
    case BrokerCommandType::kPublish:
      break;  // handled by apply_publish
  }
}

PublishOutcome Broker::apply_publish(const BrokerCommand& cmd) {
  // Stage spans: histograms always, the ring only for sampled commands
  // (seq_ already carries this record's number).
  const bool sampled =
      trace_ctx_armed_ || (trace_sample_ > 0 && seq_ % trace_sample_ == 0);
  double mark = trace_clock_->now_ms();
  const auto stage_done = [&](PublishStage stage) {
    const double now = trace_clock_->now_ms();
    Observe(h_stage_[static_cast<std::size_t>(stage)], now - mark);
    if (sampled)
      trace_.record({trace_ctx_armed_ ? trace_ctx_id_ : seq_, seq_,
                     trace_ctx_shard_, stage, mark, now - mark});
    mark = now;
  };

  PublishOutcome out;
  MatchScratch& s = scratch_;
  const std::span<const SubscriberId> inter = interested_into(cmd.point, s);
  out.interested_set = inter;
  out.interested = inter.size();
  MatchDecision d = mgr_->matcher().match(cmd.point, inter, s);
  stage_done(PublishStage::kMatch);

  Inc(c_publishes_);
  if (!inter.empty()) Inc(c_events_matched_);
  Observe(h_interested_, static_cast<double>(inter.size()));

  s.latencies.clear();
  if (d.group_id >= 0) {
    out.group_id = d.group_id;
    out.group_size = d.group_members.size();
    // The matcher only knows the refresh-time table; interested subscribers
    // outside the group (added/updated since) get the exact-match unicast
    // path (see core/group_manager.h).  interested_into left the interested
    // bits set in s.words, so the completion is a word-level AND-NOT against
    // the group's membership words — emission over the touched word range
    // ascends, reproducing the sorted set_difference this replaced.
    const std::span<const std::uint64_t> gw =
        mgr_->matcher().group_bits(d.group_id).words();
    s.unicast.clear();
    for (std::size_t w = s.word_lo; w <= s.word_hi; ++w) {
      std::uint64_t word = s.words[w] & ~(w < gw.size() ? gw[w] : 0);
      while (word != 0) {
        const int b = std::countr_zero(word);
        s.unicast.push_back(static_cast<SubscriberId>(
            w * 64 + static_cast<std::size_t>(b)));
        word &= word - 1;
      }
    }
    s.clear_words();
    out.unicast_targets = s.unicast;
    out.wasted =
        d.group_members.size() - (inter.size() - out.unicast_targets.size());
    Inc(c_multicast_events_);
    Observe(h_group_size_, static_cast<double>(out.group_size));
    stage_done(PublishStage::kGroupSelection);
    out.timing = runtime_->deliver_multicast(
        cmd.time_ms, cmd.node, nodes_into(d.group_members, s.nodes),
        &s.latencies);
    if (!out.unicast_targets.empty()) {
      const DeliveryTiming u = runtime_->deliver_unicast(
          cmd.time_ms, cmd.node, nodes_into(out.unicast_targets, s.nodes),
          &s.latencies);
      out.timing.service_ms += u.service_ms;
    }
  } else {
    s.clear_words();
    out.unicast_targets = d.unicast_targets;
    Inc(c_unicast_events_);
    stage_done(PublishStage::kGroupSelection);
    out.timing = runtime_->deliver_unicast(
        cmd.time_ms, cmd.node, nodes_into(out.unicast_targets, s.nodes),
        &s.latencies);
  }
  // Both delivery calls appended into s.latencies (group latencies first);
  // re-span after the final append in case the buffer grew.
  out.timing.latencies_ms = s.latencies;
  stage_done(PublishStage::kDeliveryPlan);

  Observe(h_queue_wait_ms_, out.timing.queue_wait_ms);
  Observe(h_service_ms_, out.timing.service_ms);
  for (const double latency : out.timing.latencies_ms)
    Observe(h_delivery_ms_, latency);

  const std::size_t emitted = out.group_size + out.unicast_targets.size();
  Inc(c_messages_emitted_, emitted);
  Inc(c_wasted_, out.wasted);
  policy_.on_publish(emitted, out.wasted);
  return out;
}

void Broker::maybe_refresh(PublishOutcome* outcome) {
  RefreshTrigger trig =
      policy_.trigger(mgr_->pending_churn(), mgr_->workload().num_subscribers());
  // A budget-exhausted refresh left re-balancing moves pending; continue it
  // on the next publish even without a policy trigger, amortizing the
  // re-clustering across the publish stream.
  if (trig == RefreshTrigger::kNone && mgr_->refresh_incomplete())
    trig = RefreshTrigger::kResume;
  if (trig == RefreshTrigger::kNone) return;
  Inc(trig == RefreshTrigger::kChurn   ? c_refresh_by_churn_
      : trig == RefreshTrigger::kWaste ? c_refresh_by_waste_
                                       : c_refresh_by_resume_);
  const GroupManager::RefreshStats rs = mgr_->refresh();
  Inc(c_refreshes_);
  if (rs.full_rebuild) Inc(c_full_rebuilds_);
  policy_.on_refresh();
  // Checkpoints are taken only at *complete* refresh boundaries: an
  // incomplete refresh is mid-iteration state that journal replay
  // reconstructs deterministically, so snapshots never need to carry it
  // (and the snapshot format stays unchanged).
  if (!mgr_->refresh_incomplete()) capture_checkpoint();
  if (outcome != nullptr) outcome->refreshed = true;
}

void Broker::capture_checkpoint() {
  checkpoint_.seq = seq_;
  checkpoint_.workload = mgr_->workload();
  checkpoint_.num_groups = static_cast<int>(options_.group.num_groups);
  checkpoint_.cells_fed = mgr_->assignment().size();
  checkpoint_.assignment = mgr_->assignment();
  checkpoint_.churn_since_full_build = mgr_->churn_since_full_build();
  checkpoint_.queue_state = runtime_->queue_state();
  checkpoint_.stats = stats();
  checkpoint_.covering = covering_.export_state();
}

std::uint64_t Broker::write_snapshot(std::ostream& os) const {
  // The command counters in the checkpoint are pinned to the checkpoint's
  // seq (recovery re-applies the journal tail on top of them), but the
  // durability block is *provenance*, not replayed state — export the live
  // values so a snapshot taken after an incident carries its history.
  BrokerSnapshot out = checkpoint_;
  const BrokerStats live = stats();
  out.stats.journal_flush_failures = live.journal_flush_failures;
  out.stats.journal_flush_retries = live.journal_flush_retries;
  out.stats.degraded_entries = live.degraded_entries;
  out.stats.mutations_rejected = live.mutations_rejected;
  std::ostringstream ss;
  WriteBrokerSnapshot(ss, out);
  const std::string text = ss.str();
  // Route through a sink so the snapshot.* fail-point sites cover this
  // path too; snapshot writes have no retry budget — the caller owns the
  // temp-file-plus-rename protocol (SaveToFileAtomic) and simply keeps the
  // previous snapshot on failure.
  StreamSink sink(os, "snapshot");
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t wrote =
        sink.write(text.data() + offset, text.size() - offset);
    if (wrote == 0) throw std::runtime_error("Broker: snapshot write failed");
    offset += wrote;
  }
  if (!sink.flush()) throw std::runtime_error("Broker: snapshot flush failed");
  return text.size();
}

Broker::MatchOutcome Broker::match(const Point& event) const {
  // Cold read path: returns owning vectors (callers hold results across
  // later commands), built from the same scratch kernels as apply_publish.
  MatchOutcome out;
  const std::vector<SubscriberId> inter = interested(event);
  out.interested = inter.size();
  MatchDecision d = mgr_->matcher().match(event, inter);
  if (d.group_id >= 0) {
    out.group_id = d.group_id;
    out.group_size = d.group_members.size();
    std::set_difference(inter.begin(), inter.end(), d.group_members.begin(),
                        d.group_members.end(),
                        std::back_inserter(out.unicast_targets));
  } else {
    out.unicast_targets.assign(d.unicast_targets.begin(),
                               d.unicast_targets.end());
  }
  return out;
}

std::vector<SubscriberId> Broker::interested(const Point& event) const {
  const std::span<const SubscriberId> s = interested_into(event, scratch_);
  scratch_.clear_words();
  return {s.begin(), s.end()};
}

std::span<const SubscriberId> Broker::interested_into(const Point& event,
                                                      MatchScratch& s) const {
  s.stab_hits.clear();
  slab_.stab(event, s.stab_hits, s.entry_words);
  s.interested.clear();
  if (s.stab_hits.empty()) return s.interested;
  // The slab stab yields *covering entries* (maximal distinct rectangles);
  // expand each into its riders plus the riders of covered children whose
  // rectangle point-tests true.  The expansion order reflects covering
  // topology — which depends on churn history, and differs between a live
  // broker and a recovered one.  Scatter the subscriber ids into bit-words
  // and emit the touched word range in ascending order: a counting sort,
  // so downstream decisions depend only on the interested *set* —
  // allocation-free and O(hits + population/64).  The bits stay set on
  // return (see the header) for the completion kernel.
  s.expanded.clear();
  for (const int e : s.stab_hits) covering_.expand(e, event, s.expanded);
  s.require_bits(mgr_->workload().num_subscribers());
  std::size_t lo = s.words.size();
  std::size_t hi = 0;
  for (const int id : s.expanded) {
    const std::size_t w = static_cast<std::size_t>(id) / 64;
    s.words[w] |= std::uint64_t{1} << (static_cast<std::size_t>(id) % 64);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  s.word_lo = lo;
  s.word_hi = hi;
  for (std::size_t w = lo; w <= hi; ++w) {
    std::uint64_t word = s.words[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      s.interested.push_back(static_cast<SubscriberId>(
          w * 64 + static_cast<std::size_t>(b)));
      word &= word - 1;
    }
  }
  return s.interested;
}

std::uint64_t Broker::state_digest() const {
  std::ostringstream os;
  os << seq_ << '\n'
     << mgr_->pending_churn() << ' ' << mgr_->churn_since_full_build() << '\n';
  WriteWorkload(os, mgr_->workload());
  for (const int g : mgr_->assignment()) os << g << ' ';
  os << '\n' << std::hexfloat;
  for (const double v : runtime_->queue_state()) os << v << ' ';
  return Fnv1a(os.str());
}

void Broker::index_insert(SubscriberId id, const Rect& interest) {
  const Rect clipped =
      interest.intersection(mgr_->workload().space.domain_rect());
  if (clipped.empty()) return;  // never matches an in-domain event
  delta_.clear();
  covering_.subscribe(id, clipped, delta_);
  apply_index_delta();
}

void Broker::index_erase(SubscriberId id) {
  if (!covering_.contains(id)) return;  // tombstoned or out-of-domain
  delta_.clear();
  covering_.unsubscribe(id, delta_);
  apply_index_delta();
}

void Broker::index_update(SubscriberId id, const Rect& interest) {
  const Rect clipped =
      interest.intersection(mgr_->workload().space.domain_rect());
  delta_.clear();
  if (covering_.contains(id)) {
    if (clipped.empty())
      covering_.unsubscribe(id, delta_);
    else
      covering_.update(id, clipped, delta_);  // no-op when rect unchanged
  } else if (!clipped.empty()) {
    covering_.subscribe(id, clipped, delta_);
  }
  apply_index_delta();
}

// Replay the covering table's index ops against the slab index, strictly
// in order (one churn command can add then remove the same entry id).
void Broker::apply_index_delta() {
  for (const CoveringTable::IndexOp& op : delta_) {
    if (op.kind == CoveringTable::IndexOp::kAdd)
      slab_.insert(op.rect, op.entry);
    else
      slab_.erase(op.entry);
  }
}

std::span<const NodeId> Broker::nodes_into(std::span<const SubscriberId> subs,
                                           std::vector<NodeId>& out) const {
  out.clear();
  for (const SubscriberId s : subs)
    out.push_back(
        mgr_->workload().subscribers[static_cast<std::size_t>(s)].node);
  return out;
}

}  // namespace pubsub
