#include "broker/broker.h"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/serialize.h"

namespace pubsub {
namespace {

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Broker::Broker(Workload initial, const PublicationModel& pub,
               const Graph& network, const BrokerOptions& options, Clock* clock)
    : pub_(&pub), network_(&network), options_(options), policy_(options.refresh) {
  mgr_ = std::make_unique<GroupManager>(std::move(initial), pub, options_.group);
  runtime_ = std::make_unique<DeliveryRuntime>(network, options_.runtime);
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<ManualClock>();
    clock = owned_clock_.get();
  }
  clock_ = clock;
  bootstrap_index();
  capture_checkpoint();
}

Broker::Broker(RestoreTag, const BrokerSnapshot& snapshot,
               const PublicationModel& pub, const Graph& network,
               const BrokerOptions& options, Clock* clock)
    : pub_(&pub), network_(&network), options_(options), policy_(options.refresh) {
  if (static_cast<std::size_t>(snapshot.num_groups) != options.group.num_groups)
    throw std::invalid_argument(
        "Broker: snapshot group count (" + std::to_string(snapshot.num_groups) +
        ") does not match options (" +
        std::to_string(options.group.num_groups) + ")");
  // Adopt the snapshot's clustering verbatim (no re-clustering) along with
  // its warm/cold bookkeeping.
  mgr_ = std::make_unique<GroupManager>(
      snapshot.workload, pub, options.group, snapshot.assignment,
      static_cast<std::size_t>(snapshot.churn_since_full_build));
  runtime_ = std::make_unique<DeliveryRuntime>(network, options.runtime);
  runtime_->restore_queue_state(snapshot.queue_state);
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<ManualClock>();
    clock = owned_clock_.get();
  }
  clock_ = clock;
  seq_ = snapshot.seq;
  stats_ = snapshot.stats;
  bootstrap_index();
  checkpoint_ = snapshot;
}

// Bulk-load the live index from the current table.  Tombstoned and
// out-of-domain interests clip to empty and stay unindexed.
void Broker::bootstrap_index() {
  indexed_rect_.assign(mgr_->workload().num_subscribers(), Rect());
  const Rect domain = mgr_->workload().space.domain_rect();
  std::vector<std::pair<Rect, int>> items;
  items.reserve(indexed_rect_.size());
  for (std::size_t i = 0; i < indexed_rect_.size(); ++i) {
    const Rect clipped =
        mgr_->workload().subscribers[i].interest.intersection(domain);
    if (clipped.empty()) continue;
    items.emplace_back(clipped, static_cast<int>(i));
    indexed_rect_[i] = clipped;
  }
  live_index_ = RTree::BulkLoad(std::move(items));
}

std::unique_ptr<Broker> Broker::Recover(const BrokerSnapshot& snapshot,
                                        std::span<const JournalRecord> journal,
                                        const PublicationModel& pub,
                                        const Graph& network,
                                        const BrokerOptions& options,
                                        Clock* clock) {
  std::unique_ptr<Broker> b(
      new Broker(RestoreTag{}, snapshot, pub, network, options, clock));
  {
    std::ostringstream ss;
    WriteBrokerSnapshot(ss, snapshot);
    b->stats_.snapshot_bytes = ss.str().size();
  }
  b->stats_.replayed_records = 0;
  b->checkpoint_.stats = b->stats_;
  for (const JournalRecord& rec : journal) {
    if (rec.seq <= snapshot.seq) continue;  // already in the snapshot
    if (rec.seq != b->seq_ + 1)
      throw std::runtime_error("Broker::Recover: journal gap (expected seq " +
                               std::to_string(b->seq_ + 1) + ", got " +
                               std::to_string(rec.seq) + ")");
    ++b->stats_.replayed_records;
    b->apply_record(rec);
  }
  return b;
}

void Broker::set_journal(std::ostream* sink, bool write_header) {
  if (sink != nullptr && write_header)
    WriteJournalHeader(*sink, mgr_->workload().space.dims());
  journal_ = sink;
}

void Broker::set_record_listener(
    std::function<void(const JournalRecord&)> listener) {
  listener_ = std::move(listener);
}

JournalRecord Broker::make_record(BrokerCommand cmd) {
  JournalRecord rec;
  rec.seq = seq_ + 1;
  cmd.time_ms = clock_->now_ms();
  rec.cmd = std::move(cmd);
  return rec;
}

SubscriberId Broker::subscribe(NodeId node, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kSubscribe;
  cmd.node = node;
  cmd.interest = interest;
  apply_record(make_record(std::move(cmd)));
  return static_cast<SubscriberId>(mgr_->workload().num_subscribers() - 1);
}

void Broker::unsubscribe(SubscriberId id) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUnsubscribe;
  cmd.subscriber = id;
  apply_record(make_record(std::move(cmd)));
}

void Broker::update(SubscriberId id, const Rect& interest) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kUpdate;
  cmd.subscriber = id;
  cmd.interest = interest;
  apply_record(make_record(std::move(cmd)));
}

PublishOutcome Broker::publish(NodeId origin, const Point& event) {
  BrokerCommand cmd;
  cmd.type = BrokerCommandType::kPublish;
  cmd.node = origin;
  cmd.point = event;
  return apply_record(make_record(std::move(cmd)));
}

void Broker::apply(const JournalRecord& rec) {
  if (rec.seq != seq_ + 1)
    throw std::runtime_error("Broker::apply: out-of-order record (expected seq " +
                             std::to_string(seq_ + 1) + ", got " +
                             std::to_string(rec.seq) + ")");
  apply_record(rec);
}

PublishOutcome Broker::apply_record(const JournalRecord& rec) {
  if (rec.seq != seq_ + 1)
    throw std::runtime_error("Broker: non-contiguous sequence number");
  // Write-ahead: the record is durable (and its size accounted) before the
  // state mutation.  Serialization also validates the command against the
  // event space.
  {
    std::ostringstream ss;
    WriteJournalRecord(ss, rec, mgr_->workload().space.dims());
    const std::string text = ss.str();
    stats_.journal_bytes += text.size();
    if (journal_ != nullptr) {
      *journal_ << text;
      journal_->flush();
    }
  }
  seq_ = rec.seq;
  last_time_ms_ = rec.cmd.time_ms;

  PublishOutcome out;
  if (rec.cmd.type == BrokerCommandType::kPublish) {
    out = apply_publish(rec.cmd);
  } else {
    apply_churn(rec.cmd);
  }
  out.seq = seq_;
  ++stats_.commands_applied;
  maybe_refresh(&out);
  if (listener_) listener_(rec);
  return out;
}

void Broker::apply_churn(const BrokerCommand& cmd) {
  switch (cmd.type) {
    case BrokerCommandType::kSubscribe: {
      const SubscriberId id = mgr_->add_subscriber(cmd.node, cmd.interest);
      index_insert(id, cmd.interest);
      ++stats_.subscribes;
      break;
    }
    case BrokerCommandType::kUnsubscribe:
      mgr_->remove_subscriber(cmd.subscriber);
      index_erase(cmd.subscriber);
      ++stats_.unsubscribes;
      break;
    case BrokerCommandType::kUpdate:
      mgr_->update_subscriber(cmd.subscriber, cmd.interest);
      index_erase(cmd.subscriber);
      index_insert(cmd.subscriber, cmd.interest);
      ++stats_.updates;
      break;
    case BrokerCommandType::kPublish:
      break;  // handled by apply_publish
  }
}

PublishOutcome Broker::apply_publish(const BrokerCommand& cmd) {
  PublishOutcome out;
  const std::vector<SubscriberId> inter = interested(cmd.point);
  out.interested = inter.size();
  MatchDecision d = mgr_->matcher().match(cmd.point, inter);

  ++stats_.publishes;
  if (!inter.empty()) ++stats_.events_matched;

  if (d.group_id >= 0) {
    out.group_id = d.group_id;
    out.group_size = d.group_members.size();
    // The matcher only knows the refresh-time table; interested subscribers
    // outside the group (added/updated since) get the exact-match unicast
    // path (see core/group_manager.h).  Both inputs are sorted ascending.
    std::set_difference(inter.begin(), inter.end(), d.group_members.begin(),
                        d.group_members.end(),
                        std::back_inserter(out.unicast_targets));
    out.wasted =
        d.group_members.size() - (inter.size() - out.unicast_targets.size());
    ++stats_.multicast_events;
    out.timing = runtime_->deliver_multicast(cmd.time_ms, cmd.node,
                                             nodes_of(d.group_members));
    if (!out.unicast_targets.empty()) {
      const DeliveryTiming u = runtime_->deliver_unicast(
          cmd.time_ms, cmd.node, nodes_of(out.unicast_targets));
      out.timing.service_ms += u.service_ms;
      out.timing.latencies_ms.insert(out.timing.latencies_ms.end(),
                                     u.latencies_ms.begin(),
                                     u.latencies_ms.end());
    }
  } else {
    out.unicast_targets = std::move(d.unicast_targets);
    ++stats_.unicast_events;
    out.timing = runtime_->deliver_unicast(cmd.time_ms, cmd.node,
                                           nodes_of(out.unicast_targets));
  }

  const std::size_t emitted = out.group_size + out.unicast_targets.size();
  stats_.messages_emitted += emitted;
  stats_.wasted_deliveries += out.wasted;
  policy_.on_publish(emitted, out.wasted);
  return out;
}

void Broker::maybe_refresh(PublishOutcome* outcome) {
  if (!policy_.should_refresh(mgr_->pending_churn(),
                              mgr_->workload().num_subscribers()))
    return;
  const GroupManager::RefreshStats rs = mgr_->refresh();
  ++stats_.refreshes;
  if (rs.full_rebuild) ++stats_.full_rebuilds;
  policy_.on_refresh();
  capture_checkpoint();
  if (outcome != nullptr) outcome->refreshed = true;
}

void Broker::capture_checkpoint() {
  checkpoint_.seq = seq_;
  checkpoint_.workload = mgr_->workload();
  checkpoint_.num_groups = static_cast<int>(options_.group.num_groups);
  checkpoint_.cells_fed = mgr_->assignment().size();
  checkpoint_.assignment = mgr_->assignment();
  checkpoint_.churn_since_full_build = mgr_->churn_since_full_build();
  checkpoint_.queue_state = runtime_->queue_state();
  checkpoint_.stats = stats_;
}

std::uint64_t Broker::write_snapshot(std::ostream& os) const {
  std::ostringstream ss;
  WriteBrokerSnapshot(ss, checkpoint_);
  const std::string text = ss.str();
  os << text;
  os.flush();
  return text.size();
}

std::vector<SubscriberId> Broker::interested(const Point& event) const {
  std::vector<int> hits = live_index_.stab(event);
  // The tree's structure (hence stab order) depends on insert/erase
  // history, which differs between a live broker and a recovered one; sort
  // so downstream decisions depend only on the stored set.
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::uint64_t Broker::state_digest() const {
  std::ostringstream os;
  os << seq_ << '\n'
     << mgr_->pending_churn() << ' ' << mgr_->churn_since_full_build() << '\n';
  WriteWorkload(os, mgr_->workload());
  for (const int g : mgr_->assignment()) os << g << ' ';
  os << '\n' << std::hexfloat;
  for (const double v : runtime_->queue_state()) os << v << ' ';
  return Fnv1a(os.str());
}

void Broker::index_insert(SubscriberId id, const Rect& interest) {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= indexed_rect_.size()) indexed_rect_.resize(slot + 1);
  const Rect clipped =
      interest.intersection(mgr_->workload().space.domain_rect());
  if (clipped.empty()) {
    indexed_rect_[slot] = Rect();
    return;
  }
  live_index_.insert(clipped, static_cast<int>(id));
  indexed_rect_[slot] = clipped;
}

void Broker::index_erase(SubscriberId id) {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= indexed_rect_.size() || indexed_rect_[slot].dims() == 0) return;
  live_index_.erase(indexed_rect_[slot], static_cast<int>(id));
  indexed_rect_[slot] = Rect();
}

std::vector<NodeId> Broker::nodes_of(std::span<const SubscriberId> subs) const {
  std::vector<NodeId> nodes;
  nodes.reserve(subs.size());
  for (const SubscriberId s : subs)
    nodes.push_back(
        mgr_->workload().subscribers[static_cast<std::size_t>(s)].node);
  return nodes;
}

}  // namespace pubsub
