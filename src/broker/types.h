// Shared value types of the broker service layer (§6 items 5–6: a live
// broker absorbs subscription churn and must recover its state after
// failure).
//
// The broker's durable state follows the clone-server pattern: state =
// *snapshot* + *sequenced update stream*.  Every state-mutating operation
// is a BrokerCommand; the broker stamps it with a monotone sequence number
// and a broker-clock timestamp, making a JournalRecord — the unit of the
// write-ahead journal and of primary→standby replication.  Replaying a
// record applies the *recorded* time, not the live clock, so queueing
// state (and hence every timing statistic) reconstructs exactly.
//
// These are plain structs with no behaviour so that io/serialize can
// read/write them without depending on the broker library.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster_types.h"
#include "core/covering_state.h"
#include "geometry/rect.h"
#include "workload/types.h"

namespace pubsub {

enum class BrokerCommandType { kSubscribe, kUnsubscribe, kUpdate, kPublish };

struct BrokerCommand {
  BrokerCommandType type = BrokerCommandType::kPublish;
  double time_ms = 0.0;          // broker-clock time at submission
  NodeId node = -1;              // subscribe: subscriber host; publish: origin
  SubscriberId subscriber = -1;  // unsubscribe / update target
  Rect interest;                 // subscribe / update
  Point point;                   // publish
};

struct JournalRecord {
  std::uint64_t seq = 0;  // assigned by the broker; contiguous from 1
  BrokerCommand cmd;
};

// Service counters.  All fields are pure functions of the applied command
// stream except snapshot_bytes / replayed_records, which record recovery
// provenance (what this broker instance was bootstrapped from), and the
// durability block (flush failures through mutations rejected), which
// records fault provenance — what storage did to this broker — and is zero
// on a healthy run.
struct BrokerStats {
  std::uint64_t commands_applied = 0;
  std::uint64_t subscribes = 0;
  std::uint64_t unsubscribes = 0;
  std::uint64_t updates = 0;
  std::uint64_t publishes = 0;
  std::uint64_t events_matched = 0;  // publishes with >= 1 interested sub
  std::uint64_t multicast_events = 0;
  std::uint64_t unicast_events = 0;
  std::uint64_t messages_emitted = 0;  // group deliveries + unicast messages
  std::uint64_t wasted_deliveries = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t full_rebuilds = 0;
  std::uint64_t journal_bytes = 0;  // serialized size of the record stream
  std::uint64_t snapshot_bytes = 0;   // size of the bootstrap snapshot
  std::uint64_t replayed_records = 0; // journal tail applied at recovery
  // Durability block (snapshot format v2; see docs/OPERATIONS.md).
  std::uint64_t journal_flush_failures = 0;  // flush attempts that failed
  std::uint64_t journal_flush_retries = 0;   // backoff retries performed
  std::uint64_t degraded_entries = 0;        // times degraded mode engaged
  std::uint64_t mutations_rejected = 0;      // commands refused while degraded
  bool operator==(const BrokerStats&) const = default;
};

// Durable image of a broker.  Snapshots are captured at refresh boundaries
// (including the initial build at seq 0), where the subscription table, the
// grid and the adopted clustering agree and the refresh-policy waste window
// is empty — so a snapshot plus the journal records with seq > `seq` is a
// complete reconstruction recipe at any later sequence number.
struct BrokerSnapshot {
  std::uint64_t seq = 0;  // last command applied before capture
  // Subscription table as of `seq` (tombstoned ids keep their slots).
  Workload workload;
  // Clustering adopted verbatim on restore (no re-clustering).
  int num_groups = 0;
  std::uint64_t cells_fed = 0;
  Assignment assignment;
  // GroupManager warm/cold bookkeeping at capture.
  std::uint64_t churn_since_full_build = 0;
  // DeliveryRuntime per-node queue state (earliest idle time).
  std::vector<double> queue_state;
  BrokerStats stats;
  // Covering-table image at capture (snapshot format v3; empty when the
  // snapshot predates covering — restore then rebuilds it from `workload`).
  CoveringState covering;
};

}  // namespace pubsub
