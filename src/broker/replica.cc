#include "broker/replica.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/failpoint.h"

namespace pubsub {

BrokerReplica::BrokerReplica(const BrokerSnapshot& snapshot,
                             const PublicationModel& pub, const Graph& network,
                             const BrokerOptions& options, Clock* clock)
    : broker_(Broker::Recover(snapshot, {}, pub, network, options, clock)) {}

void BrokerReplica::apply(const JournalRecord& rec) {
  if (broker_ == nullptr)
    throw std::logic_error(
        "BrokerReplica: already promoted; detach it from the record stream");
  if (rec.seq <= broker_->seq()) return;  // duplicate from a resent stream
  {
    FailPoints& fp = FailPoints::Instance();
    if (fp.active() && fp.eval("replica.apply").action != FailAction::kOff)
      throw InjectedCrash("replica.apply");
  }
  if (rec.seq != broker_->seq() + 1)
    throw std::runtime_error(
        "BrokerReplica: stream gap (expected seq " +
        std::to_string(broker_->seq() + 1) + ", got " +
        std::to_string(rec.seq) + "); re-bootstrap from a newer snapshot");
  broker_->apply(rec);
}

std::unique_ptr<Broker> BrokerReplica::promote() && {
  return std::move(broker_);
}

}  // namespace pubsub
