// Chaos driver: scripted kill/recover cycles for the durable broker.
//
// The durability claim of this layer ("recovery is bit-identical to an
// uninterrupted run") is only as good as the failure schedule it has been
// tested against.  RunChaos makes that schedule explicit: it drives a
// broker through the same command stream `pubsub_cli serve-replay` would
// produce, repeatedly kills it at the named fail-point sites of
// util/failpoint.h (crashes before/after the WAL append, torn journal
// tails, fsync failures that force degraded mode, crashes mid-recovery and
// mid-replication), recovers from the surviving in-memory "disk", and
// after every cycle compares the FNV-1a state digest against an un-faulted
// reference run at the same sequence number.
//
// The harness owns the process-global FailPoints registry for its run:
// callers must not have fail points armed concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/types.h"
#include "net/transit_stub.h"
#include "workload/types.h"

namespace pubsub {

// The exact command stream serve-replay drives, precomputed: schedule[k]
// carries seq k+1 and the timestamp the ManualClock would have stamped, so
// a broker at seq S always resumes at schedule[S] — regardless of how many
// times it has been killed in between.  Replicates serve-replay's churn
// policy draw-for-draw (same trace seed, same split stream).
std::vector<JournalRecord> BuildChaosSchedule(const TransitStubNetwork& net,
                                              const Workload& base,
                                              std::size_t num_events,
                                              std::size_t churn_every,
                                              std::uint64_t seed);

struct ChaosOptions {
  std::size_t num_events = 400;  // trace length (as serve-replay --events)
  std::size_t churn_every = 5;   // churn cadence (as serve-replay --churn-every)
  std::uint64_t seed = 7;        // trace/churn seed (as serve-replay --seed)
  std::uint64_t chaos_seed = 1;  // fault site/timing selection stream
  std::size_t cycles = 200;      // kill/recover cycles to force
  std::uint64_t snapshot_every = 50;  // checkpoint cadence in commands
  BrokerOptions broker;
};

struct ChaosReport {
  std::size_t commands = 0;       // schedule length (== the final seq)
  std::size_t cycles = 0;         // kills executed (injected + hard kills)
  std::size_t recoveries = 0;     // completed Broker::Recover calls
  std::size_t torn_tails = 0;     // recoveries that dropped a torn tail
  std::size_t degraded_entries = 0;  // degraded-mode rounds driven
  std::size_t replica_rebuilds = 0;  // replica re-bootstraps after a kill
  std::size_t digest_checks = 0;     // post-recovery digest comparisons
  std::size_t digest_mismatches = 0; // any non-zero value is a found bug
  std::map<std::string, std::uint64_t> kills_by_site;
  std::uint64_t final_seq = 0;
  std::uint64_t final_digest = 0;
  std::uint64_t reference_digest = 0;
  bool digests_match = false;  // final state bit-identical to the reference
  std::uint64_t replica_digest = 0;
  bool replica_matches = false;  // warm standby also bit-identical
};

// Run the full chaos schedule.  `base` must be a stock workload (the trace
// generator's event space); `pub` the matching publication model.  All
// journal/snapshot I/O happens against in-memory strings, so the run is
// hermetic and deterministic in (seed, chaos_seed, options).
ChaosReport RunChaos(const TransitStubNetwork& net, const Workload& base,
                     const PublicationModel& pub, const ChaosOptions& opts);

// Multi-line human-readable rendering (pubsub_cli chaos).
std::string FormatChaosReport(const ChaosReport& r);

// ---------------------------------------------------------------------------
// Real-filesystem storage chaos (pubsub_cli chaos --storage=disk).
//
// The in-memory chaos harness above exercises the broker's durability logic
// against string-backed sinks; the storage drill complements it by driving
// the *paged storage tier* on an actual filesystem through the three
// storage.* fail-point sites (short write, read error, flush failure →
// degraded mode → clear) plus physical torn tails (the page file truncated
// at an arbitrary byte offset).
//
// Protocol under test: a page file is a valid tree only after a clean
// build + sync, and files are built at a temp path and renamed over the
// previous good file — so any crash mid-build must leave the last good
// file answering queries bit-identically to the in-memory reference.

struct StorageChaosOptions {
  std::string dir;           // directory for page files (must exist)
  std::size_t num_rects = 500;
  std::size_t dims = 2;
  std::size_t queries = 48;  // stab/intersecting/containing probes per check
  std::uint64_t seed = 7;    // workload (rects + probes)
  std::uint64_t chaos_seed = 1;  // fault rotation stream
  std::size_t cycles = 40;   // fault/recover cycles
  std::uint32_t page_size = 1024;
  std::size_t buffer_pages = 8;
};

struct StorageChaosReport {
  std::size_t cycles = 0;
  std::size_t crashes = 0;          // InjectedCrash kills survived
  std::size_t read_errors = 0;      // injected read errors surfaced
  std::size_t short_writes = 0;     // short page writes healed by retry
  std::size_t flush_retries = 0;    // flush failures healed by retry
  std::size_t degraded_entries = 0; // degraded → clear_degraded round trips
  std::size_t torn_tails = 0;       // physical truncations detected at reopen
  std::size_t rebuilds = 0;         // full rebuilds after a lost build
  std::size_t parity_checks = 0;    // query-parity comparisons vs reference
  std::size_t parity_mismatches = 0;  // any non-zero value is a found bug
  std::map<std::string, std::uint64_t> faults_by_site;
  bool ok() const { return parity_mismatches == 0 && parity_checks > 0; }
};

StorageChaosReport RunStorageChaos(const StorageChaosOptions& opts);

std::string FormatStorageChaosReport(const StorageChaosReport& r);

}  // namespace pubsub
