#include "net/transit_stub.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {
namespace {

// Connect `nodes` into a random connected subgraph: a random spanning tree
// (each node links to a uniformly chosen earlier node, after shuffling)
// plus extra chords with probability `chord_prob` per non-tree pair.
void ConnectRandomly(Graph& g, const std::vector<NodeId>& nodes, double cost,
                     double chord_prob, Rng& rng) {
  if (nodes.size() < 2) return;
  std::vector<NodeId> order = nodes;
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    g.add_edge(order[i], order[j], cost);
  }
  if (chord_prob <= 0.0) return;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      if (!g.has_edge(order[i], order[j]) && rng.bernoulli(chord_prob))
        g.add_edge(order[i], order[j], cost);
    }
  }
}

}  // namespace

std::vector<NodeId> TransitStubNetwork::host_nodes() const {
  std::vector<NodeId> hosts;
  for (const std::vector<NodeId>& stub : stub_members)
    hosts.insert(hosts.end(), stub.begin(), stub.end());
  return hosts;
}

TransitStubNetwork GenerateTransitStub(const TransitStubParams& p, Rng& rng) {
  if (p.transit_blocks < 1 || p.transit_nodes_per_block < 1 ||
      p.stubs_per_transit_node < 1 || p.nodes_per_stub < 1)
    throw std::invalid_argument("GenerateTransitStub: non-positive shape parameter");

  TransitStubNetwork net;
  Graph& g = net.graph;

  // 1. Transit nodes, one connected subgraph per block.
  std::vector<std::vector<NodeId>> block_transit(static_cast<std::size_t>(p.transit_blocks));
  for (int b = 0; b < p.transit_blocks; ++b) {
    for (int t = 0; t < p.transit_nodes_per_block; ++t) {
      const NodeId v = g.add_node();
      net.stub_of_node.push_back(-1);
      net.block_of_node.push_back(b);
      net.transit_nodes.push_back(v);
      block_transit[static_cast<std::size_t>(b)].push_back(v);
    }
    ConnectRandomly(g, block_transit[static_cast<std::size_t>(b)], p.cost_intra_transit,
                    p.extra_edge_prob, rng);
  }

  // 2. Inter-block links: a ring of blocks (chain when only two), each link
  // between random transit nodes of the adjacent blocks.
  if (p.transit_blocks > 1) {
    const int links = p.transit_blocks == 2 ? 1 : p.transit_blocks;
    for (int b = 0; b < links; ++b) {
      const auto& from = block_transit[static_cast<std::size_t>(b)];
      const auto& to = block_transit[static_cast<std::size_t>((b + 1) % p.transit_blocks)];
      const NodeId u = from[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(from.size()) - 1))];
      const NodeId v = to[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(to.size()) - 1))];
      g.add_edge(u, v, p.cost_inter_block);
    }
  }

  // 3. Stubs: for every transit node, `stubs_per_transit_node` stubs of
  // `nodes_per_stub` nodes, internally connected, with one gateway node
  // uplinked to the transit node.
  for (const NodeId tn : net.transit_nodes) {
    const int block = net.block_of_node[static_cast<std::size_t>(tn)];
    for (int s = 0; s < p.stubs_per_transit_node; ++s) {
      const int stub_id = net.num_stubs++;
      net.block_of_stub.push_back(block);
      std::vector<NodeId> members;
      members.reserve(static_cast<std::size_t>(p.nodes_per_stub));
      for (int i = 0; i < p.nodes_per_stub; ++i) {
        const NodeId v = g.add_node();
        net.stub_of_node.push_back(stub_id);
        net.block_of_node.push_back(block);
        members.push_back(v);
      }
      ConnectRandomly(g, members, p.cost_intra_stub, p.extra_edge_prob, rng);
      const NodeId gateway =
          members[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
      g.add_edge(gateway, tn, p.cost_stub_uplink);

      // Optional last-mile hosts: each stub node becomes a router with a
      // dedicated access link to the host where the subscriber lives.
      if (p.last_mile_cost > 0.0) {
        std::vector<NodeId> hosts;
        hosts.reserve(members.size());
        for (const NodeId router : members) {
          const NodeId host = g.add_node();
          net.stub_of_node.push_back(stub_id);
          net.block_of_node.push_back(block);
          g.add_edge(router, host, p.last_mile_cost);
          hosts.push_back(host);
        }
        net.stub_members.push_back(std::move(hosts));
      } else {
        net.stub_members.push_back(std::move(members));
      }
    }
  }
  return net;
}

TransitStubParams PaperNet100() {
  TransitStubParams p;
  p.transit_blocks = 1;
  p.transit_nodes_per_block = 4;
  p.stubs_per_transit_node = 3;
  p.nodes_per_stub = 8;
  return p;
}

TransitStubParams PaperNet300() {
  TransitStubParams p;
  p.transit_blocks = 1;
  p.transit_nodes_per_block = 5;
  p.stubs_per_transit_node = 3;
  p.nodes_per_stub = 20;
  return p;
}

TransitStubParams PaperNet600() {
  TransitStubParams p;
  p.transit_blocks = 1;
  p.transit_nodes_per_block = 4;
  p.stubs_per_transit_node = 3;
  p.nodes_per_stub = 50;
  return p;
}

TransitStubParams PaperNetSection5() {
  TransitStubParams p;
  p.transit_blocks = 3;
  p.transit_nodes_per_block = 5;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 20;
  return p;
}

}  // namespace pubsub
