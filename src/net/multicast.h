// Delivery cost engines for the four distribution methods the paper
// compares (§3, §5.1):
//
//   * unicast      — one message per interested subscriber, each paying the
//                    full publisher→node shortest-path cost;
//   * broadcast    — one message down the publisher's full shortest-path
//                    tree, reaching every node;
//   * network-supported (dense-mode) multicast — the publisher's shortest-
//                    path tree pruned to the group members: cost is the sum
//                    of edge costs in the union of root→member paths;
//   * application-level multicast — group members relay over a minimum
//                    spanning tree of their unicast-distance metric closure.
//
// "Ideal multicast" is network-supported multicast whose group is exactly
// the set of interested nodes of each event (one group per event, up to
// 2^Ns groups — the paper's 100%-improvement reference point).
#pragma once

#include <span>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"

namespace pubsub {

// Sum of shortest-path distances root→target, one term per entry (per
// subscriber, so duplicate nodes are counted once per subscriber).
double UnicastCost(const ShortestPathTree& spt, std::span<const NodeId> targets);

// Total cost of the full shortest-path tree (delivery to every node).
double BroadcastCost(const ShortestPathTree& spt);

// Pruned-SPT multicast cost calculator.  Keeps epoch-stamped scratch so
// repeated per-event queries don't reallocate.
class PrunedSptCost {
 public:
  explicit PrunedSptCost(const Graph& g) : graph_(g), stamp_(static_cast<std::size_t>(g.num_nodes()), 0) {}

  // Cost of the union of root→member paths in `spt`.  Duplicate members
  // are free; the root itself contributes nothing.
  double cost(const ShortestPathTree& spt, std::span<const NodeId> members);

 private:
  const Graph& graph_;
  std::vector<int> stamp_;
  int epoch_ = 0;
};

// Application-level multicast: MST over {root} ∪ members in the metric
// closure given by `dm`.  Duplicate members are deduplicated.
double AppLevelMulticastCost(const DistanceMatrix& dm, NodeId root,
                             std::span<const NodeId> members);

// Sparse-mode (core-based / shared-tree) multicast.
//
// §5.1 notes that routers implement either dense-mode or sparse-mode
// multicast and that the paper assumes dense mode (per-source shortest-path
// trees).  Sparse mode trades delivery cost for router state: the group
// shares ONE tree rooted at a rendezvous core, so routers keep state per
// group instead of per (publisher, group); a publisher first unicasts the
// message to the core, which distributes it down the shared tree.
//
//   cost = dist(publisher → core) + pruned-SPT(core → members)
//
// The core-rooted tree part is publisher-independent and can be reused
// across events.
class SparseModeMulticastCost {
 public:
  explicit SparseModeMulticastCost(const Graph& g)
      : graph_(&g), pruner_(g) {}

  // Delivery cost for a publisher at `origin` with the given core.
  // `core_spt` must be the SPT rooted at the core; `dist_to_core` the
  // shortest-path distance origin→core (core_spt.dist[origin] works —
  // undirected graph).
  double cost(const ShortestPathTree& core_spt, NodeId origin,
              std::span<const NodeId> members);

  // Rendezvous-point selection: the member (or candidate) minimizing the
  // sum of distances to all members — the medoid under the metric closure.
  static NodeId SelectCore(const DistanceMatrix& dm,
                           std::span<const NodeId> members);

 private:
  const Graph* graph_;
  PrunedSptCost pruner_;
};

}  // namespace pubsub
