// Transit-stub network topology generator.
//
// The paper generates its networks with the GT-ITM package [Zegura et al.,
// "How to Model an Internetwork", Infocom 1996]: a hierarchy of transit
// blocks on top, stub networks in the middle, and hosts at the bottom.  We
// re-implement that model from its description.  The generator preserves
// the structural properties the paper's results depend on:
//
//   * hierarchical locality — intra-stub paths are much cheaper than
//     stub→transit→stub paths, which are cheaper than cross-block paths;
//   * configurable shape — (#blocks, transit nodes/block, stubs/transit
//     node, nodes/stub) exactly as in the §3 and §5.1 parameter tables;
//   * random connected subgraphs at each level (spanning tree + extra
//     chords), so different seeds give genuinely different topologies
//     (Figure 9 compares two seeds).
//
// The optional last-mile extension (§6, discussion item 2) attaches each
// subscriber host behind a dedicated higher-cost access link.
#pragma once

#include <vector>

#include "net/graph.h"
#include "util/rng.h"

namespace pubsub {

struct TransitStubParams {
  int transit_blocks = 1;
  int transit_nodes_per_block = 4;
  int stubs_per_transit_node = 3;
  int nodes_per_stub = 8;

  // Probability, per node pair beyond the spanning tree, of an extra chord
  // inside a stub or inside a transit block.
  double extra_edge_prob = 0.08;

  // Level-dependent edge costs (cheap at the edge, expensive in the core).
  double cost_intra_stub = 1.0;
  double cost_stub_uplink = 2.0;
  double cost_intra_transit = 5.0;
  double cost_inter_block = 10.0;

  // If > 0, every stub node becomes a router and a dedicated host node is
  // attached to it with this cost; subscribers then live on the hosts.
  double last_mile_cost = 0.0;
};

struct TransitStubNetwork {
  Graph graph;

  // Stub topology bookkeeping.  stub_of_node[v] == -1 for transit nodes
  // (and for last-mile routers when hosts are split out).
  int num_stubs = 0;
  std::vector<int> stub_of_node;
  std::vector<int> block_of_node;
  std::vector<std::vector<NodeId>> stub_members;  // subscriber-capable nodes
  std::vector<NodeId> transit_nodes;
  std::vector<int> block_of_stub;

  // All nodes where subscribers/publishers may be placed (stub hosts).
  std::vector<NodeId> host_nodes() const;
};

TransitStubNetwork GenerateTransitStub(const TransitStubParams& params, Rng& rng);

// The three §3 network shapes (100/300/600 nodes, one transit block) and
// the §5.1 shape (three blocks of five transit nodes, two stubs each,
// twenty nodes per stub).
TransitStubParams PaperNet100();
TransitStubParams PaperNet300();
TransitStubParams PaperNet600();
TransitStubParams PaperNetSection5();

}  // namespace pubsub
