#include "net/multicast.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/spanning.h"

namespace pubsub {

double UnicastCost(const ShortestPathTree& spt, std::span<const NodeId> targets) {
  double total = 0.0;
  for (const NodeId v : targets) {
    if (!spt.reachable(v)) throw std::invalid_argument("UnicastCost: unreachable target");
    total += spt.dist[static_cast<std::size_t>(v)];
  }
  return total;
}

double BroadcastCost(const ShortestPathTree& spt) {
  // Every reachable non-root node contributes its parent edge exactly once.
  double total = 0.0;
  for (std::size_t v = 0; v < spt.dist.size(); ++v) {
    if (spt.parent[v] != -1) total += spt.dist[v] - spt.dist[static_cast<std::size_t>(spt.parent[v])];
  }
  return total;
}

double PrunedSptCost::cost(const ShortestPathTree& spt, std::span<const NodeId> members) {
  if (spt.dist.size() != stamp_.size())
    throw std::invalid_argument("PrunedSptCost: tree/graph size mismatch");
  ++epoch_;
  stamp_[static_cast<std::size_t>(spt.root)] = epoch_;
  double total = 0.0;
  for (const NodeId m : members) {
    if (!spt.reachable(m)) throw std::invalid_argument("PrunedSptCost: unreachable member");
    // Walk up until we meet an edge already counted this epoch.
    for (NodeId v = m; stamp_[static_cast<std::size_t>(v)] != epoch_; v = spt.parent[static_cast<std::size_t>(v)]) {
      stamp_[static_cast<std::size_t>(v)] = epoch_;
      total += graph_.edge(spt.parent_edge[static_cast<std::size_t>(v)]).cost;
    }
  }
  return total;
}

double SparseModeMulticastCost::cost(const ShortestPathTree& core_spt,
                                     NodeId origin,
                                     std::span<const NodeId> members) {
  if (members.empty()) return 0.0;
  if (!core_spt.reachable(origin))
    throw std::invalid_argument("SparseModeMulticastCost: origin unreachable");
  // Unicast leg to the core (free when the publisher is the core), then
  // the shared core-rooted tree pruned to the members.
  return core_spt.dist[static_cast<std::size_t>(origin)] +
         pruner_.cost(core_spt, members);
}

NodeId SparseModeMulticastCost::SelectCore(const DistanceMatrix& dm,
                                           std::span<const NodeId> members) {
  if (members.empty())
    throw std::invalid_argument("SelectCore: empty member set");
  NodeId best = members[0];
  double best_sum = std::numeric_limits<double>::infinity();
  for (const NodeId candidate : members) {
    double sum = 0.0;
    for (const NodeId m : members) sum += dm(candidate, m);
    if (sum < best_sum) {
      best_sum = sum;
      best = candidate;
    }
  }
  return best;
}

double AppLevelMulticastCost(const DistanceMatrix& dm, NodeId root,
                             std::span<const NodeId> members) {
  std::vector<NodeId> nodes(members.begin(), members.end());
  nodes.push_back(root);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return PrimMstMetric(nodes.size(), [&](std::size_t i, std::size_t j) {
    return dm(nodes[i], nodes[j]);
  });
}

}  // namespace pubsub
