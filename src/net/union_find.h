// Disjoint-set forest with union-by-size and path halving.
//
// Used by Kruskal's MST (net/spanning.h) and — following the paper's
// observation that MST clustering is "Kruskal's algorithm stopped at K
// components" (§4.4) — by the reference Kruskal-stop-at-K implementation
// that property tests compare against the Prim-based clustering.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace pubsub {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns true iff x and y were in different components.
  bool unite(std::size_t x, std::size_t y) {
    std::size_t rx = find(x), ry = find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    --components_;
    return true;
  }

  bool same(std::size_t x, std::size_t y) { return find(x) == find(y); }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }
  std::size_t num_components() const { return components_; }
  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace pubsub
