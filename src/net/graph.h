// Undirected weighted graph with adjacency lists.
//
// This is the network substrate of the paper's evaluation: nodes are
// routers/hosts, edge costs are the per-link communication costs whose sums
// the experiments report (§5.2: "the cost of communication was computed by
// summing up the edge costs on the links on which communication takes
// place").
#pragma once

#include <cstddef>
#include <vector>

namespace pubsub {

using NodeId = int;
using EdgeId = int;

struct Edge {
  NodeId u = -1;
  NodeId v = -1;
  double cost = 0.0;

  NodeId other(NodeId x) const { return x == u ? v : u; }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  NodeId add_node();
  // Adds an undirected edge; returns its id.  Self-loops and non-positive
  // costs are rejected.
  EdgeId add_edge(NodeId u, NodeId v, double cost);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  struct Neighbor {
    NodeId node;
    EdgeId edge;
  };
  const std::vector<Neighbor>& neighbors(NodeId u) const { return adj_[u]; }
  std::size_t degree(NodeId u) const { return adj_[u].size(); }

  bool has_edge(NodeId u, NodeId v) const;
  bool is_connected() const;
  double total_edge_cost() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adj_;
};

}  // namespace pubsub
