#include "net/graph.h"

#include <stdexcept>

namespace pubsub {

Graph::Graph(int num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {
  if (num_nodes < 0) throw std::invalid_argument("Graph: negative node count");
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  return num_nodes() - 1;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double cost) {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes())
    throw std::out_of_range("Graph::add_edge: node out of range");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (cost <= 0) throw std::invalid_argument("Graph::add_edge: non-positive cost");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{u, v, cost});
  adj_[u].push_back(Neighbor{v, id});
  adj_[v].push_back(Neighbor{u, id});
  return id;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (degree(u) > degree(v)) return has_edge(v, u);
  for (const Neighbor& n : adj_[u])
    if (n.node == v) return true;
  return false;
}

bool Graph::is_connected() const {
  if (num_nodes() == 0) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Neighbor& n : adj_[u]) {
      if (!seen[n.node]) {
        seen[n.node] = 1;
        ++count;
        stack.push_back(n.node);
      }
    }
  }
  return count == num_nodes();
}

double Graph::total_edge_cost() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.cost;
  return total;
}

}  // namespace pubsub
