// Minimum spanning trees on explicit graphs (Kruskal) and on metric
// closures over node subsets (Prim).
//
// Application-level multicast in the paper (§5.1) has group members "form a
// minimum spanning tree and forward the messages from one member to
// another through the tree", with member-to-member links priced at unicast
// (shortest-path) cost — that is Prim over the metric closure.
#pragma once

#include <functional>
#include <vector>

#include "net/graph.h"

namespace pubsub {

// Kruskal MST of a connected graph; returns the edge ids of the tree.
// Throws if the graph is disconnected.
std::vector<EdgeId> KruskalMst(const Graph& g);

// Prim MST over an implicit complete graph on `n` points with symmetric
// metric `dist(i, j)`.  Returns total tree weight; if `edges` is non-null,
// the tree edges (as index pairs) are appended to it.  O(n^2) time, O(n)
// memory — the shape used both here and by the MST clustering algorithm.
double PrimMstMetric(std::size_t n,
                     const std::function<double(std::size_t, std::size_t)>& dist,
                     std::vector<std::pair<std::size_t, std::size_t>>* edges = nullptr);

}  // namespace pubsub
