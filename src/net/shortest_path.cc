#include "net/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace pubsub {

std::vector<NodeId> ShortestPathTree::path_to(NodeId v) const {
  if (!reachable(v)) throw std::invalid_argument("path_to: unreachable node");
  std::vector<NodeId> path;
  for (NodeId x = v; x != -1; x = parent[x]) path.push_back(x);
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree Dijkstra(const Graph& g, NodeId root) {
  const int n = g.num_nodes();
  if (root < 0 || root >= n) throw std::out_of_range("Dijkstra: bad root");

  ShortestPathTree t;
  t.root = root;
  t.dist.assign(n, std::numeric_limits<double>::infinity());
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, -1);
  t.dist[root] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, root);
  std::vector<char> done(n, 0);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = 1;
    for (const Graph::Neighbor& nb : g.neighbors(u)) {
      const double nd = d + g.edge(nb.edge).cost;
      if (nd < t.dist[nb.node]) {
        t.dist[nb.node] = nd;
        t.parent[nb.node] = u;
        t.parent_edge[nb.node] = nb.edge;
        pq.emplace(nd, nb.node);
      }
    }
  }
  return t;
}

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(static_cast<std::size_t>(g.num_nodes())), dist_(n_ * n_) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ShortestPathTree t = Dijkstra(g, u);
    std::copy(t.dist.begin(), t.dist.end(), dist_.begin() + static_cast<std::ptrdiff_t>(n_ * static_cast<std::size_t>(u)));
  }
}

}  // namespace pubsub
