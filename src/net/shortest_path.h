// Single-source shortest paths (Dijkstra) and the all-pairs distance matrix.
//
// Network-supported dense-mode multicast in the paper routes along "a
// shortest path tree rooted at the publisher" (§5.1); application-level
// multicast needs pairwise unicast distances between group members.  Both
// are served from here.
#pragma once

#include <vector>

#include "net/graph.h"

namespace pubsub {

// Shortest-path tree from a root.  parent[root] == -1; unreachable nodes
// have parent == -1 and dist == +inf.
struct ShortestPathTree {
  NodeId root = -1;
  std::vector<double> dist;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;

  bool reachable(NodeId v) const { return v == root || parent[v] != -1; }
  // Nodes on the root→v path, root first.  v must be reachable.
  std::vector<NodeId> path_to(NodeId v) const;
};

ShortestPathTree Dijkstra(const Graph& g, NodeId root);

// Dense all-pairs shortest path distances (n Dijkstra runs).
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Graph& g);

  double operator()(NodeId u, NodeId v) const {
    return dist_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)];
  }
  int num_nodes() const { return static_cast<int>(n_); }

 private:
  std::size_t n_;
  std::vector<double> dist_;
};

}  // namespace pubsub
