#include "net/spanning.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "net/union_find.h"

namespace pubsub {

std::vector<EdgeId> KruskalMst(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](EdgeId a, EdgeId b) {
    return g.edge(a).cost < g.edge(b).cost;
  });

  UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(g.num_nodes()) - 1);
  for (EdgeId e : order) {
    if (uf.unite(static_cast<std::size_t>(g.edge(e).u), static_cast<std::size_t>(g.edge(e).v))) {
      tree.push_back(e);
      if (uf.num_components() == 1) break;
    }
  }
  if (g.num_nodes() > 0 && uf.num_components() != 1)
    throw std::invalid_argument("KruskalMst: disconnected graph");
  return tree;
}

double PrimMstMetric(std::size_t n,
                     const std::function<double(std::size_t, std::size_t)>& dist,
                     std::vector<std::pair<std::size_t, std::size_t>>* edges) {
  if (n == 0) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<char> in_tree(n, 0);

  best[0] = 0.0;
  double total = 0.0;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t u = n;
    double u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best[i] < u_cost) {
        u_cost = best[i];
        u = i;
      }
    }
    if (u == n) throw std::invalid_argument("PrimMstMetric: infinite distance");
    in_tree[u] = 1;
    if (step > 0) {
      total += u_cost;
      if (edges != nullptr) edges->emplace_back(best_from[u], u);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const double d = dist(u, i);
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = u;
      }
    }
  }
  return total;
}

}  // namespace pubsub
