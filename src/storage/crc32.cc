#include "storage/crc32.h"

#include <array>

namespace pubsub {
namespace {

// Reflected CRC-32C table, generated at static-init time from the
// Castagnoli polynomial 0x1EDC6F41 (reflected form 0x82F63B78).
std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace pubsub
