// Stream adapters over a chain of pages (docs/STORAGE.md §"Blob chains").
//
// A blob is a byte sequence stored as a linked chain of pages, each payload
// laid out as [next u32][used u32][data ...].  The head page id and total
// byte length live in the file's header metadata, so a page file can carry
// an arbitrary serialized artifact — the broker snapshot path routes
// WriteBrokerSnapshot/ReadBrokerSnapshot through these adapters, which is
// what lets Broker::Recover stream pages on demand instead of slurping the
// whole file: the std::istream pulls one page per underflow.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"

namespace pubsub {

struct PageBlob {
  PageId head = kNoPage;
  std::uint64_t bytes = 0;
  std::uint32_t pages = 0;
};

// Header-metadata encoding of a blob ("blob head=H bytes=B pages=P").
std::string FormatBlobMeta(const PageBlob& blob);
bool ParseBlobMeta(const std::string& meta, PageBlob* out);

// Accumulates written bytes into a page chain.  Usage:
//   PageBlobWriter w(&pool);
//   WriteBrokerSnapshot(w.stream(), snap);
//   PageBlob blob = w.finish();   // emits the tail, flushes the pool
// finish() must be called exactly once; it stores the blob descriptor in
// the storage header metadata as a side effect.
class PageBlobWriter {
 public:
  explicit PageBlobWriter(BufferPool* pool);
  ~PageBlobWriter();

  std::ostream& stream() { return out_; }
  PageBlob finish();

 private:
  class Buf : public std::streambuf {
   public:
    explicit Buf(BufferPool* pool);
    PageBlob finish();

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;

   private:
    void append(const char* data, std::size_t n);
    void emit(PageId next);
    PageId alloc_unpinned();

    BufferPool* pool_;
    std::size_t cap_;            // data bytes per chain page
    std::vector<char> buffer_;   // bytes for the page at pending_
    PageId head_ = kNoPage;
    PageId pending_ = kNoPage;   // page id reserved for buffer_'s bytes
    std::uint64_t bytes_ = 0;
    std::uint32_t pages_ = 0;
    bool finished_ = false;
  };

  Buf buf_;
  std::ostream out_;
};

// Streams a blob back as a std::istream, loading one page per refill.
class PageBlobReader {
 public:
  // Reads the blob described by the storage header metadata; throws
  // StorageError(kBadHeader) if the metadata does not describe a blob.
  explicit PageBlobReader(BufferPool* pool);
  PageBlobReader(BufferPool* pool, const PageBlob& blob);

  std::istream& stream() { return in_; }
  const PageBlob& blob() const { return blob_; }

 private:
  class Buf : public std::streambuf {
   public:
    Buf(BufferPool* pool, const PageBlob& blob);

   protected:
    int_type underflow() override;

   private:
    BufferPool* pool_;
    PageBlob blob_;
    PageId next_ = kNoPage;
    std::uint64_t remaining_;
    std::uint32_t pages_seen_ = 0;
    std::vector<char> chunk_;
  };

  PageBlob blob_;
  Buf buf_;
  std::istream in_;
};

}  // namespace pubsub
