#include "storage/buffer_pool.h"

#include <cstring>

#include "obs/metrics.h"

namespace pubsub {

BufferPool::BufferPool(StorageManager* storage, const Options& options,
                       MetricsRegistry* metrics)
    : storage_(storage), options_(options) {
  if (options_.capacity == 0) {
    throw std::invalid_argument("buffer pool capacity must be >= 1");
  }
  if (metrics != nullptr) {
    m_hits_ = metrics->counter("storage_pool_hits_total",
                               "Buffer-pool pins served from a resident frame");
    m_misses_ = metrics->counter("storage_pool_misses_total",
                                 "Buffer-pool pins that loaded from storage");
    m_evictions_ = metrics->counter("storage_pool_evictions_total",
                                    "Frames evicted to make room");
    m_writebacks_ = metrics->counter("storage_pool_writebacks_total",
                                     "Dirty frames written back to storage");
    m_capacity_ = metrics->gauge("storage_pool_capacity",
                                 "Buffer-pool frame capacity (--buffer-pages)");
    m_pinned_ = metrics->gauge("storage_pool_pinned",
                               "Frames currently pinned");
    Set(m_capacity_, static_cast<double>(options_.capacity));
    Set(m_pinned_, 0.0);
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back; flush() is the real durability point.  Storage
  // may already be degraded — a destructor must not throw.
  try {
    flush();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

char* BufferPool::pin(PageId id) {
  Frame& frame = frame_for(id, /*load=*/true);
  if (frame.pins == 0) {
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++pinned_frames_;
    Set(m_pinned_, static_cast<double>(pinned_frames_));
  }
  ++frame.pins;
  return frame.data.get();
}

void BufferPool::unpin(PageId id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end() || it->second.pins == 0) {
    throw std::logic_error("unpin of page " + std::to_string(id) +
                           " which is not pinned");
  }
  Frame& frame = it->second;
  frame.dirty = frame.dirty || dirty;
  if (--frame.pins == 0) {
    lru_.push_front(id);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
    --pinned_frames_;
    Set(m_pinned_, static_cast<double>(pinned_frames_));
  }
}

PageId BufferPool::allocate() {
  const PageId id = storage_->allocate();
  Frame& frame = frame_for(id, /*load=*/false);
  std::memset(frame.data.get(), 0, payload_size());
  frame.dirty = true;
  if (frame.pins == 0) {
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++pinned_frames_;
    Set(m_pinned_, static_cast<double>(pinned_frames_));
  }
  ++frame.pins;
  return id;
}

void BufferPool::free_page(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.pins != 0) {
      throw std::logic_error("free_page of pinned page " + std::to_string(id));
    }
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_pos);
    }
    frames_.erase(it);
  }
  storage_->free_page(id);
}

void BufferPool::flush() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      writeback(id, frame);
    }
  }
  storage_->flush();
}

BufferPool::Frame& BufferPool::frame_for(PageId id, bool load) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (load) {
      ++hits_;
      Inc(m_hits_);
    }
    return it->second;
  }
  if (frames_.size() >= options_.capacity) {
    evict_one();
  }
  Frame frame;
  frame.data = std::make_unique<char[]>(payload_size());
  if (load) {
    ++misses_;
    Inc(m_misses_);
    storage_->read(id, frame.data.get());
  }
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  return pos->second;
}

void BufferPool::evict_one() {
  if (lru_.empty()) {
    throw BufferPoolExhaustedError(
        "buffer pool exhausted: all " + std::to_string(options_.capacity) +
        " frames are pinned (raise --buffer-pages or unpin before pinning "
        "more)");
  }
  const PageId victim = lru_.back();
  auto it = frames_.find(victim);
  if (it->second.dirty) {
    writeback(victim, it->second);
  }
  lru_.pop_back();
  frames_.erase(it);
  ++evictions_;
  Inc(m_evictions_);
}

void BufferPool::writeback(PageId id, Frame& frame) {
  storage_->write(id, frame.data.get());
  frame.dirty = false;
  ++writebacks_;
  Inc(m_writebacks_);
}

PageRef PageRef::Alloc(BufferPool& pool) {
  const PageId id = pool.allocate();
  // allocate() returns the page pinned; adopt that pin (dirty from birth).
  auto it_data = pool.pin(id);  // second pin so the ctor path stays uniform
  pool.unpin(id, /*dirty=*/true);
  return PageRef(pool, id, it_data, /*dirty=*/true);
}

}  // namespace pubsub
