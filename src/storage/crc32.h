// CRC-32C (Castagnoli) checksums for page integrity.
//
// Every page in a page file carries a CRC over its tag and payload so that
// torn writes, bit rot, and misdirected reads are detected at read time
// rather than silently corrupting the index (docs/STORAGE.md).  The
// Castagnoli polynomial is the one used by iSCSI/ext4/Btrfs; the software
// table implementation here keeps the toolchain dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pubsub {

// CRC-32C of `n` bytes at `data`.  `seed` chains partial checksums:
// Crc32c(b, Crc32c(a)) == Crc32c(a || b).
std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace pubsub
