// LRU buffer pool over a StorageManager (docs/STORAGE.md).
//
// The pool caches page payloads in fixed frames with pin counts.  The
// contract:
//
//   * pin(id) returns a pointer valid until the matching unpin(id, dirty).
//     Pins nest (same page pinned twice needs two unpins).
//   * A pinned frame is never evicted.  Eviction takes the least-recently-
//     unpinned frame; a dirty victim is written back first.
//   * When every frame is pinned and a miss needs a frame, pin() throws
//     BufferPoolExhaustedError — loudly, never a deadlock or silent grow.
//     Callers size --buffer-pages above their worst-case simultaneous pins
//     (the paged R-tree needs at most 2: one node plus one split sibling).
//   * allocate() reserves a page id in storage and installs a zeroed frame
//     for it, pinned and dirty; the page reaches storage at eviction or
//     flush(), not before.
//   * flush() writes back every dirty frame (pinned frames included — their
//     current contents are snapshotted) and then flushes storage.
//
// Hit/miss/eviction/write-back counters export through MetricsRegistry as
// deterministic metrics: pool traffic is a pure function of the applied
// command stream, so two identical runs scrape identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "storage/storage_manager.h"

namespace pubsub {

class MetricsRegistry;
class Counter;
class Gauge;

class BufferPoolExhaustedError : public std::runtime_error {
 public:
  explicit BufferPoolExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

class BufferPool {
 public:
  struct Options {
    std::size_t capacity = 64;  // frames (--buffer-pages)
  };

  // `storage` must outlive the pool.  `metrics` may be nullptr.
  BufferPool(StorageManager* storage, const Options& options,
             MetricsRegistry* metrics = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  StorageManager* storage() { return storage_; }
  std::uint32_t payload_size() const { return storage_->payload_size(); }
  std::size_t capacity() const { return options_.capacity; }
  std::size_t resident() const { return frames_.size(); }
  std::size_t pinned() const { return pinned_frames_; }

  // Pin a page, loading it from storage on a miss.  Throws
  // BufferPoolExhaustedError if a frame is needed and all are pinned.
  char* pin(PageId id);
  // Release one pin; `dirty` marks the frame as modified since load.
  void unpin(PageId id, bool dirty);

  // Reserve a new page and install a zeroed frame, pinned and dirty.
  PageId allocate();
  // Drop the page from the pool (must be unpinned) and free it in storage.
  void free_page(PageId id);

  // Write back all dirty frames and flush storage (the durability point).
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    std::size_t pins = 0;
    bool dirty = false;
    // Position in lru_ when pins == 0 (unpinned frames only).
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  Frame& frame_for(PageId id, bool load);
  void evict_one();
  void writeback(PageId id, Frame& frame);

  StorageManager* storage_;
  Options options_;
  std::unordered_map<PageId, Frame> frames_;
  // Least-recently-unpinned order, most recent at the front.
  std::list<PageId> lru_;
  std::size_t pinned_frames_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t writebacks_ = 0;
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_writebacks_ = nullptr;
  Gauge* m_capacity_ = nullptr;
  Gauge* m_pinned_ = nullptr;
};

// RAII pin: unpins on destruction with the dirty flag accumulated via
// set_dirty().  Move-only.
class PageRef {
 public:
  PageRef(BufferPool& pool, PageId id)
      : pool_(&pool), id_(id), data_(pool.pin(id)) {}
  // Allocate a fresh page (pinned, zeroed, dirty).
  static PageRef Alloc(BufferPool& pool);

  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_),
        id_(other.id_),
        data_(other.data_),
        dirty_(other.dirty_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      id_ = other.id_;
      data_ = other.data_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { release(); }

  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }
  void set_dirty() { dirty_ = true; }

 private:
  PageRef(BufferPool& pool, PageId id, char* data, bool dirty)
      : pool_(&pool), id_(id), data_(data), dirty_(dirty) {}
  void release() {
    if (pool_ != nullptr) {
      pool_->unpin(id_, dirty_);
      pool_ = nullptr;
    }
  }

  BufferPool* pool_;
  PageId id_ = kNoPage;
  char* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace pubsub
