#include "storage/storage_manager.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "storage/crc32.h"
#include "storage/page_codec.h"
#include "util/failpoint.h"

namespace pubsub {
namespace {

using storage::GetU32;
using storage::PutU32;

// Physical page layout (disk):   [crc u32][tag u32][payload ...]
// CRC covers tag + payload.  The tag is the page's logical id (kNoPage for
// the header), catching misdirected reads.
constexpr std::size_t kCrcOff = 0;
constexpr std::size_t kTagOff = 4;
constexpr std::size_t kPayloadOff = 8;

// Header payload:  magic, version, page_size, page_count, free_head,
// free_count, meta_len, meta[kMetaCapacity].
constexpr std::uint32_t kMagic = 0x47505350u;  // "PSPG" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHdrMagic = 0;
constexpr std::size_t kHdrVersion = 4;
constexpr std::size_t kHdrPageSize = 8;
constexpr std::size_t kHdrPageCount = 12;
constexpr std::size_t kHdrFreeHead = 16;
constexpr std::size_t kHdrFreeCount = 20;
constexpr std::size_t kHdrMetaLen = 24;
constexpr std::size_t kHdrMeta = 28;

const char* kWriteSite = "storage.page.write";
const char* kReadSite = "storage.page.read";
const char* kFlushSite = "storage.flush";

void SealFrame(char* frame, std::uint32_t page_size, std::uint32_t tag) {
  PutU32(frame + kTagOff, tag);
  PutU32(frame + kCrcOff,
         Crc32c(frame + kTagOff, page_size - kTagOff));
}

void CheckPageSize(std::uint32_t page_size) {
  if (page_size < kMinPageSize) {
    throw std::invalid_argument("page_size must be >= " +
                                std::to_string(kMinPageSize));
  }
}

}  // namespace

const char* StorageErrorCodeName(StorageErrorCode code) {
  switch (code) {
    case StorageErrorCode::kIo:
      return "io";
    case StorageErrorCode::kBadHeader:
      return "bad-header";
    case StorageErrorCode::kCrcMismatch:
      return "crc-mismatch";
    case StorageErrorCode::kBadPage:
      return "bad-page";
    case StorageErrorCode::kTornPage:
      return "torn-page";
  }
  return "unknown";
}

StorageError::StorageError(StorageErrorCode code, PageId page,
                           const std::string& detail)
    : std::runtime_error(std::string("storage error [") +
                         StorageErrorCodeName(code) + "] page " +
                         (page == kNoPage ? std::string("-")
                                          : std::to_string(page)) +
                         ": " + detail),
      code_(code),
      page_(page) {}

// ---------------------------------------------------------------------------
// MemoryStorageManager

MemoryStorageManager::MemoryStorageManager(std::uint32_t page_size)
    : page_size_(page_size) {
  CheckPageSize(page_size);
}

PageId MemoryStorageManager::allocate() {
  ++stats_.allocations;
  if (!free_.empty()) {
    const PageId id = free_.back();
    free_.pop_back();
    return id;
  }
  pages_.push_back(std::make_unique<char[]>(payload_size()));
  return static_cast<PageId>(pages_.size() - 1);
}

void MemoryStorageManager::free_page(PageId id) {
  check_id(id);
  ++stats_.frees;
  free_.push_back(id);
}

void MemoryStorageManager::read(PageId id, char* out) {
  check_id(id);
  ++stats_.reads;
  std::memcpy(out, pages_[id].get(), payload_size());
}

void MemoryStorageManager::write(PageId id, const char* data) {
  check_id(id);
  ++stats_.writes;
  std::memcpy(pages_[id].get(), data, payload_size());
}

void MemoryStorageManager::flush() { ++stats_.flushes; }

void MemoryStorageManager::set_meta(const std::string& m) {
  if (m.size() > kMetaCapacity) {
    throw std::invalid_argument("storage meta exceeds " +
                                std::to_string(kMetaCapacity) + " bytes");
  }
  meta_ = m;
}

void MemoryStorageManager::check_id(PageId id) const {
  if (id >= pages_.size()) {
    throw StorageError(StorageErrorCode::kBadPage, id, "page id out of range");
  }
}

// ---------------------------------------------------------------------------
// DiskStorageManager

DiskStorageManager::DiskStorageManager(std::string path, const Options& options)
    : path_(std::move(path)), options_(options) {
  CheckPageSize(options_.page_size);
  frame_.resize(options_.page_size);
  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    m_reads_ = m.counter("storage_page_reads_total",
                         "Pages read from the page file");
    m_writes_ = m.counter("storage_page_writes_total",
                          "Pages written to the page file");
    m_flush_failures_ = m.counter(
        "storage_flush_failures_total",
        "Failed page-file write/fsync attempts (before retry)");
    m_retries_ = m.counter("storage_retries_total",
                           "Page-file write/fsync retries after a failure");
    m_degraded_ = m.counter(
        "storage_degraded_entries_total",
        "Times the page file entered degraded read-only mode");
  }
}

DiskStorageManager::~DiskStorageManager() {
  // Best-effort durability on destruction; explicit flush() is the real
  // durability point (a destructor must not throw).
  try {
    if (!degraded_ && file_.is_open()) {
      flush();
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

std::unique_ptr<DiskStorageManager> DiskStorageManager::Create(
    const std::string& path, const Options& options) {
  std::unique_ptr<DiskStorageManager> sm(
      new DiskStorageManager(path, options));
  sm->open_file(/*truncate=*/true);
  sm->header_dirty_ = true;
  sm->flush();
  return sm;
}

std::unique_ptr<DiskStorageManager> DiskStorageManager::Open(
    const std::string& path, const Options& options, OpenReport* report) {
  std::unique_ptr<DiskStorageManager> sm(
      new DiskStorageManager(path, options));
  sm->open_file(/*truncate=*/false);
  sm->load_header(report);
  return sm;
}

void DiskStorageManager::open_file(bool truncate) {
  std::ios_base::openmode mode =
      std::ios::binary | std::ios::in | std::ios::out;
  if (truncate) {
    mode |= std::ios::trunc;
    // std::ios::in | std::ios::trunc requires the file to be creatable;
    // fstream handles creation with this mode combination.
    file_.open(path_, mode);
  } else {
    file_.open(path_, mode);
  }
  if (!file_.is_open()) {
    throw StorageError(StorageErrorCode::kIo, kNoPage,
                       "cannot open page file " + path_);
  }
}

void DiskStorageManager::load_header(OpenReport* report) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path_, ec);
  if (ec) {
    throw StorageError(StorageErrorCode::kIo, kNoPage,
                       "cannot stat page file " + path_);
  }
  // Peek the fixed prologue first: the header's own geometry field decides
  // how many bytes the CRC covers, so Open must adapt to the file's page
  // size (which may differ from the caller's --page-size) before verifying.
  char prologue[kPayloadOff + kHdrPageSize + 4];
  if (size < sizeof(prologue)) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "file shorter than a header prologue (torn header)");
  }
  file_.seekg(0);
  file_.read(prologue, sizeof(prologue));
  if (file_.gcount() != static_cast<std::streamsize>(sizeof(prologue))) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "short header read");
  }
  if (GetU32(prologue + kPayloadOff + kHdrMagic) != kMagic) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "bad magic (not a page file?)");
  }
  const std::uint32_t file_page_size =
      GetU32(prologue + kPayloadOff + kHdrPageSize);
  if (file_page_size < kMinPageSize) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "implausible page size in header");
  }
  if (file_page_size != options_.page_size) {
    // The header is authoritative; callers pass --page-size for Create but
    // Open adapts to the file.
    options_.page_size = file_page_size;
    frame_.resize(file_page_size);
  }
  if (size < options_.page_size) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "file shorter than one page (torn header)");
  }
  file_.seekg(0);
  file_.read(frame_.data(), options_.page_size);
  if (file_.gcount() != static_cast<std::streamsize>(options_.page_size)) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "short header read");
  }
  const char* payload = frame_.data() + kPayloadOff;
  const std::uint32_t stored_crc = GetU32(frame_.data() + kCrcOff);
  const std::uint32_t want_crc =
      Crc32c(frame_.data() + kTagOff, options_.page_size - kTagOff);
  if (stored_crc != want_crc) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "header CRC mismatch");
  }
  if (GetU32(payload + kHdrVersion) != kVersion) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "unsupported page-file version");
  }
  page_count_ = GetU32(payload + kHdrPageCount);
  free_head_ = GetU32(payload + kHdrFreeHead);
  free_count_ = GetU32(payload + kHdrFreeCount);
  const std::uint32_t meta_len = GetU32(payload + kHdrMetaLen);
  if (meta_len > kMetaCapacity) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "implausible meta length");
  }
  meta_.assign(payload + kHdrMeta, meta_len);

  // Clip to the durable tail: a crash mid-growth can leave the header
  // claiming pages the file does not fully contain.  Those pages are gone;
  // reads of them report kTornPage instead of returning garbage.
  durable_pages_ = static_cast<std::size_t>(size / options_.page_size) - 1;
  if (page_count_ > durable_pages_) {
    if (report != nullptr) {
      report->clipped_pages = page_count_ - durable_pages_;
    }
    page_count_ = durable_pages_;
    if (free_head_ != kNoPage && free_head_ >= page_count_) {
      // The free-list head itself was torn off; abandon the chain rather
      // than resurrect ids past the tail.  (Leaked pages, not corruption.)
      free_head_ = kNoPage;
      free_count_ = 0;
    }
    header_dirty_ = true;
  } else {
    durable_pages_ = std::max(durable_pages_, page_count_);
  }
}

void DiskStorageManager::write_header() {
  char* frame = frame_.data();
  std::memset(frame, 0, options_.page_size);
  char* payload = frame + kPayloadOff;
  PutU32(payload + kHdrMagic, kMagic);
  PutU32(payload + kHdrVersion, kVersion);
  PutU32(payload + kHdrPageSize, options_.page_size);
  PutU32(payload + kHdrPageCount, static_cast<std::uint32_t>(page_count_));
  PutU32(payload + kHdrFreeHead, free_head_);
  PutU32(payload + kHdrFreeCount, static_cast<std::uint32_t>(free_count_));
  PutU32(payload + kHdrMetaLen, static_cast<std::uint32_t>(meta_.size()));
  std::memcpy(payload + kHdrMeta, meta_.data(), meta_.size());
  SealFrame(frame, options_.page_size, kNoPage);
  write_page_raw(kNoPage, frame);  // kNoPage addresses the header (offset 0)
  header_dirty_ = false;
}

void DiskStorageManager::require_healthy() const {
  if (degraded_) {
    throw StorageDegradedError(
        "page file " + path_ +
        " is in degraded read-only mode (retry budget exhausted); "
        "clear_degraded() re-probes the device");
  }
}

void DiskStorageManager::enter_degraded(const std::string& why) {
  degraded_ = true;
  ++stats_.degraded_entries;
  Inc(m_degraded_);
  throw StorageDegradedError("page file " + path_ + " degraded: " + why);
}

void DiskStorageManager::backoff(double* delay_ms) {
  if (options_.clock != nullptr) {
    if (auto* manual = dynamic_cast<ManualClock*>(options_.clock)) {
      manual->advance(*delay_ms);
    }
    // A real clock would sleep here; in-process retries are cheap enough
    // that the simulator only records the would-be delay deterministically.
  }
  *delay_ms = std::min(*delay_ms * 2.0, options_.backoff_cap_ms);
}

void DiskStorageManager::write_page_raw(PageId id, const char* frame) {
  // file_offset() maps logical id -> physical offset (header at 0); the
  // header itself is addressed as kNoPage.
  const std::uint64_t phys = id == kNoPage ? 0 : file_offset(id);
  FailPoints& fp = FailPoints::Instance();
  std::size_t failures = 0;
  double delay_ms = options_.backoff_base_ms;
  for (;;) {
    bool ok = true;
    std::string why = "write failed";
    if (fp.active()) {
      const FailPointDecision d = fp.eval(kWriteSite);
      switch (d.action) {
        case FailAction::kOff:
          break;
        case FailAction::kError: {  // short write: only ARG bytes land
          const std::size_t n = std::min<std::size_t>(d.arg, options_.page_size);
          file_.clear();
          file_.seekp(static_cast<std::streamoff>(phys));
          file_.write(frame, static_cast<std::streamsize>(n));
          file_.flush();
          ok = false;
          why = "injected short write (" + std::to_string(n) + " bytes)";
          break;
        }
        case FailAction::kCrash:
          throw InjectedCrash(kWriteSite);
        case FailAction::kTorn: {  // ARG bytes land, then the process "dies"
          const std::size_t n = std::min<std::size_t>(d.arg, options_.page_size);
          file_.clear();
          file_.seekp(static_cast<std::streamoff>(phys));
          file_.write(frame, static_cast<std::streamsize>(n));
          file_.flush();
          throw InjectedCrash(kWriteSite);
        }
        case FailAction::kDelay:
          if (options_.clock != nullptr) {
            if (auto* manual = dynamic_cast<ManualClock*>(options_.clock)) {
              manual->advance(static_cast<double>(d.arg));
            }
          }
          break;
      }
    }
    if (ok) {
      file_.clear();
      file_.seekp(static_cast<std::streamoff>(phys));
      file_.write(frame, static_cast<std::streamsize>(options_.page_size));
      if (file_.good()) {
        ++stats_.writes;
        Inc(m_writes_);
        if (id != kNoPage) {
          durable_pages_ = std::max<std::size_t>(durable_pages_, id + 1);
        }
        return;
      }
      file_.clear();
      why = "filesystem write error";
    }
    ++stats_.flush_failures;
    Inc(m_flush_failures_);
    if (++failures >= options_.flush_retries) {
      enter_degraded(why + " after " + std::to_string(failures) + " attempts");
    }
    ++stats_.retries;
    Inc(m_retries_);
    backoff(&delay_ms);
  }
}

void DiskStorageManager::read_page_raw(PageId id, char* frame) {
  FailPoints& fp = FailPoints::Instance();
  if (fp.active()) {
    const FailPointDecision d = fp.eval(kReadSite);
    switch (d.action) {
      case FailAction::kOff:
        break;
      case FailAction::kError:
      case FailAction::kTorn:
        throw StorageError(StorageErrorCode::kIo, id, "injected read error");
      case FailAction::kCrash:
        throw InjectedCrash(kReadSite);
      case FailAction::kDelay:
        if (options_.clock != nullptr) {
          if (auto* manual = dynamic_cast<ManualClock*>(options_.clock)) {
            manual->advance(static_cast<double>(d.arg));
          }
        }
        break;
    }
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(file_offset(id)));
  file_.read(frame, options_.page_size);
  if (file_.gcount() != static_cast<std::streamsize>(options_.page_size)) {
    file_.clear();
    throw StorageError(StorageErrorCode::kTornPage, id,
                       "page lies beyond the durable tail of the file");
  }
  ++stats_.reads;
  Inc(m_reads_);
}

PageId DiskStorageManager::allocate() {
  require_healthy();
  ++stats_.allocations;
  header_dirty_ = true;
  if (free_head_ != kNoPage) {
    const PageId id = free_head_;
    // The freed page's payload prefix holds the next free id.
    std::vector<char> payload(payload_size());
    read(id, payload.data());
    const PageId next = GetU32(payload.data());
    if (next != kNoPage && next >= page_count_) {
      throw StorageError(StorageErrorCode::kBadPage, id,
                         "corrupt free-list link");
    }
    free_head_ = next;
    --free_count_;
    return id;
  }
  return static_cast<PageId>(page_count_++);
}

void DiskStorageManager::free_page(PageId id) {
  require_healthy();
  if (id >= page_count_) {
    throw StorageError(StorageErrorCode::kBadPage, id, "page id out of range");
  }
  std::vector<char> payload(payload_size(), 0);
  PutU32(payload.data(), free_head_);
  write(id, payload.data());
  free_head_ = id;
  ++free_count_;
  ++stats_.frees;
  header_dirty_ = true;
}

void DiskStorageManager::read(PageId id, char* out) {
  if (id >= page_count_) {
    throw StorageError(StorageErrorCode::kBadPage, id, "page id out of range");
  }
  read_page_raw(id, frame_.data());
  const std::uint32_t stored_crc = GetU32(frame_.data() + kCrcOff);
  const std::uint32_t want_crc =
      Crc32c(frame_.data() + kTagOff, options_.page_size - kTagOff);
  if (stored_crc != want_crc) {
    throw StorageError(StorageErrorCode::kCrcMismatch, id,
                       "page CRC mismatch (torn or corrupt page)");
  }
  const std::uint32_t tag = GetU32(frame_.data() + kTagOff);
  if (tag != id) {
    throw StorageError(StorageErrorCode::kBadPage, id,
                       "page tag mismatch (misdirected read, found tag " +
                           std::to_string(tag) + ")");
  }
  std::memcpy(out, frame_.data() + kPayloadOff, payload_size());
}

void DiskStorageManager::write(PageId id, const char* data) {
  require_healthy();
  if (id >= page_count_) {
    throw StorageError(StorageErrorCode::kBadPage, id, "page id out of range");
  }
  char* frame = frame_.data();
  std::memcpy(frame + kPayloadOff, data, payload_size());
  SealFrame(frame, options_.page_size, id);
  write_page_raw(id, frame);
}

void DiskStorageManager::flush() {
  require_healthy();
  ++stats_.flushes;
  if (header_dirty_) {
    write_header();
  }
  FailPoints& fp = FailPoints::Instance();
  std::size_t failures = 0;
  double delay_ms = options_.backoff_base_ms;
  for (;;) {
    bool ok = true;
    if (fp.active()) {
      const FailPointDecision d = fp.eval(kFlushSite);
      switch (d.action) {
        case FailAction::kOff:
          break;
        case FailAction::kError:
          ok = false;
          break;
        case FailAction::kCrash:
        case FailAction::kTorn:
          throw InjectedCrash(kFlushSite);
        case FailAction::kDelay:
          if (options_.clock != nullptr) {
            if (auto* manual = dynamic_cast<ManualClock*>(options_.clock)) {
              manual->advance(static_cast<double>(d.arg));
            }
          }
          break;
      }
    }
    if (ok) {
      file_.flush();
      if (file_.good()) {
        return;
      }
      file_.clear();
    }
    ++stats_.flush_failures;
    Inc(m_flush_failures_);
    if (++failures >= options_.flush_retries) {
      enter_degraded("flush failure after " + std::to_string(failures) +
                     " attempts");
    }
    ++stats_.retries;
    Inc(m_retries_);
    backoff(&delay_ms);
  }
}

void DiskStorageManager::set_meta(const std::string& m) {
  require_healthy();
  if (m.size() > kMetaCapacity) {
    throw std::invalid_argument("storage meta exceeds " +
                                std::to_string(kMetaCapacity) + " bytes");
  }
  meta_ = m;
  header_dirty_ = true;
}

bool DiskStorageManager::clear_degraded() {
  if (!degraded_) {
    return true;
  }
  // Probe: one header write + fsync through the normal fail-point sites,
  // without the retry loop (a still-armed fault keeps the manager
  // degraded).  InjectedCrash propagates — a crash is a crash.
  try {
    degraded_ = false;
    write_header();
    FailPoints& fp = FailPoints::Instance();
    if (fp.active()) {
      const FailPointDecision d = fp.eval(kFlushSite);
      if (d.action == FailAction::kCrash || d.action == FailAction::kTorn) {
        throw InjectedCrash(kFlushSite);
      }
      if (d.action == FailAction::kError) {
        throw StorageError(StorageErrorCode::kIo, kNoPage,
                           "injected flush failure");
      }
    }
    file_.flush();
    if (!file_.good()) {
      file_.clear();
      throw StorageError(StorageErrorCode::kIo, kNoPage, "flush failed");
    }
    return true;
  } catch (const StorageError&) {
    degraded_ = true;
    return false;
  } catch (const StorageDegradedError&) {
    degraded_ = true;
    return false;
  }
}

}  // namespace pubsub
