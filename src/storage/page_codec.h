// Fixed-width little-endian field codecs for page payloads.
//
// Page files are an interchange format (snapshots move between hosts), so
// integers and doubles are pinned to little-endian byte order rather than
// memcpy'd in host order.  Doubles are bit-copied — never formatted — so a
// rectangle round-trips through a page bit-exactly (the mem-vs-disk oracle
// in tests/test_paged_rtree.cc depends on this).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace pubsub::storage {

inline void PutU32(char* p, std::uint32_t v) {
  unsigned char* b = reinterpret_cast<unsigned char*>(p);
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
}

inline std::uint32_t GetU32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

inline void PutU64(char* p, std::uint64_t v) {
  PutU32(p, static_cast<std::uint32_t>(v));
  PutU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

inline void PutF64(char* p, double v) {
  PutU64(p, std::bit_cast<std::uint64_t>(v));
}

inline double GetF64(const char* p) {
  return std::bit_cast<double>(GetU64(p));
}

}  // namespace pubsub::storage
