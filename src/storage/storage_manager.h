// Paged storage seam: a page store behind a narrow allocate/read/write/flush
// interface (docs/STORAGE.md; ROADMAP item 3).
//
// The design reproduces the classic spatial-index storage split — a
// `DiskStorageManager` / `MemoryStorageManager` pair behind one interface,
// fronted by a buffer pool — so an index built of fixed-size pages can run
// entirely in RAM (tests, oracles) or against a real file (beyond-RAM
// subscription sets, streaming cold-start recovery) with no change above
// the seam.
//
// Page files are self-describing: page 0 is a header (magic, version,
// geometry, free-list head, owner metadata string) and every page — header
// included — carries a CRC-32C over its tag and payload, so torn writes and
// misdirected reads surface as typed StorageErrors at read time.  Freed
// pages are chained into a free list and reused before the file grows.
//
// Durability faults are first-class: DiskStorageManager threads the
// fail-point registry through its read/write/fsync paths (sites
// `storage.page.read`, `storage.page.write`, `storage.flush`) and degrades
// to read-only mode after a capped-backoff retry budget, with the same
// semantics as the broker's journal sink (DESIGN.md §13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace pubsub {

class Clock;
class MetricsRegistry;
class Counter;

// Pages are addressed by dense 32-bit ids; the header of a disk file is
// page 0 and is not addressable through the StorageManager interface.
using PageId = std::uint32_t;
inline constexpr PageId kNoPage = 0xFFFFFFFFu;

// Per-page on-disk overhead: u32 CRC-32C + u32 tag (the page's own id,
// catching misdirected reads).  The usable payload is page_size - overhead.
inline constexpr std::uint32_t kPageOverhead = 8;
// Owner metadata capacity in the header page (a short free-form text line:
// the paged R-tree stores its root/size/height here, the snapshot page file
// its blob head and byte length).
inline constexpr std::uint32_t kMetaCapacity = 512;
// Smallest supported page (the header fields + metadata must fit with room
// to spare for a useful payload).
inline constexpr std::uint32_t kMinPageSize = 1024;

enum class StorageErrorCode {
  kIo,           // read/write/seek failed at the filesystem layer
  kBadHeader,    // missing/short/corrupt header page (wrong magic, CRC, ...)
  kCrcMismatch,  // page CRC does not match its contents
  kBadPage,      // structural violation: tag mismatch, id out of range,
                 // malformed free-list or blob chain
  kTornPage,     // page lies beyond the durable tail of the file
};
const char* StorageErrorCodeName(StorageErrorCode code);

class StorageError : public std::runtime_error {
 public:
  StorageError(StorageErrorCode code, PageId page, const std::string& detail);
  StorageErrorCode code() const { return code_; }
  PageId page() const { return page_; }  // kNoPage when not page-specific

 private:
  StorageErrorCode code_;
  PageId page_;
};

// Thrown by mutations once the manager has exhausted its flush/write retry
// budget and entered degraded read-only mode (mirrors BrokerDegradedError:
// reads keep serving, writes are refused until clear_degraded() re-probes).
class StorageDegradedError : public std::runtime_error {
 public:
  explicit StorageDegradedError(const std::string& what)
      : std::runtime_error(what) {}
};

struct StorageStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flush_failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded_entries = 0;
};

class StorageManager {
 public:
  virtual ~StorageManager() = default;

  virtual std::uint32_t page_size() const = 0;
  // Usable bytes per page (page_size - kPageOverhead).
  std::uint32_t payload_size() const { return page_size() - kPageOverhead; }
  // Pages ever allocated (free-listed pages included; header excluded).
  virtual std::size_t page_count() const = 0;
  // Pages currently on the free list.
  virtual std::size_t free_count() const = 0;

  // Reserve a page id (free-list reuse first, then growth).  The page's
  // contents are unspecified until the first write.
  virtual PageId allocate() = 0;
  // Return a page to the free list.  Reading a freed page is undefined
  // (the free-list chain overwrites its payload prefix).
  virtual void free_page(PageId id) = 0;

  // Copy a page's payload into `out` (payload_size() bytes).
  virtual void read(PageId id, char* out) = 0;
  // Write a page's payload from `data` (payload_size() bytes).
  virtual void write(PageId id, const char* data) = 0;
  // Durability point: persist the header (allocation state, metadata) and
  // all buffered page writes.
  virtual void flush() = 0;

  // Owner metadata, persisted in the header page (<= kMetaCapacity bytes).
  virtual const std::string& meta() const = 0;
  virtual void set_meta(const std::string& m) = 0;

  // Degraded read-only mode (disk manager only; memory never degrades).
  virtual bool degraded() const { return false; }
  // Probe the device; on success clear the degraded flag.  Returns the
  // healthy state after the probe.
  virtual bool clear_degraded() { return true; }

  virtual const StorageStats& stats() const = 0;
};

// Page store backed by process memory.  Same interface, same free-list
// discipline and id assignment as the disk manager, so an index built
// against one is structurally identical against the other (the mem-vs-disk
// bit-identity oracle in tests/test_paged_rtree.cc).  Never degrades and
// consults no fail points.
class MemoryStorageManager final : public StorageManager {
 public:
  explicit MemoryStorageManager(std::uint32_t page_size = 4096);

  std::uint32_t page_size() const override { return page_size_; }
  std::size_t page_count() const override { return pages_.size(); }
  std::size_t free_count() const override { return free_.size(); }
  PageId allocate() override;
  void free_page(PageId id) override;
  void read(PageId id, char* out) override;
  void write(PageId id, const char* data) override;
  void flush() override;
  const std::string& meta() const override { return meta_; }
  void set_meta(const std::string& m) override;
  const StorageStats& stats() const override { return stats_; }

 private:
  void check_id(PageId id) const;

  std::uint32_t page_size_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<PageId> free_;  // LIFO, matching the disk free-list order
  std::string meta_;
  StorageStats stats_;
};

// Page store backed by a real file.  See docs/STORAGE.md for the on-disk
// layout.  Not thread-safe; one owner at a time (no file locking).
class DiskStorageManager final : public StorageManager {
 public:
  struct Options {
    std::uint32_t page_size = 4096;
    // Write/flush retry budget before entering degraded read-only mode,
    // with capped exponential backoff between attempts (identical knobs to
    // DurabilityOptions on the broker's journal path).
    std::size_t flush_retries = 4;
    double backoff_base_ms = 1.0;
    double backoff_cap_ms = 64.0;
    // Clock used for backoff sleeps.  A ManualClock is advanced
    // deterministically (tests); nullptr means backoff is recorded in the
    // stats but no real time passes (retries are cheap in-process).
    Clock* clock = nullptr;
    // Registry for storage_* counters; nullptr disables metric export.
    MetricsRegistry* metrics = nullptr;
  };

  // Pages silently lost to a torn tail at open (file truncated mid-write).
  struct OpenReport {
    std::size_t clipped_pages = 0;
  };

  // Create a fresh page file at `path`, truncating any existing file.
  static std::unique_ptr<DiskStorageManager> Create(const std::string& path,
                                                    const Options& options);
  static std::unique_ptr<DiskStorageManager> Create(const std::string& path) {
    return Create(path, Options());
  }
  // Open an existing page file.  Validates the header (magic, version, CRC)
  // and clips the page count to the durable tail: pages the header claims
  // but the file does not fully contain read as kTornPage errors, and
  // `report` (optional) records how many were clipped.
  static std::unique_ptr<DiskStorageManager> Open(const std::string& path,
                                                  const Options& options,
                                                  OpenReport* report = nullptr);
  static std::unique_ptr<DiskStorageManager> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~DiskStorageManager() override;

  const std::string& path() const { return path_; }
  std::uint32_t page_size() const override { return options_.page_size; }
  std::size_t page_count() const override { return page_count_; }
  std::size_t free_count() const override { return free_count_; }
  PageId allocate() override;
  void free_page(PageId id) override;
  void read(PageId id, char* out) override;
  void write(PageId id, const char* data) override;
  void flush() override;
  const std::string& meta() const override { return meta_; }
  void set_meta(const std::string& m) override;
  bool degraded() const override { return degraded_; }
  bool clear_degraded() override;
  const StorageStats& stats() const override { return stats_; }

 private:
  DiskStorageManager(std::string path, const Options& options);

  void open_file(bool truncate);
  void load_header(OpenReport* report);
  void write_header();
  // Raw page write at `id` with fail-point evaluation, short-write retry,
  // capped backoff, and degraded-mode entry on budget exhaustion.
  void write_page_raw(PageId id, const char* frame);
  void read_page_raw(PageId id, char* frame);
  void require_healthy() const;
  void enter_degraded(const std::string& why);
  void backoff(double* delay_ms);
  std::uint64_t file_offset(PageId id) const {
    return (static_cast<std::uint64_t>(id) + 1) * options_.page_size;
  }

  std::string path_;
  Options options_;
  std::fstream file_;
  std::size_t page_count_ = 0;   // addressable pages (header excluded)
  std::size_t durable_pages_ = 0;  // pages fully contained in the file
  std::size_t free_count_ = 0;
  PageId free_head_ = kNoPage;
  std::string meta_;
  bool header_dirty_ = false;
  bool degraded_ = false;
  StorageStats stats_;
  // Scratch frame for header/free-list page assembly.
  std::vector<char> frame_;
  // Exported counters (null when options_.metrics == nullptr).
  Counter* m_reads_ = nullptr;
  Counter* m_writes_ = nullptr;
  Counter* m_flush_failures_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_degraded_ = nullptr;
};

}  // namespace pubsub
