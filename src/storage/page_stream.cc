#include "storage/page_stream.h"

#include <cstring>
#include <sstream>

#include "storage/page_codec.h"

namespace pubsub {

using storage::GetU32;
using storage::PutU32;

namespace {

// Chain page payload: [next u32][used u32][data ...]
constexpr std::size_t kChainHeaderBytes = 8;

}  // namespace

std::string FormatBlobMeta(const PageBlob& blob) {
  std::ostringstream out;
  out << "blob head=" << blob.head << " bytes=" << blob.bytes
      << " pages=" << blob.pages;
  return out.str();
}

bool ParseBlobMeta(const std::string& meta, PageBlob* out) {
  std::istringstream in(meta);
  std::string tag;
  in >> tag;
  if (tag != "blob") return false;
  PageBlob blob;
  auto field = [&](const char* name, auto& value) {
    std::string key;
    in >> key;
    const std::string want = std::string(name) + "=";
    if (key.rfind(want, 0) != 0) return false;
    std::istringstream v(key.substr(want.size()));
    v >> value;
    return !v.fail();
  };
  if (!field("head", blob.head) || !field("bytes", blob.bytes) ||
      !field("pages", blob.pages)) {
    return false;
  }
  *out = blob;
  return true;
}

// ---------------------------------------------------------------------------
// PageBlobWriter

PageBlobWriter::PageBlobWriter(BufferPool* pool) : buf_(pool), out_(&buf_) {}

PageBlobWriter::~PageBlobWriter() = default;

PageBlob PageBlobWriter::finish() {
  out_.flush();
  return buf_.finish();
}

PageBlobWriter::Buf::Buf(BufferPool* pool)
    : pool_(pool), cap_(pool->payload_size() - kChainHeaderBytes) {
  buffer_.reserve(cap_);
}

PageId PageBlobWriter::Buf::alloc_unpinned() {
  const PageId id = pool_->allocate();
  pool_->unpin(id, /*dirty=*/true);
  ++pages_;
  return id;
}

void PageBlobWriter::Buf::emit(PageId next) {
  PageRef ref(*pool_, pending_);
  char* p = ref.data();
  std::memset(p, 0, pool_->payload_size());
  PutU32(p, next);
  PutU32(p + 4, static_cast<std::uint32_t>(buffer_.size()));
  std::memcpy(p + kChainHeaderBytes, buffer_.data(), buffer_.size());
  ref.set_dirty();
  buffer_.clear();
}

void PageBlobWriter::Buf::append(const char* data, std::size_t n) {
  while (n > 0) {
    if (pending_ == kNoPage) {
      pending_ = alloc_unpinned();
      head_ = pending_;
    }
    if (buffer_.size() == cap_) {
      // Current page is full and more bytes exist: reserve the successor so
      // its id can be linked, then emit the full page.
      const PageId next = alloc_unpinned();
      emit(next);
      pending_ = next;
    }
    const std::size_t take = std::min(n, cap_ - buffer_.size());
    buffer_.insert(buffer_.end(), data, data + take);
    data += take;
    n -= take;
    bytes_ += take;
  }
}

PageBlobWriter::Buf::int_type PageBlobWriter::Buf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
  const char c = traits_type::to_char_type(ch);
  append(&c, 1);
  return ch;
}

std::streamsize PageBlobWriter::Buf::xsputn(const char* s, std::streamsize n) {
  append(s, static_cast<std::size_t>(n));
  return n;
}

PageBlob PageBlobWriter::Buf::finish() {
  if (finished_) {
    throw std::logic_error("PageBlobWriter::finish() called twice");
  }
  finished_ = true;
  if (pending_ != kNoPage) {
    emit(kNoPage);
  }
  PageBlob blob{head_, bytes_, pages_};
  pool_->storage()->set_meta(FormatBlobMeta(blob));
  pool_->flush();
  return blob;
}

// ---------------------------------------------------------------------------
// PageBlobReader

namespace {

PageBlob BlobFromMeta(BufferPool* pool) {
  PageBlob blob;
  if (!ParseBlobMeta(pool->storage()->meta(), &blob)) {
    throw StorageError(StorageErrorCode::kBadHeader, kNoPage,
                       "page file metadata does not describe a blob: \"" +
                           pool->storage()->meta() + "\"");
  }
  return blob;
}

}  // namespace

PageBlobReader::PageBlobReader(BufferPool* pool)
    : PageBlobReader(pool, BlobFromMeta(pool)) {}

PageBlobReader::PageBlobReader(BufferPool* pool, const PageBlob& blob)
    : blob_(blob), buf_(pool, blob), in_(&buf_) {}

PageBlobReader::Buf::Buf(BufferPool* pool, const PageBlob& blob)
    : pool_(pool), blob_(blob), next_(blob.head), remaining_(blob.bytes) {
  chunk_.resize(pool->payload_size() - kChainHeaderBytes);
}

PageBlobReader::Buf::int_type PageBlobReader::Buf::underflow() {
  if (remaining_ == 0 || next_ == kNoPage) {
    if (remaining_ != 0) {
      throw StorageError(StorageErrorCode::kBadPage, kNoPage,
                         "blob chain ended " + std::to_string(remaining_) +
                             " bytes early");
    }
    return traits_type::eof();
  }
  if (++pages_seen_ > blob_.pages) {
    throw StorageError(StorageErrorCode::kBadPage, next_,
                       "blob chain longer than its descriptor (cycle?)");
  }
  const PageId page = next_;
  std::uint32_t used = 0;
  {
    PageRef ref(*pool_, page);
    const char* p = ref.data();
    next_ = GetU32(p);
    used = GetU32(p + 4);
    if (used > chunk_.size()) {
      throw StorageError(StorageErrorCode::kBadPage, page,
                         "blob page claims more bytes than fit its payload");
    }
    std::memcpy(chunk_.data(), p + kChainHeaderBytes, used);
  }
  if (used > remaining_) {
    throw StorageError(StorageErrorCode::kBadPage, page,
                       "blob chain carries more bytes than its descriptor");
  }
  remaining_ -= used;
  setg(chunk_.data(), chunk_.data(), chunk_.data() + used);
  if (used == 0) {
    // A zero-used page mid-chain would loop forever; only legal as the
    // empty blob's (nonexistent) head.
    throw StorageError(StorageErrorCode::kBadPage, page, "empty blob page");
  }
  return traits_type::to_int_type(chunk_[0]);
}

}  // namespace pubsub
