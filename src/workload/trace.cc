#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pubsub {

std::vector<TraceEvent> GenerateStockTrace(const TransitStubNetwork& net,
                                           const StockModelParams& space_params,
                                           const TraceParams& params,
                                           std::size_t count, Rng& rng) {
  if (params.num_stocks <= 0 || params.num_stocks > space_params.attr_domain)
    throw std::invalid_argument("GenerateStockTrace: bad stock universe size");
  if (params.events_per_second <= 0)
    throw std::invalid_argument("GenerateStockTrace: bad event rate");

  std::vector<NodeId> hosts = net.host_nodes();
  if (hosts.empty()) throw std::invalid_argument("GenerateStockTrace: no hosts");
  if (params.num_publishers < 0)
    throw std::invalid_argument("GenerateStockTrace: negative publisher count");
  if (params.num_publishers > 0 &&
      params.num_publishers < static_cast<int>(hosts.size())) {
    // Publisher subset: a random sample of hosts acts as the exchanges.
    std::shuffle(hosts.begin(), hosts.end(), rng.engine());
    hosts.resize(static_cast<std::size_t>(params.num_publishers));
  }

  const EventSpace space = StockSpace(space_params);
  const int quote_domain = space.dim(2).domain_size;
  const int volume_domain = space.dim(3).domain_size;

  const Zipf stock_freq(static_cast<std::size_t>(params.num_stocks),
                        params.zipf_exponent);
  const Discrete bst_choice(std::vector<double>(params.bst_probs.begin(),
                                                params.bst_probs.end()));
  const BoundedPareto volume_dist(params.volume_scale, params.volume_alpha,
                                  static_cast<double>(volume_domain - 1));

  // Per-stock price state: start each walk at a level tied to the stock's
  // name value, spread across the quote domain.
  std::vector<double> price(static_cast<std::size_t>(params.num_stocks));
  for (int s = 0; s < params.num_stocks; ++s)
    price[static_cast<std::size_t>(s)] =
        static_cast<double>(quote_domain - 1) *
        (0.25 + 0.5 * static_cast<double>(s) / static_cast<double>(params.num_stocks));

  std::vector<TraceEvent> trace;
  trace.reserve(count);
  double now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Poisson arrivals: exponential inter-arrival times.
    now += -std::log(1.0 - rng.uniform()) / params.events_per_second;

    const int stock = static_cast<int>(stock_freq.sample(rng)) - 1;
    double& p = price[static_cast<std::size_t>(stock)];
    p += rng.normal(0.0, params.price_sigma);
    p = std::min(std::max(p, 0.0), static_cast<double>(quote_domain - 1));

    TraceEvent ev;
    ev.timestamp = now;
    ev.pub.origin = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    ev.pub.point = {
        EventSpace::value_coord(static_cast<int>(bst_choice.sample(rng))),
        EventSpace::value_coord(stock),  // name value = stock id
        space.clamp_to_domain(2, p),
        space.clamp_to_domain(3, volume_dist.sample(rng)),
    };
    trace.push_back(std::move(ev));
  }
  return trace;
}

}  // namespace pubsub
