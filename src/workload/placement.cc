#include "workload/placement.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {
namespace {

// Zipf weights 1/r^s assigned to `n` items in a randomly shuffled order.
std::vector<double> ShuffledZipfWeights(std::size_t n, double s, Rng& rng) {
  std::vector<double> weights(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const Zipf zipf(n, s);
  for (std::size_t rank = 1; rank <= n; ++rank)
    weights[order[rank - 1]] = zipf.pmf(rank);
  return weights;
}

}  // namespace

ZipfPlacement::ZipfPlacement(const TransitStubNetwork& net,
                             std::vector<double> block_weights,
                             double zipf_exponent, Rng& rng)
    : net_(net), block_choice_(std::move(block_weights)) {
  // Group stubs by block.
  int num_blocks = 0;
  for (const int b : net.block_of_stub) num_blocks = std::max(num_blocks, b + 1);
  if (static_cast<int>(block_choice_.size()) != num_blocks)
    throw std::invalid_argument("ZipfPlacement: block weight count mismatch");

  block_stubs_.resize(static_cast<std::size_t>(num_blocks));
  for (int s = 0; s < net.num_stubs; ++s)
    block_stubs_[static_cast<std::size_t>(net.block_of_stub[static_cast<std::size_t>(s)])].push_back(s);

  stub_choice_.reserve(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    const std::size_t n = block_stubs_[static_cast<std::size_t>(b)].size();
    if (n == 0) throw std::invalid_argument("ZipfPlacement: block without stubs");
    stub_choice_.emplace_back(ShuffledZipfWeights(n, zipf_exponent, rng));
  }

  node_choice_.reserve(static_cast<std::size_t>(net.num_stubs));
  for (int s = 0; s < net.num_stubs; ++s) {
    const std::size_t n = net.stub_members[static_cast<std::size_t>(s)].size();
    if (n == 0) throw std::invalid_argument("ZipfPlacement: empty stub");
    node_choice_.emplace_back(ShuffledZipfWeights(n, zipf_exponent, rng));
  }
}

NodeId ZipfPlacement::sample(Rng& rng) const {
  const std::size_t block = block_choice_.sample(rng);
  const std::size_t stub_ix = stub_choice_[block].sample(rng);
  const int stub = block_stubs_[block][stub_ix];
  const std::size_t node_ix = node_choice_[static_cast<std::size_t>(stub)].sample(rng);
  return net_.stub_members[static_cast<std::size_t>(stub)][node_ix];
}

}  // namespace pubsub
