// One-dimensional marginal distribution over a finite integer attribute
// domain {0..n-1}, with both sampling and closed-form interval masses.
//
// Publications in the paper are products of independent per-dimension
// distributions (uniform ints in §3, Gaussian mixtures in §5.1), so the
// publication probability p_p(cell) that drives the expected-waste distance
// (§4.1) is the product across dimensions of these interval masses.
// Continuous samples are rounded to the nearest integer value and clamped
// to the domain; the interval-mass computation accounts for that rounding
// (value v receives the continuous mass of (v−½, v+½], with the boundary
// values absorbing the clamped tails), so mass and sampling agree.
#pragma once

#include <vector>

#include "geometry/interval.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace pubsub {

class Marginal1D {
 public:
  static Marginal1D UniformInt(int domain_size);
  static Marginal1D Gaussian(GaussianMixture1D mixture, int domain_size);
  // Explicit pmf over {0..n-1}; weights normalized internally.
  static Marginal1D Categorical(std::vector<double> weights);

  int domain_size() const { return static_cast<int>(pmf_.size()); }

  // Sample an integer value in {0..n-1}.
  int sample(Rng& rng) const;
  double pmf(int v) const { return pmf_[static_cast<std::size_t>(v)]; }
  // P(lo < V <= hi) for the integer-valued V, under the (lo, hi] embedding
  // used throughout (value v lives at coordinate v).
  double interval_mass(const Interval& iv) const;

 private:
  explicit Marginal1D(std::vector<double> pmf);

  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cdf_[v] = P(V <= v)
};

}  // namespace pubsub
