// Multi-range subscriptions and their decomposition (paper §1).
//
// A content-based predicate may specify a *union* of ranges per attribute
// — the paper's "blue chip" example is a category that decomposes into
// several name-index ranges.  §1: "By decomposing a subscription with
// multiple such ranges into multiple subscriptions consisting of single
// ranges we can see that it is sufficient only to consider intervals,
// albeit at a cost of more subscriptions."  This module performs that
// decomposition: per-dimension unions are normalized (sorted, merged,
// empties dropped) and the Cartesian product of the normalized pieces
// yields the equivalent set of aligned rectangles — all registered under
// the same subscriber node.
#pragma once

#include <vector>

#include "geometry/rect.h"
#include "workload/types.h"

namespace pubsub {

struct MultiRangeSubscription {
  NodeId node = -1;
  // ranges[d] is the union of acceptable intervals in dimension d; an
  // empty union means the predicate cannot match (decomposes to nothing).
  std::vector<std::vector<Interval>> ranges;
};

// Sort by left end, merge overlapping *and touching* intervals (half-open
// (a,b] ∪ (b,c] = (a,c]), drop empty ones.
std::vector<Interval> NormalizeUnion(std::vector<Interval> intervals);

// Minimal Cartesian-product decomposition for the given per-dimension
// unions.  A point satisfies the original predicate iff it lies in at
// least one returned rectangle; the rectangles are pairwise disjoint.
std::vector<Rect> DecomposeToRects(const MultiRangeSubscription& sub);

// Decompose and append as single-rectangle subscribers of wl (the §1 cost:
// one logical subscription becomes several entries of the same node).
// Returns how many subscribers were added.
std::size_t AppendDecomposed(Workload& wl, const MultiRangeSubscription& sub);

}  // namespace pubsub
