// The §3 ("Preliminary Analyses") workload model.
//
// Events have 4 dimensions.  Dimension 0 is the *regional attribute*: every
// publication carries the stub (subnet) id of its originating node.  The
// *degree of regionalism* is the probability that a subscription pins this
// attribute to the subscriber's own stub ("Zero degree of regionalism
// corresponds to no regionalism, and degree 1 to absolute regionalism").
// Tables 1 and 2 use degrees 0.4 and 0 respectively.
//
// The other 3 attributes take integer values 0..20.  Subscriptions come in
// two flavors:
//   * uniform — attribute j ∈ {2,3,4} is specified (vs. "*") with
//     probability 0.98·0.78^(j−2); a specified preference is the interval
//     between two sorted uniform draws on 0..20;
//   * gaussian — per-attribute parametric intervals with the q/μ/σ table of
//     §3 (wildcards, one-ended and two-ended intervals, Pareto-like
//     lengths).
//
// Publications draw the 3 non-regional attributes either uniformly on
// 0..20 or from a Gaussian centred inside the domain (the paper's modelling
// assumption is that publication density peaks where subscription density
// peaks).
#pragma once

#include <array>
#include <memory>

#include "net/transit_stub.h"
#include "workload/interval_gen.h"
#include "workload/publication_model.h"
#include "workload/types.h"

namespace pubsub {

struct Section3Params {
  enum class Tail { kUniform, kGaussian };

  double regionalism = 0.4;
  Tail subscription_tail = Tail::kUniform;
  Tail publication_tail = Tail::kUniform;
  int attr_domain = 21;  // values 0..20

  // Uniform model: P(attribute j specified) = p_specify_first * decay^(j-2).
  double p_specify_first = 0.98;
  double specify_decay = 0.78;

  // Gaussian publication marginal for the 3 non-regional attributes.
  double pub_mu = 9.0;
  double pub_sigma = 3.0;

  // Gaussian subscription model: §3 parameter table rows for attributes
  // 2, 3 and 4 (q1 = wildcard prob in the paper's notation = our q0).
  std::array<ParametricIntervalSpec, 3> gaussian_rows = {{
      {/*q0=*/0.10, /*q1=*/0.0, /*q2=*/0.0, 8, 2, 10, 2, 9, 6, /*mean=*/1, /*alpha=*/1},
      {/*q0=*/0.15, /*q1=*/0.1, /*q2=*/0.1, 8, 1, 10, 1, 9, 2, /*mean=*/4, /*alpha=*/1},
      {/*q0=*/0.35, /*q1=*/0.1, /*q2=*/0.1, 8, 1, 10, 1, 9, 2, /*mean=*/4, /*alpha=*/1},
  }};
};

// Event space {stub} × {0..20}³ for a given network.
EventSpace Section3Space(const TransitStubNetwork& net, const Section3Params& params);

// `count` subscribers placed uniformly at random on the network's host
// nodes, each with one interest rectangle.
Workload GenerateSection3Subscriptions(const TransitStubNetwork& net, int count,
                                       const Section3Params& params, Rng& rng);

// Regional publication model: dim 0 = origin stub, tails per params.
std::unique_ptr<PublicationModel> MakeSection3PublicationModel(
    const TransitStubNetwork& net, const Section3Params& params);

}  // namespace pubsub
