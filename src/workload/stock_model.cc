#include "workload/stock_model.h"

#include <stdexcept>

namespace pubsub {

EventSpace StockSpace(const StockModelParams& params) {
  return EventSpace({DimensionSpec{"bst", 3},
                     DimensionSpec{"name", params.attr_domain},
                     DimensionSpec{"quote", params.attr_domain},
                     DimensionSpec{"volume", params.attr_domain}});
}

Workload GenerateStockSubscriptions(const TransitStubNetwork& net, int count,
                                    const StockModelParams& params, Rng& rng) {
  if (count < 0) throw std::invalid_argument("GenerateStockSubscriptions: bad count");

  ZipfPlacement placement(
      net, std::vector<double>(params.block_weights.begin(), params.block_weights.end()),
      params.zipf_exponent, rng);

  Workload wl;
  wl.space = StockSpace(params);
  const Interval attr_domain(-1.0, static_cast<double>(params.attr_domain - 1));
  const Zipf name_length(static_cast<std::size_t>(params.attr_domain),
                         params.name_length_zipf_exponent);
  const Discrete bst_choice(
      std::vector<double>(params.bst_probs.begin(), params.bst_probs.end()));

  wl.subscribers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Subscriber sub;
    sub.node = placement.sample(rng);
    const int block = net.block_of_node[static_cast<std::size_t>(sub.node)];

    std::vector<Interval> ivals;
    ivals.reserve(4);

    // bst: pin a single value.
    ivals.push_back(Interval::Point(static_cast<int>(bst_choice.sample(rng))));

    // name: center from the subscriber's block-specific mean, Zipf length.
    const double center = rng.normal(
        params.name_means[static_cast<std::size_t>(block % 3)], params.name_sigma);
    const double length = static_cast<double>(name_length.sample(rng));
    ivals.push_back(CenteredInterval(center, length, attr_domain));

    // quote & volume: the parametric family.
    ivals.push_back(SampleParametricInterval(params.price, attr_domain, rng));
    ivals.push_back(SampleParametricInterval(params.volume, attr_domain, rng));

    sub.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(sub));
  }
  return wl;
}

std::unique_ptr<PublicationModel> MakeStockPublicationModel(
    const TransitStubNetwork& net, PublicationHotSpots scenario,
    const StockModelParams& params) {
  const int n = params.attr_domain;

  // §5.1: single-mode means/σ per dimension: (1,1), (10,6), (9,2), (9,6).
  GaussianMixture1D bst = GaussianMixture1D::Single(1, 1);
  GaussianMixture1D name = GaussianMixture1D::Single(10, 6);
  GaussianMixture1D quote = GaussianMixture1D::Single(9, 2);
  GaussianMixture1D volume = GaussianMixture1D::Single(9, 6);

  switch (scenario) {
    case PublicationHotSpots::kOne:
      break;
    case PublicationHotSpots::kFour:
      // Dimensions 1 and 4 keep (1,1) and (9,6); the second and third
      // dimensions each become two-mode mixtures (2 × 2 = 4 hot spots).
      name = GaussianMixture1D({{0.5, 12, 3}, {0.5, 6, 2}});
      quote = GaussianMixture1D({{0.5, 4, 2}, {0.5, 16, 2}});
      break;
    case PublicationHotSpots::kNine:
      // Three-mode mixtures in the two middle dimensions (3 × 3 = 9).
      name = GaussianMixture1D({{0.3, 4, 3}, {0.4, 11, 3}, {0.3, 18, 3}});
      quote = GaussianMixture1D({{0.3, 4, 3}, {0.4, 9, 3}, {0.3, 16, 3}});
      break;
  }

  std::vector<Marginal1D> marginals;
  marginals.reserve(4);
  marginals.push_back(Marginal1D::Gaussian(std::move(bst), 3));
  marginals.push_back(Marginal1D::Gaussian(std::move(name), n));
  marginals.push_back(Marginal1D::Gaussian(std::move(quote), n));
  marginals.push_back(Marginal1D::Gaussian(std::move(volume), n));

  return std::make_unique<ProductPublicationModel>(StockSpace(params),
                                                   std::move(marginals),
                                                   net.host_nodes());
}

}  // namespace pubsub
