#include "workload/interval_gen.h"

#include <algorithm>

namespace pubsub {

Interval CenteredInterval(double center, double length, const Interval& domain) {
  const Interval raw(center - length / 2.0, center + length / 2.0);
  const Interval clipped = raw.intersection(domain);
  if (!clipped.empty()) return clipped;
  // Center fell outside the domain: snap to the nearest domain edge.
  if (center <= domain.lo()) return Interval(domain.lo(), domain.lo() + 1.0).intersection(domain);
  return Interval(domain.hi() - 1.0, domain.hi()).intersection(domain);
}

Interval SampleParametricInterval(const ParametricIntervalSpec& spec,
                                  const Interval& domain, Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double u = rng.uniform();
    Interval raw;
    if (u < spec.q0) {
      return domain;
    } else if (u < spec.q0 + spec.q1) {
      raw = Interval::GreaterThan(rng.normal(spec.mu1, spec.sigma1));
    } else if (u < spec.q0 + spec.q1 + spec.q2) {
      raw = Interval::AtMost(rng.normal(spec.mu2, spec.sigma2));
    } else {
      const double center = rng.normal(spec.mu3, spec.sigma3);
      const double cap = domain.length() > 0 ? domain.length() : 1.0;
      const BoundedPareto length_dist =
          spec.pareto_is_scale
              ? BoundedPareto(std::min(spec.pareto_c, cap), spec.pareto_alpha, cap)
              : BoundedPareto::FromMean(spec.pareto_c, spec.pareto_alpha, cap);
      const double len = length_dist.sample(rng);
      raw = Interval(center - len / 2.0, center + len / 2.0);
    }
    const Interval clipped = raw.intersection(domain);
    if (!clipped.empty()) return clipped;
  }
  return domain;
}

}  // namespace pubsub
