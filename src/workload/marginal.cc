#include "workload/marginal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pubsub {

Marginal1D::Marginal1D(std::vector<double> pmf) : pmf_(std::move(pmf)) {
  if (pmf_.empty()) throw std::invalid_argument("Marginal1D: empty pmf");
  double total = 0.0;
  for (double p : pmf_) {
    if (p < 0) throw std::invalid_argument("Marginal1D: negative mass");
    total += p;
  }
  if (total <= 0) throw std::invalid_argument("Marginal1D: zero total mass");
  cdf_.reserve(pmf_.size());
  double acc = 0.0;
  for (double& p : pmf_) {
    p /= total;
    acc += p;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

Marginal1D Marginal1D::UniformInt(int n) {
  if (n <= 0) throw std::invalid_argument("Marginal1D::UniformInt: bad domain");
  return Marginal1D(std::vector<double>(static_cast<std::size_t>(n), 1.0));
}

Marginal1D Marginal1D::Gaussian(GaussianMixture1D mixture, int n) {
  if (n <= 0) throw std::invalid_argument("Marginal1D::Gaussian: bad domain");
  std::vector<double> pmf(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    // Rounding maps (v−½, v+½] to v; clamping folds the infinite tails into
    // the boundary values.
    const double lo = v == 0 ? -Interval::kInf : v - 0.5;
    const double hi = v == n - 1 ? Interval::kInf : v + 0.5;
    pmf[static_cast<std::size_t>(v)] = mixture.interval_mass(lo, hi);
  }
  return Marginal1D(std::move(pmf));
}

Marginal1D Marginal1D::Categorical(std::vector<double> weights) {
  return Marginal1D(std::move(weights));
}

int Marginal1D::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

double Marginal1D::interval_mass(const Interval& iv) const {
  if (iv.empty()) return 0.0;
  const int n = domain_size();
  // Integer values in (lo, hi]: floor(lo)+1 .. floor(hi), clamped to domain.
  long first = iv.lo() == -Interval::kInf ? 0 : static_cast<long>(std::floor(iv.lo())) + 1;
  long last = iv.hi() == Interval::kInf ? n - 1 : static_cast<long>(std::floor(iv.hi()));
  first = std::max(first, 0l);
  last = std::min(last, static_cast<long>(n - 1));
  if (last < first) return 0.0;
  const double hi_cdf = cdf_[static_cast<std::size_t>(last)];
  const double lo_cdf = first == 0 ? 0.0 : cdf_[static_cast<std::size_t>(first - 1)];
  return hi_cdf - lo_cdf;
}

}  // namespace pubsub
