// Common workload types: subscribers (a network node plus an interest
// rectangle) and publications (an origin node plus an event point).
//
// The paper allows a subscriber several rectangles but notes (§1) that a
// multi-range subscription decomposes into multiple single-range
// subscriptions; following its experiments ("1000 subscription rectangles"),
// each generated subscription is one subscriber with one rectangle, and
// N_S = k.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/event_space.h"
#include "geometry/rect.h"
#include "net/graph.h"

namespace pubsub {

using SubscriberId = int;

struct Subscriber {
  NodeId node = -1;
  Rect interest;
};

struct Publication {
  NodeId origin = -1;
  Point point;
};

struct Workload {
  EventSpace space;
  std::vector<Subscriber> subscribers;

  std::size_t num_subscribers() const { return subscribers.size(); }
};

}  // namespace pubsub
