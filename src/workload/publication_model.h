// Publication (event) models.
//
// A publication model knows how to (a) sample events — an origin node plus
// a point in the event space — and (b) report the probability p_p(r) that
// an event lands inside an arbitrary aligned rectangle.  (b) is what the
// clustering layer needs: the expected-waste distance and the popularity
// rating of §4.1 are both weighted by per-cell publication probabilities.
//
// Both paper models are products of independent per-dimension marginals.
// The §3 model is additionally *regional*: the first attribute of every
// event equals the stub (subnet) id of the originating node, so its
// marginal is the origin-stub frequency distribution rather than an
// independent draw.
#pragma once

#include <memory>
#include <vector>

#include "geometry/event_space.h"
#include "net/graph.h"
#include "workload/marginal.h"
#include "workload/types.h"

namespace pubsub {

class PublicationModel {
 public:
  virtual ~PublicationModel() = default;

  virtual const EventSpace& space() const = 0;
  virtual Publication sample(Rng& rng) const = 0;
  // P(event ∈ r); r must have the space's dimensionality.
  virtual double rect_mass(const Rect& r) const = 0;
};

// Product-form model: each dimension is an independent Marginal1D; the
// origin is drawn uniformly from `origins`.  With `Regional`, dimension 0
// is generated as the stub id of the sampled origin (its marginal, used
// for rect_mass, is the stub-frequency distribution of the origins).
class ProductPublicationModel final : public PublicationModel {
 public:
  ProductPublicationModel(EventSpace space, std::vector<Marginal1D> marginals,
                          std::vector<NodeId> origins);

  static std::unique_ptr<ProductPublicationModel> Regional(
      EventSpace space, std::vector<Marginal1D> tail_marginals,
      std::vector<NodeId> origins, const std::vector<int>& stub_of_node,
      int num_stubs);

  const EventSpace& space() const override { return space_; }
  Publication sample(Rng& rng) const override;
  double rect_mass(const Rect& r) const override;

  const std::vector<Marginal1D>& marginals() const { return marginals_; }

 private:
  EventSpace space_;
  std::vector<Marginal1D> marginals_;
  std::vector<NodeId> origins_;
  bool regional_ = false;
  std::vector<int> stub_of_node_;
};

}  // namespace pubsub
