#include "workload/publication_model.h"

#include <stdexcept>

namespace pubsub {

ProductPublicationModel::ProductPublicationModel(EventSpace space,
                                                 std::vector<Marginal1D> marginals,
                                                 std::vector<NodeId> origins)
    : space_(std::move(space)),
      marginals_(std::move(marginals)),
      origins_(std::move(origins)) {
  if (marginals_.size() != space_.dims())
    throw std::invalid_argument("ProductPublicationModel: marginal count mismatch");
  for (std::size_t d = 0; d < marginals_.size(); ++d)
    if (marginals_[d].domain_size() != space_.dim(d).domain_size)
      throw std::invalid_argument("ProductPublicationModel: domain mismatch in dim " +
                                  std::to_string(d));
  if (origins_.empty())
    throw std::invalid_argument("ProductPublicationModel: no origin nodes");
}

std::unique_ptr<ProductPublicationModel> ProductPublicationModel::Regional(
    EventSpace space, std::vector<Marginal1D> tail_marginals,
    std::vector<NodeId> origins, const std::vector<int>& stub_of_node,
    int num_stubs) {
  if (space.dims() != tail_marginals.size() + 1)
    throw std::invalid_argument("Regional: need dims-1 tail marginals");
  if (space.dim(0).domain_size != num_stubs)
    throw std::invalid_argument("Regional: dim 0 must span the stubs");

  // Dimension-0 marginal = frequency of each stub among the origins.
  std::vector<double> stub_freq(static_cast<std::size_t>(num_stubs), 0.0);
  for (const NodeId v : origins) {
    const int s = stub_of_node.at(static_cast<std::size_t>(v));
    if (s < 0 || s >= num_stubs)
      throw std::invalid_argument("Regional: origin not in a stub");
    stub_freq[static_cast<std::size_t>(s)] += 1.0;
  }

  std::vector<Marginal1D> marginals;
  marginals.reserve(space.dims());
  marginals.push_back(Marginal1D::Categorical(std::move(stub_freq)));
  for (Marginal1D& m : tail_marginals) marginals.push_back(std::move(m));

  auto model = std::make_unique<ProductPublicationModel>(
      std::move(space), std::move(marginals), std::move(origins));
  model->regional_ = true;
  model->stub_of_node_ = stub_of_node;
  return model;
}

Publication ProductPublicationModel::sample(Rng& rng) const {
  Publication pub;
  pub.origin = origins_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(origins_.size()) - 1))];
  pub.point.reserve(space_.dims());
  for (std::size_t d = 0; d < space_.dims(); ++d) {
    if (d == 0 && regional_) {
      pub.point.push_back(EventSpace::value_coord(
          stub_of_node_[static_cast<std::size_t>(pub.origin)]));
    } else {
      pub.point.push_back(EventSpace::value_coord(marginals_[d].sample(rng)));
    }
  }
  return pub;
}

double ProductPublicationModel::rect_mass(const Rect& r) const {
  if (r.dims() != space_.dims())
    throw std::invalid_argument("rect_mass: dimensionality mismatch");
  double mass = 1.0;
  for (std::size_t d = 0; d < space_.dims(); ++d) {
    mass *= marginals_[d].interval_mass(r[d]);
    if (mass == 0.0) return 0.0;
  }
  return mass;
}

}  // namespace pubsub
