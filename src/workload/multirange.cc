#include "workload/multirange.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

std::vector<Interval> NormalizeUnion(std::vector<Interval> intervals) {
  std::vector<Interval> nonempty;
  nonempty.reserve(intervals.size());
  for (const Interval& iv : intervals)
    if (!iv.empty()) nonempty.push_back(iv);
  if (nonempty.empty()) return {};

  std::sort(nonempty.begin(), nonempty.end(),
            [](const Interval& a, const Interval& b) { return a.lo() < b.lo(); });

  std::vector<Interval> merged;
  merged.push_back(nonempty.front());
  for (std::size_t i = 1; i < nonempty.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = nonempty[i];
    // Half-open intervals merge when they overlap or touch: (a,b] ∪ (b,c].
    if (cur.lo() <= last.hi()) {
      last = Interval(last.lo(), std::max(last.hi(), cur.hi()));
    } else {
      merged.push_back(cur);
    }
  }
  return merged;
}

std::vector<Rect> DecomposeToRects(const MultiRangeSubscription& sub) {
  if (sub.ranges.empty())
    throw std::invalid_argument("DecomposeToRects: zero-dimensional subscription");

  std::vector<std::vector<Interval>> normalized;
  normalized.reserve(sub.ranges.size());
  for (const auto& dim_union : sub.ranges) {
    std::vector<Interval> n = NormalizeUnion(dim_union);
    if (n.empty()) return {};  // unmatchable predicate
    normalized.push_back(std::move(n));
  }

  // Cartesian product via an odometer over the per-dimension choices.
  std::vector<std::size_t> choice(normalized.size(), 0);
  std::vector<Rect> rects;
  while (true) {
    std::vector<Interval> ivals;
    ivals.reserve(normalized.size());
    for (std::size_t d = 0; d < normalized.size(); ++d)
      ivals.push_back(normalized[d][choice[d]]);
    rects.emplace_back(std::move(ivals));

    std::size_t d = normalized.size();
    while (d-- > 0) {
      if (++choice[d] < normalized[d].size()) break;
      choice[d] = 0;
      if (d == 0) return rects;
    }
  }
}

std::size_t AppendDecomposed(Workload& wl, const MultiRangeSubscription& sub) {
  if (sub.ranges.size() != wl.space.dims())
    throw std::invalid_argument("AppendDecomposed: dimensionality mismatch");
  const std::vector<Rect> rects = DecomposeToRects(sub);
  for (const Rect& r : rects) {
    Subscriber s;
    s.node = sub.node;
    s.interest = r;
    wl.subscribers.push_back(std::move(s));
  }
  return rects.size();
}

}  // namespace pubsub
