// Synthetic stock-trading-day trace (paper §6, discussion item 3).
//
// "Evaluation of the algorithms with real-world data would be helpful.
//  For example, stock trading data can be used to simulate a stream of
//  events coming into the system."  Real tick data cannot ship with the
// repository, so this generator synthesizes the closest equivalent with
// the statistical features trading feeds are known for, mapped onto the
// §5.1 event space {bst, name, quote, volume}:
//
//   * a fixed universe of stocks whose trade frequencies are Zipf-ranked
//     (a few names dominate the tape);
//   * per-stock price processes following a discrete geometric random walk
//     around the stock's base level (prices move smoothly, not i.i.d.);
//   * heavy-tailed (bounded-Pareto) trade volumes;
//   * buy/sell/transaction flags with fixed probabilities;
//   * event timestamps from a Poisson process, so bursts occur naturally.
//
// Events are emitted in timestamp order; origins are drawn from the host
// nodes like the parametric §5.1 model.  Unlike ProductPublicationModel
// the trace is temporally correlated, which is exactly what it exists to
// exercise (see examples/trace_replay.cpp).
#pragma once

#include <vector>

#include "net/transit_stub.h"
#include "util/distributions.h"
#include "workload/stock_model.h"
#include "workload/types.h"

namespace pubsub {

struct TraceParams {
  int num_stocks = 21;        // one per name value
  double zipf_exponent = 1.2; // trade-frequency skew across stocks
  double price_sigma = 0.35;  // per-trade random-walk step (name-value units)
  double volume_scale = 2.0;  // bounded-Pareto x_m for the volume attribute
  double volume_alpha = 1.2;
  std::array<double, 3> bst_probs = {0.4, 0.4, 0.2};
  double events_per_second = 50.0;  // Poisson arrival rate
  // Number of distinct publisher (exchange) nodes the trace originates
  // from; 0 = every host may publish.  Real feeds come from a handful of
  // exchanges, which concentrates broker load (see bench_throughput).
  int num_publishers = 0;
};

struct TraceEvent {
  double timestamp = 0.0;  // seconds since trace start
  Publication pub;
};

// A generated trading-day segment: `count` events in timestamp order.
// Stock i's base price level is its name value mapped into the quote
// domain; the walk is clamped to the domain.
std::vector<TraceEvent> GenerateStockTrace(const TransitStubNetwork& net,
                                           const StockModelParams& space_params,
                                           const TraceParams& params,
                                           std::size_t count, Rng& rng);

}  // namespace pubsub
