// Subscriber→node placement policies.
//
// §5.1: subscriptions are split across the three transit blocks with a
// fixed {40%, 30%, 30%} breakdown; within each block a Zipf-like
// distribution chooses among the block's stubs, and a second (common)
// Zipf-like distribution chooses the node within the stub.  This produces
// the "uneven concentration of subscriptions in the network" the paper's
// assumptions call for.
#pragma once

#include <vector>

#include "net/transit_stub.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace pubsub {

class ZipfPlacement {
 public:
  // `block_weights` must have one entry per transit block of `net` (it is
  // normalized internally).  Stub and node ranks are assigned in a random
  // order drawn from `rng` at construction, so different seeds concentrate
  // subscribers in different parts of the network.
  ZipfPlacement(const TransitStubNetwork& net, std::vector<double> block_weights,
                double zipf_exponent, Rng& rng);

  // Sample a host node.
  NodeId sample(Rng& rng) const;

 private:
  const TransitStubNetwork& net_;
  Discrete block_choice_;
  // Per block: which stubs belong to it and the Zipf weights over them.
  std::vector<std::vector<int>> block_stubs_;
  std::vector<Discrete> stub_choice_;   // indexed by block
  std::vector<Discrete> node_choice_;   // indexed by stub id
};

// Uniform placement over all host nodes (used by the §3 model).
class UniformPlacement {
 public:
  explicit UniformPlacement(const TransitStubNetwork& net) : hosts_(net.host_nodes()) {}
  NodeId sample(Rng& rng) const {
    return hosts_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
  }

 private:
  std::vector<NodeId> hosts_;
};

}  // namespace pubsub
