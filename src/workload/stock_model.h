// The §5.1 stock-market workload: subscriptions of the form
// {bst, name, quote, volume} on the three-transit-block 600-node network.
//
//   * bst ("buy/sell/transaction") takes B, S, T with probabilities
//     0.4/0.4/0.2; a subscription pins a single value.
//   * name: the interval center is normal with a mean specific to the
//     subscriber's transit block (3, 10 or 17) and σ = 4 — this is the
//     "regionalism of interest" assumption; the length is Zipf-distributed.
//   * quote and volume: the §5.1 parametric family (wildcard / one-ended /
//     two-ended with Pareto-like length), with the paper's price and
//     volume parameter rows.
//
// Publications are mixtures of 1, 4 or 9 multivariate normals (independent
// per-dimension mixtures), §5.1's three "hot spot" scenarios.
#pragma once

#include <array>
#include <memory>

#include "net/transit_stub.h"
#include "workload/interval_gen.h"
#include "workload/placement.h"
#include "workload/publication_model.h"
#include "workload/types.h"

namespace pubsub {

struct StockModelParams {
  int attr_domain = 21;  // name/quote/volume take values 0..20
  std::array<double, 3> bst_probs = {0.4, 0.4, 0.2};

  // Placement: subscription breakdown per transit block, Zipf exponent for
  // the stub- and node-level distributions.
  std::array<double, 3> block_weights = {0.4, 0.3, 0.3};
  double zipf_exponent = 1.0;

  // Name attribute: per-block interval-center means, common sigma, and the
  // Zipf length distribution over 1..attr_domain.
  std::array<double, 3> name_means = {3.0, 10.0, 17.0};
  double name_sigma = 4.0;
  double name_length_zipf_exponent = 1.0;

  // Price and volume parameter rows (q0, q1, q2, μ1 σ1, μ2 σ2, μ3 σ3, c α).
  // Interval lengths are "Pareto-like with a given mean" (c = mean 4),
  // which keeps per-event interest sparse enough that unicast lands just
  // below broadcast, as in the paper's §5.2 absolute numbers.
  ParametricIntervalSpec price{0.15, 0.1, 0.1, 9, 1, 9, 1, 9, 2, 4, 1,
                               /*pareto_is_scale=*/false};
  ParametricIntervalSpec volume{0.35, 0.1, 0.1, 9, 1, 9, 1, 9, 2, 4, 1,
                                /*pareto_is_scale=*/false};
};

// {bst, name, quote, volume} event space.
EventSpace StockSpace(const StockModelParams& params);

// `count` subscribers, Zipf-placed on the network per the block breakdown.
// The network must have exactly 3 transit blocks (PaperNetSection5()).
Workload GenerateStockSubscriptions(const TransitStubNetwork& net, int count,
                                    const StockModelParams& params, Rng& rng);

// §5.1 publication scenarios: 1, 4 or 9 hot spots.
enum class PublicationHotSpots { kOne = 1, kFour = 4, kNine = 9 };

std::unique_ptr<PublicationModel> MakeStockPublicationModel(
    const TransitStubNetwork& net, PublicationHotSpots scenario,
    const StockModelParams& params);

}  // namespace pubsub
