// Random subscription-interval generation: the parametric family of §5.1
// (also used, with different parameters, by the Gaussian variant of the §3
// model):
//
//   (−∞, +∞)  with probability q0                       — "don't care" (*)
//   (n, +∞)   with probability q1, n ~ N(mu1, sigma1)   — left-ended
//   (−∞, n]   with probability q2, n ~ N(mu2, sigma2)   — right-ended
//   (c−L/2, c+L/2] otherwise, c ~ N(mu3, sigma3),
//                  L ~ Pareto-like with given mean       — two-ended
//
// Generated intervals are intersected with the attribute's domain interval;
// a draw that misses the domain entirely is retried a bounded number of
// times and finally falls back to the full domain.
#pragma once

#include "geometry/interval.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace pubsub {

struct ParametricIntervalSpec {
  double q0 = 0.0;  // wildcard
  double q1 = 0.0;  // left-ended (n, +inf)
  double q2 = 0.0;  // right-ended (-inf, n]
  double mu1 = 0.0, sigma1 = 1.0;
  double mu2 = 0.0, sigma2 = 1.0;
  double mu3 = 0.0, sigma3 = 1.0;
  // Length distribution: Pareto(c, alpha) truncated to the domain size.
  // With pareto_is_scale (default) `pareto_c` is the classic Pareto scale
  // parameter x_m — the paper's "(c, α)" column; otherwise it is the target
  // mean of the truncated distribution ("Pareto-like with a given mean").
  double pareto_c = 1.0;
  double pareto_alpha = 1.0;
  bool pareto_is_scale = true;
};

// `domain` is the attribute's full interval ((−1, n−1] for an n-value
// attribute); the result is never empty.
Interval SampleParametricInterval(const ParametricIntervalSpec& spec,
                                  const Interval& domain, Rng& rng);

// Two-ended interval with a given center distribution and explicit length,
// clipped to the domain (used for the §5.1 name attribute, whose length is
// Zipf- rather than Pareto-distributed).
Interval CenteredInterval(double center, double length, const Interval& domain);

}  // namespace pubsub
