#include "workload/section3.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

EventSpace Section3Space(const TransitStubNetwork& net, const Section3Params& params) {
  return EventSpace({DimensionSpec{"stub", net.num_stubs},
                     DimensionSpec{"attr2", params.attr_domain},
                     DimensionSpec{"attr3", params.attr_domain},
                     DimensionSpec{"attr4", params.attr_domain}});
}

Workload GenerateSection3Subscriptions(const TransitStubNetwork& net, int count,
                                       const Section3Params& params, Rng& rng) {
  if (count < 0) throw std::invalid_argument("GenerateSection3Subscriptions: bad count");
  const std::vector<NodeId> hosts = net.host_nodes();
  if (hosts.empty()) throw std::invalid_argument("GenerateSection3Subscriptions: no hosts");

  Workload wl;
  wl.space = Section3Space(net, params);
  const Interval attr_domain(-1.0, static_cast<double>(params.attr_domain - 1));

  wl.subscribers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Subscriber sub;
    sub.node = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];

    std::vector<Interval> ivals;
    ivals.reserve(4);

    // Regional attribute: pinned to the subscriber's own stub with
    // probability `regionalism`, otherwise "don't care".
    const int own_stub = net.stub_of_node[static_cast<std::size_t>(sub.node)];
    if (rng.bernoulli(params.regionalism)) {
      ivals.push_back(Interval::Point(own_stub));
    } else {
      ivals.push_back(wl.space.domain_interval(0));
    }

    if (params.subscription_tail == Section3Params::Tail::kUniform) {
      double p_specify = params.p_specify_first;
      for (int j = 0; j < 3; ++j) {
        if (rng.bernoulli(p_specify)) {
          int a = static_cast<int>(rng.uniform_int(0, params.attr_domain - 1));
          int b = static_cast<int>(rng.uniform_int(0, params.attr_domain - 1));
          if (a > b) std::swap(a, b);
          ivals.push_back(Interval(a - 1.0, static_cast<double>(b)));
        } else {
          ivals.push_back(attr_domain);
        }
        p_specify *= params.specify_decay;
      }
    } else {
      for (int j = 0; j < 3; ++j) {
        ivals.push_back(SampleParametricInterval(
            params.gaussian_rows[static_cast<std::size_t>(j)], attr_domain, rng));
      }
    }
    sub.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(sub));
  }
  return wl;
}

std::unique_ptr<PublicationModel> MakeSection3PublicationModel(
    const TransitStubNetwork& net, const Section3Params& params) {
  std::vector<Marginal1D> tails;
  tails.reserve(3);
  for (int j = 0; j < 3; ++j) {
    if (params.publication_tail == Section3Params::Tail::kUniform) {
      tails.push_back(Marginal1D::UniformInt(params.attr_domain));
    } else {
      tails.push_back(Marginal1D::Gaussian(
          GaussianMixture1D::Single(params.pub_mu, params.pub_sigma),
          params.attr_domain));
    }
  }
  return ProductPublicationModel::Regional(Section3Space(net, params),
                                           std::move(tails), net.host_nodes(),
                                           net.stub_of_node, net.num_stubs);
}

}  // namespace pubsub
