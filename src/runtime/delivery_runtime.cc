#include "runtime/delivery_runtime.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

DeliveryRuntime::DeliveryRuntime(const Graph& network, const RuntimeParams& params,
                                 MetricsRegistry* metrics)
    : network_(&network),
      params_(params),
      broker_free_at_(static_cast<std::size_t>(network.num_nodes()), 0.0) {
  if (metrics != nullptr) {
    c_unicast_ = metrics->counter("runtime_unicast_total",
                                  "unicast delivery decisions executed");
    c_multicast_ = metrics->counter("runtime_multicast_total",
                                    "multicast delivery decisions executed");
    c_messages_ = metrics->counter(
        "runtime_messages_sent_total",
        "point-to-point messages injected at origin brokers");
    c_bytes_ = metrics->counter(
        "runtime_bytes_on_wire_total",
        "estimated bytes crossing network edges (payload_bytes per edge)");
  }
}

void DeliveryRuntime::reset() {
  std::fill(broker_free_at_.begin(), broker_free_at_.end(), 0.0);
}

void DeliveryRuntime::restore_queue_state(std::vector<double> free_at) {
  if (free_at.size() != broker_free_at_.size())
    throw std::invalid_argument(
        "DeliveryRuntime: queue state size does not match the network");
  broker_free_at_ = std::move(free_at);
}

const ShortestPathTree& DeliveryRuntime::spt(NodeId origin) {
  const auto it = spt_cache_.find(origin);
  if (it != spt_cache_.end()) return it->second;
  return spt_cache_.emplace(origin, Dijkstra(*network_, origin)).first->second;
}

double DeliveryRuntime::enqueue(NodeId broker, double now_ms, double service_ms) {
  double& free_at = broker_free_at_[static_cast<std::size_t>(broker)];
  const double start = std::max(now_ms, free_at);
  free_at = start + service_ms;
  return start;
}

DeliveryTiming DeliveryRuntime::deliver_unicast(double now_ms, NodeId origin,
                                                std::span<const NodeId> targets,
                                                std::vector<double>* latencies_out) {
  const ShortestPathTree& tree = spt(origin);

  std::vector<double>& lat = latencies_out != nullptr ? *latencies_out : own_latencies_;
  if (latencies_out == nullptr) lat.clear();
  const std::size_t base = lat.size();

  DeliveryTiming t;
  t.service_ms = params_.match_time_ms +
                 params_.per_message_send_ms * static_cast<double>(targets.size());
  const double start = enqueue(origin, now_ms, t.service_ms);
  t.queue_wait_ms = start - now_ms;

  lat.reserve(base + targets.size());
  double send_done = start + params_.match_time_ms;
  std::size_t total_hops = 0;
  for (const NodeId target : targets) {
    if (!tree.reachable(target))
      throw std::invalid_argument("deliver_unicast: unreachable target");
    send_done += params_.per_message_send_ms;
    // Hop count along the SPT path.
    int hops = 0;
    for (NodeId v = target; tree.parent[static_cast<std::size_t>(v)] != -1;
         v = tree.parent[static_cast<std::size_t>(v)])
      ++hops;
    total_hops += static_cast<std::size_t>(hops);
    const double arrival = send_done +
                           tree.dist[static_cast<std::size_t>(target)] *
                               params_.latency_per_cost_ms +
                           static_cast<double>(hops) * params_.per_hop_processing_ms;
    lat.push_back(arrival - now_ms);
  }
  t.latencies_ms = std::span<const double>(lat).subspan(base);

  Inc(c_unicast_);
  Inc(c_messages_, targets.size());
  Inc(c_bytes_, total_hops * params_.payload_bytes);
  return t;
}

DeliveryTiming DeliveryRuntime::deliver_multicast(double now_ms, NodeId origin,
                                                  std::span<const NodeId> targets,
                                                  std::vector<double>* latencies_out) {
  const ShortestPathTree& tree = spt(origin);

  std::vector<double>& lat = latencies_out != nullptr ? *latencies_out : own_latencies_;
  if (latencies_out == nullptr) lat.clear();
  const std::size_t base = lat.size();

  // Pruned-tree membership: every node on some origin→target path.
  const int n = network_->num_nodes();
  needed_.assign(static_cast<std::size_t>(n), 0);
  needed_[static_cast<std::size_t>(origin)] = 1;
  for (const NodeId target : targets) {
    if (!tree.reachable(target))
      throw std::invalid_argument("deliver_multicast: unreachable target");
    for (NodeId v = target; !needed_[static_cast<std::size_t>(v)];
         v = tree.parent[static_cast<std::size_t>(v)])
      needed_[static_cast<std::size_t>(v)] = 1;
  }

  // Children of each needed node within the pruned tree, as flat linked
  // lists.  Building in descending node order makes each per-parent list
  // ascend, matching the vector-of-vectors order this replaced — the DFS
  // below accumulates per-child send times in that order, so arrival times
  // stay bit-identical.
  child_head_.assign(static_cast<std::size_t>(n), -1);
  child_next_.resize(static_cast<std::size_t>(n));
  int origin_branches = 0;
  std::size_t tree_edges = 0;
  for (NodeId v = n - 1; v >= 0; --v) {
    if (!needed_[static_cast<std::size_t>(v)] || v == origin) continue;
    const NodeId parent = tree.parent[static_cast<std::size_t>(v)];
    child_next_[static_cast<std::size_t>(v)] = child_head_[static_cast<std::size_t>(parent)];
    child_head_[static_cast<std::size_t>(parent)] = v;
    ++tree_edges;
    if (parent == origin) ++origin_branches;
  }

  Inc(c_multicast_);
  Inc(c_messages_, static_cast<std::size_t>(origin_branches));
  Inc(c_bytes_, tree_edges * params_.payload_bytes);

  DeliveryTiming t;
  t.service_ms = params_.match_time_ms +
                 params_.per_message_send_ms * static_cast<double>(origin_branches);
  const double start = enqueue(origin, now_ms, t.service_ms);
  t.queue_wait_ms = start - now_ms;

  // Arrival times by DFS; per node, forwarding to children is sequential.
  // arrival_ carries stale values from earlier calls, but every node in the
  // pruned tree (origin included) is written before it is read.
  arrival_.resize(static_cast<std::size_t>(n));
  arrival_[static_cast<std::size_t>(origin)] = start + params_.match_time_ms;
  dfs_stack_.clear();
  dfs_stack_.push_back(origin);
  while (!dfs_stack_.empty()) {
    const NodeId u = dfs_stack_.back();
    dfs_stack_.pop_back();
    double send_done = arrival_[static_cast<std::size_t>(u)];
    if (u != origin) send_done += params_.per_hop_processing_ms;
    for (NodeId c = child_head_[static_cast<std::size_t>(u)]; c != -1;
         c = child_next_[static_cast<std::size_t>(c)]) {
      send_done += params_.per_message_send_ms;
      const double edge_cost =
          network_->edge(tree.parent_edge[static_cast<std::size_t>(c)]).cost;
      arrival_[static_cast<std::size_t>(c)] =
          send_done + edge_cost * params_.latency_per_cost_ms;
      dfs_stack_.push_back(c);
    }
  }

  lat.reserve(base + targets.size());
  for (const NodeId target : targets)
    lat.push_back(arrival_[static_cast<std::size_t>(target)] +
                  (target == origin ? 0.0 : params_.per_hop_processing_ms) -
                  now_ms);
  t.latencies_ms = std::span<const double>(lat).subspan(base);
  return t;
}

}  // namespace pubsub
