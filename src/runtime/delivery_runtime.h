// Latency and throughput runtime model (paper §4.6: "Matching must [be]
// done efficiently, since the delay caused by the matching algorithm
// directly affects the maximum throughput of the system").
//
// The cost simulator (sim/delivery.h) prices *traffic*; this module prices
// *time*.  Each publication is processed by the broker at its origin node:
//
//   service time = match_time + per_message_send × (messages emitted)
//
// where a unicast delivery emits one message per subscriber and a
// multicast/broadcast delivery emits one message per outgoing tree branch
// at the origin.  Brokers are single servers with FIFO queues, so under a
// timestamped arrival stream (workload/trace.h) queueing delay emerges and
// the system saturates when the offered per-broker load exceeds capacity —
// earlier for unicast (service scales with the interested count) than for
// multicast.
//
// After leaving the broker, a message propagates with per-edge latency
// proportional to edge cost plus per-hop processing; along a multicast
// tree each node forwards to its children sequentially (per-child
// serialization), which is the application-level forwarding model.
//
// Outputs are per-subscriber delivery latencies, aggregated by the caller.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"
#include "obs/metrics.h"
#include "workload/types.h"

namespace pubsub {

struct RuntimeParams {
  double match_time_ms = 0.05;        // matching work per event at the broker
  double per_message_send_ms = 0.02;  // serialization per emitted message
  double latency_per_cost_ms = 0.1;   // propagation per unit edge cost
  double per_hop_processing_ms = 0.01;
  // Nominal payload size for the bytes-on-wire telemetry estimate: a
  // unicast charges payload × path edges per target, a multicast charges
  // payload × pruned-tree edges once.  Affects metrics only, never timing.
  std::size_t payload_bytes = 256;
};

// Per-event outcome: when the broker finished (for throughput accounting)
// and when each target subscriber's node received the message.
struct DeliveryTiming {
  double queue_wait_ms = 0.0;
  double service_ms = 0.0;
  // One latency per requested target (publication → subscriber arrival), in
  // target order.  Aliases the latency buffer the deliver_* call ran
  // against: the caller's buffer when one was passed (valid until the
  // caller mutates it), otherwise the runtime's internal buffer (valid
  // until the next buffer-less deliver_* call).  See DESIGN.md §10.
  std::span<const double> latencies_ms;
};

class DeliveryRuntime {
 public:
  // With `metrics`, every delivery updates the runtime_* family: decision
  // counts (unicast/multicast calls), messages sent and the bytes-on-wire
  // estimate.  All deterministic — they depend only on the call sequence.
  DeliveryRuntime(const Graph& network, const RuntimeParams& params = {},
                  MetricsRegistry* metrics = nullptr);

  // Resets broker queues (between experiment runs).
  void reset();

  // Queue state capture/restore (per node, earliest idle time).  The broker
  // service snapshots this so that recovery reconstructs queueing delays —
  // not just match decisions — bit-for-bit.
  const std::vector<double>& queue_state() const { return broker_free_at_; }
  void restore_queue_state(std::vector<double> free_at);

  // A unicast delivery published at `origin` at absolute time `now_ms` to
  // `targets` (per-subscriber node ids; duplicates are distinct messages,
  // sent in order).
  //
  // Latencies append to `*latencies_out` when given (so one event's
  // multicast + unicast completion can share a buffer and concatenate) and
  // the returned span covers just this call's entries; with nullptr an
  // internal reusable buffer is cleared and used.  Either way the call
  // performs no steady-state allocation once buffers are warm.
  DeliveryTiming deliver_unicast(double now_ms, NodeId origin,
                                 std::span<const NodeId> targets,
                                 std::vector<double>* latencies_out = nullptr);

  // A single-message delivery over the origin-rooted pruned SPT covering
  // `targets`; per-target latency includes sequential child forwarding at
  // every tree node on the way.  Latency buffer semantics as above.
  DeliveryTiming deliver_multicast(double now_ms, NodeId origin,
                                   std::span<const NodeId> targets,
                                   std::vector<double>* latencies_out = nullptr);

 private:
  const ShortestPathTree& spt(NodeId origin);
  // FIFO single-server queue per broker: returns (wait, start) given an
  // arrival at now with the given service demand.
  double enqueue(NodeId broker, double now_ms, double service_ms);

  const Graph* network_;
  RuntimeParams params_;
  std::unordered_map<NodeId, ShortestPathTree> spt_cache_;
  std::vector<double> broker_free_at_;  // per node, earliest idle time

  // Per-delivery working memory, reused across calls (DESIGN.md §10).
  // deliver_multicast builds the pruned tree in flat child lists
  // (child_head_/child_next_) instead of a vector-of-vectors.
  std::vector<double> own_latencies_;
  std::vector<char> needed_;
  std::vector<NodeId> child_head_;
  std::vector<NodeId> child_next_;
  std::vector<double> arrival_;
  std::vector<NodeId> dfs_stack_;

  // Telemetry (nullable; see obs/metrics.h).
  Counter* c_unicast_ = nullptr;
  Counter* c_multicast_ = nullptr;
  Counter* c_messages_ = nullptr;
  Counter* c_bytes_ = nullptr;
};

}  // namespace pubsub
