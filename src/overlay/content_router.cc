#include "overlay/content_router.h"

#include <algorithm>
#include <stdexcept>

#include "net/shortest_path.h"
#include "net/spanning.h"

namespace pubsub {

ContentRouter::ContentRouter(const Graph& network, const Workload& wl,
                             const ContentRouterOptions& options)
    : network_(&network), workload_(&wl), summary_kind_(options.summary) {
  if (network.num_nodes() == 0)
    throw std::invalid_argument("ContentRouter: empty network");

  // 1. Choose the overlay tree.
  if (options.tree == OverlayTree::kMst) {
    tree_edges_ = KruskalMst(network);
  } else {
    const ShortestPathTree spt = Dijkstra(network, options.spt_root);
    for (NodeId v = 0; v < network.num_nodes(); ++v) {
      if (spt.parent_edge[static_cast<std::size_t>(v)] != -1)
        tree_edges_.push_back(spt.parent_edge[static_cast<std::size_t>(v)]);
      else if (v != options.spt_root)
        throw std::invalid_argument("ContentRouter: disconnected network");
    }
  }

  // 2. Directed summaries, two per tree edge, and tree adjacency.
  tree_adj_.assign(static_cast<std::size_t>(network.num_nodes()), {});
  summaries_.reserve(tree_edges_.size() * 2);
  for (const EdgeId e : tree_edges_) {
    const Edge& edge = network.edge(e);
    for (const auto [from, to] : {std::pair{edge.u, edge.v}, std::pair{edge.v, edge.u}}) {
      DirectedSummary s;
      s.from = from;
      s.to = to;
      s.edge = e;
      s.behind = BitVector(workload_->num_subscribers());
      tree_adj_[static_cast<std::size_t>(from)].push_back(
          static_cast<int>(summaries_.size()));
      summaries_.push_back(std::move(s));
    }
  }

  rebuild_summaries();
}

void ContentRouter::rebuild_summaries() {
  const int n = network_->num_nodes();
  const std::size_t ns = workload_->num_subscribers();

  // Subscribers and interest hulls per node.
  std::vector<BitVector> at_node(static_cast<std::size_t>(n), BitVector(ns));
  std::vector<Rect> hull_at_node(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < workload_->subscribers.size(); ++i) {
    const Subscriber& sub = workload_->subscribers[i];
    if (sub.interest.empty()) continue;  // departed / empty interest
    at_node[static_cast<std::size_t>(sub.node)].set(i);
    Rect& h = hull_at_node[static_cast<std::size_t>(sub.node)];
    h = h.dims() == 0 ? sub.interest : h.hull(sub.interest);
  }

  // Root the tree at 0 and compute a DFS order.
  std::vector<int> parent_summary(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::vector<NodeId> stack{0};
    seen[0] = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (const int si : tree_adj_[static_cast<std::size_t>(u)]) {
        const NodeId v = summaries_[static_cast<std::size_t>(si)].to;
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = 1;
        // si is the u→v summary; its "behind" is the subtree below v.
        parent_summary[static_cast<std::size_t>(v)] = si;
        stack.push_back(v);
      }
    }
    if (order.size() != static_cast<std::size_t>(n))
      throw std::invalid_argument("ContentRouter: tree does not span the network");
  }

  // Bottom-up: below[v] = subscribers/hull in v's subtree.
  std::vector<BitVector> below(static_cast<std::size_t>(n), BitVector(ns));
  std::vector<Rect> below_hull(static_cast<std::size_t>(n));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    below[static_cast<std::size_t>(v)] |= at_node[static_cast<std::size_t>(v)];
    Rect h = hull_at_node[static_cast<std::size_t>(v)];
    for (const int si : tree_adj_[static_cast<std::size_t>(v)]) {
      const DirectedSummary& s = summaries_[static_cast<std::size_t>(si)];
      if (parent_summary[static_cast<std::size_t>(s.to)] != si) continue;  // child edge only
      below[static_cast<std::size_t>(v)] |= below[static_cast<std::size_t>(s.to)];
      const Rect& ch = below_hull[static_cast<std::size_t>(s.to)];
      if (ch.dims() != 0) h = h.dims() == 0 ? ch : h.hull(ch);
    }
    below_hull[static_cast<std::size_t>(v)] = std::move(h);
  }

  // All subscribers / global hull, for complement sides.
  BitVector all(ns);
  for (const BitVector& b : at_node) all |= b;

  // Fill summaries.  For the parent→child direction behind = below[child];
  // for child→parent, behind = all \ below[child], and the hull is
  // recomputed top-down ("up" hull of the child).
  std::vector<Rect> up_hull(static_cast<std::size_t>(n));
  for (const NodeId u : order) {
    // up_hull[u] already final (root's is empty).
    for (const int si : tree_adj_[static_cast<std::size_t>(u)]) {
      DirectedSummary& down = summaries_[static_cast<std::size_t>(si)];
      const NodeId child = down.to;
      if (parent_summary[static_cast<std::size_t>(child)] != si) continue;

      down.behind = below[static_cast<std::size_t>(child)];
      down.bounds = below_hull[static_cast<std::size_t>(child)];
      down.bounds_valid = down.bounds.dims() != 0;

      // Reverse direction (child→u): everything except the child's subtree.
      DirectedSummary& up = summaries_[static_cast<std::size_t>(si ^ 1)];
      up.behind = all;
      up.behind.and_not_assign(below[static_cast<std::size_t>(child)]);

      Rect h = up_hull[static_cast<std::size_t>(u)];
      const Rect& here = hull_at_node[static_cast<std::size_t>(u)];
      if (here.dims() != 0) h = h.dims() == 0 ? here : h.hull(here);
      for (const int sj : tree_adj_[static_cast<std::size_t>(u)]) {
        const DirectedSummary& sib = summaries_[static_cast<std::size_t>(sj)];
        if (parent_summary[static_cast<std::size_t>(sib.to)] != sj) continue;
        if (sib.to == child) continue;
        const Rect& sh = below_hull[static_cast<std::size_t>(sib.to)];
        if (sh.dims() != 0) h = h.dims() == 0 ? sh : h.hull(sh);
      }
      up.bounds = h;
      up.bounds_valid = h.dims() != 0;
      up_hull[static_cast<std::size_t>(child)] = std::move(h);
    }
  }
}

bool ContentRouter::summary_matches(const DirectedSummary& s, const Point& event,
                                    const BitVector& interested) const {
  if (summary_kind_ == SummaryKind::kExact) return s.behind.intersects(interested);
  return s.bounds_valid && s.bounds.contains(event);
}

RouteResult ContentRouter::route(NodeId origin, const Point& event,
                                 const std::vector<SubscriberId>& interested,
                                 std::vector<NodeId>* reached) const {
  if (origin < 0 || origin >= network_->num_nodes())
    throw std::out_of_range("ContentRouter::route: bad origin");

  BitVector interested_bits(workload_->num_subscribers());
  for (const SubscriberId s : interested)
    interested_bits.set(static_cast<std::size_t>(s));

  RouteResult r;
  struct Frame {
    NodeId node;
    int arrived_via;  // summary index used to reach node, -1 at origin
  };
  std::vector<Frame> stack{{origin, -1}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    ++r.nodes_reached;
    if (reached != nullptr) reached->push_back(f.node);
    for (const int si : tree_adj_[static_cast<std::size_t>(f.node)]) {
      const DirectedSummary& s = summaries_[static_cast<std::size_t>(si)];
      // Don't route back where we came from (arrived_via is the summary
      // pointing *toward* f.node; its reverse is si ^ 1 ... compare nodes).
      if (f.arrived_via != -1 &&
          summaries_[static_cast<std::size_t>(f.arrived_via)].from == s.to)
        continue;
      ++r.matches_performed;
      if (!summary_matches(s, event, interested_bits)) continue;
      ++r.edges_traversed;
      r.cost += network_->edge(s.edge).cost;
      if (!s.behind.intersects(interested_bits)) ++r.wasted_edges;
      stack.push_back(Frame{s.to, si});
    }
  }
  return r;
}

int ContentRouter::update_subscription(SubscriberId id, const Rect& new_interest) {
  if (id < 0 || static_cast<std::size_t>(id) >= workload_->num_subscribers())
    throw std::out_of_range("ContentRouter::update_subscription: bad id");

  // The router summarizes the *current* workload; the caller mutates the
  // workload first, then notifies.  (A defensive check keeps the two in
  // sync when the caller passes the rectangle explicitly.)
  (void)new_interest;

  std::vector<Rect> old_bounds;
  std::vector<char> old_valid;
  old_bounds.reserve(summaries_.size());
  for (const DirectedSummary& s : summaries_) {
    old_bounds.push_back(s.bounds);
    old_valid.push_back(s.bounds_valid ? 1 : 0);
  }

  rebuild_summaries();

  if (summary_kind_ == SummaryKind::kExact) {
    // Every broker on the subscriber's side of each edge stores its
    // interest verbatim: all n−1 directed summaries containing it refresh.
    int touched = 0;
    for (const DirectedSummary& s : summaries_)
      if (s.behind.test(static_cast<std::size_t>(id))) ++touched;
    return touched;
  }

  int changed = 0;
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    const bool valid = summaries_[i].bounds_valid;
    if (valid != (old_valid[i] != 0) ||
        (valid && !(summaries_[i].bounds == old_bounds[i])))
      ++changed;
  }
  return changed;
}

std::size_t ContentRouter::state_bits() const {
  std::size_t bits = 0;
  for (const DirectedSummary& s : summaries_) {
    if (summary_kind_ == SummaryKind::kExact) {
      bits += s.behind.size();
    } else {
      // One rectangle: two doubles per dimension.
      bits += s.bounds.dims() * 2 * 64;
    }
  }
  return bits;
}

double ContentRouter::tree_cost() const {
  double total = 0;
  for (const EdgeId e : tree_edges_) total += network_->edge(e).cost;
  return total;
}

}  // namespace pubsub
