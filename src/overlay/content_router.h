// Hop-by-hop content routing (paper §6, discussion item 6).
//
// The paper's main design matches each event once, at the first
// "intelligent" node, and then uses unicast/multicast groups.  The
// alternative it discusses — used by several Gryphon papers — is a broker
// overlay where "each intermediate node knows about the preferences of its
// neighbors, and matches each event against its specific data structures
// to find those neighbors to which the event must be forwarded next."
//
// This module implements that alternative over a routing tree:
//
//   * the overlay is a spanning tree of the network (MST by default —
//     cheap static links — or the SPT of a designated root);
//   * every *directed* tree edge u→v carries a summary of all
//     subscriptions in the component behind v.  Two summary types:
//       - kExact:  the precise subscriber set (a bit-vector) — large
//                  state, zero false forwarding;
//       - kBounds: the bounding rectangle of the interests behind the
//                  edge — constant state per edge, but events may be
//                  forwarded into subtrees with no interested subscriber
//                  (wasted traversals, the price of aggregation);
//   * routing an event walks the tree from the origin, forwarding along
//     an edge iff its summary matches, and accounts the traversed edge
//     costs exactly like the rest of the simulator.
//
// The paper's caveat — "the dynamics of subscriptions require subscription
// changes to propagate quickly in the network" — is measurable here as the
// summary-update cost: update_subscription() returns how many directed
// edges had to refresh their summaries.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "net/graph.h"
#include "util/bitvector.h"
#include "workload/types.h"

namespace pubsub {

enum class OverlayTree { kMst, kSptFromRoot };
enum class SummaryKind { kExact, kBounds };

struct ContentRouterOptions {
  OverlayTree tree = OverlayTree::kMst;
  NodeId spt_root = 0;  // used when tree == kSptFromRoot
  SummaryKind summary = SummaryKind::kExact;
};

struct RouteResult {
  double cost = 0.0;            // sum of traversed tree edge costs
  int edges_traversed = 0;      // directed hops taken
  int wasted_edges = 0;         // hops into subtrees with no interested sub
  int nodes_reached = 0;        // distinct nodes visited (incl. origin)
  int matches_performed = 0;    // per-edge summary checks (matching work)
};

class ContentRouter {
 public:
  ContentRouter(const Graph& network, const Workload& wl,
                const ContentRouterOptions& options = {});

  // Route an event published at `origin` to the subscribers in
  // `interested` (the exact interested set, as produced by the matching
  // index).  Never misses a subscriber: exact summaries forward precisely,
  // bounding-rectangle summaries forward a superset.
  RouteResult route(NodeId origin, const Point& event,
                    const std::vector<SubscriberId>& interested,
                    std::vector<NodeId>* reached = nullptr) const;

  // Re-summarize after subscriber `id`'s interest changed to
  // `new_interest` (also covers arrival: an id whose previous rectangle
  // was empty).  Returns the number of directed-edge summaries refreshed —
  // the paper's "propagation" cost of subscription dynamics.
  int update_subscription(SubscriberId id, const Rect& new_interest);

  // Total routing state, in bits, summed over all directed edges (the
  // memory the overlay nodes collectively dedicate to forwarding tables).
  std::size_t state_bits() const;

  int num_tree_edges() const { return static_cast<int>(tree_edges_.size()); }
  double tree_cost() const;

 private:
  struct DirectedSummary {
    NodeId from = -1;
    NodeId to = -1;
    EdgeId edge = -1;
    BitVector behind;  // subscribers in the component behind `to`
    Rect bounds;       // hull of their interests (kBounds matching)
    bool bounds_valid = false;
  };

  void rebuild_summaries();
  bool summary_matches(const DirectedSummary& s, const Point& event,
                       const BitVector& interested) const;

  const Graph* network_;
  const Workload* workload_;
  SummaryKind summary_kind_;
  std::vector<EdgeId> tree_edges_;
  // adjacency over the tree: per node, indices into summaries_ for edges
  // leaving that node.
  std::vector<std::vector<int>> tree_adj_;
  std::vector<DirectedSummary> summaries_;
};

}  // namespace pubsub
