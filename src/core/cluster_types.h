// Common types for the subscription-clustering algorithms (§4).
//
// Every grid-based algorithm consumes the same input: a list of cells
// (hyper-cells in practice), each carrying a subscriber membership
// bit-vector s(a) and a publication probability p_p(a), and produces an
// assignment of cells to K groups.  The inter-object distance is the
// *expected waste* of §4.1:
//
//   d(a,b) = p_p(a)·|s(a)\s(b)| + p_p(b)·|s(b)\s(a)|
//
// — the expected number of messages delivered to uninterested subscribers
// if a and b share one multicast group.  The same formula applies between
// groups (with s = union of members, p = sum of member probabilities).
//
// The distance kernels are word-level: each evaluation is one fused pass
// over the 64-bit membership words (both AND-NOT popcounts per word pair),
// and BatchedGroupWaste evaluates one cell against a whole block of group
// vectors in a single sweep — the closure-accelerated k-means assignment
// (core/kmeans) runs on these.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvector.h"

namespace pubsub {

// One clustering object: a (hyper-)cell's membership vector and
// publication probability.  The vector is referenced, not owned; the cell
// source (core/grid.h) must outlive the algorithm run.
struct ClusterCell {
  const BitVector* members = nullptr;
  double prob = 0.0;

  double popularity() const { return prob * static_cast<double>(members->count()); }
};

// Group index per cell, each in [0, K).  Size equals the number of input
// cells.
using Assignment = std::vector<int>;

// Expected waste between two membership vectors with probabilities, via
// the fused one-pass diff kernel.
inline double ExpectedWaste(const BitVector& sa, double pa, const BitVector& sb,
                            double pb) {
  std::size_t a_not_b = 0, b_not_a = 0;
  sa.count_diffs(sb, &a_not_b, &b_not_a);
  return pa * static_cast<double>(a_not_b) + pb * static_cast<double>(b_not_a);
}

inline double ExpectedWaste(const ClusterCell& a, const ClusterCell& b) {
  return ExpectedWaste(*a.members, a.prob, *b.members, b.prob);
}

// Mutable group state shared by the iterative and hierarchical algorithms:
// the OR of member vectors, per-subscriber member counts (so removal is
// O(N_S)), total probability, and population.  add/remove also maintain,
// incrementally and at no extra asymptotic cost:
//
//   * cardinality()  — |s(g)|, the set-bit count of the union vector;
//   * unique()       — the bits exactly one member contributes (member
//                      count == 1), which turns distance_to_excluding into
//                      a pure word kernel;
//   * waste()        — this group's contribution to the §4.1 objective.
//     Members satisfy s(a) ⊆ s(g), so
//       W(g) = Σ_{a∈g} p(a)·|s(g)\s(a)| = prob(g)·|s(g)| − Σ_{a∈g} p(a)·|s(a)|
//     and the right-hand side needs only two scalars maintained across
//     add/remove — total waste of an assignment is a Σ over K groups
//     instead of a fresh pass over every cell (the incremental-waste
//     invariant; test_cluster_types pins it against TotalExpectedWaste).
class GroupState {
 public:
  explicit GroupState(std::size_t num_subscribers)
      : vec_(num_subscribers), unique_(num_subscribers),
        counts_(num_subscribers, 0) {}

  const BitVector& vec() const { return vec_; }
  // Bits with member count exactly 1 (what the last contributor would take
  // away with it).
  const BitVector& unique() const { return unique_; }
  double prob() const { return prob_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // |s(g)|, maintained incrementally (no popcount pass).
  std::size_t cardinality() const { return card_; }
  // This group's expected waste Σ_{a∈g} p(a)·|s(g)\s(a)| under the member
  // containment identity above.  Exact up to floating-point association;
  // TotalExpectedWaste is the from-scratch oracle.
  double waste() const {
    return prob_ * static_cast<double>(card_) - member_mass_;
  }

  void add(const ClusterCell& cell);
  void remove(const ClusterCell& cell);
  // Back to the empty state without releasing storage — the resumable
  // k-means path rebuilds groups canonically each pass and reuses the
  // buffers.
  void reset();
  // Absorb another group (used by the agglomerative algorithms).
  void merge_from(const GroupState& other);

  // Expected waste between a cell and this group's membership vector.
  double distance_to(const ClusterCell& cell) const {
    return ExpectedWaste(*cell.members, cell.prob, vec_, prob_);
  }
  // Expected waste between `cell` and this group with the cell's own
  // contribution removed — bit-identical to remove(cell); distance_to(cell);
  // add(cell), but const, so snapshot-based passes can evaluate many cells
  // concurrently against one frozen group state.  `cell` must be a member.
  // One fused pass over the cell and unique() words.  When `unique_out` is
  // non-null it receives |s(cell) ∩ unique()| — the bits removal would
  // strip from the union vector, which the k-means improvement check needs.
  double distance_to_excluding(const ClusterCell& cell,
                               std::size_t* unique_out = nullptr) const;
  double distance_to(const GroupState& other) const {
    return ExpectedWaste(vec_, prob_, other.vec_, other.prob_);
  }

 private:
  BitVector vec_;
  BitVector unique_;
  std::vector<int> counts_;
  double prob_ = 0.0;
  std::size_t size_ = 0;
  std::size_t card_ = 0;         // |vec_|
  double member_mass_ = 0.0;     // Σ_{a∈g} p(a)·|s(a)|
};

// Word-level batched assignment kernel: expected-waste distances from
// `cell` to `count` groups in ONE sweep over the membership words — the
// outer loop walks the cell's words (each loaded once, kept hot) and the
// inner loop visits every candidate's word, accumulating both AND-NOT
// popcounts.  out_dist[j] receives d(cell, groups[cand[j]]);
// out_cell_not_g[j] (optional, else nullptr) receives |s(cell)\s(g_j)|,
// which prices the union growth if the cell moved there.  Distances are
// bit-identical to per-candidate distance_to calls.
void BatchedGroupWaste(const ClusterCell& cell,
                       const std::vector<GroupState>& groups, const int* cand,
                       std::size_t count, double* out_dist,
                       std::size_t* out_cell_not_g);

// Total expected waste of an assignment: for each group g and member cell
// a, p_p(a)·|s(g)\s(a)| — the analytic objective the algorithms minimize.
// Cells with assignment -1 (unclustered → unicast) contribute nothing.
// From-scratch derivation; the iterative algorithms track the same value
// incrementally via GroupState::waste().
double TotalExpectedWaste(const std::vector<ClusterCell>& cells,
                          const Assignment& assignment, int num_groups);

}  // namespace pubsub
