// Common types for the subscription-clustering algorithms (§4).
//
// Every grid-based algorithm consumes the same input: a list of cells
// (hyper-cells in practice), each carrying a subscriber membership
// bit-vector s(a) and a publication probability p_p(a), and produces an
// assignment of cells to K groups.  The inter-object distance is the
// *expected waste* of §4.1:
//
//   d(a,b) = p_p(a)·|s(a)\s(b)| + p_p(b)·|s(b)\s(a)|
//
// — the expected number of messages delivered to uninterested subscribers
// if a and b share one multicast group.  The same formula applies between
// groups (with s = union of members, p = sum of member probabilities).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.h"

namespace pubsub {

// One clustering object: a (hyper-)cell's membership vector and
// publication probability.  The vector is referenced, not owned; the cell
// source (core/grid.h) must outlive the algorithm run.
struct ClusterCell {
  const BitVector* members = nullptr;
  double prob = 0.0;

  double popularity() const { return prob * static_cast<double>(members->count()); }
};

// Group index per cell, each in [0, K).  Size equals the number of input
// cells.
using Assignment = std::vector<int>;

// Expected waste between two membership vectors with probabilities.
inline double ExpectedWaste(const BitVector& sa, double pa, const BitVector& sb,
                            double pb) {
  return pa * static_cast<double>(sa.count_and_not(sb)) +
         pb * static_cast<double>(sb.count_and_not(sa));
}

inline double ExpectedWaste(const ClusterCell& a, const ClusterCell& b) {
  return ExpectedWaste(*a.members, a.prob, *b.members, b.prob);
}

// Mutable group state shared by the iterative and hierarchical algorithms:
// the OR of member vectors, per-subscriber member counts (so removal is
// O(N_S)), total probability, and population.
class GroupState {
 public:
  explicit GroupState(std::size_t num_subscribers)
      : vec_(num_subscribers), counts_(num_subscribers, 0) {}

  const BitVector& vec() const { return vec_; }
  double prob() const { return prob_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void add(const ClusterCell& cell);
  void remove(const ClusterCell& cell);
  // Absorb another group (used by the agglomerative algorithms).
  void merge_from(const GroupState& other);

  // Expected waste between a cell and this group's membership vector.
  double distance_to(const ClusterCell& cell) const {
    return ExpectedWaste(*cell.members, cell.prob, vec_, prob_);
  }
  // Expected waste between `cell` and this group with the cell's own
  // contribution removed — bit-identical to remove(cell); distance_to(cell);
  // add(cell), but const, so snapshot-based passes can evaluate many cells
  // concurrently against one frozen group state.  `cell` must be a member.
  double distance_to_excluding(const ClusterCell& cell) const;
  double distance_to(const GroupState& other) const {
    return ExpectedWaste(vec_, prob_, other.vec_, other.prob_);
  }

 private:
  BitVector vec_;
  std::vector<int> counts_;
  double prob_ = 0.0;
  std::size_t size_ = 0;
};

// Total expected waste of an assignment: for each group g and member cell
// a, p_p(a)·|s(g)\s(a)| — the analytic objective the algorithms minimize.
// Cells with assignment -1 (unclustered → unicast) contribute nothing.
double TotalExpectedWaste(const std::vector<ClusterCell>& cells,
                          const Assignment& assignment, int num_groups);

}  // namespace pubsub
