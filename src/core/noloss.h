// No-Loss subscription clustering (§4.5, Figure 4).
//
// Grid-based groups can leak: a multicast to a group reaches subscribers
// whose interest merely *intersects* the matched cell.  No-Loss instead
// builds candidate group areas that are aligned with interest-rectangle
// borders — intersections of subscription rectangles — so that every
// subscriber attached to an area is interested in *every* event inside it:
//
//   u(s) = { subscribers whose interest rectangle contains s }
//   w(s) = p_p(s) · |u(s)|          (the area's popularity / weight)
//
// Starting from the subscription rectangles themselves, each iteration
// intersects the currently heaviest rectangles pairwise (and against the
// original subscriptions), recomputes u and w for the new areas, and keeps
// the `max_rectangles` heaviest.  The final list, ordered by decreasing
// weight, is the No-Loss matcher's search list A; its first K entries are
// the multicast groups.
//
// Zero waste holds by construction: if an event e lies in s, every member
// of u(s) has interest ⊇ s ∋ e.  A property test asserts this.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"
#include "geometry/rect.h"
#include "workload/publication_model.h"
#include "workload/types.h"

namespace pubsub {

struct NoLossOptions {
  // Candidate pool size kept after each intersection round (the paper's
  // "rectangles kept after intersection"; Figure 8 sweeps it).
  std::size_t max_rectangles = 5000;
  // Intersection rounds (Figure 8 sweeps 1..8).
  std::size_t iterations = 8;
  // Per round, the `intersect_top` heaviest candidates are intersected
  // pairwise and against every original subscription, bounding the work at
  // intersect_top·(intersect_top/2 + k) intersections per round.
  std::size_t intersect_top = 192;
};

struct NoLossGroup {
  Rect rect;
  BitVector subscribers;  // u(rect)
  double mass = 0.0;      // p_p(rect)
  double weight = 0.0;    // w(rect) = p_p(rect)·|u(rect)|

  // Expected unicasts saved per published event if this area is a group:
  // events in the area (mass) each replace |u| unicasts by one multicast.
  double savings() const { return weight - mass; }
};

struct NoLossResult {
  // Candidate areas ordered by decreasing weight (the matcher list A).
  std::vector<NoLossGroup> groups;
};

NoLossResult NoLossCluster(const Workload& wl, const PublicationModel& pub,
                           const NoLossOptions& options = {});

}  // namespace pubsub
