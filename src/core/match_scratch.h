// Per-event scratch arenas for the publish/match hot path (DESIGN.md §10).
//
// All per-event working memory — raw stab hits, the word-packed bit
// scratch, the sorted interested set, unicast completion targets,
// host-node lists, per-delivery latencies and the spatial-index traversal
// stack — lives in one MatchScratch.  The vectors only ever grow: after a
// warm-up pass their capacity covers the workload's high-water mark, and
// every subsequent match/publish reuses them, so steady-state publish
// performs zero heap allocations (pinned by tests/test_publish_alloc.cc
// with a counting operator new).
//
// Ownership convention: the broker owns one scratch per instance (its
// commands are sequenced, so one is enough); free-standing call sites and
// batch-pipeline workers use thread_local_instance() — one arena per pool
// thread, so concurrent matching never shares buffers.  Spans returned by
// match()/publish() alias the scratch the call ran against and stay valid
// until that scratch's next use; matches against *other* scratches never
// disturb them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/types.h"

namespace pubsub {

struct MatchScratch {
  // Raw hits from the subscription index (entry or subscriber ids, in
  // index emission order — deterministic but unsorted).
  std::vector<int> stab_hits;
  // Type-erased R-tree traversal stack (see RTree::stab's three-argument
  // overload; Node is private, hence const void*).
  std::vector<const void*> index_stack;
  // Word buffer for SlabIndex stabs (one bit per *index entry*).
  std::vector<std::uint64_t> entry_words;
  // Covering expansion of entry hits into subscriber ids (unsorted; the
  // counting-sort scatter canonicalizes downstream).
  std::vector<SubscriberId> expanded;

  // Word-packed subscriber bit scratch for the counting-sort emission and
  // the group-completion AND-NOT kernel.  Contract: all words are zero
  // between uses; a consumer scatters bits, records the touched word range
  // in [word_lo, word_hi], and must call clear_words() when done.
  std::vector<std::uint64_t> words;
  std::size_t word_lo = static_cast<std::size_t>(-1);
  std::size_t word_hi = 0;

  // Sorted (ascending) interested subscriber set of the last emission.
  std::vector<SubscriberId> interested;
  // Unicast completion targets (interested \ group).
  std::vector<SubscriberId> unicast;
  // Host nodes for a delivery call.
  std::vector<NodeId> nodes;
  // Per-target modelled latencies of one publish.
  std::vector<double> latencies;

  // Ensure `words` can hold `bits` bits.  New words are zero; existing
  // words are untouched (they are zero by the clear_words contract).
  void require_bits(std::size_t bits) {
    const std::size_t needed = (bits + 63) / 64;
    if (words.size() < needed) words.resize(needed, 0);
  }

  // Zero the touched word range and reset it.  Cheap when nothing was
  // scattered since the last clear.
  void clear_words() {
    if (word_lo <= word_hi && word_hi < words.size()) {
      for (std::size_t w = word_lo; w <= word_hi; ++w) words[w] = 0;
    }
    word_lo = static_cast<std::size_t>(-1);
    word_hi = 0;
  }

  // One arena per thread for free-standing call sites (two-argument
  // match() overloads, batch-pipeline workers).
  static MatchScratch& thread_local_instance() {
    thread_local MatchScratch scratch;
    return scratch;
  }
};

}  // namespace pubsub
