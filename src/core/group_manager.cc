#include "core/group_manager.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace pubsub {

GroupManager::GroupManager(Workload workload, const PublicationModel& pub,
                           const GroupManagerOptions& options)
    : workload_(std::move(workload)), pub_(&pub), options_(options) {
  if (options_.num_groups == 0)
    throw std::invalid_argument("GroupManager: num_groups must be positive");
  init_metrics();
  rebuild(/*warm=*/false, /*allow_budget=*/false);
  publish_churn_gauges();
}

GroupManager::GroupManager(Workload workload, const PublicationModel& pub,
                           const GroupManagerOptions& options,
                           Assignment assignment,
                           std::size_t churn_since_full_build)
    : workload_(std::move(workload)),
      pub_(&pub),
      options_(options),
      churn_since_full_build_(churn_since_full_build) {
  if (options_.num_groups == 0)
    throw std::invalid_argument("GroupManager: num_groups must be positive");
  init_metrics();
  grid_ = std::make_unique<Grid>(workload_, *pub_);
  const std::size_t num_cells = grid_->top_cells(options_.max_cells).size();
  if (assignment.size() != num_cells)
    throw std::invalid_argument(
        "GroupManager: snapshot assignment does not match this workload's "
        "grid (" + std::to_string(assignment.size()) + " labels for " +
        std::to_string(num_cells) + " cells)");
  assignment_ = std::move(assignment);
  make_matcher(num_cells);
  publish_churn_gauges();
}

void GroupManager::init_metrics() {
  MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  c_refreshes_warm_ = m->counter("groups_refresh_warm_total",
                                 "warm (incremental) re-clustering refreshes");
  c_refreshes_cold_ = m->counter("groups_refresh_cold_total",
                                 "cold (full rebuild) refreshes");
  g_pending_churn_ = m->gauge("groups_pending_churn",
                              "churn commands recorded since the last refresh");
  g_churn_since_full_ =
      m->gauge("groups_churn_since_full_build",
               "churn accumulated since the last cold build");
  g_last_churned_ = m->gauge("groups_refresh_last_churned",
                             "churn absorbed by the most recent refresh");
  g_last_iterations_ = m->gauge("groups_refresh_last_iterations",
                                "k-means passes run by the most recent rebuild");
  c_kmeans_passes_ =
      m->counter("kmeans_passes_total", "k-means re-assignment passes executed");
  c_kmeans_cell_visits_ = m->counter(
      "kmeans_cell_visits_total", "per-cell nearest-group evaluations");
  c_kmeans_closure_hits_ =
      m->counter("kmeans_closure_hits_total",
                 "cell decisions served by the candidate closure alone");
  c_kmeans_closure_fallbacks_ =
      m->counter("kmeans_closure_fallbacks_total",
                 "cell decisions that fell back to the exact group scan");
  c_kmeans_oracle_mismatches_ =
      m->counter("kmeans_oracle_mismatches_total",
                 "closure verdicts overruled by the exact scan (oracle mode)");
  g_refresh_incomplete_ =
      m->gauge("groups_refresh_incomplete",
               "1 while the last budgeted refresh has re-balancing left");
  g_clustered_cells_ = m->gauge("groups_clustered_cells",
                                "hyper-cells covered by the live clustering");
  g_table_size_ =
      m->gauge("groups_table_size", "subscription table slots (incl. tombstones)");
}

void GroupManager::publish_churn_gauges() {
  Set(g_pending_churn_, static_cast<double>(pending_churn_));
  Set(g_churn_since_full_, static_cast<double>(churn_since_full_build_));
  Set(g_table_size_, static_cast<double>(workload_.num_subscribers()));
  Set(g_clustered_cells_, static_cast<double>(assignment_.size()));
}

SubscriberId GroupManager::add_subscriber(NodeId node, const Rect& interest) {
  if (interest.dims() != workload_.space.dims())
    throw std::invalid_argument("GroupManager: interest dimensionality mismatch");
  Subscriber s;
  s.node = node;
  s.interest = interest;
  workload_.subscribers.push_back(std::move(s));
  ++pending_churn_;
  publish_churn_gauges();
  return static_cast<SubscriberId>(workload_.subscribers.size() - 1);
}

void GroupManager::update_subscriber(SubscriberId id, const Rect& interest) {
  if (id < 0 || static_cast<std::size_t>(id) >= workload_.num_subscribers())
    throw std::out_of_range("GroupManager: bad subscriber id");
  if (interest.dims() != workload_.space.dims())
    throw std::invalid_argument("GroupManager: interest dimensionality mismatch");
  workload_.subscribers[static_cast<std::size_t>(id)].interest = interest;
  ++pending_churn_;
  publish_churn_gauges();
}

void GroupManager::remove_subscriber(SubscriberId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= workload_.num_subscribers())
    throw std::out_of_range("GroupManager: bad subscriber id");
  // Tombstone: an empty rectangle intersects no cell.
  workload_.subscribers[static_cast<std::size_t>(id)].interest =
      Rect(std::vector<Interval>(workload_.space.dims(), Interval()));
  ++pending_churn_;
  publish_churn_gauges();
}

GroupManager::RefreshStats GroupManager::refresh() {
  RefreshStats stats;
  stats.churned = pending_churn_;
  churn_since_full_build_ += pending_churn_;
  pending_churn_ = 0;

  const bool warm =
      static_cast<double>(churn_since_full_build_) <
      options_.full_rebuild_fraction * static_cast<double>(workload_.num_subscribers());
  stats.full_rebuild = !warm;
  rebuild(warm);
  if (!warm) churn_since_full_build_ = 0;
  stats.iterations = last_iterations_;
  stats.cell_visits = last_cell_visits_;
  stats.budget_exhausted = refresh_incomplete_;

  Inc(warm ? c_refreshes_warm_ : c_refreshes_cold_);
  Set(g_last_churned_, static_cast<double>(stats.churned));
  Set(g_last_iterations_, static_cast<double>(stats.iterations));
  publish_churn_gauges();
  return stats;
}

void GroupManager::rebuild(bool warm, bool allow_budget) {
  auto new_grid = std::make_unique<Grid>(workload_, *pub_);
  const std::vector<ClusterCell> cells = new_grid->top_cells(options_.max_cells);

  KMeansOptions kopt;
  kopt.variant = options_.variant;
  kopt.closure = options_.closure;
  kopt.closure_seed_groups = options_.closure_seed_groups;
  kopt.closure_oracle = options_.closure_oracle;
  std::vector<std::vector<int>> neighbors;
  if (options_.closure) {
    neighbors = new_grid->cluster_neighbors(cells.size());
    kopt.neighbors = &neighbors;
  }
  if (allow_budget && options_.refresh_budget.limited()) {
    kopt.budget = options_.refresh_budget;
    kopt.resumable = true;
  }

  Assignment inherited;
  if (warm && grid_ != nullptr) {
    // Each new hyper-cell inherits the plurality group of its lattice
    // cells under the previous clustering.
    inherited.assign(cells.size(), -1);
    std::vector<int> votes(options_.num_groups);
    for (std::size_t h = 0; h < inherited.size(); ++h) {
      std::fill(votes.begin(), votes.end(), 0);
      int best = -1, best_votes = 0;
      for (const std::int64_t cell : new_grid->hyper_cells()[h].cells) {
        const int old_h = grid_->hyper_cell_of(cell);
        if (old_h < 0 || static_cast<std::size_t>(old_h) >= assignment_.size())
          continue;
        const int g = assignment_[static_cast<std::size_t>(old_h)];
        if (g < 0) continue;
        if (++votes[static_cast<std::size_t>(g)] > best_votes) {
          best_votes = votes[static_cast<std::size_t>(g)];
          best = g;
        }
      }
      inherited[h] = best;
    }
    kopt.warm_start = &inherited;
    // With a refresh budget the budget governs per-call work and the pass
    // sequence runs to its natural fixpoint across resumes; the fixed
    // warm-pass cap applies only to legacy (unbudgeted) refreshes.
    if (!kopt.resumable) kopt.max_iterations = options_.rebalance_passes;
  }

  const KMeansResult result = KMeansCluster(cells, options_.num_groups, kopt);
  last_iterations_ = result.iterations;
  last_cell_visits_ = result.cell_visits;
  refresh_incomplete_ = result.budget_exhausted;
  Inc(c_kmeans_passes_, result.iterations);
  Inc(c_kmeans_cell_visits_, result.cell_visits);
  Inc(c_kmeans_closure_hits_, result.closure_hits);
  Inc(c_kmeans_closure_fallbacks_, result.closure_fallbacks);
  Inc(c_kmeans_oracle_mismatches_, result.oracle_mismatches);
  Set(g_refresh_incomplete_, refresh_incomplete_ ? 1.0 : 0.0);

  grid_ = std::move(new_grid);
  assignment_ = result.assignment;
  make_matcher(cells.size());
}

void GroupManager::make_matcher(std::size_t num_cells) {
  matcher_ = std::make_unique<GridMatcher>(
      *grid_, assignment_,
      static_cast<int>(std::min<std::size_t>(options_.num_groups,
                                             std::max<std::size_t>(num_cells, 1))),
      options_.matcher_threshold, options_.metrics);
}

}  // namespace pubsub
