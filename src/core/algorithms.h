// Uniform registry of the grid-based clustering algorithms, used by the
// benchmark harnesses and examples to sweep "all algorithms" the way the
// paper's figures do.  (No-Loss is not grid-based and has its own driver.)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/cluster_types.h"
#include "util/rng.h"

namespace pubsub {

struct GridAlgorithm {
  std::string name;
  // cells are popularity-ordered; returns a group per cell in [0, K).
  std::function<Assignment(const std::vector<ClusterCell>&, std::size_t K, Rng&)> run;
};

// kmeans, forgy, mst, pairs, approx-pairs — the paper's Figure 7 lineup.
std::vector<GridAlgorithm> StandardGridAlgorithms();

// Subset by name (throws on unknown name).
GridAlgorithm GridAlgorithmByName(const std::string& name);

}  // namespace pubsub
