#include "core/mst_cluster.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "net/union_find.h"

namespace pubsub {
namespace {

void ValidateArgs(const std::vector<ClusterCell>& cells, std::size_t K) {
  if (K == 0) throw std::invalid_argument("MstCluster: K must be positive");
  (void)cells;
}

Assignment ComponentsToLabels(UnionFind& uf) {
  Assignment labels(uf.size());
  std::vector<int> compact(uf.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < uf.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (compact[root] == -1) compact[root] = next++;
    labels[i] = compact[root];
  }
  return labels;
}

}  // namespace

Assignment MstCluster(const std::vector<ClusterCell>& cells, std::size_t K) {
  if (cells.empty()) return {};
  ValidateArgs(cells, K);
  const std::size_t n = cells.size();
  K = std::min(K, n);

  // Prim over the implicit complete graph.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<char> in_tree(n, 0);

  struct TreeEdge {
    std::size_t a, b;
    double d;
  };
  std::vector<TreeEdge> tree;
  tree.reserve(n - 1);

  best[0] = 0.0;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t u = n;
    double u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i)
      if (!in_tree[i] && best[i] < u_cost) {
        u_cost = best[i];
        u = i;
      }
    in_tree[u] = 1;
    if (step > 0) tree.push_back(TreeEdge{best_from[u], u, u_cost});
    for (std::size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const double d = ExpectedWaste(cells[u], cells[i]);
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = u;
      }
    }
  }

  // Keep the n−K shortest tree edges; the K−1 longest are the cuts.
  std::sort(tree.begin(), tree.end(),
            [](const TreeEdge& x, const TreeEdge& y) { return x.d < y.d; });
  UnionFind uf(n);
  for (std::size_t i = 0; i + (K - 1) < tree.size(); ++i)
    uf.unite(tree[i].a, tree[i].b);
  return ComponentsToLabels(uf);
}

Assignment MstClusterKruskal(const std::vector<ClusterCell>& cells, std::size_t K) {
  if (cells.empty()) return {};
  ValidateArgs(cells, K);
  const std::size_t n = cells.size();
  K = std::min(K, n);

  struct PairEdge {
    std::size_t a, b;
    double d;
  };
  std::vector<PairEdge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      edges.push_back(PairEdge{i, j, ExpectedWaste(cells[i], cells[j])});
  std::sort(edges.begin(), edges.end(),
            [](const PairEdge& x, const PairEdge& y) { return x.d < y.d; });

  UnionFind uf(n);
  for (const PairEdge& e : edges) {
    if (uf.num_components() == K) break;
    uf.unite(e.a, e.b);
  }
  return ComponentsToLabels(uf);
}

}  // namespace pubsub
