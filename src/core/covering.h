// Subscription covering/aggregation: N subscribers -> K <= N index entries.
//
// The matcher's cost and footprint should grow with *distinct interest*,
// not with the subscriber population (arXiv 1811.07088): a workload where a
// million subscribers share a few thousand interest rectangles needs a few
// thousand index entries, and a subscription whose rectangle lies inside an
// already-indexed one needs none at all.  The CoveringTable sits between
// the broker's churn path and the backing SlabIndex and enforces exactly
// that:
//
//   * Equal rectangles dedup onto one entry with a subscriber refcount —
//     churn on a known rectangle never touches the backing index.
//   * A new entry whose rectangle is contained in an indexed entry's
//     rectangle becomes a *covered child* of that entry (the coverer with
//     the smallest entry id, a canonical choice independent of lookup
//     order).  Children are never put in the backing index.
//   * Otherwise the entry is indexed, and any indexed entries its rectangle
//     strictly contains are demoted to children.  The indexed set is
//     therefore always exactly the maximal rectangles under containment —
//     a deterministic function of the resident rectangle *set*, which is
//     what makes indexed_count()/covered_subscriber_count() safe to expose
//     as deterministic metrics.
//   * When an indexed entry's last subscriber leaves, its children re-home
//     in ascending entry-id order: each attaches to a remaining coverer or
//     is promoted (with demotion of any siblings it contains).
//
// Matching stays exact because of the two-level invariant — every covered
// child's rectangle is contained in its indexed parent's rectangle.  A
// point stab of the backing index over indexed entries therefore reaches
// every entry that could contain the point; expand() turns one indexed hit
// into subscribers by taking the entry's own riders plus the riders of each
// child whose rectangle point-tests true.  Emission order is canonicalized
// downstream (the broker's counting-sort scatter), so the table's
// history-dependent internals never reach an observable output.
//
// Mutations report the backing-index work as an ordered op list (Delta);
// ops MUST be applied in sequence — one churn call can add and then remove
// the same entry id (promote-then-demote during re-homing), and update()
// can retire an id and re-issue it (LIFO reuse) in a single delta.
//
// Determinism: every tie is broken canonically (min-id coverer, ascending
// re-home, LIFO id reuse, swap-pop rider removal), so the full table state
// is a pure function of the churn-command stream — which is what lets a
// snapshot embed the table verbatim (export_state/import_state) and a
// restored broker continue bit-identically (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/covering_state.h"
#include "geometry/rect.h"
#include "index/rtree.h"
#include "workload/types.h"

namespace pubsub {

// Lexicographic rectangle order for the dedup map (dims, then lo/hi pairs).
struct RectLess {
  bool operator()(const Rect& a, const Rect& b) const;
};

class CoveringTable {
 public:
  using EntryId = int;

  // One backing-index mutation.  `rect` is meaningful for kAdd only.
  struct IndexOp {
    enum Kind { kAdd, kRemove };
    Kind kind;
    EntryId entry;
    Rect rect;
  };
  // Ordered op list — apply strictly in sequence (see header comment).
  using Delta = std::vector<IndexOp>;

  // --- churn ------------------------------------------------------------
  // Register `sub` with interest `rect` (non-empty, finite — the broker
  // clips to the event-space domain first).  Appends backing-index ops to
  // `delta`.  Throws std::invalid_argument on a duplicate subscriber, an
  // empty rectangle, or mixed dimensionality.
  void subscribe(SubscriberId sub, const Rect& rect, Delta& delta);
  // Remove `sub`.  Throws std::out_of_range if unknown (mirrors
  // GroupManager's churn contract).
  void unsubscribe(SubscriberId sub, Delta& delta);
  // Replace `sub`'s interest.  No-op (and no delta) when the rectangle is
  // unchanged; otherwise equivalent to unsubscribe + subscribe.
  void update(SubscriberId sub, const Rect& rect, Delta& delta);

  bool contains(SubscriberId sub) const {
    return sub >= 0 && static_cast<std::size_t>(sub) < entry_of_.size() &&
           entry_of_[static_cast<std::size_t>(sub)] >= 0;
  }
  // The entry `sub` rides (-1 when absent).
  EntryId entry_of(SubscriberId sub) const {
    return contains(sub) ? entry_of_[static_cast<std::size_t>(sub)] : -1;
  }

  // Indexed (rect, entry-id) pairs in ascending id order — the bulk-load
  // image of the backing index.
  std::vector<std::pair<Rect, int>> indexed_entries() const;

  // --- matching ---------------------------------------------------------
  // Expand an indexed-entry stab hit at point `p` into subscriber ids
  // (appended, unsorted): the entry's riders plus the riders of every
  // covered child whose rectangle contains `p`.
  void expand(EntryId e, const Point& p, std::vector<SubscriberId>& out) const;

  // --- stats ------------------------------------------------------------
  std::size_t subscriber_count() const { return sub_count_; }
  // Distinct resident rectangles (K).
  std::size_t entry_count() const { return entry_live_; }
  // Entries resident in the backing index (maximal rectangles).
  std::size_t indexed_count() const { return indexed_.size(); }
  // Subscribers riding a covered (non-indexed) entry.
  std::size_t covered_subscriber_count() const { return covered_subs_; }
  // Upper bound on entry ids ever issued (backing-index universe sizing).
  std::size_t entry_capacity() const { return entries_.size(); }

  // --- snapshot ---------------------------------------------------------
  // Verbatim state for snapshot embedding (see core/covering_state.h).
  using EntryState = CoveringEntryState;
  using State = CoveringState;
  State export_state() const;
  // Replaces the table.  Throws std::invalid_argument on structural
  // corruption (bad ids, a child not contained in its parent, a rider
  // listed twice, free-list/entry disagreement).
  void import_state(const State& state);

  // Structural invariants (two-level topology, containment, refcount
  // consistency, maximality of the indexed set); used by tests.
  bool check_invariants() const;

 private:
  struct Entry {
    Rect rect;  // empty = free slot
    EntryId parent = -1;
    std::vector<SubscriberId> subs;
    std::vector<EntryId> children;
  };

  EntryId alloc_entry(const Rect& rect);
  void free_entry(EntryId e);
  // Decide indexed-vs-covered for a fresh entry and record index ops.
  void place_entry(EntryId e, Delta& delta);
  // Put `e` in the backing index and demote any indexed entries its
  // rectangle now covers.
  void make_indexed(EntryId e, Delta& delta);
  // Move indexed `o` under indexed `parent` (rect(parent) contains
  // rect(o)); o's children re-home to `parent`.
  void demote(EntryId o, EntryId parent, Delta& delta);
  void detach_rider(SubscriberId sub);

  std::vector<Entry> entries_;
  std::vector<EntryId> free_;  // LIFO id reuse
  // rect -> entry dedup; ordered map keeps lookups deterministic without a
  // float-hashing pitfall (-0.0 vs 0.0).
  std::map<Rect, EntryId, RectLess> by_rect_;
  std::vector<EntryId> entry_of_;     // per subscriber, -1 = absent
  std::vector<std::uint32_t> pos_;    // position in its entry's subs list
  std::set<EntryId> indexed_;         // ascending iteration for demote scan
  RTree rtree_;                       // indexed rects, containing() lookup
  std::vector<int> coverers_;         // scratch for containing() results
  std::size_t sub_count_ = 0;
  std::size_t entry_live_ = 0;
  std::size_t covered_subs_ = 0;
  std::size_t ndims_ = 0;  // locked at first resident entry
};

}  // namespace pubsub
