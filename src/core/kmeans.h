// K-Means and Forgy K-Means subscription clustering (§4.2, Figure 1).
//
//   0. Form initial K groups: the K most popular cells seed the groups,
//      every other cell joins the closest seed (expected-waste distance).
//   1. Re-assign each cell to the closest group.
//   2. Repeat until no cell moves (or an iteration cap).
//
// The MacQueen variant (`KMeansVariant::kMacQueen`, the paper's "K-means")
// updates a group's membership vector immediately when a cell moves; the
// Forgy variant recomputes distances against a snapshot of the vectors and
// applies all moves at the end of the pass.  A cell never leaves a group it
// is the last member of, so exactly K non-empty groups are maintained.
//
// The paper highlights that the iteration can be stopped after any pass
// (still yielding a feasible K-partition) and resumed later — which is how
// subscription churn is absorbed (§6 item 5); `max_iterations` exposes
// that, and re-running on an updated cell set re-balances incrementally.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"

namespace pubsub {

enum class KMeansVariant { kMacQueen, kForgy };

struct KMeansOptions {
  KMeansVariant variant = KMeansVariant::kMacQueen;
  std::size_t max_iterations = 100;
  // Optional warm start (non-owning; must outlive the call): a prior
  // assignment of the same cell list, with labels in [0, K) or -1 for
  // "place by nearest group".  This is the §4.2/§6 subscription-churn path:
  // seed with the previous clustering and run a few re-balancing passes
  // instead of re-clustering from scratch.
  const Assignment* warm_start = nullptr;
};

struct KMeansResult {
  Assignment assignment;
  std::size_t iterations = 0;  // full re-assignment passes executed
  bool converged = false;
};

// `cells` must be ordered by decreasing popularity (Grid::top_cells
// provides this); the first K become the seeds.  K is clamped to the cell
// count.
KMeansResult KMeansCluster(const std::vector<ClusterCell>& cells, std::size_t K,
                           const KMeansOptions& options = {});

}  // namespace pubsub
