// K-Means and Forgy K-Means subscription clustering (§4.2, Figure 1).
//
//   0. Form initial K groups: the K most popular cells seed the groups,
//      every other cell joins the closest seed (expected-waste distance).
//   1. Re-assign each cell to the closest group.
//   2. Repeat until no cell moves (or an iteration cap).
//
// The MacQueen variant (`KMeansVariant::kMacQueen`, the paper's "K-means")
// updates a group's membership vector immediately when a cell moves; the
// Forgy variant recomputes distances against a snapshot of the vectors and
// applies all moves at the end of the pass.  A cell never leaves a group it
// is the last member of, so exactly K non-empty groups are maintained.
//
// Two orthogonal accelerations sit on top of the base iteration:
//
// *Cluster closures* (after "Fast Approximate K-Means via Cluster
// Closures", arXiv 1312.3061): instead of scanning all K groups per cell,
// each cell is evaluated only against its candidate closure — the groups
// of its grid-adjacent cells (Grid::cluster_neighbors), its own current
// group, and a few global seed groups.  The exact scan remains as a
// fallback: it runs whenever the closure is empty, overflows the candidate
// buffer, or (MacQueen) the closure's best move fails the incremental
// waste-improvement check.  With `closure_oracle` the exact scan runs on
// every decision and its verdict is used, so the result is bit-identical
// to the exact path while mismatches are counted.
//
// *Budgeted, resumable iteration*: the paper highlights that the iteration
// can be stopped after any pass (still a feasible K-partition) and resumed
// later (§6 item 5).  `KMeansBudget` caps the passes / cell visits of one
// call; with `resumable = true` the group states are rebuilt canonically
// from the assignment at each pass boundary, making every pass a pure
// function of the assignment — so a sequence of budgeted calls (each
// warm-started from the previous result) lands on bit-identically the same
// fixpoint as one unbudgeted call, at any thread count.  Resumable mode
// returns the last pass's state verbatim (no best-of rollback): the caller
// will resume from it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"

namespace pubsub {

enum class KMeansVariant { kMacQueen, kForgy };

// Per-call work cap for budgeted re-clustering.  0 means unlimited.  A
// pass is the atomic unit: `max_passes` bounds passes directly, and
// `max_cell_visits` is a soft cap checked at pass boundaries (at least one
// pass always runs, so a sequence of budgeted calls makes progress).
struct KMeansBudget {
  std::size_t max_passes = 0;
  std::size_t max_cell_visits = 0;

  bool limited() const { return max_passes != 0 || max_cell_visits != 0; }
};

struct KMeansOptions {
  KMeansVariant variant = KMeansVariant::kMacQueen;
  std::size_t max_iterations = 100;
  // Optional warm start (non-owning; must outlive the call): a prior
  // assignment of the same cell list, with labels in [0, K) or -1 for
  // "place by nearest group".  This is the §4.2/§6 subscription-churn path:
  // seed with the previous clustering and run a few re-balancing passes
  // instead of re-clustering from scratch.
  const Assignment* warm_start = nullptr;

  // Closure acceleration.  `neighbors` (non-owning; must outlive the call)
  // is per-cell adjacency over the same cell indices —
  // Grid::cluster_neighbors(cells.size()) in production.  Ignored unless
  // `closure` is set.
  bool closure = false;
  const std::vector<std::vector<int>>* neighbors = nullptr;
  // The first min(closure_seed_groups, K) groups are always candidates —
  // the global fallback that lets a cell escape a bad neighborhood.
  std::size_t closure_seed_groups = 4;
  // Run the exact scan alongside every closure decision, count
  // disagreements (KMeansResult::oracle_mismatches) and use the exact
  // verdict — output becomes bit-identical to the closure-off path.
  bool closure_oracle = false;

  // Budgeted/resumable iteration (see file comment).  `resumable` also
  // disables the best-of-pass rollback so the returned assignment is the
  // literal last-pass state.
  KMeansBudget budget;
  bool resumable = false;
};

struct KMeansResult {
  Assignment assignment;
  std::size_t iterations = 0;  // full re-assignment passes executed
  bool converged = false;
  // True when the call stopped on the budget (or iteration cap) with moves
  // still pending; resume by passing `assignment` back as warm_start.
  bool budget_exhausted = false;

  // Work and closure accounting for this call.
  std::size_t cell_visits = 0;        // per-cell nearest-group evaluations
  std::size_t closure_hits = 0;       // decisions served by the closure alone
  // Decisions the closure verdict did not serve on its own: exact-scan
  // re-decisions (empty/overflowed closure, failed MacQueen improvement
  // check) plus Forgy moves rejected by the apply-time improvement check.
  std::size_t closure_fallbacks = 0;
  std::size_t oracle_mismatches = 0;  // closure verdict != exact (oracle mode)
};

// `cells` must be ordered by decreasing popularity (Grid::top_cells
// provides this); the first K become the seeds.  K is clamped to the cell
// count.
KMeansResult KMeansCluster(const std::vector<ClusterCell>& cells, std::size_t K,
                           const KMeansOptions& options = {});

}  // namespace pubsub
