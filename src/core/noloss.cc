#include "core/noloss.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_set>

#include "index/rtree.h"

namespace pubsub {
namespace {

// Structural hash of a rectangle's bounds (exact double bit patterns —
// intersections of identical parents produce identical doubles, which is
// all the dedup needs).
std::uint64_t RectKey(const Rect& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](double x) {
    h ^= std::bit_cast<std::uint64_t>(x);
    h *= 1099511628211ull;
  };
  for (const Interval& iv : r.intervals()) {
    mix(iv.lo());
    mix(iv.hi());
  }
  return h;
}

}  // namespace

NoLossResult NoLossCluster(const Workload& wl, const PublicationModel& pub,
                           const NoLossOptions& options) {
  NoLossResult result;
  if (wl.subscribers.empty()) return result;

  const Rect domain = wl.space.domain_rect();

  // Index the (domain-clipped) subscription rectangles for containment
  // queries; remember each subscriber's clipped rectangle.
  std::vector<Rect> clipped;
  clipped.reserve(wl.subscribers.size());
  std::vector<std::pair<Rect, int>> items;
  items.reserve(wl.subscribers.size());
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    Rect r = wl.subscribers[i].interest.intersection(domain);
    if (!r.empty()) items.emplace_back(r, static_cast<int>(i));
    clipped.push_back(std::move(r));
  }
  const RTree subs = RTree::BulkLoad(std::move(items));

  std::unordered_set<std::uint64_t> seen;
  std::vector<int> query_scratch;

  // Evaluate a candidate area: u(s) via containment query, w(s) weight.
  auto evaluate = [&](Rect r) -> NoLossGroup {
    NoLossGroup g;
    query_scratch.clear();
    subs.containing(r, query_scratch);
    g.subscribers = BitVector(wl.num_subscribers());
    for (const int id : query_scratch) g.subscribers.set(static_cast<std::size_t>(id));
    g.mass = pub.rect_mass(r);
    g.weight = g.mass * static_cast<double>(query_scratch.size());
    g.rect = std::move(r);
    return g;
  };

  // Seed pool: the distinct subscription rectangles.
  std::vector<NoLossGroup> pool;
  for (const Rect& r : clipped) {
    if (r.empty()) continue;
    if (!seen.insert(RectKey(r)).second) continue;
    pool.push_back(evaluate(r));
  }

  auto by_weight_desc = [](const NoLossGroup& a, const NoLossGroup& b) {
    return a.weight > b.weight;
  };
  auto sort_and_trim = [&] {
    std::sort(pool.begin(), pool.end(), by_weight_desc);
    if (pool.size() > options.max_rectangles) {
      // Dropped candidates may be rediscovered in later rounds: forget
      // their keys so the dedup set doesn't block re-evaluation.
      for (std::size_t i = options.max_rectangles; i < pool.size(); ++i)
        seen.erase(RectKey(pool[i].rect));
      pool.resize(options.max_rectangles);
    }
  };
  sort_and_trim();

  for (std::size_t round = 0; round < options.iterations; ++round) {
    // Seed the round's intersections from two rankings: the heaviest areas
    // (the pool is weight-sorted) and the *densest* areas (most containing
    // subscribers).  Weight alone favors wide rectangles that few
    // subscribers fully contain; chasing membership as well lets repeated
    // intersection discover the small hot-spot areas whose u(s) approaches
    // the full interested set — the groups that actually save unicasts.
    const std::size_t half = std::min(options.intersect_top / 2, pool.size());
    std::vector<const NoLossGroup*> seeds;
    seeds.reserve(options.intersect_top);
    for (std::size_t i = 0; i < half; ++i) seeds.push_back(&pool[i]);
    std::vector<const NoLossGroup*> by_members;
    by_members.reserve(pool.size());
    for (const NoLossGroup& g : pool) by_members.push_back(&g);
    std::nth_element(by_members.begin(),
                     by_members.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(half, by_members.size())),
                     by_members.end(),
                     [](const NoLossGroup* a, const NoLossGroup* b) {
                       return a->subscribers.count() > b->subscribers.count();
                     });
    for (std::size_t i = 0; i < std::min(half, by_members.size()); ++i)
      seeds.push_back(by_members[i]);

    std::vector<NoLossGroup> fresh;
    auto consider = [&](const Rect& a, const Rect& b) {
      Rect r = a.intersection(b);
      if (r.empty()) return;
      if (!seen.insert(RectKey(r)).second) return;
      NoLossGroup g = evaluate(std::move(r));
      if (g.weight > 0.0) fresh.push_back(std::move(g));
    };

    // Seeds pairwise…
    for (std::size_t i = 0; i < seeds.size(); ++i)
      for (std::size_t j = i + 1; j < seeds.size(); ++j)
        consider(seeds[i]->rect, seeds[j]->rect);
    // …and against every original subscription.
    for (std::size_t i = 0; i < seeds.size(); ++i)
      for (const Rect& r : clipped)
        if (!r.empty()) consider(seeds[i]->rect, r);

    if (fresh.empty()) break;
    pool.insert(pool.end(), std::make_move_iterator(fresh.begin()),
                std::make_move_iterator(fresh.end()));
    sort_and_trim();
  }

  result.groups = std::move(pool);
  return result;
}

}  // namespace pubsub
