// Event→group matching (§4.6, Figures 5 and 6).
//
// Once the static clustering stage has produced multicast groups, every
// published event must be matched in real time:
//
//   * Grid-based (Fig. 5): locate the event's grid cell; if the cell's
//     hyper-cell was clustered, the associated group is a candidate.  The
//     message is multicast to the group when the interested fraction of
//     the group's members clears a threshold, otherwise (and for unmatched
//     cells) it is unicast to exactly the interested subscribers.
//
//   * No-Loss (Fig. 6): stab the group-rectangle index with the event; of
//     the areas containing it pick the one with the greatest weight,
//     multicast to u(s), and unicast to interested subscribers outside
//     u(s).  By construction no group member is uninterested.
//
// Matchers decide *who* gets the message and *how*; delivery cost is
// computed by sim/delivery.h from the decision.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/cluster_types.h"
#include "core/grid.h"
#include "core/match_scratch.h"
#include "core/noloss.h"
#include "index/rtree.h"
#include "obs/metrics.h"
#include "workload/types.h"

namespace pubsub {

// Outcome of matching one event.  Zero-copy: both spans alias storage owned
// elsewhere (DESIGN.md §10).
struct MatchDecision {
  // Multicast group used, or -1 for pure unicast delivery.
  int group_id = -1;
  // Members of that group (empty when group_id == -1).  Points into the
  // matcher; valid until the matcher is destroyed.
  std::span<const SubscriberId> group_members;
  // Subscribers served by individual unicast messages.  Aliases either the
  // caller's `interested` span (pure-unicast fallback) or the scratch the
  // match ran against; valid until that scratch's next match() (the
  // two-argument overloads use the calling thread's scratch).
  std::span<const SubscriberId> unicast_targets;
};

// Matching for the grid-based algorithms (Fig. 5).
class GridMatcher {
 public:
  // `assignment` maps the first assignment.size() hyper-cells of `grid`
  // (its popularity order) to groups 0..num_groups-1; hyper-cells beyond it
  // were not clustered and fall back to unicast.
  //
  // `min_interest_fraction` is the Fig. 5 threshold: multicast only when
  // |interested ∩ group| / |group| >= threshold.  0 reproduces the paper's
  // base behaviour (always multicast when a group is matched).
  //
  // With `metrics`, every match() updates the matcher_* counter family
  // (cells probed, hyper-cell hits, group candidates vs. confirmed
  // multicasts).  The sharded counters tolerate concurrent match() calls
  // from the batch-matching parallel path.
  GridMatcher(const Grid& grid, const Assignment& assignment, int num_groups,
              double min_interest_fraction = 0.0,
              MetricsRegistry* metrics = nullptr);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  std::span<const SubscriberId> group_members(int g) const { return groups_[static_cast<std::size_t>(g)]; }
  // Word-packed membership of group g (over the grid's subscriber
  // population at build time); the broker's completion kernel runs AND-NOT
  // set difference against these words.
  const BitVector& group_bits(int g) const { return group_bits_[static_cast<std::size_t>(g)]; }

  // `interested` must be the exact interested-subscriber set for `p`
  // (from the subscription index).  The grid matcher needs no scratch
  // storage — its unicast fallback aliases `interested` — so both
  // overloads are allocation-free; the scratch one exists for call-site
  // symmetry with NoLossMatcher.
  MatchDecision match(const Point& p, std::span<const SubscriberId> interested) const;
  MatchDecision match(const Point& p, std::span<const SubscriberId> interested,
                      MatchScratch& scratch) const {
    (void)scratch;
    return match(p, interested);
  }

 private:
  const Grid* grid_;
  std::vector<int> group_of_hyper_;  // -1 = unclustered
  std::vector<std::vector<SubscriberId>> groups_;
  std::vector<BitVector> group_bits_;
  double min_interest_fraction_;
  // Telemetry (all nullable; see obs/metrics.h).
  Counter* c_lookups_ = nullptr;
  Counter* c_cells_probed_ = nullptr;
  Counter* c_hyper_hits_ = nullptr;
  Counter* c_candidates_ = nullptr;
  Counter* c_confirmed_ = nullptr;
};

// Matching for the No-Loss algorithm (Fig. 6).
//
// The paper ranks areas — both for choosing the K groups and for picking
// among the areas containing an event — by the weight w(s) = p_p(s)·|u(s)|.
// Pure weight ranking favors wide areas that few subscribers fully
// contain, which saves almost no unicasts; the defaults here therefore
// rank group *selection* by expected savings p_p(s)·(|u(s)|−1) and pick
// the containing area with the most members.  The paper-literal behaviour
// is available through the options (bench_ablation compares them).
struct NoLossMatcherOptions {
  enum class Selection { kSavings, kWeight };
  enum class Pick { kMembers, kWeight };
  Selection selection = Selection::kSavings;
  Pick pick = Pick::kMembers;
};

class NoLossMatcher {
 public:
  // Uses the `num_groups` best areas of `result` under the selection rule.
  NoLossMatcher(const NoLossResult& result, std::size_t num_groups,
                NoLossMatcherOptions options = {},
                MetricsRegistry* metrics = nullptr);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  std::span<const SubscriberId> group_members(int g) const { return members_[static_cast<std::size_t>(g)]; }

  // The two-argument overload matches against the calling thread's scratch
  // (see MatchScratch::thread_local_instance); the three-argument one uses
  // the caller's.  Unicast completion preserves the order of `interested`.
  MatchDecision match(const Point& p, std::span<const SubscriberId> interested) const;
  MatchDecision match(const Point& p, std::span<const SubscriberId> interested,
                      MatchScratch& scratch) const;

  // True iff no group contains an uninterested subscriber for any event in
  // its rectangle (trivially true by construction; exposed for tests).
  const NoLossGroup& group(int g) const { return groups_[static_cast<std::size_t>(g)]; }

 private:
  std::vector<NoLossGroup> groups_;
  std::vector<std::vector<SubscriberId>> members_;
  RTree rect_index_;
  NoLossMatcherOptions options_;
  Counter* c_lookups_ = nullptr;
  Counter* c_areas_hit_ = nullptr;
  Counter* c_confirmed_ = nullptr;
};

}  // namespace pubsub
