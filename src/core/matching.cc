#include "core/matching.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

GridMatcher::GridMatcher(const Grid& grid, const Assignment& assignment,
                         int num_groups, double min_interest_fraction,
                         MetricsRegistry* metrics)
    : grid_(&grid), min_interest_fraction_(min_interest_fraction) {
  if (metrics != nullptr) {
    c_lookups_ = metrics->counter("matcher_lookups_total",
                                  "match() calls against the grid matcher");
    c_cells_probed_ = metrics->counter(
        "matcher_cells_probed_total", "grid cells located for event lookups");
    c_hyper_hits_ = metrics->counter(
        "matcher_hyper_cell_hits_total",
        "lookups whose cell belongs to a clustered hyper-cell");
    c_candidates_ = metrics->counter(
        "matcher_group_candidates_total",
        "lookups that produced a candidate multicast group");
    c_confirmed_ = metrics->counter(
        "matcher_group_confirmed_total",
        "candidates that cleared the interest threshold (multicast chosen)");
  }
  if (assignment.size() > grid.hyper_cells().size())
    throw std::invalid_argument("GridMatcher: assignment larger than hyper-cell set");
  if (num_groups < 0) throw std::invalid_argument("GridMatcher: negative group count");

  group_of_hyper_.assign(grid.hyper_cells().size(), -1);
  group_bits_.assign(static_cast<std::size_t>(num_groups),
                     BitVector(grid.num_subscribers()));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int g = assignment[i];
    if (g < 0) continue;
    if (g >= num_groups) throw std::invalid_argument("GridMatcher: group out of range");
    group_of_hyper_[i] = g;
    group_bits_[static_cast<std::size_t>(g)] |= grid.hyper_cells()[i].members;
  }

  groups_.resize(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    auto& members = groups_[static_cast<std::size_t>(g)];
    const BitVector& bits = group_bits_[static_cast<std::size_t>(g)];
    members.reserve(bits.count());
    bits.for_each_set([&members](std::size_t i) {
      members.push_back(static_cast<SubscriberId>(i));
    });
  }
}

MatchDecision GridMatcher::match(const Point& p,
                                 std::span<const SubscriberId> interested) const {
  MatchDecision d;
  Inc(c_lookups_);
  Inc(c_cells_probed_);
  const std::int64_t cell = grid_->cell_of(p);
  const int hyper = grid_->hyper_cell_of(cell);
  const int g = hyper >= 0 ? group_of_hyper_[static_cast<std::size_t>(hyper)] : -1;
  if (hyper >= 0) Inc(c_hyper_hits_);

  if (g >= 0) {
    Inc(c_candidates_);
    const auto& members = groups_[static_cast<std::size_t>(g)];
    // Every interested subscriber intersects the event's cell, hence is in
    // the matched group; the fraction decides multicast vs unicast.
    const double fraction =
        members.empty() ? 0.0
                        : static_cast<double>(interested.size()) /
                              static_cast<double>(members.size());
    if (!members.empty() && fraction >= min_interest_fraction_) {
      Inc(c_confirmed_);
      d.group_id = g;
      d.group_members = members;
      return d;
    }
  }
  // Pure-unicast fallback: alias the caller's interested set (every
  // interested subscriber is a unicast target — no copy needed).
  d.unicast_targets = interested;
  return d;
}

NoLossMatcher::NoLossMatcher(const NoLossResult& result, std::size_t num_groups,
                             NoLossMatcherOptions options,
                             MetricsRegistry* metrics)
    : options_(options) {
  if (metrics != nullptr) {
    c_lookups_ = metrics->counter("noloss_lookups_total",
                                  "match() calls against the no-loss matcher");
    c_areas_hit_ = metrics->counter(
        "noloss_areas_hit_total", "group rectangles stabbed by event lookups");
    c_confirmed_ = metrics->counter("noloss_group_confirmed_total",
                                    "lookups that chose a multicast group");
  }
  const std::size_t n = std::min(num_groups, result.groups.size());
  // Rank the pool under the selection rule instead of trusting the caller's
  // ordering: NoLossCluster emits a weight-sorted pool, but hand-built or
  // deserialized pools need not be sorted, and kWeight used to truncate
  // such pools to an arbitrary prefix.  The stable sort is a no-op on
  // already-sorted input, so NoLossCluster-fed matchers are unchanged.
  const bool by_weight =
      options_.selection == NoLossMatcherOptions::Selection::kWeight;
  std::vector<const NoLossGroup*> ranked;
  ranked.reserve(result.groups.size());
  for (const NoLossGroup& g : result.groups) ranked.push_back(&g);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [by_weight](const NoLossGroup* a, const NoLossGroup* b) {
                     return by_weight ? a->weight > b->weight
                                      : a->savings() > b->savings();
                   });
  groups_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) groups_.push_back(*ranked[i]);

  std::vector<std::pair<Rect, int>> items;
  items.reserve(n);
  members_.resize(n);
  for (std::size_t g = 0; g < n; ++g) {
    items.emplace_back(groups_[g].rect, static_cast<int>(g));
    groups_[g].subscribers.for_each_set([this, g](std::size_t i) {
      members_[g].push_back(static_cast<SubscriberId>(i));
    });
  }
  rect_index_ = RTree::BulkLoad(std::move(items));
}

MatchDecision NoLossMatcher::match(const Point& p,
                                   std::span<const SubscriberId> interested) const {
  return match(p, interested, MatchScratch::thread_local_instance());
}

MatchDecision NoLossMatcher::match(const Point& p,
                                   std::span<const SubscriberId> interested,
                                   MatchScratch& scratch) const {
  MatchDecision d;
  Inc(c_lookups_);

  std::vector<int>& hits = scratch.stab_hits;
  hits.clear();
  rect_index_.stab(p, hits, scratch.index_stack);
  Inc(c_areas_hit_, hits.size());
  int best = -1;
  const bool by_members = options_.pick == NoLossMatcherOptions::Pick::kMembers;
  for (const int g : hits) {
    if (best == -1) {
      best = g;
      continue;
    }
    // |u(s)| is the size of the extracted member list — O(1), instead of a
    // popcount over the membership words on every comparison.
    const bool better =
        by_members ? members_[static_cast<std::size_t>(g)].size() >
                         members_[static_cast<std::size_t>(best)].size()
                   : groups_[static_cast<std::size_t>(g)].weight >
                         groups_[static_cast<std::size_t>(best)].weight;
    if (better) best = g;
  }

  if (best == -1) {
    d.unicast_targets = interested;
    return d;
  }

  const NoLossGroup& grp = groups_[static_cast<std::size_t>(best)];
  Inc(c_confirmed_);
  d.group_id = best;
  d.group_members = members_[static_cast<std::size_t>(best)];
  // Interested subscribers outside u(s) still get unicasts (Fig. 6).  The
  // per-id bit test preserves the caller's `interested` order exactly
  // (callers may pass index-order sets whose iteration order is pinned).
  scratch.unicast.clear();
  for (const SubscriberId s : interested)
    if (!grp.subscribers.test(static_cast<std::size_t>(s)))
      scratch.unicast.push_back(s);
  d.unicast_targets = scratch.unicast;
  return d;
}

}  // namespace pubsub
