#include "core/covering.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

bool RectLess::operator()(const Rect& a, const Rect& b) const {
  if (a.dims() != b.dims()) return a.dims() < b.dims();
  for (std::size_t d = 0; d < a.dims(); ++d) {
    if (a[d].lo() != b[d].lo()) return a[d].lo() < b[d].lo();
    if (a[d].hi() != b[d].hi()) return a[d].hi() < b[d].hi();
  }
  return false;
}

void CoveringTable::subscribe(SubscriberId sub, const Rect& rect,
                              Delta& delta) {
  if (sub < 0)
    throw std::invalid_argument("CoveringTable: negative subscriber id");
  if (contains(sub))
    throw std::invalid_argument("CoveringTable: duplicate subscriber");
  if (rect.dims() == 0 || rect.empty())
    throw std::invalid_argument("CoveringTable: empty interest rectangle");

  EntryId e;
  const auto it = by_rect_.find(rect);
  if (it != by_rect_.end()) {
    e = it->second;  // equal-rect dedup: pure refcount churn
  } else {
    e = alloc_entry(rect);
    by_rect_.emplace(rect, e);
    place_entry(e, delta);
  }
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  if (entry_of_.size() <= static_cast<std::size_t>(sub)) {
    entry_of_.resize(static_cast<std::size_t>(sub) + 1, -1);
    pos_.resize(static_cast<std::size_t>(sub) + 1, 0);
  }
  entry_of_[static_cast<std::size_t>(sub)] = e;
  pos_[static_cast<std::size_t>(sub)] =
      static_cast<std::uint32_t>(entry.subs.size());
  entry.subs.push_back(sub);
  ++sub_count_;
  if (entry.parent >= 0) ++covered_subs_;
}

void CoveringTable::unsubscribe(SubscriberId sub, Delta& delta) {
  if (!contains(sub))
    throw std::out_of_range("CoveringTable: unknown subscriber");
  const EntryId e = entry_of_[static_cast<std::size_t>(sub)];
  detach_rider(sub);
  --sub_count_;
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  if (entry.parent >= 0) --covered_subs_;
  if (!entry.subs.empty()) return;  // entry still ridden

  by_rect_.erase(entry.rect);
  if (entry.parent >= 0) {
    // Covered child: unlink from the parent (swap-pop, order is internal).
    auto& kids = entries_[static_cast<std::size_t>(entry.parent)].children;
    const auto pos = std::find(kids.begin(), kids.end(), e);
    *pos = kids.back();
    kids.pop_back();
    free_entry(e);
    return;
  }

  // Indexed entry dies: drop it from the backing index, then re-home its
  // children in ascending id order — each attaches to the smallest-id
  // remaining coverer or is promoted (demoting any siblings it covers).
  indexed_.erase(e);
  rtree_.erase(entry.rect, e);
  delta.push_back({IndexOp::kRemove, e, Rect()});
  std::vector<EntryId> kids = std::move(entry.children);
  entry.children.clear();
  std::sort(kids.begin(), kids.end());
  for (const EntryId c : kids) {
    Entry& child = entries_[static_cast<std::size_t>(c)];
    coverers_.clear();
    rtree_.containing(child.rect, coverers_);
    EntryId best = -1;
    for (const int id : coverers_)
      if (best < 0 || id < best) best = id;
    if (best >= 0) {
      child.parent = best;
      entries_[static_cast<std::size_t>(best)].children.push_back(c);
    } else {
      covered_subs_ -= child.subs.size();
      make_indexed(c, delta);
    }
  }
  free_entry(e);
}

void CoveringTable::update(SubscriberId sub, const Rect& rect, Delta& delta) {
  if (!contains(sub))
    throw std::out_of_range("CoveringTable: unknown subscriber");
  if (entries_[static_cast<std::size_t>(entry_of_[static_cast<std::size_t>(
          sub)])].rect == rect)
    return;  // unchanged interest: no churn
  unsubscribe(sub, delta);
  subscribe(sub, rect, delta);
}

void CoveringTable::expand(EntryId e, const Point& p,
                           std::vector<SubscriberId>& out) const {
  const Entry& entry = entries_[static_cast<std::size_t>(e)];
  out.insert(out.end(), entry.subs.begin(), entry.subs.end());
  for (const EntryId c : entry.children) {
    const Entry& child = entries_[static_cast<std::size_t>(c)];
    if (!child.rect.contains(p)) continue;
    out.insert(out.end(), child.subs.begin(), child.subs.end());
  }
}

CoveringTable::EntryId CoveringTable::alloc_entry(const Rect& rect) {
  if (ndims_ == 0)
    ndims_ = rect.dims();
  else if (rect.dims() != ndims_)
    throw std::invalid_argument("CoveringTable: mixed dimensionality");
  EntryId e;
  if (!free_.empty()) {
    e = free_.back();
    free_.pop_back();
  } else {
    e = static_cast<EntryId>(entries_.size());
    entries_.emplace_back();
  }
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  entry.rect = rect;
  entry.parent = -1;
  ++entry_live_;
  return e;
}

void CoveringTable::free_entry(EntryId e) {
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  entry.rect = Rect();
  entry.parent = -1;
  entry.subs.clear();
  entry.children.clear();
  free_.push_back(e);
  --entry_live_;
  if (entry_live_ == 0) ndims_ = 0;  // an emptied table may adopt new dims
}

void CoveringTable::place_entry(EntryId e, Delta& delta) {
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  coverers_.clear();
  rtree_.containing(entry.rect, coverers_);
  EntryId best = -1;  // min-id canonical coverer, independent of tree order
  for (const int id : coverers_)
    if (best < 0 || id < best) best = id;
  if (best >= 0) {
    entry.parent = best;
    entries_[static_cast<std::size_t>(best)].children.push_back(e);
  } else {
    make_indexed(e, delta);
  }
}

void CoveringTable::make_indexed(EntryId e, Delta& delta) {
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  entry.parent = -1;
  indexed_.insert(e);
  rtree_.insert(entry.rect, e);
  delta.push_back({IndexOp::kAdd, e, entry.rect});
  // Demote every indexed entry the new rectangle covers — keeps the
  // indexed set exactly the maximal rectangles under containment.
  std::vector<int> overlap;
  rtree_.intersecting(entry.rect, overlap);
  std::sort(overlap.begin(), overlap.end());
  for (const int o : overlap) {
    if (o == e) continue;
    if (entry.rect.contains(entries_[static_cast<std::size_t>(o)].rect))
      demote(o, e, delta);
  }
}

void CoveringTable::demote(EntryId o, EntryId parent, Delta& delta) {
  Entry& od = entries_[static_cast<std::size_t>(o)];
  Entry& pd = entries_[static_cast<std::size_t>(parent)];
  indexed_.erase(o);
  rtree_.erase(od.rect, o);
  delta.push_back({IndexOp::kRemove, o, Rect()});
  od.parent = parent;
  pd.children.push_back(o);
  covered_subs_ += od.subs.size();
  // Two-level invariant: o's children re-home to the new parent (their
  // rects are contained in o's, hence in the parent's).
  for (const EntryId c : od.children) {
    entries_[static_cast<std::size_t>(c)].parent = parent;
    pd.children.push_back(c);
  }
  od.children.clear();
}

void CoveringTable::detach_rider(SubscriberId sub) {
  const EntryId e = entry_of_[static_cast<std::size_t>(sub)];
  Entry& entry = entries_[static_cast<std::size_t>(e)];
  const std::uint32_t p = pos_[static_cast<std::size_t>(sub)];
  const SubscriberId moved = entry.subs.back();
  entry.subs[p] = moved;
  pos_[static_cast<std::size_t>(moved)] = p;
  entry.subs.pop_back();
  entry_of_[static_cast<std::size_t>(sub)] = -1;
}

std::vector<std::pair<Rect, int>> CoveringTable::indexed_entries() const {
  std::vector<std::pair<Rect, int>> out;
  out.reserve(indexed_.size());
  for (const EntryId e : indexed_)  // std::set iterates ascending
    out.emplace_back(entries_[static_cast<std::size_t>(e)].rect, e);
  return out;
}

CoveringTable::State CoveringTable::export_state() const {
  State st;
  st.entries.reserve(entry_live_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.rect.dims() == 0) continue;  // free slot
    EntryState es;
    es.id = static_cast<EntryId>(i);
    es.rect = entry.rect;
    es.parent = entry.parent;
    es.subs = entry.subs;
    es.children = entry.children;
    st.entries.push_back(std::move(es));
  }
  st.free_list = free_;
  return st;
}

void CoveringTable::import_state(const State& state) {
  entries_.clear();
  free_.clear();
  by_rect_.clear();
  entry_of_.clear();
  pos_.clear();
  indexed_.clear();
  rtree_ = RTree();
  sub_count_ = 0;
  entry_live_ = 0;
  covered_subs_ = 0;
  ndims_ = 0;

  std::size_t cap = 0;
  for (const EntryState& es : state.entries) {
    if (es.id < 0)
      throw std::invalid_argument("CoveringTable: negative entry id");
    cap = std::max(cap, static_cast<std::size_t>(es.id) + 1);
  }
  for (const EntryId f : state.free_list) {
    if (f < 0)
      throw std::invalid_argument("CoveringTable: negative free-list id");
    cap = std::max(cap, static_cast<std::size_t>(f) + 1);
  }
  entries_.resize(cap);
  std::vector<char> used(cap, 0);  // 0 unaccounted, 1 free, 2 live
  for (const EntryState& es : state.entries) {
    if (used[static_cast<std::size_t>(es.id)] != 0)
      throw std::invalid_argument("CoveringTable: duplicate entry id");
    used[static_cast<std::size_t>(es.id)] = 2;
  }
  for (const EntryId f : state.free_list) {
    if (used[static_cast<std::size_t>(f)] != 0)
      throw std::invalid_argument("CoveringTable: free-list/entry conflict");
    used[static_cast<std::size_t>(f)] = 1;
  }
  for (std::size_t i = 0; i < cap; ++i)
    if (used[i] == 0)
      throw std::invalid_argument("CoveringTable: unaccounted entry slot");
  free_ = state.free_list;

  for (const EntryState& es : state.entries) {
    if (es.rect.dims() == 0 || es.rect.empty())
      throw std::invalid_argument("CoveringTable: empty entry rectangle");
    if (ndims_ == 0)
      ndims_ = es.rect.dims();
    else if (es.rect.dims() != ndims_)
      throw std::invalid_argument("CoveringTable: mixed dimensionality");
    Entry& entry = entries_[static_cast<std::size_t>(es.id)];
    entry.rect = es.rect;
    entry.parent = es.parent;
    entry.subs = es.subs;
    entry.children = es.children;
    if (!by_rect_.emplace(es.rect, es.id).second)
      throw std::invalid_argument("CoveringTable: duplicate entry rectangle");
    ++entry_live_;
  }

  for (const EntryState& es : state.entries) {
    Entry& entry = entries_[static_cast<std::size_t>(es.id)];
    if (entry.parent >= 0) {
      if (static_cast<std::size_t>(entry.parent) >= cap ||
          used[static_cast<std::size_t>(entry.parent)] != 2)
        throw std::invalid_argument("CoveringTable: bad parent id");
      const Entry& par = entries_[static_cast<std::size_t>(entry.parent)];
      if (par.parent >= 0)
        throw std::invalid_argument(
            "CoveringTable: covered parent (two-level violation)");
      if (!par.rect.contains(entry.rect))
        throw std::invalid_argument(
            "CoveringTable: child not contained in parent");
      if (!entry.children.empty())
        throw std::invalid_argument("CoveringTable: covered entry has children");
      covered_subs_ += entry.subs.size();
    } else {
      indexed_.insert(es.id);
      rtree_.insert(entry.rect, es.id);
    }
    if (entry.subs.empty())
      throw std::invalid_argument("CoveringTable: entry without riders");
    for (std::size_t k = 0; k < entry.subs.size(); ++k) {
      const SubscriberId sub = entry.subs[k];
      if (sub < 0)
        throw std::invalid_argument("CoveringTable: negative subscriber id");
      if (static_cast<std::size_t>(sub) >= entry_of_.size()) {
        entry_of_.resize(static_cast<std::size_t>(sub) + 1, -1);
        pos_.resize(static_cast<std::size_t>(sub) + 1, 0);
      }
      if (entry_of_[static_cast<std::size_t>(sub)] >= 0)
        throw std::invalid_argument("CoveringTable: subscriber listed twice");
      entry_of_[static_cast<std::size_t>(sub)] = es.id;
      pos_[static_cast<std::size_t>(sub)] = static_cast<std::uint32_t>(k);
      ++sub_count_;
    }
  }

  // Children cross-check: every child is listed exactly once, under the
  // entry it names as parent, and every covered entry is listed.
  std::vector<char> child_seen(cap, 0);
  for (const EntryState& es : state.entries) {
    for (const EntryId c : entries_[static_cast<std::size_t>(es.id)].children) {
      if (c < 0 || static_cast<std::size_t>(c) >= cap ||
          used[static_cast<std::size_t>(c)] != 2)
        throw std::invalid_argument("CoveringTable: bad child id");
      if (entries_[static_cast<std::size_t>(c)].parent != es.id)
        throw std::invalid_argument("CoveringTable: child/parent mismatch");
      if (child_seen[static_cast<std::size_t>(c)])
        throw std::invalid_argument("CoveringTable: child listed twice");
      child_seen[static_cast<std::size_t>(c)] = 1;
    }
  }
  for (const EntryState& es : state.entries)
    if (entries_[static_cast<std::size_t>(es.id)].parent >= 0 &&
        !child_seen[static_cast<std::size_t>(es.id)])
      throw std::invalid_argument(
          "CoveringTable: covered entry missing from parent's children");
}

bool CoveringTable::check_invariants() const {
  std::size_t subs = 0;
  std::size_t covered = 0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.rect.dims() == 0) {  // free slot must be fully cleared
      if (!entry.subs.empty() || !entry.children.empty()) return false;
      continue;
    }
    ++live;
    if (entry.subs.empty()) return false;
    subs += entry.subs.size();
    const EntryId id = static_cast<EntryId>(i);
    if (entry.parent >= 0) {
      covered += entry.subs.size();
      const Entry& par = entries_[static_cast<std::size_t>(entry.parent)];
      if (par.parent >= 0) return false;
      if (!par.rect.contains(entry.rect)) return false;
      if (!entry.children.empty()) return false;
      if (indexed_.count(id) != 0) return false;
    } else if (indexed_.count(id) == 0) {
      return false;
    }
    for (const SubscriberId s : entry.subs) {
      if (!contains(s) || entry_of_[static_cast<std::size_t>(s)] != id)
        return false;
      if (entry.subs[pos_[static_cast<std::size_t>(s)]] != s) return false;
    }
  }
  if (live != entry_live_ || subs != sub_count_ || covered != covered_subs_)
    return false;
  if (live + free_.size() != entries_.size()) return false;
  if (indexed_.size() != rtree_.size()) return false;
  // Maximality: no indexed entry's rectangle contains another's.
  for (const EntryId a : indexed_)
    for (const EntryId b : indexed_)
      if (a != b && entries_[static_cast<std::size_t>(b)].rect.contains(
                        entries_[static_cast<std::size_t>(a)].rect))
        return false;
  return true;
}

}  // namespace pubsub
