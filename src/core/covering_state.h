// Plain serializable image of a CoveringTable (core/covering.h).
//
// Split from the table itself so broker/types.h and io/serialize can embed
// a covering image in BrokerSnapshot without depending on the table's
// machinery (R-tree, dedup map).  The image is verbatim internal state:
// entries in ascending id order with rider/child lists in *internal* order
// plus the LIFO free list — importing it reproduces the exact table, so a
// restored broker's future behavior (including future exports) is
// bit-identical to the original's.
#pragma once

#include <vector>

#include "geometry/rect.h"
#include "workload/types.h"

namespace pubsub {

struct CoveringEntryState {
  int id = -1;
  Rect rect;
  int parent = -1;  // -1 = indexed (resident in the backing index)
  std::vector<SubscriberId> subs;
  std::vector<int> children;
};

struct CoveringState {
  std::vector<CoveringEntryState> entries;  // ascending id
  std::vector<int> free_list;               // LIFO (back = next id issued)
};

}  // namespace pubsub
