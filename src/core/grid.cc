#include "core/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.h"

namespace pubsub {
namespace {

// Safety valve: the unit-lattice grid is materialized, so refuse absurd
// spaces (the paper's spaces are ~3·10^4 cells).
constexpr std::int64_t kMaxLatticeCells = 8'000'000;

// Per-shard lattice copies for the parallel rasterization pass cost
// sizeof(BitVector) per cell per shard; above this lattice size fall back
// to the serial pass rather than burn that memory.  Either path sets the
// same bits, so the choice never changes the result.
constexpr std::int64_t kMaxParallelLatticeCells = 1'000'000;

}  // namespace

GridValueRange GridCellsIntersecting(const Interval& iv, int domain_size) {
  if (iv.empty() || domain_size <= 0) return {0, -1};
  // The unit cell of value v is (v−1, v]; it meets (lo, hi] iff v > lo and
  // v − 1 < hi.  The smallest such v is the least integer strictly above
  // lo, i.e. floor(lo)+1 whether or not lo is itself integral — so a
  // subscriber is never dropped from the cell holding its lower boundary
  // (the brute-force property test in test_grid.cc pins this against
  // Interval/Rect semantics).  Endpoints are clamped to the domain *before*
  // the double→int casts: for intervals far outside [0, domain) the
  // unclamped casts used to overflow int, which is undefined behaviour.
  int first = 0;
  if (iv.lo() != -Interval::kInf) {
    if (iv.lo() >= static_cast<double>(domain_size - 1)) return {0, -1};
    if (iv.lo() >= 0.0)
      first = static_cast<int>(std::floor(iv.lo())) + 1;
  }
  int last = domain_size - 1;
  if (iv.hi() != Interval::kInf) {
    if (iv.hi() <= -1.0) return {0, -1};
    if (iv.hi() < static_cast<double>(domain_size - 1))
      last = static_cast<int>(std::ceil(iv.hi()));
  }
  last = std::min(last, domain_size - 1);
  return {first, last};
}

Grid::Grid(const Workload& wl, const PublicationModel& pub)
    : space_(&wl.space), num_subscribers_(wl.num_subscribers()) {
  const std::size_t dims = space_->dims();
  if (dims == 0) throw std::invalid_argument("Grid: zero-dimensional space");

  lattice_size_ = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    lattice_size_ *= space_->dim(d).domain_size;
    if (lattice_size_ > kMaxLatticeCells)
      throw std::invalid_argument("Grid: lattice too large to materialize");
  }
  strides_.assign(dims, 1);
  for (std::size_t d = dims - 1; d-- > 0;)
    strides_[d] = strides_[d + 1] * space_->dim(d + 1).domain_size;

  // 1. Membership vector per lattice cell.  Subscribers are rasterized in
  // contiguous shards — one private lattice per shard, OR-merged into the
  // global lattice in shard order afterwards.  Each bit is a pure function
  // of one subscriber, so the merged lattice is bit-identical for any
  // shard count (including the serial single-shard path taken when the
  // lattice is too large to replicate).
  std::vector<BitVector> membership(static_cast<std::size_t>(lattice_size_),
                                    BitVector(num_subscribers_));
  const auto rasterize = [this, &wl, dims](std::size_t sub_begin,
                                           std::size_t sub_end,
                                           std::vector<BitVector>& out,
                                           bool lazy_alloc) {
    std::vector<GridValueRange> range(dims);
    std::vector<int> coord(dims);
    for (std::size_t i = sub_begin; i < sub_end; ++i) {
      const Rect& r = wl.subscribers[i].interest;
      bool empty = false;
      for (std::size_t d = 0; d < dims; ++d) {
        range[d] = GridCellsIntersecting(r[d], space_->dim(d).domain_size);
        if (range[d].last < range[d].first) {
          empty = true;
          break;
        }
      }
      if (empty) continue;

      // Odometer walk over the covered integer box.
      for (std::size_t d = 0; d < dims; ++d) coord[d] = range[d].first;
      while (true) {
        std::int64_t id = 0;
        for (std::size_t d = 0; d < dims; ++d) id += coord[d] * strides_[d];
        BitVector& vec = out[static_cast<std::size_t>(id)];
        if (lazy_alloc && vec.empty()) vec = BitVector(num_subscribers_);
        vec.set(i);

        std::size_t d = dims;
        while (d-- > 0) {
          if (++coord[d] <= range[d].last) break;
          coord[d] = range[d].first;
          if (d == 0) goto next_subscriber;
        }
      }
    next_subscriber:;
    }
  };

  const auto num_shards =
      static_cast<std::size_t>(ThreadPool::global().num_threads());
  if (num_shards <= 1 || wl.subscribers.size() < 2 * num_shards ||
      lattice_size_ > kMaxParallelLatticeCells) {
    rasterize(0, wl.subscribers.size(), membership, /*lazy_alloc=*/false);
  } else {
    std::vector<std::vector<BitVector>> shard_mem(
        num_shards,
        std::vector<BitVector>(static_cast<std::size_t>(lattice_size_)));
    const std::size_t per_shard =
        (wl.subscribers.size() + num_shards - 1) / num_shards;
    ParallelFor(
        num_shards,
        [&](std::size_t s) {
          const std::size_t begin = std::min(wl.subscribers.size(), s * per_shard);
          const std::size_t end = std::min(wl.subscribers.size(), begin + per_shard);
          rasterize(begin, end, shard_mem[s], /*lazy_alloc=*/true);
        },
        /*min_parallel=*/1);
    // Ordered reduction (shard 0 first); OR is also order-independent, so
    // the merged bits equal the serial pass exactly.
    for (std::size_t s = 0; s < num_shards; ++s)
      for (std::int64_t cell = 0; cell < lattice_size_; ++cell) {
        const BitVector& part = shard_mem[s][static_cast<std::size_t>(cell)];
        if (!part.empty()) membership[static_cast<std::size_t>(cell)] |= part;
      }
  }

  // 2. Merge identical membership vectors into hyper-cells.
  hyper_of_cell_.assign(static_cast<std::size_t>(lattice_size_), -1);
  std::unordered_map<std::size_t, std::vector<int>> buckets;
  for (std::int64_t cell = 0; cell < lattice_size_; ++cell) {
    const BitVector& vec = membership[static_cast<std::size_t>(cell)];
    if (vec.none()) continue;
    ++occupied_cells_;

    const std::size_t h = vec.hash();
    int hyper = -1;
    for (const int cand : buckets[h]) {
      if (hyper_cells_[static_cast<std::size_t>(cand)].members == vec) {
        hyper = cand;
        break;
      }
    }
    if (hyper == -1) {
      hyper = static_cast<int>(hyper_cells_.size());
      HyperCell hc;
      hc.members = vec;
      hyper_cells_.push_back(std::move(hc));
      buckets[h].push_back(hyper);
    }
    hyper_cells_[static_cast<std::size_t>(hyper)].cells.push_back(cell);
    hyper_of_cell_[static_cast<std::size_t>(cell)] = hyper;
  }

  // 3. Publication probability and popularity per hyper-cell.
  for (HyperCell& hc : hyper_cells_) {
    for (const std::int64_t cell : hc.cells) hc.prob += pub.rect_mass(cell_rect(cell));
    hc.popularity = hc.prob * static_cast<double>(hc.members.count());
  }

  // 4. Sort by decreasing popularity and remap cell→hyper-cell ids.
  std::vector<int> order(hyper_cells_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return hyper_cells_[static_cast<std::size_t>(a)].popularity >
           hyper_cells_[static_cast<std::size_t>(b)].popularity;
  });
  std::vector<HyperCell> sorted;
  sorted.reserve(hyper_cells_.size());
  std::vector<int> new_id(hyper_cells_.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    new_id[static_cast<std::size_t>(order[rank])] = static_cast<int>(rank);
    sorted.push_back(std::move(hyper_cells_[static_cast<std::size_t>(order[rank])]));
  }
  hyper_cells_ = std::move(sorted);
  for (int& h : hyper_of_cell_)
    if (h != -1) h = new_id[static_cast<std::size_t>(h)];
}

std::int64_t Grid::cell_of(const Point& p) const {
  if (p.size() != space_->dims())
    throw std::invalid_argument("Grid::cell_of: dimensionality mismatch");
  std::int64_t id = 0;
  for (std::size_t d = 0; d < space_->dims(); ++d) {
    // Event coordinates are integer value coordinates; the cell of value v
    // is v itself.  Coordinates off the integer lattice round up, matching
    // the (v−1, v] convention.
    const double x = p[d];
    const std::int64_t v = static_cast<std::int64_t>(std::ceil(x));
    if (v < 0 || v >= space_->dim(d).domain_size) return -1;
    id += v * strides_[d];
  }
  return id;
}

int Grid::hyper_cell_of(std::int64_t cell) const {
  if (cell < 0 || cell >= lattice_size_) return -1;
  return hyper_of_cell_[static_cast<std::size_t>(cell)];
}

Rect Grid::cell_rect(std::int64_t cell) const {
  std::vector<Interval> ivals;
  ivals.reserve(space_->dims());
  for (std::size_t d = 0; d < space_->dims(); ++d) {
    const std::int64_t v = (cell / strides_[d]) % space_->dim(d).domain_size;
    ivals.push_back(Interval::Point(static_cast<int>(v)));
  }
  return Rect(std::move(ivals));
}

std::vector<std::vector<int>> Grid::cluster_neighbors(std::size_t top_n) const {
  const std::size_t n = top_n == 0 ? hyper_cells_.size()
                                   : std::min(top_n, hyper_cells_.size());
  std::vector<std::vector<int>> out(n);
  // One sweep over the lattice, checking only the +stride neighbor per
  // dimension (the −stride pairing is recorded from the other side).
  for (std::int64_t cell = 0; cell < lattice_size_; ++cell) {
    const int h = hyper_of_cell_[static_cast<std::size_t>(cell)];
    if (h < 0 || static_cast<std::size_t>(h) >= n) continue;
    for (std::size_t d = 0; d < space_->dims(); ++d) {
      const std::int64_t v = (cell / strides_[d]) % space_->dim(d).domain_size;
      if (v + 1 >= space_->dim(d).domain_size) continue;
      const int h2 = hyper_of_cell_[static_cast<std::size_t>(cell + strides_[d])];
      if (h2 < 0 || h2 == h || static_cast<std::size_t>(h2) >= n) continue;
      out[static_cast<std::size_t>(h)].push_back(h2);
      out[static_cast<std::size_t>(h2)].push_back(h);
    }
  }
  for (auto& adj : out) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  return out;
}

std::vector<ClusterCell> Grid::top_cells(std::size_t max_cells) const {
  const std::size_t n = max_cells == 0
                            ? hyper_cells_.size()
                            : std::min(max_cells, hyper_cells_.size());
  std::vector<ClusterCell> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ClusterCell{&hyper_cells_[i].members, hyper_cells_[i].prob});
  return out;
}

}  // namespace pubsub
