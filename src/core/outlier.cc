#include "core/outlier.h"

namespace pubsub {

std::vector<ClusterCell> FilterOutliers(const std::vector<ClusterCell>& cells,
                                        const OutlierFilterOptions& options) {
  double total = 0.0;
  for (const ClusterCell& c : cells) total += c.popularity();

  std::vector<ClusterCell> kept;
  kept.reserve(cells.size());
  double covered = 0.0;
  const double target = options.popularity_mass_fraction * total;
  for (const ClusterCell& c : cells) {
    if (options.popularity_mass_fraction < 1.0 && covered >= target) break;
    if (c.popularity() < options.min_popularity) break;  // sorted: all below
    covered += c.popularity();
    kept.push_back(c);
  }
  return kept;
}

}  // namespace pubsub
