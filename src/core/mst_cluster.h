// Minimum-spanning-tree clustering (§4.4, Figure 3; Zahn 1971).
//
// Build the complete graph on cells with edge length d(a,b) (expected
// waste between *cells* — unlike Pairwise Grouping, distances never change
// as groups form) and run Kruskal until exactly K connected components
// remain.
//
// The default implementation avoids materializing the O(l²) edge list:
// it computes the MST with Prim in O(l²) time and O(l) memory, then deletes
// the K−1 longest tree edges.  For single-linkage clustering this yields
// the same partition as Kruskal-stopped-at-K (any K−1 longest MST edges cut
// the same components that Kruskal would have left unmerged); the explicit
// Kruskal variant is provided as the reference for the property test and
// for small inputs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"

namespace pubsub {

// Prim-based MST clustering (production path).
Assignment MstCluster(const std::vector<ClusterCell>& cells, std::size_t K);

// Reference implementation: materializes all pair distances and runs
// Kruskal until K components remain.  O(l²) memory — small inputs only.
Assignment MstClusterKruskal(const std::vector<ClusterCell>& cells, std::size_t K);

}  // namespace pubsub
