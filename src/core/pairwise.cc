#include "core/pairwise.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "net/union_find.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

// Shared agglomeration scaffolding: live groups with lazily maintained
// membership, plus the final label extraction.  Cell ownership is tracked
// through a disjoint-set forest, so each merge is near-O(1) instead of the
// O(n) owner-array rewrite (O(n²) over a full run) it replaces; the labels
// produced are identical because compaction still follows live group-slot
// order.
struct Agglomerator {
  std::vector<GroupState> groups;     // one per original cell; merged-away
                                      // entries stay but are marked dead
  std::vector<char> alive;
  UnionFind components;               // over original cell indices
  std::vector<int> slot_of_root;      // forest root -> live group slot
  std::size_t num_alive;

  explicit Agglomerator(const std::vector<ClusterCell>& cells)
      : alive(cells.size(), 1),
        components(cells.size()),
        slot_of_root(cells.size()),
        num_alive(cells.size()) {
    const std::size_t ns = cells[0].members->size();
    groups.reserve(cells.size());
    std::iota(slot_of_root.begin(), slot_of_root.end(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      groups.emplace_back(ns);
      groups.back().add(cells[i]);
    }
  }

  double dist(std::size_t a, std::size_t b) const {
    return groups[a].distance_to(groups[b]);
  }

  // Merge group b into group a (both must be live group slots).
  void merge(std::size_t a, std::size_t b) {
    groups[a].merge_from(groups[b]);
    alive[b] = 0;
    --num_alive;
    components.unite(a, b);
    // unite() picks the root by size; record which live slot it stands for.
    slot_of_root[components.find(a)] = static_cast<int>(a);
  }

  Assignment labels() {
    // Compact the surviving group indices into [0, K).
    std::vector<int> compact(groups.size(), -1);
    int next = 0;
    for (std::size_t g = 0; g < groups.size(); ++g)
      if (alive[g]) compact[g] = next++;
    Assignment out(groups.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = compact[static_cast<std::size_t>(
          slot_of_root[components.find(i)])];
    return out;
  }
};

}  // namespace

Assignment PairwiseCluster(const std::vector<ClusterCell>& cells, std::size_t K) {
  if (cells.empty()) return {};
  if (K == 0) throw std::invalid_argument("PairwiseCluster: K must be positive");
  K = std::min(K, cells.size());

  Agglomerator ag(cells);
  const std::size_t n = cells.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Nearest-neighbour cache: nn[g] is the closest live group to g among
  // groups with index != g, valid[g] says whether it can be trusted.
  std::vector<std::size_t> nn(n, 0);
  std::vector<double> nn_dist(n, kInf);
  std::vector<char> valid(n, 0);

  auto recompute_nn = [&](std::size_t g) {
    nn_dist[g] = kInf;
    for (std::size_t h = 0; h < n; ++h) {
      if (h == g || !ag.alive[h]) continue;
      const double d = ag.dist(g, h);
      if (d < nn_dist[g]) {
        nn_dist[g] = d;
        nn[g] = h;
      }
    }
    valid[g] = 1;
  };

  std::vector<std::size_t> stale;
  while (ag.num_alive > K) {
    // Refresh invalidated nearest-neighbour caches.  Each recomputation is
    // a pure scan of the (frozen) group states writing only its own g's
    // slots, so the batch parallelizes with bit-identical results for any
    // thread count.
    stale.clear();
    for (std::size_t g = 0; g < n; ++g)
      if (ag.alive[g] && !valid[g]) stale.push_back(g);
    ParallelFor(
        stale.size(), [&](std::size_t s) { recompute_nn(stale[s]); },
        /*min_parallel=*/8);

    // Find the globally closest pair using the caches (serial scan in
    // ascending slot order — fixed tie-breaking).
    std::size_t best_g = n;
    double best_d = kInf;
    for (std::size_t g = 0; g < n; ++g) {
      if (!ag.alive[g]) continue;
      if (nn_dist[g] < best_d) {
        best_d = nn_dist[g];
        best_g = g;
      }
    }
    const std::size_t a = best_g;
    const std::size_t b = nn[best_g];
    ag.merge(a, b);

    // a changed and b died: every cache pointing at either is stale, and so
    // is a's own.
    valid[a] = 0;
    for (std::size_t g = 0; g < n; ++g)
      if (ag.alive[g] && valid[g] && (nn[g] == a || nn[g] == b)) valid[g] = 0;
  }
  return ag.labels();
}

Assignment ApproximatePairwiseCluster(const std::vector<ClusterCell>& cells,
                                      std::size_t K, Rng& rng,
                                      const PairwiseOptions& options) {
  if (cells.empty()) return {};
  if (K == 0) throw std::invalid_argument("ApproximatePairwiseCluster: K must be positive");
  K = std::min(K, cells.size());

  Agglomerator ag(cells);

  // Live group index list, kept compact for uniform pair sampling.
  std::vector<std::size_t> live(cells.size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;

  while (ag.num_alive > K) {
    const std::size_t g = live.size();
    const double combos = 0.5 * static_cast<double>(g) * static_cast<double>(g - 1);
    // Cap the per-merge work at O(g) samples: inspecting the full 1/e of
    // all pairs would make every merge O(g²) and the whole run O(l³),
    // defeating the point of the approximation.  The secretary structure
    // (learn on a 1/e fraction of the window, then take the first improver)
    // is preserved within the sampled window.
    const double window = std::min(combos, static_cast<double>(options.sample_window_factor) *
                                               static_cast<double>(g));
    const auto inspect = static_cast<std::size_t>(
        std::max(1.0, std::ceil(window * options.inspect_fraction)));
    const auto max_extra = static_cast<std::size_t>(std::ceil(window));

    auto sample_pair = [&]() -> std::pair<std::size_t, std::size_t> {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(g) - 1));
      auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(g) - 2));
      if (j >= i) ++j;
      return {live[i], live[j]};
    };

    // Phase 1: inspect a 1/e fraction, remember the best.
    std::pair<std::size_t, std::size_t> best_pair = sample_pair();
    double best_d = ag.dist(best_pair.first, best_pair.second);
    for (std::size_t t = 1; t < inspect; ++t) {
      const auto p = sample_pair();
      const double d = ag.dist(p.first, p.second);
      if (d < best_d) {
        best_d = d;
        best_pair = p;
      }
    }
    // Phase 2: merge the first pair that beats the remembered best.
    for (std::size_t t = 0; t < max_extra; ++t) {
      const auto p = sample_pair();
      if (ag.dist(p.first, p.second) < best_d) {
        best_pair = p;
        break;
      }
    }

    ag.merge(best_pair.first, best_pair.second);
    live.erase(std::find(live.begin(), live.end(), best_pair.second));
  }
  return ag.labels();
}

}  // namespace pubsub
