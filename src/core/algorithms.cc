#include "core/algorithms.h"

#include <stdexcept>

#include "core/kmeans.h"
#include "core/mst_cluster.h"
#include "core/pairwise.h"

namespace pubsub {

std::vector<GridAlgorithm> StandardGridAlgorithms() {
  std::vector<GridAlgorithm> algos;

  algos.push_back({"kmeans", [](const std::vector<ClusterCell>& cells, std::size_t K, Rng&) {
                     KMeansOptions opt;
                     opt.variant = KMeansVariant::kMacQueen;
                     return KMeansCluster(cells, K, opt).assignment;
                   }});
  algos.push_back({"forgy", [](const std::vector<ClusterCell>& cells, std::size_t K, Rng&) {
                     KMeansOptions opt;
                     opt.variant = KMeansVariant::kForgy;
                     return KMeansCluster(cells, K, opt).assignment;
                   }});
  algos.push_back({"mst", [](const std::vector<ClusterCell>& cells, std::size_t K, Rng&) {
                     return MstCluster(cells, K);
                   }});
  algos.push_back({"pairs", [](const std::vector<ClusterCell>& cells, std::size_t K, Rng&) {
                     return PairwiseCluster(cells, K);
                   }});
  algos.push_back({"approx-pairs",
                   [](const std::vector<ClusterCell>& cells, std::size_t K, Rng& rng) {
                     return ApproximatePairwiseCluster(cells, K, rng);
                   }});
  return algos;
}

GridAlgorithm GridAlgorithmByName(const std::string& name) {
  for (GridAlgorithm& a : StandardGridAlgorithms())
    if (a.name == name) return a;
  throw std::invalid_argument("unknown clustering algorithm: " + name);
}

}  // namespace pubsub
