// Outlier removal for the grid-based algorithms.
//
// The paper observes (§4.1, §5.2/Fig. 11) that feeding too many cells
// *degrades* solution quality — rarely-published cells with unusual
// subscriber combinations drag groups apart — and names outlier-removal as
// the remedy (left as future work there; implemented here).  Two filters,
// applied to the popularity-sorted cell list:
//
//   * a popularity floor: drop cells whose popularity rating
//     r(a) = p_p(a)·|s(a)| falls below `min_popularity`;
//   * a mass budget: keep the most popular cells until they cover
//     `popularity_mass_fraction` of the total popularity, dropping the
//     long tail.
//
// Dropped cells simply fall back to unicast at matching time (exactly like
// cells beyond the paper's cell budget).
#pragma once

#include <vector>

#include "core/cluster_types.h"

namespace pubsub {

struct OutlierFilterOptions {
  // Keep only cells with popularity >= min_popularity (0 disables).
  double min_popularity = 0.0;
  // Keep the top cells covering this fraction of total popularity
  // (1.0 or more disables).
  double popularity_mass_fraction = 1.0;
};

// `cells` must be sorted by decreasing popularity (Grid::top_cells order).
// Returns the retained prefix.
std::vector<ClusterCell> FilterOutliers(const std::vector<ClusterCell>& cells,
                                        const OutlierFilterOptions& options);

}  // namespace pubsub
