#include "core/cluster_types.h"

#include <algorithm>
#include <stdexcept>

namespace pubsub {

void GroupState::add(const ClusterCell& cell) {
  std::size_t bits = 0;
  cell.members->for_each_set([this, &bits](std::size_t i) {
    const int c = counts_[i]++;
    if (c == 0) {
      vec_.set(i);
      unique_.set(i);
      ++card_;
    } else if (c == 1) {
      unique_.reset(i);
    }
    ++bits;
  });
  prob_ += cell.prob;
  member_mass_ += cell.prob * static_cast<double>(bits);
  ++size_;
}

void GroupState::remove(const ClusterCell& cell) {
  if (size_ == 0) throw std::logic_error("GroupState::remove: empty group");
  std::size_t bits = 0;
  cell.members->for_each_set([this, &bits](std::size_t i) {
    const int c = --counts_[i];
    if (c == 0) {
      vec_.reset(i);
      unique_.reset(i);
      --card_;
    } else if (c == 1) {
      unique_.set(i);
    }
    ++bits;
  });
  prob_ -= cell.prob;
  member_mass_ -= cell.prob * static_cast<double>(bits);
  --size_;
}

void GroupState::reset() {
  vec_.clear_all();
  unique_.clear_all();
  std::fill(counts_.begin(), counts_.end(), 0);
  prob_ = 0.0;
  size_ = 0;
  card_ = 0;
  member_mass_ = 0.0;
}

double GroupState::distance_to_excluding(const ClusterCell& cell,
                                         std::size_t* unique_out) const {
  // |s(cell) \ s(group−cell)| = |s(cell) ∩ unique()|: the bits only this
  // cell contributes (member count exactly 1).  One fused word pass that
  // also yields |s(cell)| for the group-only term.
  const auto cw = cell.members->words();
  const auto uw = unique_.words();
  std::size_t cell_only = 0, cell_bits = 0;
  for (std::size_t i = 0; i < cw.size(); ++i) {
    cell_only += std::popcount(cw[i] & uw[i]);
    cell_bits += std::popcount(cw[i]);
  }
  // |s(group−cell) \ s(cell)|: group bits outside the cell survive removal
  // untouched; for a member cell s(cell) ⊆ s(group), so |vec_ ∩ cell| is
  // just |cell|.
  const std::size_t group_only = card_ - cell_bits;
  if (unique_out != nullptr) *unique_out = cell_only;
  return cell.prob * static_cast<double>(cell_only) +
         (prob_ - cell.prob) * static_cast<double>(group_only);
}

void GroupState::merge_from(const GroupState& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int before = counts_[i];
    counts_[i] += other.counts_[i];
    if (counts_[i] > 0) {
      if (before == 0) ++card_;
      vec_.set(i);
      unique_.assign(i, counts_[i] == 1);
    }
  }
  prob_ += other.prob_;
  size_ += other.size_;
  member_mass_ += other.member_mass_;
}

void BatchedGroupWaste(const ClusterCell& cell,
                       const std::vector<GroupState>& groups, const int* cand,
                       std::size_t count, double* out_dist,
                       std::size_t* out_cell_not_g) {
  // Up to kBlock candidates share one sweep over the cell's words; larger
  // candidate lists fall back to per-candidate fused passes (rare — grid
  // closures are small).
  constexpr std::size_t kBlock = 8;
  if (count > kBlock) {
    for (std::size_t j = 0; j < count; ++j) {
      const GroupState& g = groups[static_cast<std::size_t>(cand[j])];
      std::size_t c_not_g = 0, g_not_c = 0;
      cell.members->count_diffs(g.vec(), &c_not_g, &g_not_c);
      out_dist[j] = cell.prob * static_cast<double>(c_not_g) +
                    g.prob() * static_cast<double>(g_not_c);
      if (out_cell_not_g != nullptr) out_cell_not_g[j] = c_not_g;
    }
    return;
  }

  const auto cw = cell.members->words();
  const std::uint64_t* gw[kBlock];
  std::size_t c_not_g[kBlock] = {};
  std::size_t g_not_c[kBlock] = {};
  for (std::size_t j = 0; j < count; ++j)
    gw[j] = groups[static_cast<std::size_t>(cand[j])].vec().words().data();

  for (std::size_t i = 0; i < cw.size(); ++i) {
    const std::uint64_t w = cw[i];
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t v = gw[j][i];
      c_not_g[j] += static_cast<std::size_t>(std::popcount(w & ~v));
      g_not_c[j] += static_cast<std::size_t>(std::popcount(v & ~w));
    }
  }
  for (std::size_t j = 0; j < count; ++j) {
    out_dist[j] =
        cell.prob * static_cast<double>(c_not_g[j]) +
        groups[static_cast<std::size_t>(cand[j])].prob() *
            static_cast<double>(g_not_c[j]);
    if (out_cell_not_g != nullptr) out_cell_not_g[j] = c_not_g[j];
  }
}

double TotalExpectedWaste(const std::vector<ClusterCell>& cells,
                          const Assignment& assignment, int num_groups) {
  if (assignment.size() != cells.size())
    throw std::invalid_argument("TotalExpectedWaste: size mismatch");
  if (cells.empty()) return 0.0;

  std::vector<GroupState> groups(static_cast<std::size_t>(num_groups),
                                 GroupState(cells[0].members->size()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int g = assignment[i];
    if (g < 0) continue;
    if (g >= num_groups) throw std::invalid_argument("TotalExpectedWaste: bad group");
    groups[static_cast<std::size_t>(g)].add(cells[i]);
  }

  double waste = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int g = assignment[i];
    if (g < 0) continue;
    waste += cells[i].prob * static_cast<double>(groups[static_cast<std::size_t>(g)]
                                                     .vec()
                                                     .count_and_not(*cells[i].members));
  }
  return waste;
}

}  // namespace pubsub
