#include "core/cluster_types.h"

#include <stdexcept>

namespace pubsub {

void GroupState::add(const ClusterCell& cell) {
  cell.members->for_each_set([this](std::size_t i) {
    if (counts_[i]++ == 0) vec_.set(i);
  });
  prob_ += cell.prob;
  ++size_;
}

void GroupState::remove(const ClusterCell& cell) {
  if (size_ == 0) throw std::logic_error("GroupState::remove: empty group");
  cell.members->for_each_set([this](std::size_t i) {
    if (--counts_[i] == 0) vec_.reset(i);
  });
  prob_ -= cell.prob;
  --size_;
}

double GroupState::distance_to_excluding(const ClusterCell& cell) const {
  // |s(cell) \ s(group−cell)|: bits the cell alone contributes (count 1).
  std::size_t cell_only = 0;
  cell.members->for_each_set([this, &cell_only](std::size_t i) {
    if (counts_[i] <= 1) ++cell_only;
  });
  // |s(group−cell) \ s(cell)|: group bits outside the cell survive removal
  // untouched (for a member cell every cell bit has count >= 1).
  const std::size_t group_only = vec_.count() - vec_.count_and(*cell.members);
  return cell.prob * static_cast<double>(cell_only) +
         (prob_ - cell.prob) * static_cast<double>(group_only);
}

void GroupState::merge_from(const GroupState& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
    if (counts_[i] > 0) vec_.set(i);
  }
  prob_ += other.prob_;
  size_ += other.size_;
}

double TotalExpectedWaste(const std::vector<ClusterCell>& cells,
                          const Assignment& assignment, int num_groups) {
  if (assignment.size() != cells.size())
    throw std::invalid_argument("TotalExpectedWaste: size mismatch");
  if (cells.empty()) return 0.0;

  std::vector<GroupState> groups(static_cast<std::size_t>(num_groups),
                                 GroupState(cells[0].members->size()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int g = assignment[i];
    if (g < 0) continue;
    if (g >= num_groups) throw std::invalid_argument("TotalExpectedWaste: bad group");
    groups[static_cast<std::size_t>(g)].add(cells[i]);
  }

  double waste = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int g = assignment[i];
    if (g < 0) continue;
    waste += cells[i].prob * static_cast<double>(groups[static_cast<std::size_t>(g)]
                                                     .vec()
                                                     .count_and_not(*cells[i].members));
  }
  return waste;
}

}  // namespace pubsub
