// Grid-based clustering framework (§4.1).
//
// The event space is partitioned by the regular grid of unit lattice cells
// (one cell per integer attribute tuple).  Each cell a carries the
// subscriber membership vector
//
//   s(a)_i = 1  iff  some interest rectangle of subscriber i intersects a
//
// and the publication probability p_p(a).  Cells with identical membership
// vectors are merged into *hyper-cells* (inducing zero expected waste, per
// the paper's implementation notes), hyper-cells are ranked by the
// popularity rating r(a) = p_p(a)·Σ_i s(a)_i, and the top `max_cells` are
// handed to a clustering algorithm — the rest fall back to unicast.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster_types.h"
#include "geometry/event_space.h"
#include "workload/publication_model.h"
#include "workload/types.h"

namespace pubsub {

// Inclusive range of integer attribute values whose unit cells (v−1, v]
// intersect a subscription interval; empty if last < first.
struct GridValueRange {
  int first;
  int last;
};

// Values v in [0, domain_size) whose unit cell (v−1, v] intersects the
// (lo, hi] interval `iv`.  Exposed for the boundary-semantics property
// test; Grid uses it to rasterize subscriptions.
GridValueRange GridCellsIntersecting(const Interval& iv, int domain_size);

struct HyperCell {
  BitVector members;
  double prob = 0.0;            // total publication mass of member cells
  double popularity = 0.0;      // prob * |members|
  std::vector<std::int64_t> cells;  // lattice ids of member cells
};

class Grid {
 public:
  // Builds membership vectors for every lattice cell of wl.space, merges
  // identical ones into hyper-cells and sorts them by decreasing
  // popularity.  `pub` provides per-cell probabilities.
  Grid(const Workload& wl, const PublicationModel& pub);

  const EventSpace& space() const { return *space_; }
  std::size_t num_subscribers() const { return num_subscribers_; }
  std::int64_t num_lattice_cells() const { return lattice_size_; }
  // Lattice cells intersected by at least one subscription.
  std::int64_t num_occupied_cells() const { return occupied_cells_; }

  // Hyper-cells in decreasing popularity order.
  const std::vector<HyperCell>& hyper_cells() const { return hyper_cells_; }

  // Lattice id of the cell containing p, or -1 if p is outside the domain.
  std::int64_t cell_of(const Point& p) const;
  // Hyper-cell index owning a lattice cell, or -1 if no subscriber
  // intersects it.
  int hyper_cell_of(std::int64_t cell) const;
  // The cell's rectangle (product of unit value-intervals).
  Rect cell_rect(std::int64_t cell) const;

  // ClusterCell views of the `max_cells` most popular hyper-cells (all of
  // them if max_cells == 0 or exceeds the count).  Views reference this
  // Grid; it must outlive them.
  std::vector<ClusterCell> top_cells(std::size_t max_cells) const;

  // Spatial adjacency over the `top_n` most popular hyper-cells (indices
  // align with top_cells(top_n); top_n == 0 means all): hyper-cells i and
  // j are neighbors iff some lattice cell of i touches a lattice cell of j
  // along one axis (±1 in one coordinate).  Lists are sorted, deduplicated
  // and symmetric.  This is the neighborhood the closure-accelerated
  // k-means assignment derives its candidate groups from: subscriptions
  // are axis-aligned rectangles, so a cell's nearest group by expected
  // waste is overwhelmingly a group already holding one of its lattice
  // neighbors.
  std::vector<std::vector<int>> cluster_neighbors(std::size_t top_n) const;

 private:
  const EventSpace* space_;
  std::size_t num_subscribers_ = 0;
  std::int64_t lattice_size_ = 0;
  std::int64_t occupied_cells_ = 0;
  std::vector<std::int64_t> strides_;
  std::vector<HyperCell> hyper_cells_;
  std::vector<int> hyper_of_cell_;  // indexed by lattice id; -1 = empty cell
};

}  // namespace pubsub
