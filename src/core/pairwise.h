// Pairwise Grouping and Approximate Pairwise Grouping (§4.3, Figure 2).
//
// Agglomerative clustering: start with one group per cell; repeatedly find
// the pair of groups at minimum expected-waste distance, merge them
// (membership vector = union, probability = sum), and stop when K groups
// remain.
//
// The exact variant caches each group's nearest neighbour and lazily
// re-validates caches invalidated by a merge, avoiding the naive O(l³)
// rescan while returning exactly the same merge sequence.
//
// The approximate variant implements the paper's secretary-rule heuristic:
// at each merge it inspects a random 1/e fraction of the candidate pairs,
// remembers the closest pair seen, then keeps sampling and merges the first
// pair that beats it (falling back to the remembered pair).  Faster, but
// may merge a non-minimal pair.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"
#include "util/rng.h"

namespace pubsub {

struct PairwiseOptions {
  bool approximate = false;
  // Inspection fraction for the approximate variant (the secretary problem
  // optimum is 1/e ≈ 0.368).
  double inspect_fraction = 0.36787944117144233;
  // Per-merge candidate window, as a multiple of the live group count.
  // Caps each merge at O(g) distance evaluations so the whole run stays
  // O(l²) — the paper's observed "approx-pairs ≈ K-means running time".
  std::size_t sample_window_factor = 8;
};

// Exact pairwise grouping.  K is clamped to the cell count.
Assignment PairwiseCluster(const std::vector<ClusterCell>& cells, std::size_t K);

// Approximate pairwise grouping; `rng` drives the random inspection order.
Assignment ApproximatePairwiseCluster(const std::vector<ClusterCell>& cells,
                                      std::size_t K, Rng& rng,
                                      const PairwiseOptions& options = {});

}  // namespace pubsub
