#include "core/kmeans.h"

#include <limits>
#include <stdexcept>

#include "util/thread_pool.h"

namespace pubsub {
namespace {

// Index of the group with minimum expected waste to `cell`.
std::size_t ClosestGroup(const std::vector<GroupState>& groups,
                         const ClusterCell& cell) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double d = groups[g].distance_to(cell);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

// ClosestGroup with the cell's own contribution removed from its current
// group `cur`, so "stay" and "move" compare the same marginal waste.  Pure
// (no group mutation); same scan order and strict-< tie-breaking as
// ClosestGroup, hence bit-identical to remove → ClosestGroup → add.
std::size_t ClosestGroupExcluding(const std::vector<GroupState>& groups,
                                  std::size_t cur, const ClusterCell& cell) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double d = g == cur ? groups[g].distance_to_excluding(cell)
                              : groups[g].distance_to(cell);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

}  // namespace

KMeansResult KMeansCluster(const std::vector<ClusterCell>& cells, std::size_t K,
                           const KMeansOptions& options) {
  if (cells.empty()) return {};
  if (K == 0) throw std::invalid_argument("KMeansCluster: K must be positive");
  K = std::min(K, cells.size());
  const std::size_t ns = cells[0].members->size();

  KMeansResult result;
  result.assignment.assign(cells.size(), -1);
  std::vector<GroupState> groups(K, GroupState(ns));

  if (options.warm_start != nullptr) {
    // Step 0' — warm start from a prior assignment (subscription churn).
    const Assignment& seed = *options.warm_start;
    if (seed.size() != cells.size())
      throw std::invalid_argument("KMeansCluster: warm start size mismatch");
    std::vector<std::size_t> unplaced;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int g = seed[i];
      if (g >= 0 && static_cast<std::size_t>(g) < K) {
        groups[static_cast<std::size_t>(g)].add(cells[i]);
        result.assignment[i] = g;
      } else {
        unplaced.push_back(i);
      }
    }
    // Empty groups get re-seeded with the most popular unplaced cells (or,
    // failing that, stay empty until the nearest-group pass below fills
    // them with whatever lands there); then place the rest by distance.
    std::size_t next_unplaced = 0;
    for (std::size_t g = 0; g < K; ++g) {
      if (!groups[g].empty() || next_unplaced >= unplaced.size()) continue;
      const std::size_t i = unplaced[next_unplaced++];
      groups[g].add(cells[i]);
      result.assignment[i] = static_cast<int>(g);
    }
    for (std::size_t u = next_unplaced; u < unplaced.size(); ++u) {
      const std::size_t i = unplaced[u];
      const std::size_t g = ClosestGroup(groups, cells[i]);
      groups[g].add(cells[i]);
      result.assignment[i] = static_cast<int>(g);
    }
  } else {
    // Step 0 — initial partition: the K most popular cells seed the groups
    // (input is popularity-ordered), remaining cells join the closest
    // group, with vectors updated as cells arrive.
    for (std::size_t g = 0; g < K; ++g) {
      groups[g].add(cells[g]);
      result.assignment[g] = static_cast<int>(g);
    }
    for (std::size_t i = K; i < cells.size(); ++i) {
      const std::size_t g = ClosestGroup(groups, cells[i]);
      groups[g].add(cells[i]);
      result.assignment[i] = static_cast<int>(g);
    }
  }

  // Steps 1–2 — re-assignment passes.
  //
  // Batch (Forgy) passes can oscillate: several cells may simultaneously
  // move toward the same stale snapshot vector and overshoot.  We track the
  // total expected waste after every pass, remember the best assignment
  // seen, and stop once a window of passes brings no improvement.
  double best_waste = TotalExpectedWaste(cells, result.assignment, static_cast<int>(K));
  Assignment best_assignment = result.assignment;
  std::size_t stale_passes = 0;
  constexpr std::size_t kPatience = 3;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    bool moved = false;

    if (options.variant == KMeansVariant::kMacQueen) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cur = static_cast<std::size_t>(result.assignment[i]);
        if (groups[cur].size() == 1) continue;  // last cell cannot move
        // Evaluate the cell against its own group with the cell taken out,
        // so "stay" and "move" compare the same marginal waste.
        groups[cur].remove(cells[i]);
        const std::size_t next = ClosestGroup(groups, cells[i]);
        groups[next].add(cells[i]);
        if (next != cur) {
          result.assignment[i] = static_cast<int>(next);
          moved = true;
        }
      }
    } else {
      // Forgy: distances against the vectors as they stood at the start of
      // the pass; all moves applied together afterwards.  Every proposal is
      // a pure function of the frozen pass-start state, so the scan is
      // embarrassingly parallel: each lane writes only its own proposal
      // slots, making the result bit-identical for any thread count.  The
      // proposals are then applied serially in cell order against the live
      // state, which keeps the "last cell cannot move" guard exact.
      std::vector<std::size_t> proposed(cells.size());
      ParallelFor(
          cells.size(),
          [&](std::size_t i) {
            const auto cur = static_cast<std::size_t>(result.assignment[i]);
            proposed[i] = ClosestGroupExcluding(groups, cur, cells[i]);
          },
          /*min_parallel=*/64);
      Assignment next_assignment = result.assignment;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cur = static_cast<std::size_t>(result.assignment[i]);
        if (groups[cur].size() == 1) continue;
        const std::size_t next = proposed[i];
        if (next != cur) {
          groups[cur].remove(cells[i]);
          groups[next].add(cells[i]);
          next_assignment[i] = static_cast<int>(next);
          moved = true;
        }
      }
      result.assignment = std::move(next_assignment);
    }

    if (!moved) {
      result.converged = true;
      break;
    }

    const double waste = TotalExpectedWaste(cells, result.assignment, static_cast<int>(K));
    if (waste < best_waste) {
      best_waste = waste;
      best_assignment = result.assignment;
      stale_passes = 0;
    } else if (++stale_passes >= kPatience) {
      break;  // oscillating without improvement
    }
  }

  if (TotalExpectedWaste(cells, result.assignment, static_cast<int>(K)) > best_waste)
    result.assignment = std::move(best_assignment);
  return result;
}

}  // namespace pubsub
