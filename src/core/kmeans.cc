#include "core/kmeans.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.h"

namespace pubsub {
namespace {

// Stack capacity for one cell's closure candidate list.  Typical closures
// are |neighbors|·distinct-groups + seeds + cur ≈ a handful; a cell whose
// closure would not fit simply takes the exact scan (deterministic — the
// spill depends only on the candidate count).
constexpr std::size_t kMaxCandidates = 32;
constexpr std::size_t kClosureOverflow = kMaxCandidates + 1;

// Index of the group with minimum expected waste to `cell`.
std::size_t ClosestGroup(const std::vector<GroupState>& groups,
                         const ClusterCell& cell) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double d = groups[g].distance_to(cell);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

// ClosestGroup with the cell's own contribution removed from its current
// group `cur`, so "stay" and "move" compare the same marginal waste.  Pure
// (no group mutation); same scan order and strict-< tie-breaking as
// ClosestGroup, hence bit-identical to remove → ClosestGroup → add.
std::size_t ClosestGroupExcluding(const std::vector<GroupState>& groups,
                                  std::size_t cur, const ClusterCell& cell) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double d = g == cur ? groups[g].distance_to_excluding(cell)
                              : groups[g].distance_to(cell);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

// Assembles cell i's closure into cand[]: its current group (`cur`, when
// >= 0), the first `seed_groups` global groups, and the groups its
// neighbors hold under `assignment`.  Deduplicated (linear — the list is
// tiny).  Returns the candidate count, or kClosureOverflow if the list
// would not fit kMaxCandidates.
std::size_t BuildClosure(const std::vector<std::vector<int>>& neighbors,
                         const Assignment& assignment, std::size_t i, int cur,
                         std::size_t seed_groups, int* cand) {
  std::size_t n = 0;
  const auto push = [&](int g) {
    for (std::size_t j = 0; j < n; ++j)
      if (cand[j] == g) return true;
    if (n == kMaxCandidates) return false;
    cand[n++] = g;
    return true;
  };
  if (cur >= 0) push(cur);  // first push never overflows
  for (std::size_t g = 0; g < seed_groups; ++g)
    if (!push(static_cast<int>(g))) return kClosureOverflow;
  for (const int nb : neighbors[i]) {
    const int g = assignment[static_cast<std::size_t>(nb)];
    if (g >= 0 && !push(g)) return kClosureOverflow;
  }
  return n;
}

// Lowest-id minimizer of d(cell, g) over the candidate list (count >= 1).
// The explicit id tie-break makes the verdict independent of candidate
// order, matching the exact scan's first-win-lowest-id rule whenever the
// true closest group is in the closure.
std::size_t ClosestInClosure(const std::vector<GroupState>& groups,
                             const ClusterCell& cell, const int* cand,
                             std::size_t count) {
  double dist[kMaxCandidates];
  BatchedGroupWaste(cell, groups, cand, count, dist, nullptr);
  int best = cand[0];
  double best_d = dist[0];
  for (std::size_t j = 1; j < count; ++j) {
    if (dist[j] < best_d || (dist[j] == best_d && cand[j] < best)) {
      best_d = dist[j];
      best = cand[j];
    }
  }
  return static_cast<std::size_t>(best);
}

// Rebuilds every group from the assignment in cell-index order — the
// canonical state the resumable path re-derives at each pass boundary so a
// pass is a pure function of the assignment (floating-point accumulation
// order included), no matter how many calls the passes were split across.
void RebuildGroups(const std::vector<ClusterCell>& cells,
                   const Assignment& assignment,
                   std::vector<GroupState>& groups) {
  for (GroupState& g : groups) g.reset();
  for (std::size_t i = 0; i < cells.size(); ++i)
    groups[static_cast<std::size_t>(assignment[i])].add(cells[i]);
}

}  // namespace

KMeansResult KMeansCluster(const std::vector<ClusterCell>& cells, std::size_t K,
                           const KMeansOptions& options) {
  if (cells.empty()) return {};
  if (K == 0) throw std::invalid_argument("KMeansCluster: K must be positive");
  K = std::min(K, cells.size());
  const std::size_t ns = cells[0].members->size();

  const bool closure = options.closure && options.neighbors != nullptr;
  if (closure && options.neighbors->size() != cells.size())
    throw std::invalid_argument("KMeansCluster: neighbors size mismatch");
  const std::size_t seed_groups = std::min(options.closure_seed_groups, K);

  KMeansResult result;
  result.assignment.assign(cells.size(), -1);
  std::vector<GroupState> groups(K, GroupState(ns));

  // Nearest-group placement used by both seeding paths; closure-accelerated
  // when enabled (candidates = seeds + groups of already-placed neighbors).
  const auto place = [&](std::size_t i) {
    ++result.cell_visits;
    std::size_t g;
    bool used_closure = false;
    if (closure) {
      int cand[kMaxCandidates];
      const std::size_t nc = BuildClosure(*options.neighbors, result.assignment,
                                          i, /*cur=*/-1, seed_groups, cand);
      if (nc >= 1 && nc <= kMaxCandidates) {
        g = ClosestInClosure(groups, cells[i], cand, nc);
        used_closure = true;
      }
    }
    if (!used_closure || options.closure_oracle) {
      const std::size_t exact = ClosestGroup(groups, cells[i]);
      if (used_closure && g != exact) ++result.oracle_mismatches;
      if (closure && !used_closure) ++result.closure_fallbacks;
      g = exact;
    }
    if (used_closure) ++result.closure_hits;
    groups[g].add(cells[i]);
    result.assignment[i] = static_cast<int>(g);
  };

  if (options.warm_start != nullptr) {
    // Step 0' — warm start from a prior assignment (subscription churn).
    const Assignment& seed = *options.warm_start;
    if (seed.size() != cells.size())
      throw std::invalid_argument("KMeansCluster: warm start size mismatch");
    std::vector<std::size_t> unplaced;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int g = seed[i];
      if (g >= 0 && static_cast<std::size_t>(g) < K) {
        groups[static_cast<std::size_t>(g)].add(cells[i]);
        result.assignment[i] = g;
      } else {
        unplaced.push_back(i);
      }
    }
    // Empty groups get re-seeded with the most popular unplaced cells (or,
    // failing that, stay empty until the nearest-group pass below fills
    // them with whatever lands there); then place the rest by distance.
    std::size_t next_unplaced = 0;
    for (std::size_t g = 0; g < K; ++g) {
      if (!groups[g].empty() || next_unplaced >= unplaced.size()) continue;
      const std::size_t i = unplaced[next_unplaced++];
      groups[g].add(cells[i]);
      result.assignment[i] = static_cast<int>(g);
    }
    for (std::size_t u = next_unplaced; u < unplaced.size(); ++u) place(unplaced[u]);
  } else {
    // Step 0 — initial partition: the K most popular cells seed the groups
    // (input is popularity-ordered), remaining cells join the closest
    // group, with vectors updated as cells arrive.
    for (std::size_t g = 0; g < K; ++g) {
      groups[g].add(cells[g]);
      result.assignment[g] = static_cast<int>(g);
    }
    for (std::size_t i = K; i < cells.size(); ++i) place(i);
  }

  // |s(a)| per cell, for the closure improvement checks (cells are
  // immutable for the whole call).
  std::vector<std::size_t> cell_bits;
  if (closure) {
    cell_bits.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      cell_bits[i] = cells[i].members->count();
  }

  // Incremental-waste Δ of moving cell i from g1 to g2, priced against the
  // live group states: removal strips the cell's unique bits from g1,
  // insertion grows g2's union by the cell's uncovered bits.
  const auto move_delta = [&](std::size_t i, const GroupState& g1,
                              const GroupState& g2) {
    const double p = cells[i].prob;
    const double sa = static_cast<double>(cell_bits[i]);
    const auto u = cells[i].members->count_and(g1.unique());
    const auto e = cells[i].members->count_and_not(g2.vec());
    return -(g1.prob() - p) * static_cast<double>(u) -
           p * (static_cast<double>(g1.cardinality()) - sa) +
           (g2.prob() + p) * static_cast<double>(e) +
           p * (static_cast<double>(g2.cardinality()) - sa);
  };

  // Steps 1–2 — re-assignment passes.
  //
  // Batch (Forgy) passes can oscillate: several cells may simultaneously
  // move toward the same stale snapshot vector and overshoot.  In the
  // legacy (non-resumable) mode we track the total expected waste after
  // every pass, remember the best assignment seen, and stop once a window
  // of passes brings no improvement.  Resumable mode skips all of that:
  // the last-pass state is the contract (the caller resumes from it), and
  // the per-pass canonical rebuild replaces the incremental group
  // evolution so budget splits are invisible.
  double best_waste = std::numeric_limits<double>::infinity();
  Assignment best_assignment;
  if (!options.resumable) {
    best_waste = TotalExpectedWaste(cells, result.assignment, static_cast<int>(K));
    best_assignment = result.assignment;
  }
  std::size_t stale_passes = 0;
  constexpr std::size_t kPatience = 3;

  std::size_t pass_cap = options.max_iterations;
  if (options.budget.max_passes != 0)
    pass_cap = std::min(pass_cap, options.budget.max_passes);

  bool capped_out = false;
  for (std::size_t iter = 0; iter < pass_cap; ++iter) {
    if (options.resumable) RebuildGroups(cells, result.assignment, groups);
    ++result.iterations;
    bool moved = false;

    if (options.variant == KMeansVariant::kMacQueen) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cur = static_cast<std::size_t>(result.assignment[i]);
        if (groups[cur].size() == 1) continue;  // last cell cannot move
        ++result.cell_visits;
        // Evaluate the cell against its own group with the cell taken out,
        // so "stay" and "move" compare the same marginal waste — without
        // the remove → scan → add round-trip the old inner loop paid even
        // when the cell stayed put (the common case).
        std::size_t next = cur;
        bool used_closure = false;
        if (closure) {
          int cand[kMaxCandidates];
          const std::size_t nc =
              BuildClosure(*options.neighbors, result.assignment, i,
                           static_cast<int>(cur), seed_groups, cand);
          if (nc <= kMaxCandidates) {
            std::size_t u = 0;
            const double d_stay = groups[cur].distance_to_excluding(cells[i], &u);
            double dist[kMaxCandidates];
            std::size_t cng[kMaxCandidates];
            BatchedGroupWaste(cells[i], groups, cand, nc, dist, cng);
            int best = static_cast<int>(cur);
            double best_d = d_stay;
            std::size_t best_e = 0;
            for (std::size_t j = 0; j < nc; ++j) {
              if (cand[j] == static_cast<int>(cur)) continue;
              if (dist[j] < best_d || (dist[j] == best_d && cand[j] < best)) {
                best_d = dist[j];
                best = cand[j];
                best_e = cng[j];
              }
            }
            if (best == static_cast<int>(cur)) {
              used_closure = true;  // stay — nothing to double-check
            } else {
              // Improvement check: price the move via the incremental
              // waste identity.  Removal strips the u unique bits from
              // cur; insertion grows the target union by best_e bits.  The
              // move is taken only if the total objective strictly drops —
              // otherwise the closure's view is too narrow and the exact
              // scan decides.
              const double p = cells[i].prob;
              const double sa = static_cast<double>(cell_bits[i]);
              const GroupState& g1 = groups[cur];
              const GroupState& g2 = groups[static_cast<std::size_t>(best)];
              const double dw1 =
                  -(g1.prob() - p) * static_cast<double>(u) -
                  p * (static_cast<double>(g1.cardinality()) - sa);
              const double dw2 =
                  (g2.prob() + p) * static_cast<double>(best_e) +
                  p * (static_cast<double>(g2.cardinality()) - sa);
              if (dw1 + dw2 < 0.0) {
                next = static_cast<std::size_t>(best);
                used_closure = true;
              }
            }
          }
        }
        if (!closure || !used_closure || options.closure_oracle) {
          const std::size_t exact = ClosestGroupExcluding(groups, cur, cells[i]);
          if (used_closure && next != exact) ++result.oracle_mismatches;
          if (closure && !used_closure) ++result.closure_fallbacks;
          next = exact;
        }
        if (used_closure) ++result.closure_hits;
        if (next != cur) {
          groups[cur].remove(cells[i]);
          groups[next].add(cells[i]);
          result.assignment[i] = static_cast<int>(next);
          moved = true;
        }
      }
    } else {
      // Forgy: distances against the vectors as they stood at the start of
      // the pass; all moves applied together afterwards.  Every proposal is
      // a pure function of the frozen pass-start state, so the scan is
      // embarrassingly parallel: each lane writes only its own proposal
      // slots, making the result bit-identical for any thread count.  The
      // proposals are then applied serially in cell order against the live
      // state, which keeps the "last cell cannot move" guard exact.
      //
      // Closure proposals read the frozen assignment too; the improvement
      // check moves to the serial apply loop below, where the live Δ can
      // be priced: with the global seed groups in every cell's closure,
      // ungated proposals pile the whole population onto a handful of
      // stale snapshot vectors (measured 11x waste blow-up), while the
      // live gate turns positive as a target fills and stops the stampede.
      // Oracle mode skips the gate — its contract is bit-identity with the
      // closure-off path, and exact Forgy applies proposals unconditionally.
      std::vector<std::size_t> proposed(cells.size());
      std::vector<std::uint8_t> code;  // per-cell closure outcome, merged below
      if (closure) code.assign(cells.size(), 0);
      ParallelFor(
          cells.size(),
          [&](std::size_t i) {
            const auto cur = static_cast<std::size_t>(result.assignment[i]);
            std::size_t next = cur;
            bool used_closure = false;
            if (closure) {
              int cand[kMaxCandidates];
              const std::size_t nc =
                  BuildClosure(*options.neighbors, result.assignment, i,
                               static_cast<int>(cur), seed_groups, cand);
              if (nc <= kMaxCandidates) {
                double dist[kMaxCandidates];
                BatchedGroupWaste(cells[i], groups, cand, nc, dist, nullptr);
                int best = -1;
                double best_d = std::numeric_limits<double>::infinity();
                for (std::size_t j = 0; j < nc; ++j) {
                  const double d =
                      cand[j] == static_cast<int>(cur)
                          ? groups[cur].distance_to_excluding(cells[i])
                          : dist[j];
                  if (d < best_d || (d == best_d && cand[j] < best)) {
                    best_d = d;
                    best = cand[j];
                  }
                }
                next = static_cast<std::size_t>(best);
                used_closure = true;
              }
            }
            if (!closure || !used_closure || options.closure_oracle) {
              const std::size_t exact = ClosestGroupExcluding(groups, cur, cells[i]);
              if (closure) {
                if (used_closure && next != exact) code[i] |= 4;
                if (!used_closure) code[i] |= 2;
              }
              next = exact;
            }
            if (used_closure) code[i] |= 1;
            proposed[i] = next;
          },
          /*min_parallel=*/256, /*grain=*/64);
      result.cell_visits += cells.size();
      if (closure) {
        for (const std::uint8_t c : code) {
          result.closure_hits += c & 1;
          result.closure_fallbacks += (c >> 1) & 1;
          result.oracle_mismatches += (c >> 2) & 1;
        }
      }
      Assignment next_assignment = result.assignment;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cur = static_cast<std::size_t>(result.assignment[i]);
        if (groups[cur].size() == 1) continue;
        const std::size_t next = proposed[i];
        if (next != cur) {
          if (closure && !options.closure_oracle &&
              move_delta(i, groups[cur], groups[next]) >= 0.0) {
            // Closure move fails the live improvement check — reject it
            // (it was priced on a stale snapshot).  Counted as a fallback:
            // the closure verdict did not stand on its own.
            ++result.closure_fallbacks;
            continue;
          }
          groups[cur].remove(cells[i]);
          groups[next].add(cells[i]);
          next_assignment[i] = static_cast<int>(next);
          moved = true;
        }
      }
      result.assignment = std::move(next_assignment);
    }

    if (!moved) {
      result.converged = true;
      break;
    }

    if (!options.resumable) {
      const double waste = TotalExpectedWaste(cells, result.assignment, static_cast<int>(K));
      if (waste < best_waste) {
        best_waste = waste;
        best_assignment = result.assignment;
        stale_passes = 0;
      } else if (++stale_passes >= kPatience) {
        break;  // oscillating without improvement
      }
    }
    if (options.budget.max_cell_visits != 0 &&
        result.cell_visits >= options.budget.max_cell_visits) {
      capped_out = true;
      break;
    }
  }

  if (!options.resumable) {
    if (TotalExpectedWaste(cells, result.assignment, static_cast<int>(K)) > best_waste)
      result.assignment = std::move(best_assignment);
  }
  result.budget_exhausted =
      !result.converged && (options.resumable || capped_out ||
                            (options.budget.max_passes != 0 &&
                             result.iterations >= options.budget.max_passes));
  return result;
}

}  // namespace pubsub
