// Multicast-group lifecycle management under subscription churn
// (§4.2: iterative clustering absorbs membership changes with "a number of
// re-balancing iterations"; §6 item 5: "clustering groups need to be
// constantly updated, since subscribers change their preferences, join and
// leave the network").
//
// GroupManager owns the moving parts of a deployment — the workload copy,
// the grid, the K-means assignment and the matcher — and exposes a churn
// API:
//
//   add_subscriber / update_subscriber / remove_subscriber
//       record changes (cheap; the live matcher keeps serving).
//   refresh()
//       rebuilds the grid for the churned workload and repairs the
//       clustering: each new hyper-cell inherits the group that owned the
//       plurality of its lattice cells, then a few MacQueen re-balancing
//       passes run from that warm start.  If too large a fraction of the
//       population churned since the last full build, refresh falls back
//       to a cold re-clustering (warm starts stop paying off once the
//       inherited structure is mostly stale).
//
// The matcher is swapped atomically at the end of refresh(); between
// refreshes, matching uses the last clustering (new subscribers are not
// yet in any group and are served by the caller's exact-match unicast
// path, exactly like unfed cells).
//
// The between-refresh window is a load-bearing contract: the matcher knows
// nothing about subscribers added or updated since the last refresh, and a
// multicast decision covers only the matched group's members.  A caller
// that computes the exact interested set from the *live* table (e.g. the
// broker service layer) must therefore unicast to interested \ group —
// otherwise a not-yet-refreshed subscriber silently loses events.
// test_group_manager.cc pins this recipe down; broker/broker.cc relies on
// it.
#pragma once

#include <cstddef>
#include <memory>

#include "core/grid.h"
#include "core/kmeans.h"
#include "core/matching.h"
#include "obs/metrics.h"
#include "workload/publication_model.h"
#include "workload/types.h"

namespace pubsub {

struct GroupManagerOptions {
  std::size_t num_groups = 100;
  std::size_t max_cells = 6000;
  KMeansVariant variant = KMeansVariant::kMacQueen;
  // Re-balancing passes per warm refresh.
  std::size_t rebalance_passes = 5;
  // Fall back to cold re-clustering when more than this fraction of the
  // population churned since the last full build.
  double full_rebuild_fraction = 0.5;
  double matcher_threshold = 0.0;
  // Closure-accelerated assignment (core/kmeans.h): candidate groups come
  // from grid adjacency instead of a full K-scan, with exact-scan
  // fallback.  `closure_oracle` runs the exact scan alongside every
  // closure decision and uses its verdict (bit-identical output, mismatch
  // counting) — a diagnostics mode.
  bool closure = false;
  std::size_t closure_seed_groups = 4;
  bool closure_oracle = false;
  // Budgeted refresh: caps the k-means work of one refresh() call and
  // switches the iteration to resumable mode — a refresh that exhausts its
  // budget reports refresh_incomplete(), and the next refresh resumes from
  // the assignment left behind (warm inheritance carries it over), so
  // re-clustering is amortized across calls.  When limited, it replaces
  // the `rebalance_passes` warm cap; the budgeted pass sequence runs to
  // the same fixpoint a single uncapped call would reach.
  KMeansBudget refresh_budget;
  // Telemetry sink (nullable).  The manager publishes churn/refresh
  // gauges + counters here and hands the registry to every matcher it
  // builds; the broker injects its per-instance registry.
  MetricsRegistry* metrics = nullptr;
};

class GroupManager {
 public:
  // Copies the workload; `pub` must outlive the manager.
  GroupManager(Workload workload, const PublicationModel& pub,
               const GroupManagerOptions& options = {});

  // Snapshot restore: rebuilds the grid deterministically from `workload`
  // and adopts `assignment` verbatim (no re-clustering), so the restored
  // matcher is bit-identical to the one captured.  `assignment` must have
  // exactly one label per clustered hyper-cell of the rebuilt grid
  // (std::invalid_argument otherwise — the snapshot belongs to a different
  // workload or options set).
  GroupManager(Workload workload, const PublicationModel& pub,
               const GroupManagerOptions& options, Assignment assignment,
               std::size_t churn_since_full_build);

  const Workload& workload() const { return workload_; }
  const Grid& grid() const { return *grid_; }
  const GridMatcher& matcher() const { return *matcher_; }
  const Assignment& assignment() const { return assignment_; }

  // --- churn API --------------------------------------------------------
  SubscriberId add_subscriber(NodeId node, const Rect& interest);
  void update_subscriber(SubscriberId id, const Rect& interest);
  // Removal keeps the id slot (membership vectors stay aligned) with an
  // empty interest; the subscriber matches nothing from the next refresh.
  void remove_subscriber(SubscriberId id);

  // Changes recorded since the last refresh.
  std::size_t pending_churn() const { return pending_churn_; }
  // Changes accumulated since the last cold (full) build; snapshotted and
  // restored by the broker so warm/cold refresh decisions replay exactly.
  std::size_t churn_since_full_build() const { return churn_since_full_build_; }

  struct RefreshStats {
    std::size_t churned = 0;
    bool full_rebuild = false;
    std::size_t iterations = 0;  // k-means passes executed
    std::size_t cell_visits = 0;
    // The refresh budget ran out with re-balancing moves still pending;
    // call refresh() again to continue from the current assignment.
    bool budget_exhausted = false;
  };
  RefreshStats refresh();

  // True when the last refresh stopped on its budget before convergence
  // (see GroupManagerOptions::refresh_budget).  The matcher is live and
  // correct either way — the assignment is a feasible K-partition after
  // every pass; this only signals that re-balancing has more to do.
  bool refresh_incomplete() const { return refresh_incomplete_; }

 private:
  // `allow_budget` is false only for the constructor's initial build: a
  // fresh manager has nothing to resume, and the broker's construction-time
  // checkpoint must sit at a complete-refresh boundary.
  void rebuild(bool warm, bool allow_budget = true);
  void make_matcher(std::size_t num_cells);
  void init_metrics();
  void publish_churn_gauges();

  Workload workload_;
  const PublicationModel* pub_;
  GroupManagerOptions options_;
  std::unique_ptr<Grid> grid_;
  Assignment assignment_;
  std::unique_ptr<GridMatcher> matcher_;
  std::size_t pending_churn_ = 0;
  std::size_t churn_since_full_build_ = 0;
  std::size_t last_iterations_ = 0;
  std::size_t last_cell_visits_ = 0;
  bool refresh_incomplete_ = false;

  // Telemetry (nullable; see obs/metrics.h).
  Counter* c_refreshes_warm_ = nullptr;
  Counter* c_refreshes_cold_ = nullptr;
  Counter* c_kmeans_passes_ = nullptr;
  Counter* c_kmeans_cell_visits_ = nullptr;
  Counter* c_kmeans_closure_hits_ = nullptr;
  Counter* c_kmeans_closure_fallbacks_ = nullptr;
  Counter* c_kmeans_oracle_mismatches_ = nullptr;
  Gauge* g_refresh_incomplete_ = nullptr;
  Gauge* g_pending_churn_ = nullptr;
  Gauge* g_churn_since_full_ = nullptr;
  Gauge* g_last_churned_ = nullptr;
  Gauge* g_last_iterations_ = nullptr;
  Gauge* g_clustered_cells_ = nullptr;
  Gauge* g_table_size_ = nullptr;
};

}  // namespace pubsub
