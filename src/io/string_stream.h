// Reusable in-memory output stream.
//
// std::ostringstream allocates a fresh buffer per instance, which made the
// broker's per-record journal serialization the last allocation on the
// publish hot path.  StringStream formats into a retained std::string:
// reset() clears the content but keeps the capacity, so steady-state use
// never touches the heap (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <ostream>
#include <streambuf>
#include <string>

namespace pubsub {

class StringStream : private std::streambuf, public std::ostream {
 public:
  StringStream() : std::ostream(static_cast<std::streambuf*>(this)) {}
  StringStream(const StringStream&) = delete;
  StringStream& operator=(const StringStream&) = delete;

  // Empties the buffer (capacity retained) and clears stream state.
  void reset() {
    buf_.clear();
    std::ostream::clear();
  }
  const std::string& str() const { return buf_; }

 protected:
  // Both bases typedef int_type/traits_type; qualify via the streambuf.
  using Buf = std::streambuf;
  Buf::int_type overflow(Buf::int_type ch) override {
    if (!Buf::traits_type::eq_int_type(ch, Buf::traits_type::eof()))
      buf_.push_back(Buf::traits_type::to_char_type(ch));
    return Buf::traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    buf_.append(s, static_cast<std::size_t>(n));
    return n;
  }

 private:
  std::string buf_;
};

}  // namespace pubsub
