// Injectable append-only sink for the broker's durability seams.
//
// The broker never writes a journal record or snapshot straight to a
// std::ostream: it goes through a FileSink, so the failure modes of real
// storage — short writes, torn tails, fsync errors, crashes mid-append —
// can be injected deterministically at the named fail-point sites of
// util/failpoint.h and the recovery/degradation paths tested without a
// faulty disk.
//
// Semantics mirror POSIX append + fsync:
//   * write() may accept fewer bytes than offered (a short write); the
//     caller retries the remainder.
//   * flush() pushes accepted bytes to stable storage; false means the
//     bytes may not be durable (fsync error) and the caller must retry or
//     degrade (see Broker's DurabilityOptions).
//   * Either call may throw InjectedCrash (simulated process death).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace pubsub {

class FileSink {
 public:
  virtual ~FileSink() = default;
  // Append up to n bytes; returns the count accepted (<= n).
  virtual std::size_t write(const char* data, std::size_t n) = 0;
  // Make accepted bytes durable; false = flush failure.
  virtual bool flush() = 0;
};

// FileSink over any std::ostream, consulting the fail-point registry at
// "<site_prefix>.write" and "<site_prefix>.flush" on every call:
//   error at .write → short write of the fail point's ARG bytes
//   error at .flush → flush() returns false
//   torn  at .write → ARG bytes reach the stream, then InjectedCrash
//   crash           → InjectedCrash before the operation
// With the registry inactive this is a plain pass-through.
class StreamSink : public FileSink {
 public:
  explicit StreamSink(std::ostream& os, std::string site_prefix = "journal");
  std::size_t write(const char* data, std::size_t n) override;
  bool flush() override;

  // Re-point at another stream (chaos kill/recover cycles reattach the
  // surviving journal); fail-point sites are unchanged.
  void reset(std::ostream& os);

 private:
  std::ostream* os_;
  std::string write_site_;
  std::string flush_site_;
};

}  // namespace pubsub
