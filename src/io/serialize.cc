#include "io/serialize.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pubsub {
namespace {

// Reader with line counting for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  std::string next() {
    std::string line;
    if (!next_or_eof(&line)) fail("unexpected end of file");
    return line;
  }

  // Like next(), but returns false at a clean end of file (for appendable
  // formats whose record count is not declared up front).
  bool next_or_eof(std::string* out) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      // getline sets eofbit iff it stopped at end-of-stream instead of a
      // delimiter, so this is exactly "the line has its trailing newline".
      last_terminated_ = !is_.eof();
      *out = std::move(line);
      return true;
    }
    return false;
  }

  // Whether the line last returned by next()/next_or_eof ended in '\n'.
  // An unterminated final line is the signature of a crash mid-append
  // (records are serialized newline-included and written in one call).
  bool last_line_terminated() const { return last_terminated_; }

  int line_no() const { return line_no_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse error at line " + std::to_string(line_no_) +
                             ": " + what);
  }

  void expect(const std::string& line, const std::string& want) {
    if (line != want) fail("expected '" + want + "', got '" + line + "'");
  }

 private:
  std::istream& is_;
  int line_no_ = 0;
  bool last_terminated_ = true;
};

void WriteDouble(std::ostream& os, double x) {
  if (x == std::numeric_limits<double>::infinity())
    os << "inf";
  else if (x == -std::numeric_limits<double>::infinity())
    os << "-inf";
  else
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << x;
}

double ParseDouble(LineReader& r, const std::string& tok) {
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  if (tok == "-inf") return -std::numeric_limits<double>::infinity();
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) r.fail("trailing characters in number '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    r.fail("bad number '" + tok + "'");
  }
}

long ParseLong(LineReader& r, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(tok, &pos);
    if (pos != tok.size()) r.fail("trailing characters in integer '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    r.fail("bad integer '" + tok + "'");
  }
}

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(std::move(t));
  return toks;
}

std::vector<std::string> SplitN(LineReader& r, const std::string& line, std::size_t n) {
  std::vector<std::string> toks = Split(line);
  if (toks.size() != n)
    r.fail("expected " + std::to_string(n) + " fields, got " +
           std::to_string(toks.size()));
  return toks;
}

}  // namespace

// ------------------------------------------------------------------ Graph

void WriteGraph(std::ostream& os, const Graph& g) {
  os << "pubsub-graph v1\n";
  os << "nodes " << g.num_nodes() << "\n";
  os << "edges " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ';
    WriteDouble(os, e.cost);
    os << '\n';
  }
}

Graph ReadGraph(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-graph v1");
  const auto nodes_line = SplitN(r, r.next(), 2);
  if (nodes_line[0] != "nodes") r.fail("expected 'nodes'");
  const long n = ParseLong(r, nodes_line[1]);
  if (n < 0) r.fail("negative node count");
  const auto edges_line = SplitN(r, r.next(), 2);
  if (edges_line[0] != "edges") r.fail("expected 'edges'");
  const long m = ParseLong(r, edges_line[1]);

  Graph g(static_cast<int>(n));
  for (long i = 0; i < m; ++i) {
    const auto toks = SplitN(r, r.next(), 3);
    const long u = ParseLong(r, toks[0]);
    const long v = ParseLong(r, toks[1]);
    const double cost = ParseDouble(r, toks[2]);
    if (u < 0 || u >= n || v < 0 || v >= n) r.fail("edge endpoint out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), cost);
  }
  return g;
}

// ----------------------------------------------------------- TransitStub

void WriteTransitStub(std::ostream& os, const TransitStubNetwork& net) {
  os << "pubsub-transit-stub v1\n";
  WriteGraph(os, net.graph);
  os << "stubs " << net.num_stubs << "\n";
  os << "transit " << net.transit_nodes.size() << "\n";
  for (const NodeId v : net.transit_nodes) os << v << '\n';
  os << "node-meta " << net.stub_of_node.size() << "\n";
  for (std::size_t v = 0; v < net.stub_of_node.size(); ++v)
    os << net.stub_of_node[v] << ' ' << net.block_of_node[v] << '\n';
  os << "block-of-stub " << net.block_of_stub.size() << "\n";
  for (const int b : net.block_of_stub) os << b << '\n';
  os << "stub-members " << net.stub_members.size() << "\n";
  for (const auto& members : net.stub_members) {
    os << members.size();
    for (const NodeId v : members) os << ' ' << v;
    os << '\n';
  }
}

TransitStubNetwork ReadTransitStub(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-transit-stub v1");
  TransitStubNetwork net;
  {
    // The embedded graph re-reads from the same stream; reuse the parser by
    // collecting its lines is overkill — inline the same grammar.
    r.expect(r.next(), "pubsub-graph v1");
    const auto nodes_line = SplitN(r, r.next(), 2);
    if (nodes_line[0] != "nodes") r.fail("expected 'nodes'");
    const long n = ParseLong(r, nodes_line[1]);
    const auto edges_line = SplitN(r, r.next(), 2);
    if (edges_line[0] != "edges") r.fail("expected 'edges'");
    const long m = ParseLong(r, edges_line[1]);
    net.graph = Graph(static_cast<int>(n));
    for (long i = 0; i < m; ++i) {
      const auto toks = SplitN(r, r.next(), 3);
      net.graph.add_edge(static_cast<NodeId>(ParseLong(r, toks[0])),
                         static_cast<NodeId>(ParseLong(r, toks[1])),
                         ParseDouble(r, toks[2]));
    }
  }
  const int n = net.graph.num_nodes();

  auto counted = [&r](const char* key) {
    // returns the count after validating the keyword
    return [&r, key]() -> long {
      std::vector<std::string> toks = SplitN(r, r.next(), 2);
      if (toks[0] != key) r.fail(std::string("expected '") + key + "'");
      return ParseLong(r, toks[1]);
    }();
  };

  net.num_stubs = static_cast<int>(counted("stubs"));
  const long transit = counted("transit");
  for (long i = 0; i < transit; ++i) {
    const long v = ParseLong(r, SplitN(r, r.next(), 1)[0]);
    if (v < 0 || v >= n) r.fail("transit node out of range");
    net.transit_nodes.push_back(static_cast<NodeId>(v));
  }
  const long meta = counted("node-meta");
  if (meta != n) r.fail("node-meta count mismatch");
  for (long i = 0; i < meta; ++i) {
    const auto toks = SplitN(r, r.next(), 2);
    net.stub_of_node.push_back(static_cast<int>(ParseLong(r, toks[0])));
    net.block_of_node.push_back(static_cast<int>(ParseLong(r, toks[1])));
  }
  const long blocks = counted("block-of-stub");
  if (blocks != net.num_stubs) r.fail("block-of-stub count mismatch");
  for (long i = 0; i < blocks; ++i)
    net.block_of_stub.push_back(static_cast<int>(ParseLong(r, SplitN(r, r.next(), 1)[0])));
  const long stubs = counted("stub-members");
  if (stubs != net.num_stubs) r.fail("stub-members count mismatch");
  for (long s = 0; s < stubs; ++s) {
    const auto toks = Split(r.next());
    if (toks.empty()) r.fail("empty stub-members line");
    const long count = ParseLong(r, toks[0]);
    if (static_cast<long>(toks.size()) != count + 1) r.fail("stub member count mismatch");
    std::vector<NodeId> members;
    for (long i = 1; i <= count; ++i) {
      const long v = ParseLong(r, toks[static_cast<std::size_t>(i)]);
      if (v < 0 || v >= n) r.fail("stub member out of range");
      members.push_back(static_cast<NodeId>(v));
    }
    net.stub_members.push_back(std::move(members));
  }
  return net;
}

// --------------------------------------------------------------- Workload

void WriteWorkload(std::ostream& os, const Workload& wl) {
  os << "pubsub-workload v1\n";
  os << "dims " << wl.space.dims() << "\n";
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    os << wl.space.dim(d).name << ' ' << wl.space.dim(d).domain_size << '\n';
  os << "subscribers " << wl.subscribers.size() << "\n";
  for (const Subscriber& s : wl.subscribers) {
    os << s.node;
    for (const Interval& iv : s.interest.intervals()) {
      os << ' ';
      WriteDouble(os, iv.lo());
      os << ' ';
      WriteDouble(os, iv.hi());
    }
    os << '\n';
  }
}

Workload ReadWorkload(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-workload v1");
  const auto dims_line = SplitN(r, r.next(), 2);
  if (dims_line[0] != "dims") r.fail("expected 'dims'");
  const long dims = ParseLong(r, dims_line[1]);
  if (dims <= 0) r.fail("non-positive dimension count");

  std::vector<DimensionSpec> specs;
  for (long d = 0; d < dims; ++d) {
    const auto toks = SplitN(r, r.next(), 2);
    DimensionSpec spec;
    spec.name = toks[0];
    spec.domain_size = static_cast<int>(ParseLong(r, toks[1]));
    specs.push_back(std::move(spec));
  }

  Workload wl;
  wl.space = EventSpace(std::move(specs));

  const auto subs_line = SplitN(r, r.next(), 2);
  if (subs_line[0] != "subscribers") r.fail("expected 'subscribers'");
  const long count = ParseLong(r, subs_line[1]);
  for (long i = 0; i < count; ++i) {
    const auto toks = SplitN(r, r.next(), 1 + 2 * static_cast<std::size_t>(dims));
    Subscriber s;
    s.node = static_cast<NodeId>(ParseLong(r, toks[0]));
    std::vector<Interval> ivals;
    for (long d = 0; d < dims; ++d) {
      const double lo = ParseDouble(r, toks[1 + 2 * static_cast<std::size_t>(d)]);
      const double hi = ParseDouble(r, toks[2 + 2 * static_cast<std::size_t>(d)]);
      ivals.emplace_back(lo, hi);
    }
    s.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(s));
  }
  return wl;
}

// ------------------------------------------------------------- Clustering

void WriteClustering(std::ostream& os, const ClusteringFile& c) {
  os << "pubsub-clustering v1\n";
  os << "groups " << c.num_groups << "\n";
  os << "cells " << c.cells_fed << "\n";
  for (const int g : c.assignment) os << g << '\n';
}

ClusteringFile ReadClustering(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-clustering v1");
  ClusteringFile c;
  const auto groups_line = SplitN(r, r.next(), 2);
  if (groups_line[0] != "groups") r.fail("expected 'groups'");
  c.num_groups = static_cast<int>(ParseLong(r, groups_line[1]));
  const auto cells_line = SplitN(r, r.next(), 2);
  if (cells_line[0] != "cells") r.fail("expected 'cells'");
  const long cells = ParseLong(r, cells_line[1]);
  c.cells_fed = static_cast<std::size_t>(cells);
  for (long i = 0; i < cells; ++i) {
    const int g = static_cast<int>(ParseLong(r, SplitN(r, r.next(), 1)[0]));
    if (g < -1 || g >= c.num_groups) r.fail("group id out of range");
    c.assignment.push_back(g);
  }
  return c;
}

// ----------------------------------------------------------------- broker

namespace {

// Counter fields in snapshot `stats` line order.  Keep in sync with
// BrokerStats; the format version guards the field list.  v1 files carry
// the first 15 fields; v2 appends the durability/degradation counters.
constexpr std::size_t kNumStatFieldsV1 = 15;
constexpr std::size_t kNumStatFieldsV2 = 19;

// Pointers to the stats fields in serialized order (v1 prefix first).
std::vector<std::uint64_t*> StatFields(BrokerStats& s) {
  return {&s.commands_applied,   &s.subscribes,
          &s.unsubscribes,       &s.updates,
          &s.publishes,          &s.events_matched,
          &s.multicast_events,   &s.unicast_events,
          &s.messages_emitted,   &s.wasted_deliveries,
          &s.refreshes,          &s.full_rebuilds,
          &s.journal_bytes,      &s.snapshot_bytes,
          &s.replayed_records,   &s.journal_flush_failures,
          &s.journal_flush_retries, &s.degraded_entries,
          &s.mutations_rejected};
}

std::uint64_t ParseCount(LineReader& r, const std::string& tok) {
  const long v = ParseLong(r, tok);
  if (v < 0) r.fail("negative counter '" + tok + "'");
  return static_cast<std::uint64_t>(v);
}

void WriteRect(std::ostream& os, const Rect& rect) {
  for (const Interval& iv : rect.intervals()) {
    os << ' ';
    WriteDouble(os, iv.lo());
    os << ' ';
    WriteDouble(os, iv.hi());
  }
}

Rect ParseRect(LineReader& r, const std::vector<std::string>& toks,
               std::size_t offset, std::size_t dims) {
  std::vector<Interval> ivals;
  ivals.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d)
    ivals.emplace_back(ParseDouble(r, toks[offset + 2 * d]),
                       ParseDouble(r, toks[offset + 2 * d + 1]));
  return Rect(std::move(ivals));
}

}  // namespace

void WriteCovering(std::ostream& os, const CoveringState& state) {
  os << "pubsub-covering v1\n";
  os << "entries " << state.entries.size() << '\n';
  os << "free " << state.free_list.size() << '\n';
  for (const CoveringEntryState& e : state.entries) {
    os << "entry " << e.id << ' ' << e.parent << ' ' << e.subs.size() << ' '
       << e.children.size();
    WriteRect(os, e.rect);
    os << '\n';
    for (const SubscriberId s : e.subs) os << s << '\n';
    for (const int c : e.children) os << c << '\n';
  }
  for (const int f : state.free_list) os << f << '\n';
}

CoveringState ReadCovering(std::istream& is, std::size_t dims) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-covering v1");
  CoveringState state;
  const auto entries_line = SplitN(r, r.next(), 2);
  if (entries_line[0] != "entries") r.fail("expected 'entries'");
  const long entries = ParseLong(r, entries_line[1]);
  if (entries < 0) r.fail("negative entry count");
  const auto free_line = SplitN(r, r.next(), 2);
  if (free_line[0] != "free") r.fail("expected 'free'");
  const long free_count = ParseLong(r, free_line[1]);
  if (free_count < 0) r.fail("negative free-list count");
  state.entries.reserve(static_cast<std::size_t>(entries));
  for (long i = 0; i < entries; ++i) {
    const auto toks = SplitN(r, r.next(), 5 + 2 * dims);
    if (toks[0] != "entry") r.fail("expected 'entry'");
    CoveringEntryState e;
    e.id = static_cast<int>(ParseLong(r, toks[1]));
    e.parent = static_cast<int>(ParseLong(r, toks[2]));
    const long nsubs = ParseLong(r, toks[3]);
    const long nchildren = ParseLong(r, toks[4]);
    if (e.id < 0) r.fail("negative entry id");
    if (e.parent < -1) r.fail("bad parent id");
    if (nsubs < 0 || nchildren < 0) r.fail("negative list count");
    e.rect = ParseRect(r, toks, 5, dims);
    e.subs.reserve(static_cast<std::size_t>(nsubs));
    for (long k = 0; k < nsubs; ++k) {
      const long s = ParseLong(r, SplitN(r, r.next(), 1)[0]);
      if (s < 0) r.fail("negative subscriber id");
      e.subs.push_back(static_cast<SubscriberId>(s));
    }
    e.children.reserve(static_cast<std::size_t>(nchildren));
    for (long k = 0; k < nchildren; ++k) {
      const long c = ParseLong(r, SplitN(r, r.next(), 1)[0]);
      if (c < 0) r.fail("negative child id");
      e.children.push_back(static_cast<int>(c));
    }
    state.entries.push_back(std::move(e));
  }
  state.free_list.reserve(static_cast<std::size_t>(free_count));
  for (long i = 0; i < free_count; ++i) {
    const long f = ParseLong(r, SplitN(r, r.next(), 1)[0]);
    if (f < 0) r.fail("negative free-list id");
    state.free_list.push_back(static_cast<int>(f));
  }
  return state;
}

void WriteBrokerSnapshot(std::ostream& os, const BrokerSnapshot& snap) {
  os << "pubsub-broker-snapshot v3\n";
  os << "seq " << snap.seq << '\n';
  os << "churn-since-full-build " << snap.churn_since_full_build << '\n';
  BrokerStats stats_copy = snap.stats;
  os << "stats";
  for (const std::uint64_t* field : StatFields(stats_copy)) os << ' ' << *field;
  os << '\n';
  os << "queue " << snap.queue_state.size() << '\n';
  for (const double v : snap.queue_state) {
    WriteDouble(os, v);
    os << '\n';
  }
  WriteWorkload(os, snap.workload);
  ClusteringFile c;
  c.num_groups = snap.num_groups;
  c.cells_fed = static_cast<std::size_t>(snap.cells_fed);
  c.assignment = snap.assignment;
  WriteClustering(os, c);
  WriteCovering(os, snap.covering);
}

BrokerSnapshot ReadBrokerSnapshot(std::istream& is) {
  BrokerSnapshot snap;
  bool has_covering = true;
  {
    LineReader r(is);
    const std::string header = r.next();
    std::size_t num_stat_fields = kNumStatFieldsV2;
    if (header == "pubsub-broker-snapshot v1") {
      num_stat_fields = kNumStatFieldsV1;  // back-compat: pre-durability file
      has_covering = false;
    } else if (header == "pubsub-broker-snapshot v2") {
      has_covering = false;  // back-compat: pre-covering file
    } else if (header != "pubsub-broker-snapshot v3") {
      r.fail("expected 'pubsub-broker-snapshot v3', got '" + header + "'");
    }
    const auto seq_line = SplitN(r, r.next(), 2);
    if (seq_line[0] != "seq") r.fail("expected 'seq'");
    snap.seq = ParseCount(r, seq_line[1]);
    const auto churn_line = SplitN(r, r.next(), 2);
    if (churn_line[0] != "churn-since-full-build")
      r.fail("expected 'churn-since-full-build'");
    snap.churn_since_full_build = ParseCount(r, churn_line[1]);

    const auto stats = SplitN(r, r.next(), 1 + num_stat_fields);
    if (stats[0] != "stats") r.fail("expected 'stats'");
    const std::vector<std::uint64_t*> fields = StatFields(snap.stats);
    for (std::size_t i = 0; i < num_stat_fields; ++i)
      *fields[i] = ParseCount(r, stats[i + 1]);

    const auto queue_line = SplitN(r, r.next(), 2);
    if (queue_line[0] != "queue") r.fail("expected 'queue'");
    const long queue = ParseLong(r, queue_line[1]);
    if (queue < 0) r.fail("negative queue size");
    snap.queue_state.reserve(static_cast<std::size_t>(queue));
    for (long i2 = 0; i2 < queue; ++i2) {
      const double v = ParseDouble(r, SplitN(r, r.next(), 1)[0]);
      if (!std::isfinite(v) || v < 0.0) r.fail("bad queue timestamp");
      snap.queue_state.push_back(v);
    }
  }
  // Embedded records carry their own headers; their readers consume exactly
  // their lines, so parsing continues on the same stream.
  snap.workload = ReadWorkload(is);
  const ClusteringFile c = ReadClustering(is);
  snap.num_groups = c.num_groups;
  snap.cells_fed = c.cells_fed;
  snap.assignment = c.assignment;
  if (has_covering)
    snap.covering = ReadCovering(is, snap.workload.space.dims());
  return snap;
}

void WriteJournalHeader(std::ostream& os, std::size_t dims) {
  os << "pubsub-journal v1\n";
  os << "dims " << dims << '\n';
}

void WriteJournalRecord(std::ostream& os, const JournalRecord& rec,
                        std::size_t dims) {
  os << rec.seq << ' ';
  WriteDouble(os, rec.cmd.time_ms);
  switch (rec.cmd.type) {
    case BrokerCommandType::kSubscribe:
      if (rec.cmd.interest.dims() != dims)
        throw std::invalid_argument("WriteJournalRecord: interest dims mismatch");
      os << " sub " << rec.cmd.node;
      WriteRect(os, rec.cmd.interest);
      break;
    case BrokerCommandType::kUnsubscribe:
      os << " unsub " << rec.cmd.subscriber;
      break;
    case BrokerCommandType::kUpdate:
      if (rec.cmd.interest.dims() != dims)
        throw std::invalid_argument("WriteJournalRecord: interest dims mismatch");
      os << " upd " << rec.cmd.subscriber;
      WriteRect(os, rec.cmd.interest);
      break;
    case BrokerCommandType::kPublish:
      if (rec.cmd.point.size() != dims)
        throw std::invalid_argument("WriteJournalRecord: point dims mismatch");
      os << " pub " << rec.cmd.node;
      for (const double x : rec.cmd.point) {
        os << ' ';
        WriteDouble(os, x);
      }
      break;
  }
  os << '\n';
}

const char* JournalErrorCodeName(JournalErrorCode code) {
  switch (code) {
    case JournalErrorCode::kBadHeader: return "bad-header";
    case JournalErrorCode::kMalformedRecord: return "malformed-record";
    case JournalErrorCode::kTornTail: return "torn-tail";
    case JournalErrorCode::kSeqGap: return "seq-gap";
  }
  return "unknown";
}

JournalError::JournalError(JournalErrorCode code, int line_no,
                           const std::string& what)
    : std::runtime_error("journal error [" +
                         std::string(JournalErrorCodeName(code)) +
                         "] at line " + std::to_string(line_no) + ": " + what),
      code_(code),
      line_no_(line_no) {}

namespace {

// One record line, seq checks excluded (the caller owns the gap/torn-tail
// classification).  Throws plain runtime_error via r.fail on damage.
JournalRecord ParseJournalRecordLine(LineReader& r, const std::string& line,
                                     std::size_t dims) {
  const std::vector<std::string> toks = Split(line);
  if (toks.size() < 4) r.fail("truncated journal record");
  JournalRecord rec;
  rec.seq = ParseCount(r, toks[0]);
  rec.cmd.time_ms = ParseDouble(r, toks[1]);
  if (!std::isfinite(rec.cmd.time_ms) || rec.cmd.time_ms < 0.0)
    r.fail("bad command timestamp");

  const std::string& type = toks[2];
  const std::size_t rect_fields = 2 * dims;
  if (type == "sub") {
    if (toks.size() != 4 + rect_fields) r.fail("bad subscribe record");
    rec.cmd.type = BrokerCommandType::kSubscribe;
    const long node = ParseLong(r, toks[3]);
    if (node < 0) r.fail("negative node id");
    rec.cmd.node = static_cast<NodeId>(node);
    rec.cmd.interest = ParseRect(r, toks, 4, dims);
  } else if (type == "unsub") {
    if (toks.size() != 4) r.fail("bad unsubscribe record");
    rec.cmd.type = BrokerCommandType::kUnsubscribe;
    const long id = ParseLong(r, toks[3]);
    if (id < 0) r.fail("negative subscriber id");
    rec.cmd.subscriber = static_cast<SubscriberId>(id);
  } else if (type == "upd") {
    if (toks.size() != 4 + rect_fields) r.fail("bad update record");
    rec.cmd.type = BrokerCommandType::kUpdate;
    const long id = ParseLong(r, toks[3]);
    if (id < 0) r.fail("negative subscriber id");
    rec.cmd.subscriber = static_cast<SubscriberId>(id);
    rec.cmd.interest = ParseRect(r, toks, 4, dims);
  } else if (type == "pub") {
    if (toks.size() != 4 + dims) r.fail("bad publish record");
    rec.cmd.type = BrokerCommandType::kPublish;
    const long node = ParseLong(r, toks[3]);
    if (node < 0) r.fail("negative origin node");
    rec.cmd.node = static_cast<NodeId>(node);
    rec.cmd.point.reserve(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double x = ParseDouble(r, toks[4 + d]);
      if (!std::isfinite(x)) r.fail("non-finite event coordinate");
      rec.cmd.point.push_back(x);
    }
  } else {
    r.fail("unknown journal record type '" + type + "'");
  }
  return rec;
}

JournalFile ParseJournal(std::istream& is, bool lenient, bool* torn_tail,
                         std::string* tail_error) {
  LineReader r(is);
  JournalFile jf;
  try {
    r.expect(r.next(), "pubsub-journal v1");
    const auto dims_line = SplitN(r, r.next(), 2);
    if (dims_line[0] != "dims") r.fail("expected 'dims'");
    const long dims = ParseLong(r, dims_line[1]);
    if (dims <= 0) r.fail("non-positive dimension count");
    jf.dims = static_cast<std::size_t>(dims);
  } catch (const std::runtime_error& e) {
    throw JournalError(JournalErrorCode::kBadHeader, r.line_no(), e.what());
  }

  std::string line;
  while (r.next_or_eof(&line)) {
    try {
      JournalRecord rec = ParseJournalRecordLine(r, line, jf.dims);
      if (rec.seq == 0)
        throw JournalError(JournalErrorCode::kSeqGap, r.line_no(),
                           "journal sequence numbers start at 1");
      if (!jf.records.empty() && rec.seq != jf.records.back().seq + 1)
        throw JournalError(
            JournalErrorCode::kSeqGap, r.line_no(),
            "journal sequence gap: expected " +
                std::to_string(jf.records.back().seq + 1) + ", got " +
                std::to_string(rec.seq));
      jf.records.push_back(std::move(rec));
    } catch (const std::runtime_error& e) {
      // Records are serialized newline-included and appended in one write,
      // so an unterminated final line is a torn append — recoverable by
      // dropping it.  Damage on a terminated line is corruption (or, for a
      // terminated seq anomaly, lost records) and is never dropped.
      if (!r.last_line_terminated()) {
        if (lenient) {
          *torn_tail = true;
          *tail_error = e.what();
          return jf;
        }
        throw JournalError(JournalErrorCode::kTornTail, r.line_no(), e.what());
      }
      if (dynamic_cast<const JournalError*>(&e) != nullptr) throw;
      throw JournalError(JournalErrorCode::kMalformedRecord, r.line_no(),
                         e.what());
    }
  }
  // The final line parsed — but without its newline it may be the prefix
  // of a longer record that happens to parse (e.g. a publish missing the
  // last digits of a coordinate).  Crash-mid-append means the command was
  // never applied, so dropping it is always correct.
  if (!r.last_line_terminated() && !jf.records.empty()) {
    if (!lenient)
      throw JournalError(JournalErrorCode::kTornTail, r.line_no(),
                         "unterminated final record (crash mid-append)");
    *torn_tail = true;
    *tail_error = "unterminated final record (crash mid-append)";
    jf.records.pop_back();
  }
  return jf;
}

}  // namespace

JournalFile ReadJournal(std::istream& is) {
  bool torn = false;
  std::string err;
  return ParseJournal(is, /*lenient=*/false, &torn, &err);
}

JournalReadResult ReadJournalLenient(std::istream& is) {
  JournalReadResult result;
  result.journal =
      ParseJournal(is, /*lenient=*/true, &result.torn_tail, &result.tail_error);
  return result;
}

// ---------------------------------------------------------- fleet manifests

void WriteFleetManifest(std::ostream& os, const FleetManifest& m) {
  os << "pubsub-fleet-manifest v1\n";
  os << "seq " << m.seq << '\n';
  os << "chain " << m.match_chain << '\n';
  os << "shards " << m.shards.size() << '\n';
  for (std::size_t k = 0; k < m.shards.size(); ++k) {
    const FleetManifestShard& s = m.shards[k];
    os << "shard " << k << ' ' << s.seq << ' ' << s.global_ids.size() << '\n';
    if (!s.global_ids.empty()) {
      for (std::size_t i = 0; i < s.global_ids.size(); ++i)
        os << (i == 0 ? "" : " ") << s.global_ids[i];
      os << '\n';
    }
  }
}

FleetManifest ReadFleetManifest(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-fleet-manifest v1");
  FleetManifest m;
  {
    const auto toks = SplitN(r, r.next(), 2);
    if (toks[0] != "seq") r.fail("expected 'seq'");
    m.seq = static_cast<std::uint64_t>(ParseLong(r, toks[1]));
  }
  {
    const auto toks = SplitN(r, r.next(), 2);
    if (toks[0] != "chain") r.fail("expected 'chain'");
    // The chain is a full 64-bit digest; stoul covers the unsigned range
    // stol cannot.
    try {
      std::size_t pos = 0;
      m.match_chain = std::stoull(toks[1], &pos);
      if (pos != toks[1].size()) r.fail("trailing characters in chain");
    } catch (const std::exception&) {
      r.fail("bad chain value '" + toks[1] + "'");
    }
  }
  long num_shards = 0;
  {
    const auto toks = SplitN(r, r.next(), 2);
    if (toks[0] != "shards") r.fail("expected 'shards'");
    num_shards = ParseLong(r, toks[1]);
    if (num_shards < 1) r.fail("fleet needs at least one shard");
  }
  m.shards.resize(static_cast<std::size_t>(num_shards));
  for (long k = 0; k < num_shards; ++k) {
    const auto toks = SplitN(r, r.next(), 4);
    if (toks[0] != "shard") r.fail("expected 'shard'");
    if (ParseLong(r, toks[1]) != k) r.fail("shard entries out of order");
    FleetManifestShard& s = m.shards[static_cast<std::size_t>(k)];
    s.seq = static_cast<std::uint64_t>(ParseLong(r, toks[2]));
    const long slots = ParseLong(r, toks[3]);
    if (slots < 0) r.fail("negative slot count");
    if (slots > 0) {
      const auto ids = SplitN(r, r.next(), static_cast<std::size_t>(slots));
      s.global_ids.reserve(static_cast<std::size_t>(slots));
      for (const std::string& tok : ids) {
        const long id = ParseLong(r, tok);
        if (id < 0) r.fail("negative global subscriber id");
        s.global_ids.push_back(static_cast<SubscriberId>(id));
      }
    }
  }
  return m;
}

std::string FleetManifestPath(const std::string& base) {
  return base + ".manifest";
}
std::string FleetJournalPath(const std::string& base) {
  return base + ".journal";
}
std::string FleetShardSnapshotPath(const std::string& base, std::size_t shard) {
  return base + ".shard" + std::to_string(shard) + ".snap";
}
std::string FleetShardJournalPath(const std::string& base, std::size_t shard) {
  return base + ".shard" + std::to_string(shard) + ".journal";
}

// ---------------------------------------------------------------- metrics

namespace {

// "%.17g" everywhere in the metrics writers: exact round-trip and, more
// importantly for the --threads stability contract, one fixed spelling per
// double value.
std::string MetricDouble(double x) {
  if (x == std::numeric_limits<double>::infinity()) return "+Inf";
  if (x == -std::numeric_limits<double>::infinity()) return "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

// Splits "name{a=\"b\"}" into base name and inner label list ("" if none).
std::pair<std::string, std::string> SplitLabels(const std::string& full) {
  const std::size_t brace = full.find('{');
  if (brace == std::string::npos || full.back() != '}')
    return {full, std::string()};
  return {full.substr(0, brace),
          full.substr(brace + 1, full.size() - brace - 2)};
}

// JSON has no literal for infinities; quote them.
std::string JsonNumber(double x) {
  if (!std::isfinite(x)) return "\"" + MetricDouble(x) + "\"";
  return MetricDouble(x);
}

std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return "{" + labels + "," + extra + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

void WriteMetricsText(std::ostream& os, const MetricsSnapshot& snap) {
  std::string last_base;
  for (const MetricSample& s : snap.samples) {
    const auto [base, labels] = SplitLabels(s.info.name);
    if (base != last_base) {
      if (!s.info.help.empty())
        os << "# HELP " << base << ' ' << s.info.help << '\n';
      os << "# TYPE " << base << ' ' << KindName(s.info.kind) << '\n';
      last_base = base;
    }
    switch (s.info.kind) {
      case MetricKind::kCounter:
        os << s.info.name << ' ' << s.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        os << s.info.name << ' ' << MetricDouble(s.gauge_value) << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < s.hist_buckets.size(); ++b) {
          cum += s.hist_buckets[b];
          const std::string le = b < s.hist_bounds.size()
                                     ? MetricDouble(s.hist_bounds[b])
                                     : "+Inf";
          os << base << "_bucket"
             << WithLabel(labels, "le=\"" + le + "\"") << ' ' << cum << '\n';
        }
        os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
           << ' ' << MetricDouble(s.hist_sum) << '\n';
        os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}")
           << ' ' << s.hist_count << '\n';
        break;
      }
    }
  }
}

void WriteMetricsJson(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : snap.samples) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(s.info.name) << "\",\"kind\":\""
       << KindName(s.info.kind) << "\",\"stability\":\""
       << (s.info.stability == MetricStability::kDeterministic ? "deterministic"
                                                               : "runtime")
       << '"';
    switch (s.info.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << s.counter_value;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << JsonNumber(s.gauge_value);
        break;
      case MetricKind::kHistogram: {
        os << ",\"count\":" << s.hist_count
           << ",\"sum\":" << JsonNumber(s.hist_sum) << ",\"buckets\":[";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < s.hist_buckets.size(); ++b) {
          cum += s.hist_buckets[b];
          if (b > 0) os << ',';
          os << "{\"le\":\""
             << (b < s.hist_bounds.size() ? MetricDouble(s.hist_bounds[b])
                                          : "+Inf")
             << "\",\"count\":" << cum << '}';
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "\n]}\n";
}

void WriteTraceJson(std::ostream& os, std::span<const TraceSpan> spans,
                    std::uint64_t recorded, std::uint64_t dropped) {
  os << "{\"recorded\":" << recorded << ",\"dropped\":" << dropped
     << ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) os << ',';
    first = false;
    // One span object per line so a test (or grep) can reassemble a trace
    // tree without a JSON parser.
    os << "\n{\"trace_id\":" << s.trace_id << ",\"seq\":" << s.seq
       << ",\"shard\":" << s.shard << ",\"stage\":\"" << StageName(s.stage)
       << "\",\"start_ms\":" << JsonNumber(s.start_ms)
       << ",\"duration_ms\":" << JsonNumber(s.duration_ms) << '}';
  }
  os << "\n]}\n";
}

void WriteTraceJson(std::ostream& os, const TraceRing& ring) {
  const std::vector<TraceSpan> spans = ring.spans();
  WriteTraceJson(os, spans, ring.recorded(), ring.dropped());
}

// ------------------------------------------------------------------ files

void SaveToFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << content;
  if (!os) throw std::runtime_error("write failed: " + path);
}

void SaveToFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open for writing: " + tmp);
    os << content;
    os.flush();
    if (!os) throw std::runtime_error("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("rename failed: " + tmp + " -> " + path);
  }
}

std::string LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace pubsub
