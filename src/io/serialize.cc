#include "io/serialize.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pubsub {
namespace {

// Reader with line counting for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  std::string next() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return line;
    }
    fail("unexpected end of file");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse error at line " + std::to_string(line_no_) +
                             ": " + what);
  }

  void expect(const std::string& line, const std::string& want) {
    if (line != want) fail("expected '" + want + "', got '" + line + "'");
  }

 private:
  std::istream& is_;
  int line_no_ = 0;
};

void WriteDouble(std::ostream& os, double x) {
  if (x == std::numeric_limits<double>::infinity())
    os << "inf";
  else if (x == -std::numeric_limits<double>::infinity())
    os << "-inf";
  else
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << x;
}

double ParseDouble(LineReader& r, const std::string& tok) {
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  if (tok == "-inf") return -std::numeric_limits<double>::infinity();
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) r.fail("trailing characters in number '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    r.fail("bad number '" + tok + "'");
  }
}

long ParseLong(LineReader& r, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(tok, &pos);
    if (pos != tok.size()) r.fail("trailing characters in integer '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    r.fail("bad integer '" + tok + "'");
  }
}

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(std::move(t));
  return toks;
}

std::vector<std::string> SplitN(LineReader& r, const std::string& line, std::size_t n) {
  std::vector<std::string> toks = Split(line);
  if (toks.size() != n)
    r.fail("expected " + std::to_string(n) + " fields, got " +
           std::to_string(toks.size()));
  return toks;
}

}  // namespace

// ------------------------------------------------------------------ Graph

void WriteGraph(std::ostream& os, const Graph& g) {
  os << "pubsub-graph v1\n";
  os << "nodes " << g.num_nodes() << "\n";
  os << "edges " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ';
    WriteDouble(os, e.cost);
    os << '\n';
  }
}

Graph ReadGraph(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-graph v1");
  const auto nodes_line = SplitN(r, r.next(), 2);
  if (nodes_line[0] != "nodes") r.fail("expected 'nodes'");
  const long n = ParseLong(r, nodes_line[1]);
  if (n < 0) r.fail("negative node count");
  const auto edges_line = SplitN(r, r.next(), 2);
  if (edges_line[0] != "edges") r.fail("expected 'edges'");
  const long m = ParseLong(r, edges_line[1]);

  Graph g(static_cast<int>(n));
  for (long i = 0; i < m; ++i) {
    const auto toks = SplitN(r, r.next(), 3);
    const long u = ParseLong(r, toks[0]);
    const long v = ParseLong(r, toks[1]);
    const double cost = ParseDouble(r, toks[2]);
    if (u < 0 || u >= n || v < 0 || v >= n) r.fail("edge endpoint out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), cost);
  }
  return g;
}

// ----------------------------------------------------------- TransitStub

void WriteTransitStub(std::ostream& os, const TransitStubNetwork& net) {
  os << "pubsub-transit-stub v1\n";
  WriteGraph(os, net.graph);
  os << "stubs " << net.num_stubs << "\n";
  os << "transit " << net.transit_nodes.size() << "\n";
  for (const NodeId v : net.transit_nodes) os << v << '\n';
  os << "node-meta " << net.stub_of_node.size() << "\n";
  for (std::size_t v = 0; v < net.stub_of_node.size(); ++v)
    os << net.stub_of_node[v] << ' ' << net.block_of_node[v] << '\n';
  os << "block-of-stub " << net.block_of_stub.size() << "\n";
  for (const int b : net.block_of_stub) os << b << '\n';
  os << "stub-members " << net.stub_members.size() << "\n";
  for (const auto& members : net.stub_members) {
    os << members.size();
    for (const NodeId v : members) os << ' ' << v;
    os << '\n';
  }
}

TransitStubNetwork ReadTransitStub(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-transit-stub v1");
  TransitStubNetwork net;
  {
    // The embedded graph re-reads from the same stream; reuse the parser by
    // collecting its lines is overkill — inline the same grammar.
    r.expect(r.next(), "pubsub-graph v1");
    const auto nodes_line = SplitN(r, r.next(), 2);
    if (nodes_line[0] != "nodes") r.fail("expected 'nodes'");
    const long n = ParseLong(r, nodes_line[1]);
    const auto edges_line = SplitN(r, r.next(), 2);
    if (edges_line[0] != "edges") r.fail("expected 'edges'");
    const long m = ParseLong(r, edges_line[1]);
    net.graph = Graph(static_cast<int>(n));
    for (long i = 0; i < m; ++i) {
      const auto toks = SplitN(r, r.next(), 3);
      net.graph.add_edge(static_cast<NodeId>(ParseLong(r, toks[0])),
                         static_cast<NodeId>(ParseLong(r, toks[1])),
                         ParseDouble(r, toks[2]));
    }
  }
  const int n = net.graph.num_nodes();

  auto counted = [&r](const char* key) {
    // returns the count after validating the keyword
    return [&r, key]() -> long {
      std::vector<std::string> toks = SplitN(r, r.next(), 2);
      if (toks[0] != key) r.fail(std::string("expected '") + key + "'");
      return ParseLong(r, toks[1]);
    }();
  };

  net.num_stubs = static_cast<int>(counted("stubs"));
  const long transit = counted("transit");
  for (long i = 0; i < transit; ++i) {
    const long v = ParseLong(r, SplitN(r, r.next(), 1)[0]);
    if (v < 0 || v >= n) r.fail("transit node out of range");
    net.transit_nodes.push_back(static_cast<NodeId>(v));
  }
  const long meta = counted("node-meta");
  if (meta != n) r.fail("node-meta count mismatch");
  for (long i = 0; i < meta; ++i) {
    const auto toks = SplitN(r, r.next(), 2);
    net.stub_of_node.push_back(static_cast<int>(ParseLong(r, toks[0])));
    net.block_of_node.push_back(static_cast<int>(ParseLong(r, toks[1])));
  }
  const long blocks = counted("block-of-stub");
  if (blocks != net.num_stubs) r.fail("block-of-stub count mismatch");
  for (long i = 0; i < blocks; ++i)
    net.block_of_stub.push_back(static_cast<int>(ParseLong(r, SplitN(r, r.next(), 1)[0])));
  const long stubs = counted("stub-members");
  if (stubs != net.num_stubs) r.fail("stub-members count mismatch");
  for (long s = 0; s < stubs; ++s) {
    const auto toks = Split(r.next());
    if (toks.empty()) r.fail("empty stub-members line");
    const long count = ParseLong(r, toks[0]);
    if (static_cast<long>(toks.size()) != count + 1) r.fail("stub member count mismatch");
    std::vector<NodeId> members;
    for (long i = 1; i <= count; ++i) {
      const long v = ParseLong(r, toks[static_cast<std::size_t>(i)]);
      if (v < 0 || v >= n) r.fail("stub member out of range");
      members.push_back(static_cast<NodeId>(v));
    }
    net.stub_members.push_back(std::move(members));
  }
  return net;
}

// --------------------------------------------------------------- Workload

void WriteWorkload(std::ostream& os, const Workload& wl) {
  os << "pubsub-workload v1\n";
  os << "dims " << wl.space.dims() << "\n";
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    os << wl.space.dim(d).name << ' ' << wl.space.dim(d).domain_size << '\n';
  os << "subscribers " << wl.subscribers.size() << "\n";
  for (const Subscriber& s : wl.subscribers) {
    os << s.node;
    for (const Interval& iv : s.interest.intervals()) {
      os << ' ';
      WriteDouble(os, iv.lo());
      os << ' ';
      WriteDouble(os, iv.hi());
    }
    os << '\n';
  }
}

Workload ReadWorkload(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-workload v1");
  const auto dims_line = SplitN(r, r.next(), 2);
  if (dims_line[0] != "dims") r.fail("expected 'dims'");
  const long dims = ParseLong(r, dims_line[1]);
  if (dims <= 0) r.fail("non-positive dimension count");

  std::vector<DimensionSpec> specs;
  for (long d = 0; d < dims; ++d) {
    const auto toks = SplitN(r, r.next(), 2);
    DimensionSpec spec;
    spec.name = toks[0];
    spec.domain_size = static_cast<int>(ParseLong(r, toks[1]));
    specs.push_back(std::move(spec));
  }

  Workload wl;
  wl.space = EventSpace(std::move(specs));

  const auto subs_line = SplitN(r, r.next(), 2);
  if (subs_line[0] != "subscribers") r.fail("expected 'subscribers'");
  const long count = ParseLong(r, subs_line[1]);
  for (long i = 0; i < count; ++i) {
    const auto toks = SplitN(r, r.next(), 1 + 2 * static_cast<std::size_t>(dims));
    Subscriber s;
    s.node = static_cast<NodeId>(ParseLong(r, toks[0]));
    std::vector<Interval> ivals;
    for (long d = 0; d < dims; ++d) {
      const double lo = ParseDouble(r, toks[1 + 2 * static_cast<std::size_t>(d)]);
      const double hi = ParseDouble(r, toks[2 + 2 * static_cast<std::size_t>(d)]);
      ivals.emplace_back(lo, hi);
    }
    s.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(s));
  }
  return wl;
}

// ------------------------------------------------------------- Clustering

void WriteClustering(std::ostream& os, const ClusteringFile& c) {
  os << "pubsub-clustering v1\n";
  os << "groups " << c.num_groups << "\n";
  os << "cells " << c.cells_fed << "\n";
  for (const int g : c.assignment) os << g << '\n';
}

ClusteringFile ReadClustering(std::istream& is) {
  LineReader r(is);
  r.expect(r.next(), "pubsub-clustering v1");
  ClusteringFile c;
  const auto groups_line = SplitN(r, r.next(), 2);
  if (groups_line[0] != "groups") r.fail("expected 'groups'");
  c.num_groups = static_cast<int>(ParseLong(r, groups_line[1]));
  const auto cells_line = SplitN(r, r.next(), 2);
  if (cells_line[0] != "cells") r.fail("expected 'cells'");
  const long cells = ParseLong(r, cells_line[1]);
  c.cells_fed = static_cast<std::size_t>(cells);
  for (long i = 0; i < cells; ++i) {
    const int g = static_cast<int>(ParseLong(r, SplitN(r, r.next(), 1)[0]));
    if (g < -1 || g >= c.num_groups) r.fail("group id out of range");
    c.assignment.push_back(g);
  }
  return c;
}

// ------------------------------------------------------------------ files

void SaveToFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << content;
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::string LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace pubsub
