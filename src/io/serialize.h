// Text serialization for the library's artifacts.
//
// Enables the file-based pipeline of tools/pubsub_cli: generate a topology
// once, generate workloads against it, cluster, and evaluate — each stage a
// separate process exchanging human-readable, versioned files.
//
// Formats are line-oriented: a magic+version header, then counted records.
// Doubles round-trip exactly (max_digits10); unbounded interval ends are
// the tokens `-inf` / `inf`.  Readers validate counts and ranges and throw
// std::runtime_error with a line-number message on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "broker/types.h"
#include "core/cluster_types.h"
#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "workload/types.h"

namespace pubsub {

// ----------------------------------------------------------------- graphs
void WriteGraph(std::ostream& os, const Graph& g);
Graph ReadGraph(std::istream& is);

// Transit-stub networks (graph + stub/block bookkeeping).
void WriteTransitStub(std::ostream& os, const TransitStubNetwork& net);
TransitStubNetwork ReadTransitStub(std::istream& is);

// -------------------------------------------------------------- workloads
void WriteWorkload(std::ostream& os, const Workload& wl);
Workload ReadWorkload(std::istream& is);

// ------------------------------------------------------------- clusterings
// A grid clustering artifact: K plus the assignment of the grid's
// popularity-ranked hyper-cells (exactly the vector a clustering algorithm
// returns; cell identity is reproducible from the workload).
struct ClusteringFile {
  int num_groups = 0;
  std::size_t cells_fed = 0;
  Assignment assignment;
};

void WriteClustering(std::ostream& os, const ClusteringFile& c);
ClusteringFile ReadClustering(std::istream& is);

// ------------------------------------------------------- broker durability
// Snapshot: the full recovery image of broker/broker.h, captured at a
// refresh boundary (embeds the workload and clustering records above).
void WriteBrokerSnapshot(std::ostream& os, const BrokerSnapshot& snap);
BrokerSnapshot ReadBrokerSnapshot(std::istream& is);

// Write-ahead journal: a header naming the event-space dimensionality,
// then one line per sequenced command, appendable as the broker runs.
// ReadJournal validates the header and requires contiguous, strictly
// increasing sequence numbers (a gap means lost updates — fail loudly);
// any malformed line, including a torn final append, throws.
void WriteJournalHeader(std::ostream& os, std::size_t dims);
void WriteJournalRecord(std::ostream& os, const JournalRecord& rec,
                        std::size_t dims);

struct JournalFile {
  std::size_t dims = 0;
  std::vector<JournalRecord> records;
};
JournalFile ReadJournal(std::istream& is);

// ------------------------------------------------------------------ metrics
// Exposition for obs/metrics snapshots (telemetry tentpole).  Both writers
// are byte-stable: equal snapshots produce equal bytes, so a deterministic
// scrape (include_runtime = false) compares exactly across --threads runs.
//
// Text is the prometheus exposition format: HELP/TYPE per metric family,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
// A label set embedded in a metric name ("m{stage=\"match\"}") is merged
// with the `le` label.  JSON is one object per metric with the same
// cumulative bucket counts.
void WriteMetricsText(std::ostream& os, const MetricsSnapshot& snap);
void WriteMetricsJson(std::ostream& os, const MetricsSnapshot& snap);

// ------------------------------------------------------------ file helpers
void SaveToFile(const std::string& path, const std::string& content);
std::string LoadFromFile(const std::string& path);

}  // namespace pubsub
