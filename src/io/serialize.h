// Text serialization for the library's artifacts.
//
// Enables the file-based pipeline of tools/pubsub_cli: generate a topology
// once, generate workloads against it, cluster, and evaluate — each stage a
// separate process exchanging human-readable, versioned files.
//
// Formats are line-oriented: a magic+version header, then counted records.
// Doubles round-trip exactly (max_digits10); unbounded interval ends are
// the tokens `-inf` / `inf`.  Readers validate counts and ranges and throw
// std::runtime_error with a line-number message on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/types.h"
#include "core/cluster_types.h"
#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/types.h"

namespace pubsub {

// ----------------------------------------------------------------- graphs
void WriteGraph(std::ostream& os, const Graph& g);
Graph ReadGraph(std::istream& is);

// Transit-stub networks (graph + stub/block bookkeeping).
void WriteTransitStub(std::ostream& os, const TransitStubNetwork& net);
TransitStubNetwork ReadTransitStub(std::istream& is);

// -------------------------------------------------------------- workloads
void WriteWorkload(std::ostream& os, const Workload& wl);
Workload ReadWorkload(std::istream& is);

// ------------------------------------------------------------- clusterings
// A grid clustering artifact: K plus the assignment of the grid's
// popularity-ranked hyper-cells (exactly the vector a clustering algorithm
// returns; cell identity is reproducible from the workload).
struct ClusteringFile {
  int num_groups = 0;
  std::size_t cells_fed = 0;
  Assignment assignment;
};

void WriteClustering(std::ostream& os, const ClusteringFile& c);
ClusteringFile ReadClustering(std::istream& is);

// ------------------------------------------------------- broker durability
// Covering-table image (core/covering_state.h): entries with their rider /
// child lists in verbatim internal order plus the LIFO free list, so a
// restore reproduces the exact table.  The reader needs the event-space
// dimensionality (snapshots read it from the embedded workload first).
void WriteCovering(std::ostream& os, const CoveringState& state);
CoveringState ReadCovering(std::istream& is, std::size_t dims);

// Snapshot: the full recovery image of broker/broker.h, captured at a
// refresh boundary (embeds the workload, clustering and covering records
// above).  Current format is v3 (appends the covering-table image); the
// reader also accepts v2 (pre-covering; restore rebuilds the table from
// the workload) and v1 (additionally pre-durability, zero-filling those
// stats fields).
void WriteBrokerSnapshot(std::ostream& os, const BrokerSnapshot& snap);
BrokerSnapshot ReadBrokerSnapshot(std::istream& is);

// Write-ahead journal: a header naming the event-space dimensionality,
// then one line per sequenced command, appendable as the broker runs.
// ReadJournal validates the header and requires contiguous, strictly
// increasing sequence numbers.
void WriteJournalHeader(std::ostream& os, std::size_t dims);
void WriteJournalRecord(std::ostream& os, const JournalRecord& rec,
                        std::size_t dims);

struct JournalFile {
  std::size_t dims = 0;
  std::vector<JournalRecord> records;
};

// Journal failures are not interchangeable: a torn tail is the expected
// artifact of a crash mid-append and recovery simply drops it, while a
// sequence gap or a damaged interior record means lost updates — the
// journal cannot be trusted and the operator must re-bootstrap from a
// newer snapshot (docs/OPERATIONS.md, "Journal damage matrix").
enum class JournalErrorCode {
  kBadHeader,        // magic/version/dims lines missing or wrong
  kMalformedRecord,  // a newline-terminated record is damaged (corruption)
  kTornTail,         // the final line lacks its newline: crash mid-append
  kSeqGap,           // sequence not contiguous from 1: lost records
};
const char* JournalErrorCodeName(JournalErrorCode code);

class JournalError : public std::runtime_error {
 public:
  JournalError(JournalErrorCode code, int line_no, const std::string& what);
  JournalErrorCode code() const { return code_; }
  int line_no() const { return line_no_; }

 private:
  JournalErrorCode code_;
  int line_no_;
};

// Strict read: any anomaly, torn tail included, throws JournalError with
// the code above.  Records are written newline-terminated in one append,
// so an unterminated final line is always a torn append — even when its
// prefix happens to parse as a complete record.
JournalFile ReadJournal(std::istream& is);

// Recovery read: a torn tail is dropped and reported instead of thrown
// (the crashed append never mutated state, so the truncated journal is the
// durable truth).  Gaps and interior damage still throw.
struct JournalReadResult {
  JournalFile journal;
  bool torn_tail = false;
  std::string tail_error;  // why the dropped tail line did not count
};
JournalReadResult ReadJournalLenient(std::istream& is);

// ---------------------------------------------------------- fleet durability
// Manifest of a sharded BrokerFleet checkpoint (src/serve/fleet.h): the
// fleet sequence number and match chain at capture, plus — per shard — the
// shard broker's sequence number and the local-slot → global-id map
// (tombstoned slots included; slots are never reused).  The manifest plus
// one refresh-boundary BrokerSnapshot and one journal per shard, plus the
// fleet-level journal tail, is the complete fleet recovery recipe.
struct FleetManifestShard {
  std::uint64_t seq = 0;                 // shard broker seq at capture
  std::vector<SubscriberId> global_ids;  // local slot -> global subscriber id
};

struct FleetManifest {
  std::uint64_t seq = 0;          // fleet seq at capture
  std::uint64_t match_chain = 0;  // rolling digest of merged interested sets
  std::vector<FleetManifestShard> shards;
};

void WriteFleetManifest(std::ostream& os, const FleetManifest& m);
FleetManifest ReadFleetManifest(std::istream& is);

// Canonical on-disk naming for `pubsub_cli serve --base=<base>` artifacts:
// <base>.manifest, <base>.journal (fleet-level command stream), and
// <base>.shard<k>.snap / <base>.shard<k>.journal per shard.
std::string FleetManifestPath(const std::string& base);
std::string FleetJournalPath(const std::string& base);
std::string FleetShardSnapshotPath(const std::string& base, std::size_t shard);
std::string FleetShardJournalPath(const std::string& base, std::size_t shard);

// ------------------------------------------------------------------ metrics
// Exposition for obs/metrics snapshots (telemetry tentpole).  Both writers
// are byte-stable: equal snapshots produce equal bytes, so a deterministic
// scrape (include_runtime = false) compares exactly across --threads runs.
//
// Text is the prometheus exposition format: HELP/TYPE per metric family,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
// A label set embedded in a metric name ("m{stage=\"match\"}") is merged
// with the `le` label.  JSON is one object per metric with the same
// cumulative bucket counts.
void WriteMetricsText(std::ostream& os, const MetricsSnapshot& snap);
void WriteMetricsJson(std::ostream& os, const MetricsSnapshot& snap);

// Causal trace dump (fleet observability tentpole): every span carries its
// trace id + shard, so one dump from BrokerFleet::collect_spans holds the
// complete linked span tree per traced publish (fleet_fanout -> per-shard
// stages -> fleet_merge -> fleet_deliver).  One span object per line for
// parser-free reassembly.
void WriteTraceJson(std::ostream& os, std::span<const TraceSpan> spans,
                    std::uint64_t recorded, std::uint64_t dropped);
void WriteTraceJson(std::ostream& os, const TraceRing& ring);

// ------------------------------------------------------------ file helpers
void SaveToFile(const std::string& path, const std::string& content);
// Crash-safe replacement: writes `path`.tmp, flushes, then renames over
// `path`, so readers observe either the old or the new content — never a
// torn file.  Snapshot files must be replaced this way (docs/OPERATIONS.md).
void SaveToFileAtomic(const std::string& path, const std::string& content);
std::string LoadFromFile(const std::string& path);

}  // namespace pubsub
