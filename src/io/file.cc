#include "io/file.h"

#include <algorithm>
#include <ostream>

#include "util/failpoint.h"

namespace pubsub {

StreamSink::StreamSink(std::ostream& os, std::string site_prefix)
    : os_(&os),
      write_site_(site_prefix + ".write"),
      flush_site_(site_prefix + ".flush") {}

void StreamSink::reset(std::ostream& os) { os_ = &os; }

std::size_t StreamSink::write(const char* data, std::size_t n) {
  FailPoints& fp = FailPoints::Instance();
  if (fp.active()) {
    const FailPointDecision d = fp.eval(write_site_);
    switch (d.action) {
      case FailAction::kOff:
        break;
      case FailAction::kError:  // short write: only ARG bytes land
        os_->write(data, static_cast<std::streamsize>(std::min(d.arg, n)));
        return std::min(d.arg, n);
      case FailAction::kCrash:
        throw InjectedCrash(write_site_);
      case FailAction::kTorn: {  // ARG bytes land, then the process "dies"
        os_->write(data, static_cast<std::streamsize>(std::min(d.arg, n)));
        os_->flush();
        throw InjectedCrash(write_site_);
      }
    }
  }
  os_->write(data, static_cast<std::streamsize>(n));
  return os_->good() ? n : 0;
}

bool StreamSink::flush() {
  FailPoints& fp = FailPoints::Instance();
  if (fp.active()) {
    const FailPointDecision d = fp.eval(flush_site_);
    switch (d.action) {
      case FailAction::kOff:
        break;
      case FailAction::kError:
        return false;
      case FailAction::kCrash:
      case FailAction::kTorn:
        throw InjectedCrash(flush_site_);
    }
  }
  os_->flush();
  return os_->good();
}

}  // namespace pubsub
