// pubsub_cli — file-based pipeline driver for the library.
//
//   pubsub_cli gen-net      --shape=100|300|600|sec5 [--seed=N]
//                           [--last_mile=C] --out=net.txt
//   pubsub_cli gen-workload --net=net.txt --model=section3|stock
//                           [--subs=N] [--seed=N] [--regionalism=R]
//                           [--tail=uniform|gaussian] --out=workload.txt
//   pubsub_cli cluster      --net=net.txt --workload=workload.txt
//                           [--algo=forgy|kmeans|mst|pairs|approx-pairs]
//                           [--groups=K] [--cells=N] [--seed=N]
//                           [--modes=1|4|9] --out=groups.txt
//   pubsub_cli evaluate     --net=net.txt --workload=workload.txt
//                           --groups=groups.txt [--events=N] [--seed=N]
//                           [--modes=1|4|9]
//
// The publication model is re-derived from the workload's event space (the
// §3 space has a regional "stub" dimension; the stock space a "bst"
// dimension), so every stage is reproducible from its input files plus the
// flags shown in the file headers it writes.
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "io/serialize.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

[[noreturn]] void Usage(const std::string& msg = "") {
  if (!msg.empty()) std::fprintf(stderr, "error: %s\n\n", msg.c_str());
  std::fprintf(stderr,
               "usage: pubsub_cli <gen-net|gen-workload|cluster|evaluate> "
               "[--flags]\n(see the header of tools/pubsub_cli.cc for the "
               "full flag list)\n");
  std::exit(2);
}

TransitStubParams ShapeByName(const std::string& name) {
  if (name == "100") return PaperNet100();
  if (name == "300") return PaperNet300();
  if (name == "600") return PaperNet600();
  if (name == "sec5") return PaperNetSection5();
  Usage("unknown --shape '" + name + "'");
}

// Workload files don't embed the generator; the space's first dimension
// name distinguishes the two paper models.
bool IsSection3Space(const EventSpace& space) { return space.dim(0).name == "stub"; }

std::unique_ptr<PublicationModel> ModelFor(const TransitStubNetwork& net,
                                           const Workload& wl, const Flags& flags) {
  if (IsSection3Space(wl.space)) {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.publication_tail = flags.get("tail", "uniform") == "gaussian"
                                  ? Section3Params::Tail::kGaussian
                                  : Section3Params::Tail::kUniform;
    return MakeSection3PublicationModel(net, params);
  }
  const auto modes = flags.get_int("modes", 1);
  PublicationHotSpots spots = PublicationHotSpots::kOne;
  if (modes == 4) spots = PublicationHotSpots::kFour;
  if (modes == 9) spots = PublicationHotSpots::kNine;
  return MakeStockPublicationModel(net, spots, {});
}

int GenNet(const Flags& flags) {
  TransitStubParams shape = ShapeByName(flags.get("shape", "sec5"));
  shape.last_mile_cost = flags.get_double("last_mile", 0.0);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const TransitStubNetwork net = GenerateTransitStub(shape, rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-net requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %d nodes, %d edges, %d stubs\n", out.c_str(),
              net.graph.num_nodes(), net.graph.num_edges(), net.num_stubs);
  return 0;
}

int GenWorkload(const Flags& flags) {
  const std::string net_path = flags.get("net", "");
  if (net_path.empty()) Usage("gen-workload requires --net");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);

  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 2)));
  Workload wl;
  const std::string model = flags.get("model", "stock");
  if (model == "section3") {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.subscription_tail = flags.get("tail", "uniform") == "gaussian"
                                   ? Section3Params::Tail::kGaussian
                                   : Section3Params::Tail::kUniform;
    wl = GenerateSection3Subscriptions(net, subs, params, rng);
  } else if (model == "stock") {
    wl = GenerateStockSubscriptions(net, subs, {}, rng);
  } else {
    Usage("unknown --model '" + model + "'");
  }

  std::ostringstream os;
  WriteWorkload(os, wl);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-workload requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %zu subscribers in space %s\n", out.c_str(),
              wl.num_subscribers(), wl.space.to_string().c_str());
  return 0;
}

int Cluster(const Flags& flags) {
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("cluster requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  const auto cells_fed = static_cast<std::size_t>(flags.get_int("cells", 6000));
  const std::vector<ClusterCell> cells = grid.top_cells(cells_fed);
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));
  const GridAlgorithm algo = GridAlgorithmByName(flags.get("algo", "forgy"));
  ClusteringFile out_file;
  out_file.assignment = algo.run(cells, K, rng);
  out_file.num_groups = static_cast<int>(K);
  out_file.cells_fed = cells.size();

  std::ostringstream os;
  WriteClustering(os, out_file);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("cluster requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %s, K=%zu over %zu cells (grid: %zu hyper-cells)\n",
              out.c_str(), algo.name.c_str(), K, cells.size(),
              grid.hyper_cells().size());
  return 0;
}

int Evaluate(const Flags& flags) {
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  const std::string groups_path = flags.get("groups", "");
  if (net_path.empty() || wl_path.empty() || groups_path.empty())
    Usage("evaluate requires --net, --workload and --groups");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  std::istringstream cl_is(LoadFromFile(groups_path));
  const ClusteringFile clustering = ReadClustering(cl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  if (clustering.assignment.size() > grid.hyper_cells().size())
    Usage("clustering file does not match this workload (too many cells)");

  DeliverySimulator sim(net.graph, wl);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 4)));
  const auto events = SampleEvents(
      sim, *model, static_cast<std::size_t>(flags.get_int("events", 300)), rng);
  const BaselineCosts base = EvaluateBaselines(sim, events);

  const GridMatcher matcher(grid, clustering.assignment, clustering.num_groups,
                            flags.get_double("threshold", 0.0));
  const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));

  std::printf("events           %zu\n", events.size());
  std::printf("unicast          %.0f\n", base.unicast);
  std::printf("broadcast        %.0f\n", base.broadcast);
  std::printf("ideal multicast  %.0f\n", base.ideal);
  std::printf("clustered (net)  %.0f  improvement %.1f%%\n", c.network,
              ImprovementPercent(c.network, base));
  std::printf("clustered (app)  %.0f  improvement %.1f%%\n", c.applevel,
              ImprovementPercent(c.applevel, base));
  std::printf("multicast events %zu, unicast fallback %zu, wasted %zu\n",
              c.multicast_events, c.unicast_events, c.wasted_deliveries);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc - 1, argv + 1);
  ConfigureThreadsFromFlags(flags);
  try {
    if (cmd == "gen-net") return GenNet(flags);
    if (cmd == "gen-workload") return GenWorkload(flags);
    if (cmd == "cluster") return Cluster(flags);
    if (cmd == "evaluate") return Evaluate(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Usage("unknown command '" + cmd + "'");
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
