// pubsub_cli — file-based pipeline driver for the library.
//
//   pubsub_cli gen-net      --shape=100|300|600|sec5 [--seed=N]
//                           [--last_mile=C] --out=net.txt
//   pubsub_cli gen-workload --net=net.txt --model=section3|stock
//                           [--subs=N] [--seed=N] [--regionalism=R]
//                           [--tail=uniform|gaussian] --out=workload.txt
//   pubsub_cli cluster      --net=net.txt --workload=workload.txt
//                           [--algo=forgy|kmeans|mst|pairs|approx-pairs]
//                           [--groups=K] [--cells=N] [--seed=N]
//                           [--modes=1|4|9] --out=groups.txt
//   pubsub_cli evaluate     --net=net.txt --workload=workload.txt
//                           --groups=groups.txt [--events=N] [--seed=N]
//                           [--modes=1|4|9]
//   pubsub_cli snapshot     --net=net.txt --workload=workload.txt
//                           [--groups=K] [--cells=N] [--threshold=T]
//                           --out=snap.txt
//   pubsub_cli serve-replay --net=net.txt --workload=workload.txt (stock)
//                           [--events=N] [--seed=N] [--churn-every=K]
//                           [--groups=K] [--cells=N] [--threshold=T]
//                           [--refresh-churn=F] [--refresh-waste=R]
//                           [--refresh-min-messages=M]
//                           [--journal=j.txt] [--snapshot=snap.txt]
//                           [--snapshot-every=N]
//                           [--metrics-out=m.prom] [--metrics-json=m.json]
//                           [--metrics-deterministic-only]
//                           [--trace-sample=N] [--trace-out=trace.txt]
//   pubsub_cli recover      --net=net.txt --snapshot=snap.txt
//                           [--journal=j.txt] [--groups=K] [--cells=N]
//                           [--threshold=T] [--refresh-churn=F]
//                           [--refresh-waste=R] [--refresh-min-messages=M]
//                           [--metrics-out=m.prom] [--metrics-json=m.json]
//                           [--metrics-deterministic-only]
//   pubsub_cli stats        --net=net.txt --snapshot=snap.txt
//                           [--journal=j.txt] [broker flags as recover]
//                           [--metrics-deterministic-only]
//       recovers the broker from snapshot + journal, then dumps every
//       metric to stdout — Prometheus text first, then JSON.
//
// The publication model is re-derived from the workload's event space (the
// §3 space has a regional "stub" dimension; the stock space a "bst"
// dimension), so every stage is reproducible from its input files plus the
// flags shown in the file headers it writes.
//
// The broker subcommands exercise src/broker: `snapshot` bootstraps a
// seq-0 snapshot from a workload, `serve-replay` drives a broker from a
// synthetic trading-day trace (journaling commands and checkpointing as it
// goes), and `recover` rebuilds a broker from snapshot + journal and
// prints the same report — matching sequence numbers must yield matching
// state digests.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "io/serialize.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace pubsub {
namespace {

// Diagnostics go to stderr so stdout stays parseable (reports, metrics
// dumps); exit codes: 0 ok, 1 runtime failure, 2 usage error.
const char kUsageText[] =
    "usage: pubsub_cli <gen-net|gen-workload|cluster|evaluate|"
    "snapshot|serve-replay|recover|stats> "
    "[--flags]\n(see the header of tools/pubsub_cli.cc for the "
    "full flag list)\n";

[[noreturn]] void Usage(const std::string& msg = "") {
  if (!msg.empty()) std::fprintf(stderr, "error: %s\n\n", msg.c_str());
  std::fputs(kUsageText, stderr);
  std::exit(2);
}

// Flags every subcommand accepts on top of its own list.
std::vector<std::string> WithCommonFlags(std::vector<std::string> own) {
  own.push_back("threads");
  return own;
}

TransitStubParams ShapeByName(const std::string& name) {
  if (name == "100") return PaperNet100();
  if (name == "300") return PaperNet300();
  if (name == "600") return PaperNet600();
  if (name == "sec5") return PaperNetSection5();
  Usage("unknown --shape '" + name + "'");
}

// Workload files don't embed the generator; the space's first dimension
// name distinguishes the two paper models.
bool IsSection3Space(const EventSpace& space) { return space.dim(0).name == "stub"; }

std::unique_ptr<PublicationModel> ModelFor(const TransitStubNetwork& net,
                                           const Workload& wl, const Flags& flags) {
  if (IsSection3Space(wl.space)) {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.publication_tail = flags.get("tail", "uniform") == "gaussian"
                                  ? Section3Params::Tail::kGaussian
                                  : Section3Params::Tail::kUniform;
    return MakeSection3PublicationModel(net, params);
  }
  const auto modes = flags.get_int("modes", 1);
  PublicationHotSpots spots = PublicationHotSpots::kOne;
  if (modes == 4) spots = PublicationHotSpots::kFour;
  if (modes == 9) spots = PublicationHotSpots::kNine;
  return MakeStockPublicationModel(net, spots, {});
}

int GenNet(const Flags& flags) {
  flags.require_known(WithCommonFlags({"shape", "last_mile", "seed", "out"}));
  TransitStubParams shape = ShapeByName(flags.get("shape", "sec5"));
  shape.last_mile_cost = flags.get_double("last_mile", 0.0);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const TransitStubNetwork net = GenerateTransitStub(shape, rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-net requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %d nodes, %d edges, %d stubs\n", out.c_str(),
              net.graph.num_nodes(), net.graph.num_edges(), net.num_stubs);
  return 0;
}

int GenWorkload(const Flags& flags) {
  flags.require_known(WithCommonFlags(
      {"net", "model", "subs", "seed", "regionalism", "tail", "out"}));
  const std::string net_path = flags.get("net", "");
  if (net_path.empty()) Usage("gen-workload requires --net");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);

  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 2)));
  Workload wl;
  const std::string model = flags.get("model", "stock");
  if (model == "section3") {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.subscription_tail = flags.get("tail", "uniform") == "gaussian"
                                   ? Section3Params::Tail::kGaussian
                                   : Section3Params::Tail::kUniform;
    wl = GenerateSection3Subscriptions(net, subs, params, rng);
  } else if (model == "stock") {
    wl = GenerateStockSubscriptions(net, subs, {}, rng);
  } else {
    Usage("unknown --model '" + model + "'");
  }

  std::ostringstream os;
  WriteWorkload(os, wl);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-workload requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %zu subscribers in space %s\n", out.c_str(),
              wl.num_subscribers(), wl.space.to_string().c_str());
  return 0;
}

int Cluster(const Flags& flags) {
  flags.require_known(WithCommonFlags({"net", "workload", "algo", "groups",
                                       "cells", "seed", "modes", "regionalism",
                                       "tail", "out"}));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("cluster requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  const auto cells_fed = static_cast<std::size_t>(flags.get_int("cells", 6000));
  const std::vector<ClusterCell> cells = grid.top_cells(cells_fed);
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));
  const GridAlgorithm algo = GridAlgorithmByName(flags.get("algo", "forgy"));
  ClusteringFile out_file;
  out_file.assignment = algo.run(cells, K, rng);
  out_file.num_groups = static_cast<int>(K);
  out_file.cells_fed = cells.size();

  std::ostringstream os;
  WriteClustering(os, out_file);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("cluster requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %s, K=%zu over %zu cells (grid: %zu hyper-cells)\n",
              out.c_str(), algo.name.c_str(), K, cells.size(),
              grid.hyper_cells().size());
  return 0;
}

int Evaluate(const Flags& flags) {
  flags.require_known(WithCommonFlags({"net", "workload", "groups", "events",
                                       "seed", "modes", "regionalism", "tail",
                                       "threshold"}));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  const std::string groups_path = flags.get("groups", "");
  if (net_path.empty() || wl_path.empty() || groups_path.empty())
    Usage("evaluate requires --net, --workload and --groups");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  std::istringstream cl_is(LoadFromFile(groups_path));
  const ClusteringFile clustering = ReadClustering(cl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  if (clustering.assignment.size() > grid.hyper_cells().size())
    Usage("clustering file does not match this workload (too many cells)");

  DeliverySimulator sim(net.graph, wl);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 4)));
  const auto events = SampleEvents(
      sim, *model, static_cast<std::size_t>(flags.get_int("events", 300)), rng);
  const BaselineCosts base = EvaluateBaselines(sim, events);

  const GridMatcher matcher(grid, clustering.assignment, clustering.num_groups,
                            flags.get_double("threshold", 0.0));
  const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));

  std::printf("events           %zu\n", events.size());
  std::printf("unicast          %.0f\n", base.unicast);
  std::printf("broadcast        %.0f\n", base.broadcast);
  std::printf("ideal multicast  %.0f\n", base.ideal);
  std::printf("clustered (net)  %.0f  improvement %.1f%%\n", c.network,
              ImprovementPercent(c.network, base));
  std::printf("clustered (app)  %.0f  improvement %.1f%%\n", c.applevel,
              ImprovementPercent(c.applevel, base));
  std::printf("multicast events %zu, unicast fallback %zu, wasted %zu\n",
              c.multicast_events, c.unicast_events, c.wasted_deliveries);
  return 0;
}

// --- broker subcommands ---------------------------------------------------

const std::vector<std::string> kBrokerFlags = {
    "groups",        "cells",         "threshold",
    "refresh-churn", "refresh-waste", "refresh-min-messages",
    "metrics-out",   "metrics-json",  "metrics-deterministic-only"};

std::vector<std::string> WithBrokerFlags(std::vector<std::string> own) {
  own.insert(own.end(), kBrokerFlags.begin(), kBrokerFlags.end());
  return WithCommonFlags(std::move(own));
}

BrokerOptions BrokerOptionsFromFlags(const Flags& flags) {
  BrokerOptions opts;
  opts.group.num_groups = static_cast<std::size_t>(flags.get_int("groups", 100));
  opts.group.max_cells = static_cast<std::size_t>(flags.get_int("cells", 6000));
  opts.group.matcher_threshold = flags.get_double("threshold", 0.0);
  opts.refresh.churn_fraction = flags.get_double("refresh-churn", 0.05);
  opts.refresh.waste_ratio = flags.get_double("refresh-waste", 0.5);
  opts.refresh.min_messages =
      static_cast<std::size_t>(flags.get_int("refresh-min-messages", 200));
  opts.obs.trace_sample =
      static_cast<std::uint64_t>(flags.get_int("trace-sample", 0));
  return opts;
}

// Everything the process measured: the broker's registry plus the
// process-wide one (thread pool).  --metrics-deterministic-only restricts
// to the byte-stable subset (identical across --threads runs).
MetricsSnapshot ScrapeAll(const Broker& broker, const Flags& flags) {
  const bool runtime_too = !flags.get_bool("metrics-deterministic-only", false);
  MetricsSnapshot snap = broker.metrics().scrape(runtime_too);
  snap.merge(MetricsRegistry::Default().scrape(runtime_too));
  return snap;
}

// --metrics-out (Prometheus text) / --metrics-json side outputs shared by
// serve-replay and recover.
void WriteMetricsOutputs(const Broker& broker, const Flags& flags) {
  const std::string text_path = flags.get("metrics-out", "");
  const std::string json_path = flags.get("metrics-json", "");
  if (text_path.empty() && json_path.empty()) return;
  const MetricsSnapshot snap = ScrapeAll(broker, flags);
  if (!text_path.empty()) {
    std::ostringstream os;
    WriteMetricsText(os, snap);
    SaveToFile(text_path, os.str());
  }
  if (!json_path.empty()) {
    std::ostringstream os;
    WriteMetricsJson(os, snap);
    SaveToFile(json_path, os.str());
  }
}

void PrintBrokerReport(const Broker& broker) {
  const BrokerStats& s = broker.stats();
  std::printf("commands applied  %llu  (sub %llu / unsub %llu / upd %llu / "
              "pub %llu)\n",
              (unsigned long long)s.commands_applied,
              (unsigned long long)s.subscribes,
              (unsigned long long)s.unsubscribes,
              (unsigned long long)s.updates, (unsigned long long)s.publishes);
  std::printf("matched events    %llu  (multicast %llu, unicast %llu)\n",
              (unsigned long long)s.events_matched,
              (unsigned long long)s.multicast_events,
              (unsigned long long)s.unicast_events);
  std::printf("messages emitted  %llu  (wasted %llu)\n",
              (unsigned long long)s.messages_emitted,
              (unsigned long long)s.wasted_deliveries);
  std::printf("refreshes         %llu  (full rebuilds %llu)\n",
              (unsigned long long)s.refreshes,
              (unsigned long long)s.full_rebuilds);
  std::printf("journal bytes     %llu\n", (unsigned long long)s.journal_bytes);
  if (s.replayed_records > 0 || s.snapshot_bytes > 0)
    std::printf("recovered from    %llu snapshot bytes + %llu replayed "
                "records\n",
                (unsigned long long)s.snapshot_bytes,
                (unsigned long long)s.replayed_records);
  std::printf("live subscribers  %zu\n", broker.workload().num_subscribers());
  std::printf("final seq         %llu\n", (unsigned long long)broker.seq());
  std::printf("state digest      %016llx\n",
              (unsigned long long)broker.state_digest());
}

void SaveSnapshotFile(const std::string& path, const Broker& broker) {
  std::ostringstream os;
  broker.write_snapshot(os);
  SaveToFile(path, os.str());
}

// Bootstrap a seq-0 snapshot from a workload: cold-cluster it once and
// persist the refresh-boundary state so serve-replay / recover / replicas
// can start from a common, durable baseline.
int Snapshot(const Flags& flags) {
  flags.require_known(WithBrokerFlags(
      {"net", "workload", "modes", "regionalism", "tail", "out"}));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  const std::string out = flags.get("out", "");
  if (net_path.empty() || wl_path.empty() || out.empty())
    Usage("snapshot requires --net, --workload and --out");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  Workload wl = ReadWorkload(wl_is);

  const auto model = ModelFor(net, wl, flags);
  const Broker broker(std::move(wl), *model, net.graph,
                      BrokerOptionsFromFlags(flags));
  SaveSnapshotFile(out, broker);
  std::printf("wrote %s: seq 0, %zu subscribers, %zu clustered cells\n",
              out.c_str(), broker.workload().num_subscribers(),
              broker.snapshot().assignment.size());
  return 0;
}

// Drive a broker from a synthetic trading-day trace with optional
// subscription churn, journaling every command and checkpointing along the
// way.  Kill it at any point; `recover` resumes from the files.
int ServeReplay(const Flags& flags) {
  flags.require_known(WithBrokerFlags({"net", "workload", "events", "seed",
                                       "churn-every", "modes", "journal",
                                       "snapshot", "snapshot-every",
                                       "trace-sample", "trace-out"}));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("serve-replay requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  Workload wl = ReadWorkload(wl_is);
  if (IsSection3Space(wl.space))
    Usage("serve-replay drives a stock trace; --workload must be a stock "
          "workload (gen-workload --model=stock)");

  const auto model = ModelFor(net, wl, flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto num_events =
      static_cast<std::size_t>(flags.get_int("events", 2000));
  const auto churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 0));
  const std::string journal_path = flags.get("journal", "");
  const std::string snapshot_path = flags.get("snapshot", "");
  const auto snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every", 500));

  // Track live ids for churn before the workload moves into the broker.
  std::vector<SubscriberId> live(wl.num_subscribers());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<SubscriberId>(i);

  ManualClock clock;
  Broker broker(std::move(wl), *model, net.graph, BrokerOptionsFromFlags(flags),
                &clock);

  std::ofstream journal;
  if (!journal_path.empty()) {
    journal.open(journal_path, std::ios::trunc);
    if (!journal) Usage("cannot open --journal file " + journal_path);
    broker.set_journal(&journal);
  }
  if (!snapshot_path.empty()) SaveSnapshotFile(snapshot_path, broker);

  Rng trace_rng(seed);
  const std::vector<TraceEvent> trace =
      GenerateStockTrace(net, {}, {}, num_events, trace_rng);
  Rng churn_rng = trace_rng.split(1);

  const std::uint64_t snapshot_base = broker.seq();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    clock.advance_to(trace[i].timestamp * 1000.0);
    if (churn_every > 0 && (i + 1) % churn_every == 0) {
      auto action = churn_rng.uniform_int(0, 2);
      if (live.empty()) action = 0;  // nothing left to update/remove
      if (action == 0) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        live.push_back(broker.subscribe(one.subscribers[0].node,
                                        one.subscribers[0].interest));
      } else if (action == 1 || live.size() <= 1) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one = GenerateStockSubscriptions(net, 1, {}, sub_rng);
        const auto pick = static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        broker.update(live[pick], one.subscribers[0].interest);
      } else {
        const auto pick = static_cast<std::size_t>(
            churn_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        broker.unsubscribe(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    broker.publish(trace[i].pub.origin, trace[i].pub.point);
    if (!snapshot_path.empty() && snapshot_every > 0 &&
        (broker.seq() - snapshot_base) % snapshot_every == 0)
      SaveSnapshotFile(snapshot_path, broker);
  }
  if (!snapshot_path.empty()) SaveSnapshotFile(snapshot_path, broker);

  std::printf("replayed %zu trace events over %.1f simulated seconds\n\n",
              trace.size(), trace.empty() ? 0.0 : trace.back().timestamp);
  PrintBrokerReport(broker);
  WriteMetricsOutputs(broker, flags);
  const std::string trace_path = flags.get("trace-out", "");
  if (!trace_path.empty()) {
    std::ostringstream os;
    WriteTraceText(os, broker.trace());
    SaveToFile(trace_path, os.str());
  }
  return 0;
}

// Shared recovery path for `recover` and `stats`: rebuild a broker from
// snapshot + journal tail.
std::unique_ptr<Broker> RecoverFromFlags(const Flags& flags,
                                         TransitStubNetwork* net_out,
                                         std::unique_ptr<PublicationModel>* model_out) {
  const std::string net_path = flags.get("net", "");
  const std::string snapshot_path = flags.get("snapshot", "");
  if (net_path.empty() || snapshot_path.empty())
    Usage("recover/stats requires --net and --snapshot");
  std::istringstream net_is(LoadFromFile(net_path));
  *net_out = ReadTransitStub(net_is);
  std::istringstream snap_is(LoadFromFile(snapshot_path));
  const BrokerSnapshot snap = ReadBrokerSnapshot(snap_is);

  std::vector<JournalRecord> tail;
  const std::string journal_path = flags.get("journal", "");
  if (!journal_path.empty()) {
    std::istringstream j_is(LoadFromFile(journal_path));
    JournalFile jf = ReadJournal(j_is);
    if (jf.dims != snap.workload.space.dims())
      Usage("journal dimensionality does not match the snapshot");
    tail = std::move(jf.records);
  }

  *model_out = ModelFor(*net_out, snap.workload, flags);
  BrokerOptions opts = BrokerOptionsFromFlags(flags);
  // The snapshot is authoritative for the group count; an explicit
  // --groups still wins (and a mismatch is rejected by the broker).
  if (!flags.has("groups"))
    opts.group.num_groups = static_cast<std::size_t>(snap.num_groups);
  return Broker::Recover(snap, tail, **model_out, net_out->graph, opts);
}

// Rebuild a broker from snapshot + journal tail and print the same report
// serve-replay prints: at equal sequence numbers the state digests match.
int Recover(const Flags& flags) {
  flags.require_known(WithBrokerFlags(
      {"net", "snapshot", "journal", "modes", "regionalism", "tail"}));
  TransitStubNetwork net;
  std::unique_ptr<PublicationModel> model;
  const auto broker = RecoverFromFlags(flags, &net, &model);
  PrintBrokerReport(*broker);
  WriteMetricsOutputs(*broker, flags);
  return 0;
}

// Recover and dump every metric to stdout: Prometheus text, a blank line,
// then the JSON form.  All counters/gauges are deterministic functions of
// snapshot + journal, so two invocations print identical values.
int Stats(const Flags& flags) {
  flags.require_known(WithBrokerFlags(
      {"net", "snapshot", "journal", "modes", "regionalism", "tail"}));
  TransitStubNetwork net;
  std::unique_ptr<PublicationModel> model;
  const auto broker = RecoverFromFlags(flags, &net, &model);
  const MetricsSnapshot snap = ScrapeAll(*broker, flags);
  std::ostringstream text;
  WriteMetricsText(text, snap);
  std::ostringstream json;
  WriteMetricsJson(json, snap);
  std::fputs(text.str().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(json.str().c_str(), stdout);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::fputs(kUsageText, stdout);  // requested help is not an error
    return 0;
  }
  const Flags flags(argc - 1, argv + 1);
  ConfigureThreadsFromFlags(flags);
  try {
    if (cmd == "gen-net") return GenNet(flags);
    if (cmd == "gen-workload") return GenWorkload(flags);
    if (cmd == "cluster") return Cluster(flags);
    if (cmd == "evaluate") return Evaluate(flags);
    if (cmd == "snapshot") return Snapshot(flags);
    if (cmd == "serve-replay") return ServeReplay(flags);
    if (cmd == "recover") return Recover(flags);
    if (cmd == "stats") return Stats(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Usage("unknown command '" + cmd + "'");
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
