// pubsub_cli — file-based pipeline driver for the library.
//
// Subcommands and their flags are declared once in util/cli_spec.h; the
// rendered reference lives in docs/CLI.md (tests/test_cli_docs.cc pins the
// two together byte-for-byte).  Pipeline: gen-net → gen-workload →
// cluster → evaluate, plus the broker service commands — snapshot,
// serve-replay, recover, stats — and the fault-injection driver `chaos`.
//
// The publication model is re-derived from the workload's event space (the
// §3 space has a regional "stub" dimension; the stock space a "bst"
// dimension), so every stage is reproducible from its input files plus the
// flags shown in the file headers it writes.
//
// The broker subcommands exercise src/broker: `snapshot` bootstraps a
// seq-0 snapshot from a workload, `serve-replay` drives a broker from a
// synthetic trading-day trace (journaling commands and checkpointing as it
// goes), `recover` rebuilds a broker from snapshot + journal and prints
// the same report — matching sequence numbers must yield matching state
// digests — and `chaos` proves that claim under injected crashes, torn
// journal tails and fsync failures (--failpoints arms the same faults on
// any command; see docs/OPERATIONS.md).
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/chaos.h"
#include "storage/buffer_pool.h"
#include "storage/page_stream.h"
#include "storage/storage_manager.h"
#include "serve/catchup.h"
#include "serve/event_loop.h"
#include "serve/fleet.h"
#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "io/serialize.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/cli_spec.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace pubsub {
namespace {

// Diagnostics go to stderr so stdout stays parseable (reports, metrics
// dumps); exit codes: 0 ok, 1 runtime failure, 2 usage error.  The full
// help text and every subcommand's accepted flag set both come from
// util/cli_spec.h — docs/CLI.md embeds the same text, pinned by
// tests/test_cli_docs.cc.
[[noreturn]] void Usage(const std::string& msg = "") {
  if (!msg.empty()) std::fprintf(stderr, "error: %s\n\n", msg.c_str());
  std::fputs("usage: pubsub_cli <command> [--flag=value ...]\n"
             "run `pubsub_cli help` (or see docs/CLI.md) for the command and "
             "flag list\n",
             stderr);
  std::exit(2);
}

TransitStubParams ShapeByName(const std::string& name) {
  if (name == "100") return PaperNet100();
  if (name == "300") return PaperNet300();
  if (name == "600") return PaperNet600();
  if (name == "sec5") return PaperNetSection5();
  Usage("unknown --shape '" + name + "'");
}

// Workload files don't embed the generator; the space's first dimension
// name distinguishes the two paper models.
bool IsSection3Space(const EventSpace& space) { return space.dim(0).name == "stub"; }

std::unique_ptr<PublicationModel> ModelFor(const TransitStubNetwork& net,
                                           const Workload& wl, const Flags& flags) {
  if (IsSection3Space(wl.space)) {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.publication_tail = flags.get("tail", "uniform") == "gaussian"
                                  ? Section3Params::Tail::kGaussian
                                  : Section3Params::Tail::kUniform;
    return MakeSection3PublicationModel(net, params);
  }
  const auto modes = flags.get_int("modes", 1);
  PublicationHotSpots spots = PublicationHotSpots::kOne;
  if (modes == 4) spots = PublicationHotSpots::kFour;
  if (modes == 9) spots = PublicationHotSpots::kNine;
  return MakeStockPublicationModel(net, spots, {});
}

int GenNet(const Flags& flags) {
  flags.require_known(CliFlagNames("gen-net"));
  TransitStubParams shape = ShapeByName(flags.get("shape", "sec5"));
  shape.last_mile_cost = flags.get_double("last_mile", 0.0);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const TransitStubNetwork net = GenerateTransitStub(shape, rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-net requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %d nodes, %d edges, %d stubs\n", out.c_str(),
              net.graph.num_nodes(), net.graph.num_edges(), net.num_stubs);
  return 0;
}

int GenWorkload(const Flags& flags) {
  flags.require_known(CliFlagNames("gen-workload"));
  const std::string net_path = flags.get("net", "");
  if (net_path.empty()) Usage("gen-workload requires --net");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);

  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 2)));
  Workload wl;
  const std::string model = flags.get("model", "stock");
  if (model == "section3") {
    Section3Params params;
    params.regionalism = flags.get_double("regionalism", 0.4);
    params.subscription_tail = flags.get("tail", "uniform") == "gaussian"
                                   ? Section3Params::Tail::kGaussian
                                   : Section3Params::Tail::kUniform;
    wl = GenerateSection3Subscriptions(net, subs, params, rng);
  } else if (model == "stock") {
    wl = GenerateStockSubscriptions(net, subs, {}, rng);
  } else {
    Usage("unknown --model '" + model + "'");
  }

  std::ostringstream os;
  WriteWorkload(os, wl);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("gen-workload requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %zu subscribers in space %s\n", out.c_str(),
              wl.num_subscribers(), wl.space.to_string().c_str());
  return 0;
}

int Cluster(const Flags& flags) {
  flags.require_known(CliFlagNames("cluster"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("cluster requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  const auto cells_fed = static_cast<std::size_t>(flags.get_int("cells", 6000));
  const std::vector<ClusterCell> cells = grid.top_cells(cells_fed);
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));
  const GridAlgorithm algo = GridAlgorithmByName(flags.get("algo", "forgy"));
  ClusteringFile out_file;
  out_file.assignment = algo.run(cells, K, rng);
  out_file.num_groups = static_cast<int>(K);
  out_file.cells_fed = cells.size();

  std::ostringstream os;
  WriteClustering(os, out_file);
  const std::string out = flags.get("out", "");
  if (out.empty()) Usage("cluster requires --out");
  SaveToFile(out, os.str());
  std::printf("wrote %s: %s, K=%zu over %zu cells (grid: %zu hyper-cells)\n",
              out.c_str(), algo.name.c_str(), K, cells.size(),
              grid.hyper_cells().size());
  return 0;
}

int Evaluate(const Flags& flags) {
  flags.require_known(CliFlagNames("evaluate"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  const std::string groups_path = flags.get("groups", "");
  if (net_path.empty() || wl_path.empty() || groups_path.empty())
    Usage("evaluate requires --net, --workload and --groups");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  std::istringstream cl_is(LoadFromFile(groups_path));
  const ClusteringFile clustering = ReadClustering(cl_is);

  const auto model = ModelFor(net, wl, flags);
  const Grid grid(wl, *model);
  if (clustering.assignment.size() > grid.hyper_cells().size())
    Usage("clustering file does not match this workload (too many cells)");

  DeliverySimulator sim(net.graph, wl);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 4)));
  const auto events = SampleEvents(
      sim, *model, static_cast<std::size_t>(flags.get_int("events", 300)), rng);
  const BaselineCosts base = EvaluateBaselines(sim, events);

  const GridMatcher matcher(grid, clustering.assignment, clustering.num_groups,
                            flags.get_double("threshold", 0.0));
  const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));

  std::printf("events           %zu\n", events.size());
  std::printf("unicast          %.0f\n", base.unicast);
  std::printf("broadcast        %.0f\n", base.broadcast);
  std::printf("ideal multicast  %.0f\n", base.ideal);
  std::printf("clustered (net)  %.0f  improvement %.1f%%\n", c.network,
              ImprovementPercent(c.network, base));
  std::printf("clustered (app)  %.0f  improvement %.1f%%\n", c.applevel,
              ImprovementPercent(c.applevel, base));
  std::printf("multicast events %zu, unicast fallback %zu, wasted %zu\n",
              c.multicast_events, c.unicast_events, c.wasted_deliveries);
  return 0;
}

// --- broker subcommands ---------------------------------------------------

BrokerOptions BrokerOptionsFromFlags(const Flags& flags) {
  BrokerOptions opts;
  opts.group.num_groups = static_cast<std::size_t>(flags.get_int("groups", 100));
  opts.group.max_cells = static_cast<std::size_t>(flags.get_int("cells", 6000));
  opts.group.matcher_threshold = flags.get_double("threshold", 0.0);
  opts.refresh.churn_fraction = flags.get_double("refresh-churn", 0.05);
  opts.refresh.waste_ratio = flags.get_double("refresh-waste", 0.5);
  opts.refresh.min_messages =
      static_cast<std::size_t>(flags.get_int("refresh-min-messages", 200));
  opts.group.refresh_budget.max_passes =
      static_cast<std::size_t>(flags.get_int("refresh-passes", 0));
  opts.group.refresh_budget.max_cell_visits =
      static_cast<std::size_t>(flags.get_int("refresh-visits", 0));
  opts.group.closure = flags.get_bool("closure", false);
  opts.obs.trace_sample =
      static_cast<std::uint64_t>(flags.get_int("trace-sample", 0));
  return opts;
}

// Everything the process measured: the broker's registry plus the
// process-wide one (thread pool).  --metrics-deterministic-only restricts
// to the byte-stable subset (identical across --threads runs).
MetricsSnapshot ScrapeAll(const Broker& broker, const Flags& flags) {
  const bool runtime_too = !flags.get_bool("metrics-deterministic-only", false);
  MetricsSnapshot snap = broker.metrics().scrape(runtime_too);
  snap.merge(MetricsRegistry::Default().scrape(runtime_too));
  return snap;
}

// --metrics-out (Prometheus text) / --metrics-json side outputs shared by
// serve-replay and recover.
void WriteMetricsOutputs(const Broker& broker, const Flags& flags) {
  const std::string text_path = flags.get("metrics-out", "");
  const std::string json_path = flags.get("metrics-json", "");
  if (text_path.empty() && json_path.empty()) return;
  const MetricsSnapshot snap = ScrapeAll(broker, flags);
  if (!text_path.empty()) {
    std::ostringstream os;
    WriteMetricsText(os, snap);
    SaveToFile(text_path, os.str());
  }
  if (!json_path.empty()) {
    std::ostringstream os;
    WriteMetricsJson(os, snap);
    SaveToFile(json_path, os.str());
  }
}

void PrintBrokerReport(const Broker& broker) {
  const BrokerStats& s = broker.stats();
  std::printf("commands applied  %llu  (sub %llu / unsub %llu / upd %llu / "
              "pub %llu)\n",
              (unsigned long long)s.commands_applied,
              (unsigned long long)s.subscribes,
              (unsigned long long)s.unsubscribes,
              (unsigned long long)s.updates, (unsigned long long)s.publishes);
  std::printf("matched events    %llu  (multicast %llu, unicast %llu)\n",
              (unsigned long long)s.events_matched,
              (unsigned long long)s.multicast_events,
              (unsigned long long)s.unicast_events);
  std::printf("messages emitted  %llu  (wasted %llu)\n",
              (unsigned long long)s.messages_emitted,
              (unsigned long long)s.wasted_deliveries);
  std::printf("refreshes         %llu  (full rebuilds %llu)\n",
              (unsigned long long)s.refreshes,
              (unsigned long long)s.full_rebuilds);
  std::printf("journal bytes     %llu\n", (unsigned long long)s.journal_bytes);
  if (s.replayed_records > 0 || s.snapshot_bytes > 0)
    std::printf("recovered from    %llu snapshot bytes + %llu replayed "
                "records\n",
                (unsigned long long)s.snapshot_bytes,
                (unsigned long long)s.replayed_records);
  std::printf("live subscribers  %zu\n", broker.workload().num_subscribers());
  std::printf("final seq         %llu\n", (unsigned long long)broker.seq());
  std::printf("state digest      %016llx\n",
              (unsigned long long)broker.state_digest());
}

// --storage/--page-size/--buffer-pages: which backend snapshot artifacts
// use.  mem keeps the original text files; disk routes them through the
// paged storage tier (docs/STORAGE.md).
struct StorageConfig {
  bool disk = false;
  std::uint32_t page_size = 4096;
  std::size_t buffer_pages = 64;
};

StorageConfig StorageConfigFromFlags(const Flags& flags) {
  StorageConfig cfg;
  const std::string backend = flags.get("storage", "mem");
  if (backend == "disk")
    cfg.disk = true;
  else if (backend != "mem")
    Usage("unknown --storage '" + backend + "' (want mem|disk)");
  cfg.page_size = static_cast<std::uint32_t>(flags.get_int("page-size", 4096));
  cfg.buffer_pages =
      static_cast<std::size_t>(flags.get_int("buffer-pages", 64));
  if (cfg.buffer_pages == 0) Usage("--buffer-pages must be >= 1");
  return cfg;
}

void SaveSnapshotFile(const std::string& path, const Broker& broker,
                      const StorageConfig& storage) {
  if (!storage.disk) {
    std::ostringstream os;
    broker.write_snapshot(os);
    // Atomic replace: a crash mid-checkpoint must leave the previous
    // snapshot readable (docs/OPERATIONS.md, "Snapshot protocol").
    SaveToFileAtomic(path, os.str());
    return;
  }
  // Page-file analogue of the same protocol: a page file is a valid
  // artifact only after a clean build + flush, so checkpoints build at a
  // temp path and rename over the previous good file.
  const std::string tmp = path + ".tmp";
  {
    DiskStorageManager::Options opts;
    opts.page_size = storage.page_size;
    opts.metrics = &MetricsRegistry::Default();
    auto sm = DiskStorageManager::Create(tmp, opts);
    BufferPool::Options po;
    po.capacity = storage.buffer_pages;
    BufferPool pool(sm.get(), po, &MetricsRegistry::Default());
    PageBlobWriter writer(&pool);
    broker.write_snapshot(writer.stream());
    writer.finish();  // emits the tail page, stores the blob meta, flushes
  }
  std::filesystem::rename(tmp, path);
}

// Bootstrap a seq-0 snapshot from a workload: cold-cluster it once and
// persist the refresh-boundary state so serve-replay / recover / replicas
// can start from a common, durable baseline.
int Snapshot(const Flags& flags) {
  flags.require_known(CliFlagNames("snapshot"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  const std::string out = flags.get("out", "");
  if (net_path.empty() || wl_path.empty() || out.empty())
    Usage("snapshot requires --net, --workload and --out");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  Workload wl = ReadWorkload(wl_is);

  const auto model = ModelFor(net, wl, flags);
  const StorageConfig storage = StorageConfigFromFlags(flags);
  const Broker broker(std::move(wl), *model, net.graph,
                      BrokerOptionsFromFlags(flags));
  SaveSnapshotFile(out, broker, storage);
  std::printf("wrote %s: seq 0, %zu subscribers, %zu clustered cells (%s)\n",
              out.c_str(), broker.workload().num_subscribers(),
              broker.snapshot().assignment.size(),
              storage.disk ? "page file" : "text");
  return 0;
}

// Drive a broker from a synthetic trading-day trace with optional
// subscription churn, journaling every command and checkpointing along the
// way.  Kill it at any point; `recover` resumes from the files.
int ServeReplay(const Flags& flags) {
  flags.require_known(CliFlagNames("serve-replay"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("serve-replay requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  Workload wl = ReadWorkload(wl_is);
  if (IsSection3Space(wl.space))
    Usage("serve-replay drives a stock trace; --workload must be a stock "
          "workload (gen-workload --model=stock)");

  const auto model = ModelFor(net, wl, flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto num_events =
      static_cast<std::size_t>(flags.get_int("events", 2000));
  const auto churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 0));
  const std::string journal_path = flags.get("journal", "");
  const std::string snapshot_path = flags.get("snapshot", "");
  const auto snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every", 500));
  const StorageConfig storage = StorageConfigFromFlags(flags);

  // The command stream is precomputed (trace + churn policy); chaos runs
  // drive the very same schedule, so a serve-replay journal and a chaos
  // journal for one seed are interchangeable.
  const std::vector<JournalRecord> schedule =
      BuildChaosSchedule(net, wl, num_events, churn_every, seed);

  ManualClock clock;
  Broker broker(std::move(wl), *model, net.graph, BrokerOptionsFromFlags(flags),
                &clock);

  std::ofstream journal;
  if (!journal_path.empty()) {
    journal.open(journal_path, std::ios::trunc);
    if (!journal) Usage("cannot open --journal file " + journal_path);
    broker.set_journal(&journal);
  }
  if (!snapshot_path.empty()) SaveSnapshotFile(snapshot_path, broker, storage);

  const std::uint64_t snapshot_base = broker.seq();
  std::size_t events_replayed = 0;
  double last_timestamp = 0.0;
  for (const JournalRecord& rec : schedule) {
    clock.advance_to(rec.cmd.time_ms);
    try {
      broker.apply(rec);
    } catch (const BrokerDegradedError& e) {
      // Journal durability is gone and the retry budget is spent: stop
      // accepting the stream, report what the broker managed to make
      // durable, and exit non-zero so supervisors notice.  The journal on
      // disk plus the last snapshot recover to exactly broker.seq().
      std::fprintf(stderr, "error: %s\n", e.what());
      std::fprintf(stderr,
                   "broker entered degraded (read-only) mode at seq %llu; "
                   "see docs/OPERATIONS.md (\"Degraded mode\")\n",
                   (unsigned long long)broker.seq());
      // Snapshot writes still work while degraded (different file, atomic
      // replace); checkpoint once more so the durability counters — the
      // fault's provenance — survive into `recover` / `stats`.
      if (!snapshot_path.empty()) {
        try {
          SaveSnapshotFile(snapshot_path, broker, storage);
        } catch (const std::exception& snap_err) {
          std::fprintf(stderr, "warning: degraded-exit checkpoint failed: %s\n",
                       snap_err.what());
        }
      }
      PrintBrokerReport(broker);
      WriteMetricsOutputs(broker, flags);
      return 1;
    }
    if (rec.cmd.type == BrokerCommandType::kPublish) {
      ++events_replayed;
      last_timestamp = rec.cmd.time_ms / 1000.0;
      if (!snapshot_path.empty() && snapshot_every > 0 &&
          (broker.seq() - snapshot_base) % snapshot_every == 0)
        SaveSnapshotFile(snapshot_path, broker, storage);
    }
  }
  if (!snapshot_path.empty()) SaveSnapshotFile(snapshot_path, broker, storage);

  std::printf("replayed %zu trace events over %.1f simulated seconds\n\n",
              events_replayed, last_timestamp);
  PrintBrokerReport(broker);
  WriteMetricsOutputs(broker, flags);
  const std::string trace_path = flags.get("trace-out", "");
  if (!trace_path.empty()) {
    std::ostringstream os;
    WriteTraceText(os, broker.trace());
    SaveToFile(trace_path, os.str());
  }
  return 0;
}

// --- fleet serve daemon ---------------------------------------------------

// The fleet registry plus every live shard's registry under shard="k"
// labels (FleetScrape), plus the process-wide registry (thread pool).
MetricsSnapshot ScrapeFleet(const BrokerFleet& fleet, const Flags& flags) {
  const bool runtime_too = !flags.get_bool("metrics-deterministic-only", false);
  MetricsSnapshot snap = FleetScrape(fleet, runtime_too);
  snap.merge(MetricsRegistry::Default().scrape(runtime_too));
  return snap;
}

void WriteFleetMetricsOutputs(const BrokerFleet& fleet, const Flags& flags) {
  const std::string text_path = flags.get("metrics-out", "");
  const std::string json_path = flags.get("metrics-json", "");
  if (text_path.empty() && json_path.empty()) return;
  const MetricsSnapshot snap = ScrapeFleet(fleet, flags);
  if (!text_path.empty()) {
    std::ostringstream os;
    WriteMetricsText(os, snap);
    SaveToFile(text_path, os.str());
  }
  if (!json_path.empty()) {
    std::ostringstream os;
    WriteMetricsJson(os, snap);
    SaveToFile(json_path, os.str());
  }
}

void PrintFleetReport(const BrokerFleet& fleet) {
  std::printf("fleet shards      %zu\n", fleet.num_shards());
  for (std::size_t k = 0; k < fleet.num_shards(); ++k) {
    if (!fleet.shard_alive(k)) {
      std::printf("  shard %zu         down (seq %llu)\n", k,
                  (unsigned long long)fleet.shard_seq(k));
      continue;
    }
    const Broker& b = fleet.shard(k);
    std::printf("  shard %zu         seq %llu, %zu subscribers%s\n", k,
                (unsigned long long)fleet.shard_seq(k),
                b.workload().num_subscribers(),
                b.degraded() ? ", degraded" : "");
  }
  std::printf("live subscribers  %zu\n", fleet.live_subscribers());
  std::printf("final fleet seq   %llu\n", (unsigned long long)fleet.seq());
  std::printf("match chain       %016llx\n",
              (unsigned long long)fleet.match_chain());
  std::printf("fleet digest      %016llx\n",
              (unsigned long long)fleet.state_digest());
}

// Host a sharded BrokerFleet over the trading-day trace on the
// deterministic event loop: trace commands fire at their recorded
// timestamps, a heal-probe timer keeps degraded shards from being
// terminal, and --base makes the run durable (manifest + per-shard
// snapshots + fleet and shard journals).  --resume rebuilds the fleet
// from those artifacts and picks the trace up where it left off;
// --oracle-check replays a single-broker oracle and requires a
// bit-identical fleet digest (the tentpole invariant, DESIGN.md §11).
int Serve(const Flags& flags) {
  flags.require_known(CliFlagNames("serve"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("serve requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  if (IsSection3Space(wl.space))
    Usage("serve drives a stock trace; --workload must be a stock workload "
          "(gen-workload --model=stock)");

  const auto model = ModelFor(net, wl, flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto num_events =
      static_cast<std::size_t>(flags.get_int("events", 2000));
  const auto churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 0));
  const std::string base = flags.get("base", "");
  const auto snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every", 500));
  const double heal_every = flags.get_double("heal-every-ms", 1000.0);
  const bool resume = flags.get_bool("resume", false);
  const bool oracle_check = flags.get_bool("oracle-check", false);
  const double watch_every = flags.get_double("watch-every-ms", 500.0);
  const auto audit_every =
      static_cast<std::uint64_t>(flags.get_int("audit-every", 64));
  WatchdogOptions wopts;
  wopts.skew_ratio = flags.get_double("slo-skew", 4.0);
  wopts.max_backlog = static_cast<std::size_t>(flags.get_int("slo-backlog", 64));
  wopts.audit_every = audit_every;
  if (resume && base.empty()) Usage("--resume requires --base");
  if (heal_every <= 0.0) Usage("--heal-every-ms must be positive");
  if (watch_every < 0.0) Usage("--watch-every-ms must be >= 0");

  const std::vector<JournalRecord> schedule =
      BuildChaosSchedule(net, wl, num_events, churn_every, seed);
  const std::size_t dims = wl.space.dims();

  FleetOptions fopts;
  fopts.num_shards = static_cast<std::size_t>(flags.get_int("shards", 2));
  if (fopts.num_shards == 0) Usage("--shards must be >= 1");
  fopts.broker = BrokerOptionsFromFlags(flags);

  ManualClock clock;
  std::unique_ptr<BrokerFleet> fleet;
  std::ofstream fleet_journal;
  std::vector<std::unique_ptr<std::ofstream>> shard_journals;

  if (!resume) {
    fleet = std::make_unique<BrokerFleet>(wl, *model, net.graph, fopts, &clock);
    if (!base.empty()) {
      fleet_journal.open(FleetJournalPath(base), std::ios::trunc);
      if (!fleet_journal) Usage("cannot open " + FleetJournalPath(base));
      fleet->set_fleet_journal(&fleet_journal, /*write_header=*/true);
      shard_journals.resize(fleet->num_shards());
      for (std::size_t k = 0; k < fleet->num_shards(); ++k) {
        shard_journals[k] = std::make_unique<std::ofstream>(
            FleetShardJournalPath(base, k), std::ios::trunc);
        if (!*shard_journals[k])
          Usage("cannot open " + FleetShardJournalPath(base, k));
        fleet->set_shard_journal(k, shard_journals[k].get(),
                                 /*write_header=*/true);
      }
    }
  } else {
    std::istringstream m_is(LoadFromFile(FleetManifestPath(base)));
    const FleetManifest manifest = ReadFleetManifest(m_is);
    const std::size_t nshards = manifest.shards.size();
    std::vector<BrokerSnapshot> snaps;
    snaps.reserve(nshards);
    std::vector<std::vector<JournalRecord>> shard_recs(nshards);
    for (std::size_t k = 0; k < nshards; ++k) {
      std::istringstream s_is(LoadFromFile(FleetShardSnapshotPath(base, k)));
      snaps.push_back(ReadBrokerSnapshot(s_is));
      std::istringstream j_is(LoadFromFile(FleetShardJournalPath(base, k)));
      JournalReadResult jr = ReadJournalLenient(j_is);
      if (jr.torn_tail)
        std::fprintf(stderr, "warning: %s: dropped torn journal tail (%s)\n",
                     FleetShardJournalPath(base, k).c_str(),
                     jr.tail_error.c_str());
      shard_recs[k] = std::move(jr.journal.records);
    }
    std::istringstream fj_is(LoadFromFile(FleetJournalPath(base)));
    JournalReadResult fj = ReadJournalLenient(fj_is);
    if (fj.torn_tail)
      std::fprintf(stderr, "warning: %s: dropped torn journal tail (%s)\n",
                   FleetJournalPath(base).c_str(), fj.tail_error.c_str());
    if (fj.journal.dims != dims)
      Usage("fleet journal dimensionality does not match the workload");

    // Truncate every journal back to its checkpoint seq before the sinks
    // re-attach: the fleet-tail replay below then re-appends byte-identical
    // records, so the files converge to exactly their pre-restart content
    // (a torn tail simply never comes back).
    const auto rewrite = [&](const std::string& path,
                             const std::vector<JournalRecord>& recs,
                             std::uint64_t upto) {
      std::ostringstream os;
      WriteJournalHeader(os, dims);
      for (const JournalRecord& r : recs)
        if (r.seq <= upto) WriteJournalRecord(os, r, dims);
      SaveToFile(path, os.str());
    };
    rewrite(FleetJournalPath(base), fj.journal.records, manifest.seq);
    for (std::size_t k = 0; k < nshards; ++k)
      rewrite(FleetShardJournalPath(base, k), shard_recs[k],
              manifest.shards[k].seq);

    fopts.num_shards = nshards;
    fleet = BrokerFleet::Recover(manifest, snaps, shard_recs, *model,
                                 net.graph, fopts, &clock);

    fleet_journal.open(FleetJournalPath(base), std::ios::app);
    if (!fleet_journal) Usage("cannot open " + FleetJournalPath(base));
    fleet->set_fleet_journal(&fleet_journal, /*write_header=*/false);
    shard_journals.resize(nshards);
    for (std::size_t k = 0; k < nshards; ++k) {
      shard_journals[k] = std::make_unique<std::ofstream>(
          FleetShardJournalPath(base, k), std::ios::app);
      if (!*shard_journals[k])
        Usage("cannot open " + FleetShardJournalPath(base, k));
      fleet->set_shard_journal(k, shard_journals[k].get(),
                               /*write_header=*/false);
    }
    std::size_t tail_replayed = 0;
    for (const JournalRecord& rec : fj.journal.records)
      if (rec.seq > manifest.seq) {
        fleet->apply(rec);
        ++tail_replayed;
      }
    std::fprintf(stderr,
                 "resumed %zu shards from %s at fleet seq %llu "
                 "(%zu fleet journal tail records replayed)\n",
                 nshards, FleetManifestPath(base).c_str(),
                 (unsigned long long)manifest.seq, tail_replayed);
  }

  const std::uint64_t start_seq = fleet->seq();
  if (start_seq > schedule.size())
    Usage("--events is smaller than the resumed fleet's sequence number; "
          "pass the original trace length");

  // SLO watchdog + invariant auditor.  Alerts go to stderr as they fire
  // (the report prints a summary); they never change the exit code — a
  // slow shard is an operator signal, not a failed run.
  FleetWatchdog watchdog(wopts, &fleet->metrics());
  std::size_t alerts_total = 0;
  const auto report_alerts = [&](const std::vector<WatchdogAlert>& alerts) {
    alerts_total += alerts.size();
    for (const WatchdogAlert& a : alerts)
      std::fprintf(stderr, "watchdog: %s: %s\n", WatchdogAlertKindName(a.kind),
                   a.detail.c_str());
  };
  const auto run_audit = [&] {
    report_alerts(watchdog.audit(clock.now_ms(), CollectShardAudit(*fleet)));
  };

  const auto do_checkpoint = [&]() {
    if (base.empty() || fleet->stalled()) return;
    const FleetCheckpoint cp = fleet->checkpoint();
    std::ostringstream ms;
    WriteFleetManifest(ms, cp.manifest);
    SaveToFileAtomic(FleetManifestPath(base), ms.str());
    for (std::size_t k = 0; k < cp.shard_snapshots.size(); ++k) {
      std::ostringstream ss;
      WriteBrokerSnapshot(ss, cp.shard_snapshots[k]);
      SaveToFileAtomic(FleetShardSnapshotPath(base, k), ss.str());
    }
  };
  if (!resume) do_checkpoint();  // seq-0 baseline, like serve-replay

  EventLoop loop(&clock);
  std::deque<JournalRecord> backlog;  // commands parked during a stall

  // Only ever called while !stalled(): a FleetDegradedError here is the
  // mid-record kind — the record is already journaled and pending inside
  // the fleet, so discarding our copy is safe (the heal timer finishes it).
  const auto apply_one = [&](const JournalRecord& rec) {
    try {
      fleet->apply(rec);
    } catch (const FleetDegradedError&) {
      return;
    }
    if (snapshot_every > 0 && fleet->seq() % snapshot_every == 0)
      do_checkpoint();
    if (audit_every > 0 && fleet->seq() % audit_every == 0) run_audit();
  };
  const auto drain = [&]() {
    while (!backlog.empty() && !fleet->stalled()) {
      apply_one(backlog.front());
      backlog.pop_front();
    }
  };

  for (std::size_t i = static_cast<std::size_t>(start_seq);
       i < schedule.size(); ++i) {
    loop.at(schedule[i].cmd.time_ms, [&, i] {
      drain();  // parked commands go first: the stream stays in seq order
      if (fleet->stalled()) {
        backlog.push_back(schedule[i]);
        return;
      }
      apply_one(schedule[i]);
    });
  }
  loop.every(heal_every, heal_every, [&] {
    if (fleet->heal()) drain();
  });
  if (watch_every > 0.0)
    loop.every(watch_every, watch_every, [&] {
      report_alerts(watchdog.check(clock.now_ms(),
                                   fleet->shard_publish_histograms(),
                                   backlog.size()));
    });
  loop.run();

  // A stall near the end of the trace parks the remainder in the backlog
  // and the one-shots drain before the next heal firing; give the fleet a
  // bounded number of extra probes to finish the job.
  for (int probes = 0; (fleet->stalled() || !backlog.empty()) && probes < 8;
       ++probes) {
    fleet->heal();
    drain();
  }
  const bool stalled_out = fleet->stalled() || !backlog.empty();
  if (stalled_out)
    std::fprintf(stderr,
                 "fleet stalled at seq %llu with %zu commands parked; a "
                 "shard is degraded and heal probes cannot clear it (see "
                 "docs/OPERATIONS.md, \"Serve mode\")\n",
                 (unsigned long long)fleet->seq(), backlog.size());
  else
    do_checkpoint();
  // Closing watchdog pass: a skew or divergence that appeared after the
  // last timer firing still surfaces (and a clean run stays silent).
  if (watch_every > 0.0)
    report_alerts(watchdog.check(
        clock.now_ms(), fleet->shard_publish_histograms(), backlog.size()));
  if (audit_every > 0) run_audit();

  bool oracle_ok = true;
  if (oracle_check) {
    FleetOracle oracle(wl, *model, net.graph, fopts.broker);
    for (const JournalRecord& rec : schedule)
      if (rec.seq <= fleet->seq()) oracle.apply(rec);
    const std::uint64_t want = oracle.state_digest();
    oracle_ok = want == fleet->state_digest();
    std::printf("oracle digest     %016llx  (%s)\n", (unsigned long long)want,
                oracle_ok ? "match" : "MISMATCH");
  }

  std::size_t events_served = 0;
  double last_timestamp = 0.0;
  for (std::size_t i = static_cast<std::size_t>(start_seq);
       i < schedule.size() && schedule[i].seq <= fleet->seq(); ++i) {
    if (schedule[i].cmd.type == BrokerCommandType::kPublish) {
      ++events_served;
      last_timestamp = schedule[i].cmd.time_ms / 1000.0;
    }
  }
  std::printf("served %zu trace events over %.1f simulated seconds on %zu "
              "shards\n\n",
              events_served, last_timestamp, fleet->num_shards());
  PrintFleetReport(*fleet);
  std::printf("watchdog          %zu alerts (%llu checks, %llu audits)\n",
              alerts_total, (unsigned long long)watchdog.checks(),
              (unsigned long long)watchdog.audits());
  WriteFleetMetricsOutputs(*fleet, flags);
  const std::string trace_path = flags.get("trace-out", "");
  if (!trace_path.empty()) {
    std::ostringstream os;
    WriteTraceJson(os, fleet->collect_spans(), fleet->trace_recorded(),
                   fleet->trace_dropped());
    SaveToFile(trace_path, os.str());
  }
  return (stalled_out || !oracle_ok) ? 1 : 0;
}

// Text dashboard over a fleet run: a lean `serve` — fresh fleet, no
// durability — that prints per-shard health frames (seq, subscribers,
// publish-latency p50/p99 via HistogramQuantile, degraded markers) driven
// off the event loop: every --interval-ms of trace time, or one final
// frame when the interval is 0.  Watchdog alerts stream to stderr.
int Top(const Flags& flags) {
  flags.require_known(CliFlagNames("top"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("top requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  if (IsSection3Space(wl.space))
    Usage("top drives a stock trace; --workload must be a stock workload "
          "(gen-workload --model=stock)");

  const auto model = ModelFor(net, wl, flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto num_events =
      static_cast<std::size_t>(flags.get_int("events", 2000));
  const auto churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 0));
  const double interval = flags.get_double("interval-ms", 0.0);
  if (interval < 0.0) Usage("--interval-ms must be >= 0");

  FleetOptions fopts;
  fopts.num_shards = static_cast<std::size_t>(flags.get_int("shards", 2));
  if (fopts.num_shards == 0) Usage("--shards must be >= 1");
  fopts.broker = BrokerOptionsFromFlags(flags);

  const std::vector<JournalRecord> schedule =
      BuildChaosSchedule(net, wl, num_events, churn_every, seed);

  ManualClock clock;
  BrokerFleet fleet(wl, *model, net.graph, fopts, &clock);
  WatchdogOptions wopts;
  wopts.skew_ratio = flags.get_double("slo-skew", 4.0);
  wopts.max_backlog = static_cast<std::size_t>(flags.get_int("slo-backlog", 64));
  FleetWatchdog watchdog(wopts, &fleet.metrics());
  std::size_t alerts_total = 0;
  const auto report_alerts = [&](const std::vector<WatchdogAlert>& alerts) {
    alerts_total += alerts.size();
    for (const WatchdogAlert& a : alerts)
      std::fprintf(stderr, "watchdog: %s: %s\n", WatchdogAlertKindName(a.kind),
                   a.detail.c_str());
  };

  EventLoop loop(&clock);
  std::deque<JournalRecord> backlog;
  const auto apply_one = [&](const JournalRecord& rec) {
    try {
      fleet.apply(rec);
    } catch (const FleetDegradedError&) {
    }
  };
  const auto drain = [&] {
    while (!backlog.empty() && !fleet.stalled()) {
      apply_one(backlog.front());
      backlog.pop_front();
    }
  };

  const auto frame = [&] {
    const std::vector<const Histogram*> hists =
        fleet.shard_publish_histograms();
    std::printf("t=%.1fs seq=%llu live=%zu stalled=%d backlog=%zu alerts=%zu\n",
                clock.now_ms() / 1000.0, (unsigned long long)fleet.seq(),
                fleet.live_subscribers(), fleet.stalled() ? 1 : 0,
                backlog.size(), alerts_total);
    for (std::size_t k = 0; k < fleet.num_shards(); ++k) {
      if (!fleet.shard_alive(k)) {
        std::printf("  shard %zu  DOWN  seq=%llu\n", k,
                    (unsigned long long)fleet.shard_seq(k));
        continue;
      }
      const Broker& b = fleet.shard(k);
      const Histogram* h = hists[k];
      const double p50 =
          HistogramQuantile(h->upper_bounds(), h->bucket_counts(), 0.5);
      const double p99 =
          HistogramQuantile(h->upper_bounds(), h->bucket_counts(), 0.99);
      std::printf("  shard %zu  seq=%llu subs=%zu publishes=%llu "
                  "p50=%.3fms p99=%.3fms%s\n",
                  k, (unsigned long long)fleet.shard_seq(k),
                  b.workload().num_subscribers(), (unsigned long long)h->count(),
                  p50, p99, b.degraded() ? " DEGRADED" : "");
    }
  };

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    loop.at(schedule[i].cmd.time_ms, [&, i] {
      drain();
      if (fleet.stalled()) {
        backlog.push_back(schedule[i]);
        return;
      }
      apply_one(schedule[i]);
    });
  }
  loop.every(1000.0, 1000.0, [&] {  // heal probe, as in serve
    if (fleet.heal()) drain();
  });
  if (interval > 0.0)
    loop.every(interval, interval, [&] {
      report_alerts(watchdog.check(
          clock.now_ms(), fleet.shard_publish_histograms(), backlog.size()));
      frame();
    });
  loop.run();
  for (int probes = 0; (fleet.stalled() || !backlog.empty()) && probes < 8;
       ++probes) {
    fleet.heal();
    drain();
  }
  report_alerts(watchdog.check(clock.now_ms(),
                               fleet.shard_publish_histograms(),
                               backlog.size()));
  report_alerts(watchdog.audit(clock.now_ms(), CollectShardAudit(fleet)));
  frame();
  WriteFleetMetricsOutputs(fleet, flags);
  return (fleet.stalled() || !backlog.empty()) ? 1 : 0;
}

// Shared recovery path for `recover` and `stats`: rebuild a broker from
// snapshot + journal tail.
std::unique_ptr<Broker> RecoverFromFlags(const Flags& flags,
                                         TransitStubNetwork* net_out,
                                         std::unique_ptr<PublicationModel>* model_out) {
  const std::string net_path = flags.get("net", "");
  const std::string snapshot_path = flags.get("snapshot", "");
  if (net_path.empty() || snapshot_path.empty())
    Usage("recover/stats requires --net and --snapshot");
  std::istringstream net_is(LoadFromFile(net_path));
  *net_out = ReadTransitStub(net_is);

  const StorageConfig storage = StorageConfigFromFlags(flags);
  BrokerSnapshot snap;
  if (storage.disk) {
    // Broker::Recover streams the snapshot straight out of the page file:
    // the PageBlobReader pulls one page per istream underflow, so recovery
    // never materializes the artifact as a contiguous string.
    DiskStorageManager::OpenReport rep;
    DiskStorageManager::Options sopts;
    sopts.metrics = &MetricsRegistry::Default();
    auto sm = DiskStorageManager::Open(snapshot_path, sopts, &rep);
    if (rep.clipped_pages > 0)
      std::fprintf(stderr,
                   "warning: %s: clipped %zu torn pages at the file tail\n",
                   snapshot_path.c_str(), rep.clipped_pages);
    BufferPool::Options po;
    po.capacity = storage.buffer_pages;
    BufferPool pool(sm.get(), po, &MetricsRegistry::Default());
    PageBlobReader reader(&pool);
    snap = ReadBrokerSnapshot(reader.stream());
  } else {
    std::istringstream snap_is(LoadFromFile(snapshot_path));
    snap = ReadBrokerSnapshot(snap_is);
  }

  std::vector<JournalRecord> tail;
  const std::string journal_path = flags.get("journal", "");
  if (!journal_path.empty()) {
    std::istringstream j_is(LoadFromFile(journal_path));
    // Lenient read: a torn tail is the normal residue of a crash
    // mid-append and recovery proceeds to the last complete record.
    // Interior damage or a sequence gap still aborts (JournalError carries
    // the distinct code; see docs/OPERATIONS.md, "Journal damage matrix").
    JournalReadResult jr = ReadJournalLenient(j_is);
    if (jr.torn_tail)
      std::fprintf(stderr,
                   "warning: %s: dropped torn journal tail (%s); recovering "
                   "to the last complete record\n",
                   journal_path.c_str(), jr.tail_error.c_str());
    if (jr.journal.dims != snap.workload.space.dims())
      Usage("journal dimensionality does not match the snapshot");
    tail = std::move(jr.journal.records);
  }

  *model_out = ModelFor(*net_out, snap.workload, flags);
  BrokerOptions opts = BrokerOptionsFromFlags(flags);
  // The snapshot is authoritative for the group count; an explicit
  // --groups still wins (and a mismatch is rejected by the broker).
  if (!flags.has("groups"))
    opts.group.num_groups = static_cast<std::size_t>(snap.num_groups);
  return Broker::Recover(snap, tail, **model_out, net_out->graph, opts);
}

// Rebuild a broker from snapshot + journal tail and print the same report
// serve-replay prints: at equal sequence numbers the state digests match.
int Recover(const Flags& flags) {
  flags.require_known(CliFlagNames("recover"));
  TransitStubNetwork net;
  std::unique_ptr<PublicationModel> model;
  const auto broker = RecoverFromFlags(flags, &net, &model);
  PrintBrokerReport(*broker);
  WriteMetricsOutputs(*broker, flags);
  return 0;
}

// Recover and dump every metric to stdout: Prometheus text, a blank line,
// then the JSON form.  All counters/gauges are deterministic functions of
// snapshot + journal, so two invocations print identical values.
int Stats(const Flags& flags) {
  flags.require_known(CliFlagNames("stats"));
  TransitStubNetwork net;
  std::unique_ptr<PublicationModel> model;
  const auto broker = RecoverFromFlags(flags, &net, &model);
  const MetricsSnapshot snap = ScrapeAll(*broker, flags);
  std::ostringstream text;
  WriteMetricsText(text, snap);
  std::ostringstream json;
  WriteMetricsJson(json, snap);
  std::fputs(text.str().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(json.str().c_str(), stdout);
  return 0;
}

// Scripted kill/recover cycles against an in-memory disk; exits 0 only if
// every recovered incarnation (and the warm standby) stayed bit-identical
// to the un-faulted reference run.
int Chaos(const Flags& flags) {
  flags.require_known(CliFlagNames("chaos"));
  const std::string net_path = flags.get("net", "");
  const std::string wl_path = flags.get("workload", "");
  if (net_path.empty() || wl_path.empty())
    Usage("chaos requires --net and --workload");
  std::istringstream net_is(LoadFromFile(net_path));
  const TransitStubNetwork net = ReadTransitStub(net_is);
  std::istringstream wl_is(LoadFromFile(wl_path));
  const Workload wl = ReadWorkload(wl_is);
  if (IsSection3Space(wl.space))
    Usage("chaos drives a stock trace; --workload must be a stock workload "
          "(gen-workload --model=stock)");

  const auto model = ModelFor(net, wl, flags);
  ChaosOptions copts;
  copts.num_events = static_cast<std::size_t>(flags.get_int("events", 400));
  copts.churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 5));
  copts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  copts.chaos_seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 1));
  copts.cycles = static_cast<std::size_t>(flags.get_int("cycles", 200));
  copts.snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every", 50));
  copts.broker = BrokerOptionsFromFlags(flags);

  const ChaosReport report = RunChaos(net, wl, *model, copts);
  std::fputs(FormatChaosReport(report).c_str(), stdout);
  bool ok = report.digests_match && report.replica_matches &&
            report.digest_mismatches == 0;

  // --promotions extends the run to the fleet's failover seam: seeded
  // kill/promote cycles with the promote.journal_handoff fail point armed
  // on some of them, falling back to cold shard recovery when the standby
  // crashes mid-handoff.
  const auto promotions =
      static_cast<std::size_t>(flags.get_int("promotions", 0));
  if (promotions > 0) {
    PromotionChaosOptions popts;
    popts.num_shards = static_cast<std::size_t>(flags.get_int("shards", 3));
    popts.num_events = copts.num_events;
    popts.churn_every = copts.churn_every;
    popts.seed = copts.seed;
    popts.chaos_seed = copts.chaos_seed;
    popts.cycles = promotions;
    popts.snapshot_every = copts.snapshot_every;
    popts.broker = copts.broker;
    const PromotionChaosReport prep = RunPromotionChaos(net, wl, *model, popts);
    std::fputs("\n", stdout);
    std::fputs(FormatPromotionChaosReport(prep).c_str(), stdout);
    ok = ok && prep.ok();
  }

  // --storage=disk extends the run to the paged tier on a real filesystem:
  // the storage drill rotates through the storage.* fail-point sites plus
  // physical torn tails and requires query parity against an in-memory
  // reference after every cycle (docs/STORAGE.md).
  const StorageConfig storage = StorageConfigFromFlags(flags);
  if (storage.disk) {
    StorageChaosOptions sopts;
    sopts.dir = flags.get("storage-dir", "");
    if (sopts.dir.empty()) Usage("chaos --storage=disk requires --storage-dir");
    sopts.cycles =
        static_cast<std::size_t>(flags.get_int("storage-cycles", 40));
    sopts.seed = copts.seed;
    sopts.chaos_seed = copts.chaos_seed;
    sopts.page_size = storage.page_size;
    sopts.buffer_pages = storage.buffer_pages;
    const StorageChaosReport srep = RunStorageChaos(sopts);
    std::fputs("\n", stdout);
    std::fputs(FormatStorageChaosReport(srep).c_str(), stdout);
    ok = ok && srep.ok();
  }
  return ok ? 0 : 1;
}

int Run(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    // Requested help is not an error; the text is the cli_spec table,
    // byte-identical to the block embedded in docs/CLI.md.
    std::fputs(CliUsageText().c_str(), stdout);
    return 0;
  }
  const Flags flags(argc - 1, argv + 1);
  ConfigureThreadsFromFlags(flags);
  try {
    FailPoints::Instance().configure_from_env();
    if (flags.has("failpoints-seed"))
      FailPoints::Instance().set_seed(
          static_cast<std::uint64_t>(flags.get_int("failpoints-seed", 0)));
    if (flags.has("failpoints"))
      FailPoints::Instance().configure(flags.get("failpoints", ""));
    if (cmd == "gen-net") return GenNet(flags);
    if (cmd == "gen-workload") return GenWorkload(flags);
    if (cmd == "cluster") return Cluster(flags);
    if (cmd == "evaluate") return Evaluate(flags);
    if (cmd == "snapshot") return Snapshot(flags);
    if (cmd == "serve-replay") return ServeReplay(flags);
    if (cmd == "serve") return Serve(flags);
    if (cmd == "top") return Top(flags);
    if (cmd == "recover") return Recover(flags);
    if (cmd == "stats") return Stats(flags);
    if (cmd == "chaos") return Chaos(flags);
  } catch (const std::exception& e) {
    // Covers InjectedCrash too: an armed --failpoints crash behaves like
    // the process death it simulates (exit 1, journal left as-is).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Usage("unknown command '" + cmd + "'");
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
