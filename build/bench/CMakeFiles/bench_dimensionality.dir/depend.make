# Empty dependencies file for bench_dimensionality.
# This may be replaced when dependencies are built.
