file(REMOVE_RECURSE
  "CMakeFiles/bench_dimensionality.dir/bench_dimensionality.cc.o"
  "CMakeFiles/bench_dimensionality.dir/bench_dimensionality.cc.o.d"
  "bench_dimensionality"
  "bench_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
