bench/CMakeFiles/bench_table1.dir/bench_table1.cc.o: \
 /root/repo/bench/bench_table1.cc /usr/include/stdc-predef.h \
 /root/repo/bench/table_common.h
