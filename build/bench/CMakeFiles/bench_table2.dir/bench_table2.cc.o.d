bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o: \
 /root/repo/bench/bench_table2.cc /usr/include/stdc-predef.h \
 /root/repo/bench/table_common.h
