file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reclustering.dir/dynamic_reclustering.cpp.o"
  "CMakeFiles/dynamic_reclustering.dir/dynamic_reclustering.cpp.o.d"
  "dynamic_reclustering"
  "dynamic_reclustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reclustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
