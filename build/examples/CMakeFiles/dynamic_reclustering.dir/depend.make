# Empty dependencies file for dynamic_reclustering.
# This may be replaced when dependencies are built.
