file(REMOVE_RECURSE
  "CMakeFiles/stock_market.dir/stock_market.cpp.o"
  "CMakeFiles/stock_market.dir/stock_market.cpp.o.d"
  "stock_market"
  "stock_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
