# Empty compiler generated dependencies file for stock_market.
# This may be replaced when dependencies are built.
