file(REMOVE_RECURSE
  "CMakeFiles/strategy_advisor.dir/strategy_advisor.cpp.o"
  "CMakeFiles/strategy_advisor.dir/strategy_advisor.cpp.o.d"
  "strategy_advisor"
  "strategy_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
