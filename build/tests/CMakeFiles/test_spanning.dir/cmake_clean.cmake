file(REMOVE_RECURSE
  "CMakeFiles/test_spanning.dir/test_spanning.cc.o"
  "CMakeFiles/test_spanning.dir/test_spanning.cc.o.d"
  "test_spanning"
  "test_spanning.pdb"
  "test_spanning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
