# Empty dependencies file for test_spanning.
# This may be replaced when dependencies are built.
