file(REMOVE_RECURSE
  "CMakeFiles/test_delivery_runtime.dir/test_delivery_runtime.cc.o"
  "CMakeFiles/test_delivery_runtime.dir/test_delivery_runtime.cc.o.d"
  "test_delivery_runtime"
  "test_delivery_runtime.pdb"
  "test_delivery_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delivery_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
