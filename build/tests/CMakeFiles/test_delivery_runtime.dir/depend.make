# Empty dependencies file for test_delivery_runtime.
# This may be replaced when dependencies are built.
