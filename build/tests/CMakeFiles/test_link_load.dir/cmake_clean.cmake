file(REMOVE_RECURSE
  "CMakeFiles/test_link_load.dir/test_link_load.cc.o"
  "CMakeFiles/test_link_load.dir/test_link_load.cc.o.d"
  "test_link_load"
  "test_link_load.pdb"
  "test_link_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
