file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_mode.dir/test_sparse_mode.cc.o"
  "CMakeFiles/test_sparse_mode.dir/test_sparse_mode.cc.o.d"
  "test_sparse_mode"
  "test_sparse_mode.pdb"
  "test_sparse_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
