# Empty dependencies file for test_group_manager.
# This may be replaced when dependencies are built.
