file(REMOVE_RECURSE
  "CMakeFiles/test_group_manager.dir/test_group_manager.cc.o"
  "CMakeFiles/test_group_manager.dir/test_group_manager.cc.o.d"
  "test_group_manager"
  "test_group_manager.pdb"
  "test_group_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
