# Empty dependencies file for test_delivery.
# This may be replaced when dependencies are built.
