file(REMOVE_RECURSE
  "CMakeFiles/test_delivery.dir/test_delivery.cc.o"
  "CMakeFiles/test_delivery.dir/test_delivery.cc.o.d"
  "test_delivery"
  "test_delivery.pdb"
  "test_delivery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
