file(REMOVE_RECURSE
  "CMakeFiles/test_content_router.dir/test_content_router.cc.o"
  "CMakeFiles/test_content_router.dir/test_content_router.cc.o.d"
  "test_content_router"
  "test_content_router.pdb"
  "test_content_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_content_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
