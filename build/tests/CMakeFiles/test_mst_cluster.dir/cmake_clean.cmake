file(REMOVE_RECURSE
  "CMakeFiles/test_mst_cluster.dir/test_mst_cluster.cc.o"
  "CMakeFiles/test_mst_cluster.dir/test_mst_cluster.cc.o.d"
  "test_mst_cluster"
  "test_mst_cluster.pdb"
  "test_mst_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mst_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
