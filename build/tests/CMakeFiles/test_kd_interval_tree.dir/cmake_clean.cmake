file(REMOVE_RECURSE
  "CMakeFiles/test_kd_interval_tree.dir/test_kd_interval_tree.cc.o"
  "CMakeFiles/test_kd_interval_tree.dir/test_kd_interval_tree.cc.o.d"
  "test_kd_interval_tree"
  "test_kd_interval_tree.pdb"
  "test_kd_interval_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kd_interval_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
