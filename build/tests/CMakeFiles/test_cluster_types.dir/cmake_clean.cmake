file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_types.dir/test_cluster_types.cc.o"
  "CMakeFiles/test_cluster_types.dir/test_cluster_types.cc.o.d"
  "test_cluster_types"
  "test_cluster_types.pdb"
  "test_cluster_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
