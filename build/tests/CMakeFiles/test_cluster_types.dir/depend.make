# Empty dependencies file for test_cluster_types.
# This may be replaced when dependencies are built.
