# Empty compiler generated dependencies file for test_transit_stub.
# This may be replaced when dependencies are built.
