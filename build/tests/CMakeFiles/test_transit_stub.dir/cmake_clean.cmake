file(REMOVE_RECURSE
  "CMakeFiles/test_transit_stub.dir/test_transit_stub.cc.o"
  "CMakeFiles/test_transit_stub.dir/test_transit_stub.cc.o.d"
  "test_transit_stub"
  "test_transit_stub.pdb"
  "test_transit_stub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transit_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
