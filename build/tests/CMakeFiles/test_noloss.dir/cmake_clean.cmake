file(REMOVE_RECURSE
  "CMakeFiles/test_noloss.dir/test_noloss.cc.o"
  "CMakeFiles/test_noloss.dir/test_noloss.cc.o.d"
  "test_noloss"
  "test_noloss.pdb"
  "test_noloss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
