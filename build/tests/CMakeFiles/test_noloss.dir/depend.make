# Empty dependencies file for test_noloss.
# This may be replaced when dependencies are built.
