file(REMOVE_RECURSE
  "CMakeFiles/test_multirange.dir/test_multirange.cc.o"
  "CMakeFiles/test_multirange.dir/test_multirange.cc.o.d"
  "test_multirange"
  "test_multirange.pdb"
  "test_multirange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multirange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
