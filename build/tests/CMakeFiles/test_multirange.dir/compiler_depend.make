# Empty compiler generated dependencies file for test_multirange.
# This may be replaced when dependencies are built.
