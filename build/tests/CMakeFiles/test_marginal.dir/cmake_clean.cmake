file(REMOVE_RECURSE
  "CMakeFiles/test_marginal.dir/test_marginal.cc.o"
  "CMakeFiles/test_marginal.dir/test_marginal.cc.o.d"
  "test_marginal"
  "test_marginal.pdb"
  "test_marginal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marginal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
