# Empty compiler generated dependencies file for ps_core.
# This may be replaced when dependencies are built.
