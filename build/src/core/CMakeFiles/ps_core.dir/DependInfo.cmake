
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cc" "src/core/CMakeFiles/ps_core.dir/algorithms.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/algorithms.cc.o.d"
  "/root/repo/src/core/cluster_types.cc" "src/core/CMakeFiles/ps_core.dir/cluster_types.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/cluster_types.cc.o.d"
  "/root/repo/src/core/grid.cc" "src/core/CMakeFiles/ps_core.dir/grid.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/grid.cc.o.d"
  "/root/repo/src/core/group_manager.cc" "src/core/CMakeFiles/ps_core.dir/group_manager.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/group_manager.cc.o.d"
  "/root/repo/src/core/kmeans.cc" "src/core/CMakeFiles/ps_core.dir/kmeans.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/kmeans.cc.o.d"
  "/root/repo/src/core/matching.cc" "src/core/CMakeFiles/ps_core.dir/matching.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/matching.cc.o.d"
  "/root/repo/src/core/mst_cluster.cc" "src/core/CMakeFiles/ps_core.dir/mst_cluster.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/mst_cluster.cc.o.d"
  "/root/repo/src/core/noloss.cc" "src/core/CMakeFiles/ps_core.dir/noloss.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/noloss.cc.o.d"
  "/root/repo/src/core/outlier.cc" "src/core/CMakeFiles/ps_core.dir/outlier.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/outlier.cc.o.d"
  "/root/repo/src/core/pairwise.cc" "src/core/CMakeFiles/ps_core.dir/pairwise.cc.o" "gcc" "src/core/CMakeFiles/ps_core.dir/pairwise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/ps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ps_index.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ps_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
