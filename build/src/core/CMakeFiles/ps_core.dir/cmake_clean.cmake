file(REMOVE_RECURSE
  "CMakeFiles/ps_core.dir/algorithms.cc.o"
  "CMakeFiles/ps_core.dir/algorithms.cc.o.d"
  "CMakeFiles/ps_core.dir/cluster_types.cc.o"
  "CMakeFiles/ps_core.dir/cluster_types.cc.o.d"
  "CMakeFiles/ps_core.dir/grid.cc.o"
  "CMakeFiles/ps_core.dir/grid.cc.o.d"
  "CMakeFiles/ps_core.dir/group_manager.cc.o"
  "CMakeFiles/ps_core.dir/group_manager.cc.o.d"
  "CMakeFiles/ps_core.dir/kmeans.cc.o"
  "CMakeFiles/ps_core.dir/kmeans.cc.o.d"
  "CMakeFiles/ps_core.dir/matching.cc.o"
  "CMakeFiles/ps_core.dir/matching.cc.o.d"
  "CMakeFiles/ps_core.dir/mst_cluster.cc.o"
  "CMakeFiles/ps_core.dir/mst_cluster.cc.o.d"
  "CMakeFiles/ps_core.dir/noloss.cc.o"
  "CMakeFiles/ps_core.dir/noloss.cc.o.d"
  "CMakeFiles/ps_core.dir/outlier.cc.o"
  "CMakeFiles/ps_core.dir/outlier.cc.o.d"
  "CMakeFiles/ps_core.dir/pairwise.cc.o"
  "CMakeFiles/ps_core.dir/pairwise.cc.o.d"
  "libps_core.a"
  "libps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
