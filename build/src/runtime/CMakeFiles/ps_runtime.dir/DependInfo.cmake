
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/delivery_runtime.cc" "src/runtime/CMakeFiles/ps_runtime.dir/delivery_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/delivery_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
