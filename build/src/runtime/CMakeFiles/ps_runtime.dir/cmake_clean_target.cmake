file(REMOVE_RECURSE
  "libps_runtime.a"
)
