file(REMOVE_RECURSE
  "CMakeFiles/ps_runtime.dir/delivery_runtime.cc.o"
  "CMakeFiles/ps_runtime.dir/delivery_runtime.cc.o.d"
  "libps_runtime.a"
  "libps_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
