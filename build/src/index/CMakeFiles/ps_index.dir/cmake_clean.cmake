file(REMOVE_RECURSE
  "CMakeFiles/ps_index.dir/kd_interval_tree.cc.o"
  "CMakeFiles/ps_index.dir/kd_interval_tree.cc.o.d"
  "CMakeFiles/ps_index.dir/rtree.cc.o"
  "CMakeFiles/ps_index.dir/rtree.cc.o.d"
  "CMakeFiles/ps_index.dir/spatial_index.cc.o"
  "CMakeFiles/ps_index.dir/spatial_index.cc.o.d"
  "libps_index.a"
  "libps_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
