# Empty compiler generated dependencies file for ps_index.
# This may be replaced when dependencies are built.
