file(REMOVE_RECURSE
  "libps_index.a"
)
