file(REMOVE_RECURSE
  "libps_overlay.a"
)
