# Empty compiler generated dependencies file for ps_overlay.
# This may be replaced when dependencies are built.
