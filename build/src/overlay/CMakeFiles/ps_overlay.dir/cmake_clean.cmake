file(REMOVE_RECURSE
  "CMakeFiles/ps_overlay.dir/content_router.cc.o"
  "CMakeFiles/ps_overlay.dir/content_router.cc.o.d"
  "libps_overlay.a"
  "libps_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
