file(REMOVE_RECURSE
  "libps_io.a"
)
