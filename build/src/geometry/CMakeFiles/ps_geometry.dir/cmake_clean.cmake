file(REMOVE_RECURSE
  "CMakeFiles/ps_geometry.dir/event_space.cc.o"
  "CMakeFiles/ps_geometry.dir/event_space.cc.o.d"
  "CMakeFiles/ps_geometry.dir/interval.cc.o"
  "CMakeFiles/ps_geometry.dir/interval.cc.o.d"
  "CMakeFiles/ps_geometry.dir/rect.cc.o"
  "CMakeFiles/ps_geometry.dir/rect.cc.o.d"
  "libps_geometry.a"
  "libps_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
