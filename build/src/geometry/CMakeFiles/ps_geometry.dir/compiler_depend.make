# Empty compiler generated dependencies file for ps_geometry.
# This may be replaced when dependencies are built.
