file(REMOVE_RECURSE
  "libps_geometry.a"
)
