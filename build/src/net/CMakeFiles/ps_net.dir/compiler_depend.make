# Empty compiler generated dependencies file for ps_net.
# This may be replaced when dependencies are built.
