
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cc" "src/net/CMakeFiles/ps_net.dir/graph.cc.o" "gcc" "src/net/CMakeFiles/ps_net.dir/graph.cc.o.d"
  "/root/repo/src/net/multicast.cc" "src/net/CMakeFiles/ps_net.dir/multicast.cc.o" "gcc" "src/net/CMakeFiles/ps_net.dir/multicast.cc.o.d"
  "/root/repo/src/net/shortest_path.cc" "src/net/CMakeFiles/ps_net.dir/shortest_path.cc.o" "gcc" "src/net/CMakeFiles/ps_net.dir/shortest_path.cc.o.d"
  "/root/repo/src/net/spanning.cc" "src/net/CMakeFiles/ps_net.dir/spanning.cc.o" "gcc" "src/net/CMakeFiles/ps_net.dir/spanning.cc.o.d"
  "/root/repo/src/net/transit_stub.cc" "src/net/CMakeFiles/ps_net.dir/transit_stub.cc.o" "gcc" "src/net/CMakeFiles/ps_net.dir/transit_stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
