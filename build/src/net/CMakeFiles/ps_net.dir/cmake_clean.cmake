file(REMOVE_RECURSE
  "CMakeFiles/ps_net.dir/graph.cc.o"
  "CMakeFiles/ps_net.dir/graph.cc.o.d"
  "CMakeFiles/ps_net.dir/multicast.cc.o"
  "CMakeFiles/ps_net.dir/multicast.cc.o.d"
  "CMakeFiles/ps_net.dir/shortest_path.cc.o"
  "CMakeFiles/ps_net.dir/shortest_path.cc.o.d"
  "CMakeFiles/ps_net.dir/spanning.cc.o"
  "CMakeFiles/ps_net.dir/spanning.cc.o.d"
  "CMakeFiles/ps_net.dir/transit_stub.cc.o"
  "CMakeFiles/ps_net.dir/transit_stub.cc.o.d"
  "libps_net.a"
  "libps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
