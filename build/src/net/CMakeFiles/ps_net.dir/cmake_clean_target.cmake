file(REMOVE_RECURSE
  "libps_net.a"
)
