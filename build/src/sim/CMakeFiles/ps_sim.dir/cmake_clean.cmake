file(REMOVE_RECURSE
  "CMakeFiles/ps_sim.dir/delivery.cc.o"
  "CMakeFiles/ps_sim.dir/delivery.cc.o.d"
  "CMakeFiles/ps_sim.dir/experiment.cc.o"
  "CMakeFiles/ps_sim.dir/experiment.cc.o.d"
  "CMakeFiles/ps_sim.dir/hybrid.cc.o"
  "CMakeFiles/ps_sim.dir/hybrid.cc.o.d"
  "CMakeFiles/ps_sim.dir/link_load.cc.o"
  "CMakeFiles/ps_sim.dir/link_load.cc.o.d"
  "CMakeFiles/ps_sim.dir/scenario.cc.o"
  "CMakeFiles/ps_sim.dir/scenario.cc.o.d"
  "libps_sim.a"
  "libps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
