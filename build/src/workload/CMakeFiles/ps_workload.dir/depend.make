# Empty dependencies file for ps_workload.
# This may be replaced when dependencies are built.
