file(REMOVE_RECURSE
  "CMakeFiles/ps_workload.dir/interval_gen.cc.o"
  "CMakeFiles/ps_workload.dir/interval_gen.cc.o.d"
  "CMakeFiles/ps_workload.dir/marginal.cc.o"
  "CMakeFiles/ps_workload.dir/marginal.cc.o.d"
  "CMakeFiles/ps_workload.dir/multirange.cc.o"
  "CMakeFiles/ps_workload.dir/multirange.cc.o.d"
  "CMakeFiles/ps_workload.dir/placement.cc.o"
  "CMakeFiles/ps_workload.dir/placement.cc.o.d"
  "CMakeFiles/ps_workload.dir/publication_model.cc.o"
  "CMakeFiles/ps_workload.dir/publication_model.cc.o.d"
  "CMakeFiles/ps_workload.dir/section3.cc.o"
  "CMakeFiles/ps_workload.dir/section3.cc.o.d"
  "CMakeFiles/ps_workload.dir/stock_model.cc.o"
  "CMakeFiles/ps_workload.dir/stock_model.cc.o.d"
  "CMakeFiles/ps_workload.dir/trace.cc.o"
  "CMakeFiles/ps_workload.dir/trace.cc.o.d"
  "libps_workload.a"
  "libps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
