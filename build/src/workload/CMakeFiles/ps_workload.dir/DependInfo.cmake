
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/interval_gen.cc" "src/workload/CMakeFiles/ps_workload.dir/interval_gen.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/interval_gen.cc.o.d"
  "/root/repo/src/workload/marginal.cc" "src/workload/CMakeFiles/ps_workload.dir/marginal.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/marginal.cc.o.d"
  "/root/repo/src/workload/multirange.cc" "src/workload/CMakeFiles/ps_workload.dir/multirange.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/multirange.cc.o.d"
  "/root/repo/src/workload/placement.cc" "src/workload/CMakeFiles/ps_workload.dir/placement.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/placement.cc.o.d"
  "/root/repo/src/workload/publication_model.cc" "src/workload/CMakeFiles/ps_workload.dir/publication_model.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/publication_model.cc.o.d"
  "/root/repo/src/workload/section3.cc" "src/workload/CMakeFiles/ps_workload.dir/section3.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/section3.cc.o.d"
  "/root/repo/src/workload/stock_model.cc" "src/workload/CMakeFiles/ps_workload.dir/stock_model.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/stock_model.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ps_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ps_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/ps_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
