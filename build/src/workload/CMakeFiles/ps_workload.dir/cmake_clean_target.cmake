file(REMOVE_RECURSE
  "libps_workload.a"
)
