# Empty compiler generated dependencies file for pubsub_cli.
# This may be replaced when dependencies are built.
