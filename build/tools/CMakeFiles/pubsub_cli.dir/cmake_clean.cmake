file(REMOVE_RECURSE
  "CMakeFiles/pubsub_cli.dir/pubsub_cli.cc.o"
  "CMakeFiles/pubsub_cli.dir/pubsub_cli.cc.o.d"
  "pubsub_cli"
  "pubsub_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
