// Broker-overlay content routing vs subscription clustering (§6 item 6).
//
// The paper's alternative design — every intermediate node matches events
// against its neighbors' aggregated preferences — is compared here with
// the paper's main design (pre-clustered multicast groups) on the §5.1
// workload.  Reported per approach: delivery cost (improvement %), routing
// state, per-event matching operations, and the cost of propagating one
// subscription change (the paper's argument for why hop-by-hop routing is
// "difficult to implement" under subscription dynamics).
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "overlay/content_router.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const std::size_t K = 100;

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "overlay baselines");

  bench::BenchReport report("overlay");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));

  TextTable table({"approach", "improvement%", "state (KB)", "matches/event",
                   "update cost (summaries)"});

  // Pre-clustered multicast (the paper's main design).
  {
    const bench::EvalResult r = bench::EvaluateGridAlgorithm(
        p, GridAlgorithmByName("forgy"), K, 6000, seed + 2);
    // State: one group id per grid cell + member list per group; matching
    // is a single cell lookup.  Update: re-balancing passes (measured in
    // examples/dynamic_reclustering) — not summary refreshes.
    const double state_kb =
        (static_cast<double>(p.grid.num_lattice_cells()) * 32.0 +
         static_cast<double>(subs) * 32.0) / 8.0 / 1024.0;
    table.row()
        .cell("forgy multicast, K=100")
        .cell(r.improvement_net, 1)
        .cell(state_kb, 1)
        .cell(1.0, 1)
        .cell("n/a (re-balance)");
    report.add("clustered_improvement", r.improvement_net, "%");
    report.add("clustered_state_kb", state_kb, "KB");
  }

  for (const SummaryKind kind : {SummaryKind::kExact, SummaryKind::kBounds}) {
    ContentRouterOptions opt;
    opt.summary = kind;
    ContentRouter router(p.scenario.net.graph, p.scenario.workload, opt);

    double cost = 0.0;
    double matches = 0.0;
    for (const EventSample& e : p.events) {
      const RouteResult r = router.route(e.pub.origin, e.pub.point, e.interested);
      cost += r.cost;
      matches += r.matches_performed;
    }
    // One real subscription change (shrink the interest, then restore),
    // averaged over a few subscribers.
    int update_total = 0;
    std::vector<SubscriberId> probe_ids;
    for (SubscriberId id = 0; id < subs; id += subs / 50) probe_ids.push_back(id);
    for (const SubscriberId id : probe_ids) {
      Subscriber& sub =
          p.scenario.workload.subscribers[static_cast<std::size_t>(id)];
      const Rect original = sub.interest;
      Rect shrunk = original;
      shrunk[1] = Interval(shrunk[1].lo(), shrunk[1].lo() + 0.5);
      sub.interest = shrunk;
      update_total += router.update_subscription(id, shrunk);
      sub.interest = original;
      router.update_subscription(id, original);
    }

    table.row()
        .cell(kind == SummaryKind::kExact ? "content routing (exact)"
                                          : "content routing (bounds)")
        .cell(ImprovementPercent(cost, p.base), 1)
        .cell(static_cast<double>(router.state_bits()) / 8.0 / 1024.0, 1)
        .cell(matches / static_cast<double>(p.events.size()), 1)
        .cell(static_cast<double>(update_total) /
                  static_cast<double>(probe_ids.size()),
              1);
    const std::string prefix =
        kind == SummaryKind::kExact ? "routing_exact" : "routing_bounds";
    report.add(prefix + "_improvement", ImprovementPercent(cost, p.base), "%");
    report.add(prefix + "_state_kb",
               static_cast<double>(router.state_bits()) / 8.0 / 1024.0, "KB");
    report.add(prefix + "_matches_per_event",
               matches / static_cast<double>(p.events.size()), "matches");
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\ncontent routing needs no multicast groups but pays state at "
              "every broker and\nper-update propagation; clustering matches "
              "once and re-balances lazily (§6 item 6).\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
