// Reproduces Figure 11: solution quality as a function of clustering time.
// Each algorithm traces a (time, improvement) curve parameterized by the
// cell budget; the plot answers "given a time budget, which algorithm
// should I run?"
//
// Expected shape (paper): Forgy dominates the frontier (comparable or
// better quality than K-means, faster) — the basis of the paper's
// conclusion that Forgy should be preferred; K-means/Forgy quality can
// *decline* at the largest budgets (outliers), so the curves bend down.
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
//        --groups=K (default 100)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "fig11 baselines");

  struct Sample {
    std::string algo;
    std::size_t cells;
    double seconds;
    double improvement;
  };
  std::vector<Sample> samples;
  for (const std::string& name : {"forgy", "kmeans", "approx-pairs", "mst"}) {
    for (const std::size_t budget : {500u, 1000u, 2000u, 4000u, 6000u, 9000u}) {
      const bench::EvalResult r = bench::EvaluateGridAlgorithm(
          p, GridAlgorithmByName(name), K, budget, seed + 2);
      samples.push_back({name, budget, r.cluster_seconds, r.improvement_net});
    }
  }

  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.seconds < b.seconds; });

  std::printf("\n--- quality vs time frontier (K=%zu; sorted by time) ---\n", K);
  TextTable table({"time_s", "algorithm", "cells", "improvement%"});
  for (const Sample& s : samples) {
    table.row()
        .cell(s.seconds, 3)
        .cell(s.algo)
        .cell(static_cast<long long>(s.cells))
        .cell(s.improvement, 1);
  }
  std::printf("%s", table.to_string().c_str());

  // Frontier summary: best improvement achievable within each time budget.
  std::printf("\n--- dominating algorithm per time budget ---\n");
  TextTable frontier({"time budget (s)", "best algorithm", "improvement%"});
  for (const double budget : {0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    const Sample* best = nullptr;
    for (const Sample& s : samples)
      if (s.seconds <= budget && (best == nullptr || s.improvement > best->improvement))
        best = &s;
    if (best != nullptr)
      frontier.row().cell(budget, 2).cell(best->algo).cell(best->improvement, 1);
  }
  std::printf("%s", frontier.to_string().c_str());

  bench::BenchReport report("fig11");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));
  for (const Sample& s : samples) {
    const std::string key = s.algo + "_cells" + std::to_string(s.cells);
    report.add(key + "_seconds", s.seconds, "s");
    report.add(key + "_improvement", s.improvement, "%");
  }
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
