// Closure-accelerated k-means assignment vs the exact K-scan (ISSUE 10).
//
// The sweep runs a synthetic 1-D interval workload shaped like a large
// broker deployment: `--cells` positions on one axis, each covered by the
// subscribers whose contiguous interest window contains it, popularity-
// sorted exactly like Grid::top_cells and with position adjacency mapped
// through the sort as the closure neighborhood.  Both variants resume a
// perturbed warm assignment for a fixed pass budget, closure off and on,
// so the measured ratio is the assignment-step speedup alone — the
// algorithmic win, meaningful on a single core (no thread-count games).
//
// Typical use:
//   bench_kmeans                         # default sweep -> BENCH_kmeans.json
//   bench_kmeans --cells_list=12000,50000 --groups_list=16,64
//
// Gate flags (KMeansPerfSmoke):
//   --require_speedup=X      closure must be >= X faster than exact on the
//                            largest MacQueen config (exit 77 when the
//                            exact baseline is inside timer noise)
//   --require_waste_ratio=R  closure final waste <= R x exact final waste
//   The gate also re-runs the largest config in oracle mode and fails
//   unless the oracle assignment is bit-identical to the exact run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/kmeans.h"
#include "obs/clock.h"
#include "util/bitvector.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

// One synthetic clustering instance: popularity-sorted cells, their
// closure neighborhoods, and a churned warm assignment.
struct SynthInstance {
  std::vector<BitVector> storage;            // membership, sorted order
  std::vector<double> probs;                 // prob, sorted order
  std::vector<ClusterCell> cells;            // views into the two above
  std::vector<std::vector<int>> neighbors;   // position adjacency, sorted ids
  Assignment warm;                           // block partition, 5% perturbed
};

SynthInstance MakeInstance(std::size_t positions, std::size_t subs,
                           std::size_t K, std::uint64_t seed) {
  Rng rng(seed);
  // Contiguous interest windows sized so each position is covered by ~100
  // subscribers: vectors stay narrow (cheap canonical rebuilds) while the
  // word count (subs/64) keeps the exact scan honest.
  std::vector<BitVector> membership(positions, BitVector(subs));
  const auto mean_width =
      static_cast<std::int64_t>(100 * positions / std::max<std::size_t>(subs, 1));
  for (std::size_t s = 0; s < subs; ++s) {
    const std::int64_t width =
        rng.uniform_int(std::max<std::int64_t>(mean_width / 2, 1),
                        mean_width + mean_width / 2);
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(positions) - 1));
    const std::size_t end = std::min(positions, start + static_cast<std::size_t>(width));
    for (std::size_t p = start; p < end; ++p) membership[p].set(s);
  }
  std::vector<double> prob(positions);
  for (std::size_t p = 0; p < positions; ++p) prob[p] = rng.uniform(0.01, 1.0);

  // Popularity sort (prob x |members|, decreasing), exactly the order
  // Grid::top_cells hands to KMeansCluster; position adjacency is mapped
  // through it the way Grid::cluster_neighbors maps lattice adjacency.
  std::vector<std::size_t> order(positions);
  for (std::size_t p = 0; p < positions; ++p) order[p] = p;
  std::vector<double> popularity(positions);
  for (std::size_t p = 0; p < positions; ++p)
    popularity[p] = prob[p] * static_cast<double>(membership[p].count());
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return popularity[a] > popularity[b];
  });
  std::vector<int> rank(positions);
  for (std::size_t r = 0; r < positions; ++r)
    rank[order[r]] = static_cast<int>(r);

  SynthInstance inst;
  inst.storage.reserve(positions);
  inst.probs.reserve(positions);
  for (std::size_t r = 0; r < positions; ++r) {
    inst.storage.push_back(std::move(membership[order[r]]));
    inst.probs.push_back(prob[order[r]]);
  }
  inst.cells.reserve(positions);
  for (std::size_t r = 0; r < positions; ++r)
    inst.cells.push_back(ClusterCell{&inst.storage[r], inst.probs[r]});
  inst.neighbors.resize(positions);
  for (std::size_t r = 0; r < positions; ++r) {
    const std::size_t p = order[r];
    if (p > 0) inst.neighbors[r].push_back(rank[p - 1]);
    if (p + 1 < positions) inst.neighbors[r].push_back(rank[p + 1]);
    std::sort(inst.neighbors[r].begin(), inst.neighbors[r].end());
  }

  // Warm start: the natural 1-D block partition (group = position band),
  // with 5% of the cells re-dealt to random groups — the churned state a
  // budgeted broker refresh resumes from.
  inst.warm.assign(positions, -1);
  for (std::size_t r = 0; r < positions; ++r) {
    const std::size_t p = order[r];
    inst.warm[r] = static_cast<int>(p * K / positions);
  }
  const std::size_t churned = positions / 20;
  for (std::size_t c = 0; c < churned; ++c) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(positions) - 1));
    inst.warm[r] =
        static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(K) - 1));
  }
  return inst;
}

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct RunOutcome {
  double seconds = 0.0;
  double waste = 0.0;
  KMeansResult result;
};

RunOutcome RunOnce(const SynthInstance& inst, std::size_t K,
                   KMeansVariant variant, bool closure, bool oracle,
                   std::size_t passes) {
  KMeansOptions opt;
  opt.variant = variant;
  opt.warm_start = &inst.warm;
  opt.resumable = true;
  opt.budget.max_passes = passes;
  opt.closure = closure;
  opt.neighbors = closure ? &inst.neighbors : nullptr;
  opt.closure_oracle = oracle;
  RunOutcome out;
  StopwatchClock watch;
  out.result = KMeansCluster(inst.cells, K, opt);
  out.seconds = watch.elapsed_seconds();
  out.waste = TotalExpectedWaste(inst.cells, out.result.assignment,
                                 static_cast<int>(K));
  return out;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<std::size_t>(flags.get_int("subs", 8192));
  const auto passes = static_cast<std::size_t>(flags.get_int("passes", 6));
  const std::vector<std::size_t> cells_list =
      ParseList(flags.get("cells_list", "12000,50000"));
  const std::vector<std::size_t> groups_list =
      ParseList(flags.get("groups_list", "64"));
  const std::string variants_csv = flags.get("variants", "macqueen,forgy");
  std::vector<KMeansVariant> variants;
  if (variants_csv.find("macqueen") != std::string::npos)
    variants.push_back(KMeansVariant::kMacQueen);
  if (variants_csv.find("forgy") != std::string::npos)
    variants.push_back(KMeansVariant::kForgy);
  const double require_speedup = flags.get_double("require_speedup", 0.0);
  const double require_waste_ratio = flags.get_double("require_waste_ratio", 0.0);

  bench::BenchReport report("kmeans");
  report.set_config("subs", static_cast<long long>(subs));
  report.set_config("passes", static_cast<long long>(passes));
  report.set_config("seed", static_cast<long long>(seed));

  TextTable table({"cells", "K", "variant", "exact s", "closure s", "speedup",
                   "waste ratio", "hits", "fallbacks"});
  double gate_speedup = -1.0, gate_waste_ratio = -1.0, gate_exact_s = 0.0;
  const SynthInstance* gate_inst = nullptr;
  std::size_t gate_cells = 0, gate_K = 0;
  Assignment gate_exact_assignment;

  std::vector<SynthInstance> instances;  // keep warm starts alive for the gate
  instances.reserve(cells_list.size());
  for (const std::size_t cells_n : cells_list) {
    instances.push_back(MakeInstance(cells_n, subs, groups_list.back(), seed));
    const SynthInstance& inst = instances.back();
    for (const std::size_t K : groups_list) {
      for (const KMeansVariant variant : variants) {
        const char* vname =
            variant == KMeansVariant::kMacQueen ? "macqueen" : "forgy";
        const RunOutcome exact =
            RunOnce(inst, K, variant, /*closure=*/false, /*oracle=*/false, passes);
        const RunOutcome clos =
            RunOnce(inst, K, variant, /*closure=*/true, /*oracle=*/false, passes);
        const double speedup =
            clos.seconds > 0.0 ? exact.seconds / clos.seconds : 0.0;
        const double waste_ratio =
            exact.waste > 0.0 ? clos.waste / exact.waste : 1.0;
        table.row()
            .cell(cells_n)
            .cell(K)
            .cell(vname)
            .cell(exact.seconds, 4)
            .cell(clos.seconds, 4)
            .cell(speedup, 2)
            .cell(waste_ratio, 4)
            .cell(static_cast<double>(clos.result.closure_hits), 0)
            .cell(static_cast<double>(clos.result.closure_fallbacks), 0);
        const std::string key = std::string(vname) + "_" +
                                std::to_string(cells_n) + "x" +
                                std::to_string(K);
        report.add(key + "_exact_seconds", exact.seconds, "s");
        report.add(key + "_closure_seconds", clos.seconds, "s");
        report.add(key + "_speedup", speedup, "x");
        report.add(key + "_waste_ratio", waste_ratio, "");
        report.add(key + "_closure_hits",
                   static_cast<double>(clos.result.closure_hits), "");
        report.add(key + "_closure_fallbacks",
                   static_cast<double>(clos.result.closure_fallbacks), "");
        report.add(key + "_passes",
                   static_cast<double>(clos.result.iterations), "");
        // The gate reads the largest MacQueen configuration.
        if (variant == KMeansVariant::kMacQueen &&
            cells_n == cells_list.back() && K == groups_list.back()) {
          gate_speedup = speedup;
          gate_waste_ratio = waste_ratio;
          gate_exact_s = exact.seconds;
          gate_inst = &inst;
          gate_cells = cells_n;
          gate_K = K;
          gate_exact_assignment = exact.result.assignment;
        }
      }
    }
  }

  std::printf("closure-accelerated k-means (subs=%zu, passes=%zu):\n\n%s",
              subs, passes, table.to_string().c_str());

  if (require_speedup > 0.0 || require_waste_ratio > 0.0) {
    if (gate_inst == nullptr) {
      std::fprintf(stderr, "perf gate needs a macqueen row in the sweep\n");
      return 1;
    }
    // An exact baseline inside timer noise cannot support a ratio gate.
    if (gate_exact_s < 0.05) {
      std::printf("perf gate: SKIPPED (exact baseline %.4fs inside noise)\n",
                  gate_exact_s);
      return 77;
    }
    // Oracle re-run: with the exact scan deciding every cell, the closure
    // machinery must reproduce the sweep's exact assignment bit for bit.
    const RunOutcome oracle =
        RunOnce(*gate_inst, gate_K, KMeansVariant::kMacQueen,
                /*closure=*/true, /*oracle=*/true, passes);
    const bool oracle_ok = oracle.result.assignment == gate_exact_assignment;
    report.add("gate_speedup", gate_speedup, "x");
    report.add("gate_waste_ratio", gate_waste_ratio, "");
    report.add("gate_oracle_identical", oracle_ok ? 1.0 : 0.0, "");
    report.add("gate_oracle_mismatches",
               static_cast<double>(oracle.result.oracle_mismatches), "");
    std::printf(
        "\nperf gate (cells=%zu, K=%zu, macqueen): speedup %.2fx (>= %.2fx), "
        "waste ratio %.4f (<= %.4f), oracle %s (%zu overruled)\n",
        gate_cells, gate_K, gate_speedup, require_speedup, gate_waste_ratio,
        require_waste_ratio > 0.0 ? require_waste_ratio : 1.0,
        oracle_ok ? "bit-identical" : "MISMATCH (bug!)",
        oracle.result.oracle_mismatches);
    if (!oracle_ok) return 1;
    if (require_speedup > 0.0 && gate_speedup < require_speedup) return 1;
    if (require_waste_ratio > 0.0 && gate_waste_ratio > require_waste_ratio)
      return 1;
    std::printf("perf gate: PASS\n");
  }
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
