// Reproduces Table 1 (§3 preliminary analysis): unicast vs broadcast vs
// ideal multicast communication cost under degree-0.4 regionalism, across
// network sizes, subscription counts and publication distributions.
//
// Expected shape (paper): unicast ≫ ideal for many subscriptions;
// broadcast ≈ ideal when subscriptions are dense but up to ~4× ideal when
// sparse; gaussian unicast/ideal above uniform; costs below the Table 2
// (no-regionalism) counterparts.
//
// Flags: --events=N (default 400) --seed=S --regionalism=R (default 0.4)
#include "table_common.h"

int main(int argc, char** argv) {
  return pubsub::bench::RunBaselineTable(argc, argv, /*default_regionalism=*/0.4, "table1");
}
