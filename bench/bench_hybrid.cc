// Dynamic strategy selection (paper abstract / §3 narrative as a runtime
// decision): compare pure unicast / broadcast / clustered multicast with
// the per-event hybrid deciders across subscription densities.
//
// Expected shape: sparse subscriptions → unicast competitive, broadcast
// terrible; dense → broadcast near-ideal; in between → clustered multicast
// wins; the oracle hybrid lower-bounds everything and the realtime rule
// tracks it closely.
//
// Flags: --events=N (default 300) --seed=S
#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "sim/hybrid.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const std::size_t K = 100;

  bench::BenchReport report("hybrid");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("groups", static_cast<long long>(K));

  TextTable table({"subs", "unicast", "broadcast", "multicast", "rule hybrid",
                   "oracle hybrid", "oracle mix (u/m/b)"});
  for (const int subs : {100, 400, 1000, 3000}) {
    bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                      num_events, seed + 1);
    const std::vector<ClusterCell> cells = p.grid.top_cells(6000);
    Rng rng(seed + 2);
    const Assignment assignment = GridAlgorithmByName("forgy").run(cells, K, rng);
    const GridMatcher matcher(p.grid, assignment, static_cast<int>(K));

    const ClusteredCosts pure = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
    const HybridCosts rule = EvaluateHybrid(p.sim, p.events, MatcherFn(matcher),
                                            HybridPolicy::kRule);
    const HybridCosts oracle = EvaluateHybrid(p.sim, p.events, MatcherFn(matcher),
                                              HybridPolicy::kOracle);

    char mix[64];
    std::snprintf(mix, sizeof(mix), "%zu/%zu/%zu", oracle.chose_unicast,
                  oracle.chose_multicast, oracle.chose_broadcast);
    table.row()
        .cell(static_cast<long long>(subs))
        .cell(p.base.unicast, 0)
        .cell(p.base.broadcast, 0)
        .cell(pure.network, 0)
        .cell(rule.network, 0)
        .cell(oracle.network, 0)
        .cell(mix);
    const std::string prefix = "subs" + std::to_string(subs);
    report.add(prefix + "_multicast_cost", pure.network, "cost");
    report.add(prefix + "_rule_cost", rule.network, "cost");
    report.add(prefix + "_oracle_cost", oracle.network, "cost");
  }
  std::printf("per-stream delivery cost by strategy (events fixed, "
              "subscription count sweeps density):\n\n%s",
              table.to_string().c_str());
  std::printf("\n(oracle hybrid = per-event min of the three strategies; "
              "rule hybrid decides from\ninterested counts only — the "
              "abstract's dynamic unicast/multicast/broadcast choice)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
