// Reproduces Table 2: unicast vs broadcast vs ideal multicast with *no*
// regionalism (degree 0).  Expected shape vs Table 1: uniformly higher
// unicast and ideal costs — regional concentration of interest is what
// makes delivery cheap.
//
// Flags: --events=N (default 400) --seed=S --regionalism=R (default 0)
#include "table_common.h"

int main(int argc, char** argv) {
  return pubsub::bench::RunBaselineTable(argc, argv, /*default_regionalism=*/0.0, "table2");
}
