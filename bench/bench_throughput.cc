// Latency / throughput under load (paper §4.6: matching delay bounds
// system throughput; abstract: multicast amortizes the per-event work).
//
// Replays a timestamped trading trace (workload/trace.h) through the
// broker queueing model (runtime/delivery_runtime.h) at several arrival
// rates, delivering each event via unicast or via Forgy-clustered
// multicast (+ residual unicasts), and reports mean/p99 end-to-end
// latency and mean broker queue wait.
//
// Expected shape: at low rates both behave; as the rate approaches the
// unicast brokers' service capacity (service grows with the interested
// count) unicast latency diverges while clustered multicast — one branch
// message per group — keeps queues short and sustains several times the
// rate.
//
// The per-event work — interested-set stabbing and group matching — is
// precomputed in a parallel batch phase (util/thread_pool.h) whose wall
// time is reported per rate; the queueing replay itself is inherently
// serial.  Batch results are bit-identical for any --threads value.
//
// Flags: --subs=N (default 1000) --events=N / --trace_events=N (default
//        1500) --dims=D (default 0 = stock 4-attribute workload) --seed=S
//        --threads=N (default 1; 0 = all hardware threads)
//        --report_tag=STR (suffix for BENCH_throughput_STR.json)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "runtime/delivery_runtime.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "obs/clock.h"
#include "workload/trace.h"

namespace pubsub {
namespace {

struct LatencyReport {
  double mean = 0.0;
  double p99 = 0.0;
  double mean_wait = 0.0;
};

LatencyReport Summarize(const std::vector<double>& latencies,
                        const RunningStats& waits) {
  LatencyReport r;
  if (latencies.empty()) return r;
  RunningStats s;
  for (const double l : latencies) s.add(l);
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  r.mean = s.mean();
  r.p99 = sorted[static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size() - 1))];
  r.mean_wait = waits.mean();
  return r;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int threads = ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto total = static_cast<std::size_t>(
      flags.get_int("events", flags.get_int("trace_events", 1500)));
  const auto dims = static_cast<int>(flags.get_int("dims", 0));
  const std::string tag = flags.get("report_tag", "");
  const std::size_t K = 100;

  bench::Pipeline p(bench::MakeDimsScenario(dims, subs, seed), 50,
                    seed + 1);  // pipeline events unused; we replay the trace
  const std::vector<ClusterCell> cells = p.grid.top_cells(6000);
  Rng rng(seed + 2);
  const Assignment assignment = GridAlgorithmByName("forgy").run(cells, K, rng);
  const GridMatcher matcher(p.grid, assignment, static_cast<int>(K));

  auto nodes_of = [&](std::span<const SubscriberId> ids) {
    std::vector<NodeId> nodes;
    nodes.reserve(ids.size());
    for (const SubscriberId s : ids)
      nodes.push_back(p.scenario.workload.subscribers[static_cast<std::size_t>(s)].node);
    return nodes;
  };

  bench::BenchReport report(tag.empty() ? "throughput" : "throughput_" + tag);
  report.set_config("trace_events", static_cast<long long>(total));
  report.set_config("subs", subs);
  report.set_config("dims", dims);
  report.set_config("threads", threads);

  TextTable table({"events/s", "match ms", "unicast mean ms", "unicast p99 ms",
                   "unicast wait ms", "forgy mean ms", "forgy p99 ms",
                   "forgy wait ms"});
  double total_match_ms = 0.0;
  for (const double rate : {500.0, 2000.0, 5000.0, 8000.0, 12000.0}) {
    TraceParams tparams;
    tparams.events_per_second = rate;
    tparams.num_publishers = 4;  // a few exchange nodes feed the system
    Rng trace_rng(seed + 3);  // same trace shape at every rate
    std::vector<TraceEvent> trace =
        GenerateStockTrace(p.scenario.net, {}, tparams, total, trace_rng);
    if (dims > 0) {
      // The stock trace's points live in the 4-attribute §5.1 space; for a
      // parametric --dims workload keep its Poisson arrival times but draw
      // points and origins from the scenario's own publication model.
      Rng point_rng(seed + 4);  // re-seeded per rate: same points each sweep
      for (TraceEvent& ev : trace) ev.pub = p.scenario.pub->sample(point_rng);
    }

    // Batch matching phase: interested sets + group decisions for the whole
    // trace, fanned out over the pool (pure per-event lookups into const
    // structures; slot writes only — a GridMatcher decision's spans alias
    // the matcher and interested_of[i], both stable).  The grain keeps
    // chunks large enough that fork/join overhead stays amortized.  This is
    // the matching delay of §4.6.
    StopwatchClock match_watch;
    std::vector<std::vector<SubscriberId>> interested_of(trace.size());
    std::vector<MatchDecision> decision_of(trace.size());
    ParallelForChunks(
        trace.size(),
        [&](std::size_t begin, std::size_t end) {
          // Per-chunk scratch: the word-parallel stab reuses one hit buffer
          // and word buffer for the whole chunk; the retained
          // interested_of[i] gets one exact-size copy instead of push_back
          // growth.
          std::vector<SubscriberId> hits;
          std::vector<std::uint64_t> words;
          for (std::size_t i = begin; i < end; ++i) {
            p.sim.interested_into(trace[i].pub.point, hits, words);
            interested_of[i].assign(hits.begin(), hits.end());
            decision_of[i] = matcher.match(trace[i].pub.point, interested_of[i]);
          }
        },
        /*min_parallel=*/16, /*grain=*/64);
    const double match_ms = match_watch.elapsed_seconds() * 1000.0;
    total_match_ms += match_ms;

    DeliveryRuntime rt(p.scenario.net.graph);

    std::vector<double> uni_lat, multi_lat;
    RunningStats uni_wait, multi_wait;
    // Pass 1: unicast.
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const TraceEvent& ev = trace[i];
      const DeliveryTiming t = rt.deliver_unicast(
          ev.timestamp * 1000.0, ev.pub.origin, nodes_of(interested_of[i]));
      uni_lat.insert(uni_lat.end(), t.latencies_ms.begin(), t.latencies_ms.end());
      uni_wait.add(t.queue_wait_ms);
    }
    // Pass 2: clustered multicast + residual unicasts.
    rt.reset();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const TraceEvent& ev = trace[i];
      const MatchDecision& d = decision_of[i];
      const double now = ev.timestamp * 1000.0;
      if (d.group_id >= 0) {
        const DeliveryTiming t =
            rt.deliver_multicast(now, ev.pub.origin, nodes_of(d.group_members));
        multi_lat.insert(multi_lat.end(), t.latencies_ms.begin(),
                         t.latencies_ms.end());
        multi_wait.add(t.queue_wait_ms);
      }
      if (!d.unicast_targets.empty() || d.group_id < 0) {
        const DeliveryTiming t =
            rt.deliver_unicast(now, ev.pub.origin, nodes_of(d.unicast_targets));
        if (d.group_id < 0) multi_wait.add(t.queue_wait_ms);
        multi_lat.insert(multi_lat.end(), t.latencies_ms.begin(),
                         t.latencies_ms.end());
      }
    }

    const LatencyReport u = Summarize(uni_lat, uni_wait);
    const LatencyReport m = Summarize(multi_lat, multi_wait);
    table.row()
        .cell(rate, 0)
        .cell(match_ms, 2)
        .cell(u.mean, 2)
        .cell(u.p99, 2)
        .cell(u.mean_wait, 2)
        .cell(m.mean, 2)
        .cell(m.p99, 2)
        .cell(m.mean_wait, 2);
    const std::string prefix = "rate" + std::to_string(static_cast<int>(rate));
    report.add(prefix + "_match_ms", match_ms, "ms");
    report.add(prefix + "_unicast_p99_ms", u.p99, "ms");
    report.add(prefix + "_forgy_p99_ms", m.p99, "ms");
  }
  std::printf("end-to-end delivery latency vs publication rate "
              "(%zu-event trace, K=%zu, threads=%d):\n\n%s", total, K, threads,
              table.to_string().c_str());
  // Matching throughput across all rate sweeps: 5 traces of `total` events.
  const double matched_events = 5.0 * static_cast<double>(total);
  const double events_per_sec =
      total_match_ms > 0.0 ? matched_events / (total_match_ms / 1000.0) : 0.0;
  report.add("match_total_ms", total_match_ms, "ms");
  report.add("match_events_per_sec", events_per_sec, "events/s");
  std::printf("\nbatch matching phase total: %.2f ms at %d thread(s) "
              "(%.0f events/s)\n",
              total_match_ms, threads, events_per_sec);
  std::printf("\n(unicast service scales with the interested count, so its "
              "brokers saturate first;\nmulticast keeps per-event broker work "
              "constant — the paper's throughput argument)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
