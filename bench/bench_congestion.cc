// Large-message / congestion evaluation (paper §6, discussion item 4).
//
// The paper's summed-edge-cost metric assumes small (≤1 KB) messages.
// With large messages what matters is how much traffic each *link* carries.
// This bench replays the same event stream under unicast, broadcast, ideal
// multicast and Forgy-clustered multicast, accumulating per-link bytes,
// and reports total traffic, hottest-link traffic and the p90 link load.
//
// Expected shape: unicast's totals and hot links explode (every subscriber
// pays the full path, and the publisher-side uplinks melt); multicast
// variants keep the hottest link near the per-event message size times the
// event count; clustered multicast sits between ideal and broadcast.
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
//        --message_kb=SIZE (default 64)
#include <cstdio>

#include <unordered_map>

#include "bench_report.h"
#include "bench_util.h"
#include "sim/link_load.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const double msg_kb = flags.get_double("message_kb", 64.0);
  const std::size_t K = 100;

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "congestion baselines");

  // Clustered matcher (Forgy, the paper's recommended configuration).
  const std::vector<ClusterCell> cells = p.grid.top_cells(6000);
  Rng rng(seed + 2);
  const Assignment assignment = GridAlgorithmByName("forgy").run(cells, K, rng);
  const GridMatcher matcher(p.grid, assignment, static_cast<int>(K));

  // Per-origin SPTs, shared by all strategies.
  std::unordered_map<NodeId, ShortestPathTree> spts;
  auto spt_of = [&](NodeId origin) -> const ShortestPathTree& {
    const auto it = spts.find(origin);
    if (it != spts.end()) return it->second;
    return spts.emplace(origin, Dijkstra(p.scenario.net.graph, origin)).first->second;
  };
  auto nodes_of = [&](std::span<const SubscriberId> ids) {
    std::vector<NodeId> nodes;
    nodes.reserve(ids.size());
    for (const SubscriberId s : ids)
      nodes.push_back(p.scenario.workload.subscribers[static_cast<std::size_t>(s)].node);
    return nodes;
  };

  LinkLoadTracker unicast(p.scenario.net.graph);
  LinkLoadTracker broadcast(p.scenario.net.graph);
  LinkLoadTracker ideal(p.scenario.net.graph);
  LinkLoadTracker clustered(p.scenario.net.graph);

  for (const EventSample& e : p.events) {
    const ShortestPathTree& spt = spt_of(e.pub.origin);
    const std::vector<NodeId> interested_nodes = nodes_of(e.interested);
    unicast.add_unicast(spt, interested_nodes, msg_kb);
    broadcast.add_broadcast(spt, msg_kb);
    ideal.add_multicast(spt, interested_nodes, msg_kb);

    const MatchDecision d = matcher.match(e.pub.point, e.interested);
    if (d.group_id >= 0)
      clustered.add_multicast(spt, nodes_of(d.group_members), msg_kb);
    if (!d.unicast_targets.empty())
      clustered.add_unicast(spt, nodes_of(d.unicast_targets), msg_kb);
  }

  std::printf("\n%zu events x %.0f KB messages:\n\n", num_events, msg_kb);
  bench::BenchReport bench_report("congestion");
  bench_report.set_config("events", static_cast<long long>(num_events));
  bench_report.set_config("subs", subs);
  bench_report.set_config("message_kb", static_cast<long long>(msg_kb));
  TextTable table({"strategy", "total traffic (MB)", "hottest link (MB)",
                   "p90 link (MB)", "links used"});
  const auto report = [&table, &bench_report](const char* name, const char* key,
                                              const LinkLoadTracker& t) {
    table.row()
        .cell(name)
        .cell(t.total_bytes() / 1024.0, 1)
        .cell(t.max_link_load() / 1024.0, 2)
        .cell(t.load_quantile(0.9) / 1024.0, 2)
        .cell(t.links_used());
    bench_report.add(std::string(key) + "_total_mb", t.total_bytes() / 1024.0,
                     "MB");
    bench_report.add(std::string(key) + "_hottest_mb",
                     t.max_link_load() / 1024.0, "MB");
    bench_report.add(std::string(key) + "_p90_mb",
                     t.load_quantile(0.9) / 1024.0, "MB");
  };
  report("unicast", "unicast", unicast);
  report("broadcast", "broadcast", broadcast);
  report("ideal multicast", "ideal", ideal);
  report("forgy multicast K=100", "forgy", clustered);
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(the unicast hot link is the congestion the paper's small-"
              "message assumption hides)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
