// Reproduces Figure 10: the running time *and* the solution quality of the
// clustering algorithms as a function of the number of cells they are fed.
//
// Expected shape (paper): time grows with the cell budget; approximate
// pairwise at 2000 cells lands near K-means in running time; quality first
// improves with more cells, then *degrades* once low-popularity outlier
// cells flood the algorithms (the paper's motivation for outlier removal).
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
//        --groups=K (default 100)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "fig10 baselines");
  std::printf("grid: %zu hyper-cells available\n\n", p.grid.hyper_cells().size());

  const std::vector<std::size_t> budgets = {500, 1000, 2000, 4000, 6000, 9000};
  const std::vector<std::string> algos = {"forgy", "kmeans", "approx-pairs", "mst"};

  std::printf("--- running time (seconds) vs cells fed, K=%zu ---\n", K);
  std::printf("--- and solution quality (improvement %%) vs cells fed ---\n");
  TextTable table({"cells", "forgy_s", "kmeans_s", "apx-pairs_s", "mst_s",
                   "forgy%", "kmeans%", "apx-pairs%", "mst%"});
  bench::BenchReport report("fig10");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));
  for (const std::size_t budget : budgets) {
    std::vector<bench::EvalResult> results;
    for (const std::string& name : algos)
      results.push_back(bench::EvaluateGridAlgorithm(
          p, GridAlgorithmByName(name), K, budget, seed + 2));
    auto row = table.row();
    row.cell(static_cast<long long>(budget));
    for (const auto& r : results) row.cell(r.cluster_seconds, 2);
    for (const auto& r : results) row.cell(r.improvement_net, 1);
    for (std::size_t i = 0; i < algos.size(); ++i) {
      const std::string key = "cells" + std::to_string(budget) + "_" + algos[i];
      report.add(key + "_seconds", results[i].cluster_seconds, "s");
      report.add(key + "_improvement", results[i].improvement_net, "%");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(the quality drop at large budgets is the paper's outlier "
              "effect — see also bench_ablation)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
