// Reproduces Figure 7: communication-cost improvement (% of the
// unicast→ideal gap) as a function of the number of multicast groups K,
// for every clustering algorithm, under both network-supported and
// application-level multicast, across the three §5.1 publication scenarios
// (1, 4 and 9 hot spots).
//
// Also prints the §5.2 absolute-cost paragraph numbers (unicast /
// broadcast / ideal for the 1-mode gaussian case).
//
// Expected shape (paper): all algorithms improve with K; Forgy/K-means on
// top, reaching 60–80 % below K≈100–150; MST/Pairs lower; app-level
// multicast slightly below network multicast with the same ordering.
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
//        --cells=N (default 6000) --pairs_cells=N (default 2000)
//        --modes=1|4|9|all (default all)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

using bench::EvalResult;
using bench::Pipeline;

void RunScenario(PublicationHotSpots spots, const Flags& flags,
                 bench::BenchReport& report) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto cells = static_cast<std::size_t>(flags.get_int("cells", 6000));
  const auto pairs_cells = static_cast<std::size_t>(flags.get_int("pairs_cells", 2000));

  Pipeline p(MakeStockScenario(subs, spots, seed), num_events, seed + 1);
  std::printf("=== Figure 7, %d-mode publication distribution ===\n",
              static_cast<int>(spots));
  bench::PrintBaselines(p, "baselines (cf. paper §5.2: unicast 7139, "
                           "broadcast 8536, ideal 1763 for 1-mode)");

  const std::vector<std::size_t> k_values = {10, 20, 40, 60, 80, 100};

  // No-Loss clusters once; its top-K prefix serves every K.
  NoLossOptions nl_opt;
  nl_opt.max_rectangles = 5000;
  nl_opt.iterations = 8;
  StopwatchClock nl_watch;
  const NoLossResult noloss =
      NoLossCluster(p.scenario.workload, *p.scenario.pub, nl_opt);
  const double nl_seconds = nl_watch.elapsed_seconds();

  TextTable table({"K", "forgy", "kmeans", "mst", "approx-pairs", "noloss",
                   "forgy(app)", "kmeans(app)", "mst(app)", "apx-pairs(app)",
                   "noloss(app)"});
  const std::vector<std::string> algo_names = {"forgy", "kmeans", "mst",
                                               "approx_pairs", "noloss"};
  for (const std::size_t k : k_values) {
    std::vector<EvalResult> results;
    for (const char* name : {"forgy", "kmeans", "mst", "approx-pairs"}) {
      const std::size_t budget =
          std::string(name) == "approx-pairs" ? pairs_cells : cells;
      results.push_back(bench::EvaluateGridAlgorithm(p, GridAlgorithmByName(name),
                                                     k, budget, seed + 2));
    }
    results.push_back(bench::EvaluateNoLoss(p, noloss, k, nl_seconds));

    auto row = table.row();
    row.cell(static_cast<long long>(k));
    for (const EvalResult& r : results) row.cell(r.improvement_net, 1);
    for (const EvalResult& r : results) row.cell(r.improvement_app, 1);

    if (k == k_values.back()) {
      const std::string prefix =
          "modes" + std::to_string(static_cast<int>(spots)) + "_K" +
          std::to_string(k) + "_";
      for (std::size_t i = 0; i < results.size(); ++i) {
        report.add(prefix + algo_names[i] + "_net",
                   results[i].improvement_net, "%");
        report.add(prefix + algo_names[i] + "_app",
                   results[i].improvement_app, "%");
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(improvement %% over unicast; 100%% = ideal multicast. "
              "Grid algorithms fed %zu cells, approx-pairs %zu.)\n\n",
              cells, pairs_cells);
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const std::string modes = flags.get("modes", "all");
  bench::BenchReport report("fig7");
  report.set_config("modes", modes);
  report.set_config("events", flags.get_int("events", 300));
  report.set_config("subs", flags.get_int("subs", 1000));
  if (modes == "all" || modes == "1")
    RunScenario(PublicationHotSpots::kOne, flags, report);
  if (modes == "all" || modes == "4")
    RunScenario(PublicationHotSpots::kFour, flags, report);
  if (modes == "all" || modes == "9")
    RunScenario(PublicationHotSpots::kNine, flags, report);
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
