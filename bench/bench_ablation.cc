// Ablation studies for the design choices DESIGN.md calls out (not a paper
// figure; extensions the paper motivates):
//
//   1. Outlier removal (§5.2 future work, implemented in core/outlier.h):
//      cluster a large cell budget with/without the popularity-mass filter.
//   2. The Fig. 5 interest-fraction threshold: multicast only when the
//      interested share of the matched group clears the threshold.
//   3. Hyper-cell merging (§4.1 implementation notes): how much the
//      identical-membership merge compresses the grid.
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "core/kmeans.h"
#include "core/noloss.h"
#include "core/outlier.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const std::size_t K = 100;

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "ablation baselines");

  bench::BenchReport report("ablation");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));

  // ---- 1. outlier removal -------------------------------------------------
  std::printf("\n--- outlier removal: forgy on all %zu hyper-cells, K=%zu ---\n",
              p.grid.hyper_cells().size(), K);
  TextTable outlier({"mass fraction kept", "cells fed", "improvement%"});
  for (const double frac : {1.0, 0.999, 0.99, 0.95, 0.9, 0.8}) {
    OutlierFilterOptions opt;
    opt.popularity_mass_fraction = frac;
    const std::vector<ClusterCell> cells = FilterOutliers(p.grid.top_cells(0), opt);
    KMeansOptions kopt;
    kopt.variant = KMeansVariant::kForgy;
    const Assignment a = KMeansCluster(cells, K, kopt).assignment;
    const GridMatcher matcher(p.grid, a, static_cast<int>(K));
    const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
    const double improvement = ImprovementPercent(c.network, p.base);
    outlier.row().cell(frac, 3).cell(cells.size()).cell(improvement, 1);
    char frac_key[32];
    std::snprintf(frac_key, sizeof(frac_key), "outlier_mass%.3f", frac);
    report.add(std::string(frac_key) + "_improvement", improvement, "%");
  }
  std::printf("%s", outlier.to_string().c_str());

  // ---- 2. matching threshold ---------------------------------------------
  std::printf("\n--- Fig. 5 threshold: forgy, 6000 cells, K=%zu ---\n", K);
  TextTable thresh({"min interest fraction", "improvement%", "wasted deliveries"});
  for (const double t : {0.0, 0.02, 0.05, 0.1, 0.25, 0.5}) {
    const bench::EvalResult r = bench::EvaluateGridAlgorithm(
        p, GridAlgorithmByName("forgy"), K, 6000, seed + 2, t);
    thresh.row().cell(t, 2).cell(r.improvement_net, 1).cell(r.wasted);
    char t_key[32];
    std::snprintf(t_key, sizeof(t_key), "threshold%.2f", t);
    report.add(std::string(t_key) + "_improvement", r.improvement_net, "%");
    report.add(std::string(t_key) + "_wasted",
               static_cast<double>(r.wasted), "deliveries");
  }
  std::printf("%s", thresh.to_string().c_str());

  // ---- 3. No-Loss matcher rules (paper-literal vs savings-based) ----------
  std::printf("\n--- No-Loss selection/pick rules, 5000 rects, 8 iters, K=%zu ---\n", K);
  {
    NoLossOptions nl;
    nl.max_rectangles = 5000;
    nl.iterations = 8;
    const NoLossResult result =
        NoLossCluster(p.scenario.workload, *p.scenario.pub, nl);
    TextTable rules({"selection", "pick", "improvement%", "matched events"});
    const auto run = [&](NoLossMatcherOptions::Selection sel,
                         NoLossMatcherOptions::Pick pick, const char* sname,
                         const char* pname) {
      NoLossMatcherOptions o;
      o.selection = sel;
      o.pick = pick;
      const NoLossMatcher matcher(result, K, o);
      const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
      rules.row()
          .cell(sname)
          .cell(pname)
          .cell(ImprovementPercent(c.network, p.base), 1)
          .cell(c.multicast_events);
    };
    run(NoLossMatcherOptions::Selection::kWeight, NoLossMatcherOptions::Pick::kWeight,
        "weight (paper)", "weight (paper)");
    run(NoLossMatcherOptions::Selection::kWeight, NoLossMatcherOptions::Pick::kMembers,
        "weight (paper)", "members");
    run(NoLossMatcherOptions::Selection::kSavings, NoLossMatcherOptions::Pick::kMembers,
        "savings (default)", "members (default)");
    std::printf("%s", rules.to_string().c_str());
  }

  // ---- 4. hyper-cell merging ----------------------------------------------
  std::printf("\n--- hyper-cell merging compression (§4.1) ---\n");
  std::printf("lattice cells: %lld, occupied: %lld, hyper-cells: %zu "
              "(%.1fx compression of occupied cells)\n",
              static_cast<long long>(p.grid.num_lattice_cells()),
              static_cast<long long>(p.grid.num_occupied_cells()),
              p.grid.hyper_cells().size(),
              static_cast<double>(p.grid.num_occupied_cells()) /
                  static_cast<double>(p.grid.hyper_cells().size()));
  report.add("hypercell_compression",
             static_cast<double>(p.grid.num_occupied_cells()) /
                 static_cast<double>(p.grid.hyper_cells().size()),
             "x");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
