// Shared scaffolding for the table/figure reproduction binaries: a bundled
// pipeline (scenario → simulator → grid → event stream → baselines) and
// helpers to evaluate one clustering algorithm at one operating point.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "obs/clock.h"
#include "workload/interval_gen.h"

namespace pubsub::bench {

// A d-dimensional parametric scenario for the --dims sweeps: every
// attribute uses the §5.1 price-style intervals over an 11-value domain,
// publications are one-mode gaussians.  dims <= 0 falls back to the stock
// 4-attribute scenario, so benches can default to the paper workload.
inline Scenario MakeDimsScenario(int dims, int subs, std::uint64_t seed) {
  if (dims <= 0) return MakeStockScenario(subs, PublicationHotSpots::kOne, seed);
  const int domain = 11;  // values 0..10 per attribute
  Rng net_rng(seed);
  Scenario s;
  s.net = GenerateTransitStub(PaperNetSection5(), net_rng);

  std::vector<DimensionSpec> specs;
  for (int d = 0; d < dims; ++d)
    specs.push_back(DimensionSpec{"a" + std::to_string(d), domain});
  s.workload.space = EventSpace(std::move(specs));

  Rng rng(seed + 1);
  const Interval attr_domain(-1.0, static_cast<double>(domain - 1));
  const ParametricIntervalSpec spec{0.25, 0.1, 0.1, 5, 1, 5, 1, 5, 2, 3, 1, false};
  const std::vector<NodeId> hosts = s.net.host_nodes();
  for (int i = 0; i < subs; ++i) {
    Subscriber sub;
    sub.node = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d)
      ivals.push_back(SampleParametricInterval(spec, attr_domain, rng));
    sub.interest = Rect(std::move(ivals));
    s.workload.subscribers.push_back(std::move(sub));
  }

  std::vector<Marginal1D> marginals;
  for (int d = 0; d < dims; ++d)
    marginals.push_back(Marginal1D::Gaussian(GaussianMixture1D::Single(5, 2), domain));
  s.pub = std::make_unique<ProductPublicationModel>(
      s.workload.space, std::move(marginals), s.net.host_nodes());
  return s;
}

struct Pipeline {
  Pipeline(Scenario s, std::size_t num_events, std::uint64_t seed)
      : scenario(std::move(s)),
        sim(scenario.net.graph, scenario.workload),
        grid(scenario.workload, *scenario.pub) {
    Rng rng(seed);
    events = SampleEvents(sim, *scenario.pub, num_events, rng);
    base = EvaluateBaselines(sim, events);
  }

  Scenario scenario;
  DeliverySimulator sim;
  Grid grid;
  std::vector<EventSample> events;
  BaselineCosts base;
};

struct EvalResult {
  double improvement_net = 0.0;  // % vs unicast, 100 = ideal
  double improvement_app = 0.0;
  double cost_net = 0.0;
  double cost_app = 0.0;
  double cluster_seconds = 0.0;
  std::size_t wasted = 0;
};

// Cluster the top `max_cells` hyper-cells with `algo` into K groups and
// evaluate grid-based delivery over the pipeline's event stream.
inline EvalResult EvaluateGridAlgorithm(Pipeline& p, const GridAlgorithm& algo,
                                        std::size_t K, std::size_t max_cells,
                                        std::uint64_t algo_seed = 99,
                                        double threshold = 0.0) {
  const std::vector<ClusterCell> cells = p.grid.top_cells(max_cells);
  Rng rng(algo_seed);
  StopwatchClock watch;
  const Assignment assignment = algo.run(cells, K, rng);
  EvalResult r;
  r.cluster_seconds = watch.elapsed_seconds();
  const GridMatcher matcher(p.grid, assignment, static_cast<int>(K), threshold);
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  r.cost_net = c.network;
  r.cost_app = c.applevel;
  r.improvement_net = ImprovementPercent(c.network, p.base);
  r.improvement_app = ImprovementPercent(c.applevel, p.base);
  r.wasted = c.wasted_deliveries;
  return r;
}

// Evaluate the No-Loss matcher built from `result` using its top-K areas.
inline EvalResult EvaluateNoLoss(Pipeline& p, const NoLossResult& result,
                                 std::size_t K, double cluster_seconds = 0.0) {
  const NoLossMatcher matcher(result, K);
  EvalResult r;
  r.cluster_seconds = cluster_seconds;
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  r.cost_net = c.network;
  r.cost_app = c.applevel;
  r.improvement_net = ImprovementPercent(c.network, p.base);
  r.improvement_app = ImprovementPercent(c.applevel, p.base);
  r.wasted = c.wasted_deliveries;
  return r;
}

inline void PrintBaselines(const Pipeline& p, const char* label) {
  std::printf("[%s] events=%zu  unicast=%.0f  broadcast=%.0f  ideal=%.0f  "
              "(per event: %.1f / %.1f / %.1f)\n",
              label, p.base.events, p.base.unicast, p.base.broadcast, p.base.ideal,
              p.base.unicast / static_cast<double>(p.base.events),
              p.base.broadcast / static_cast<double>(p.base.events),
              p.base.ideal / static_cast<double>(p.base.events));
}

}  // namespace pubsub::bench
