// Shared scaffolding for the table/figure reproduction binaries: a bundled
// pipeline (scenario → simulator → grid → event stream → baselines) and
// helpers to evaluate one clustering algorithm at one operating point.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "obs/clock.h"

namespace pubsub::bench {

struct Pipeline {
  Pipeline(Scenario s, std::size_t num_events, std::uint64_t seed)
      : scenario(std::move(s)),
        sim(scenario.net.graph, scenario.workload),
        grid(scenario.workload, *scenario.pub) {
    Rng rng(seed);
    events = SampleEvents(sim, *scenario.pub, num_events, rng);
    base = EvaluateBaselines(sim, events);
  }

  Scenario scenario;
  DeliverySimulator sim;
  Grid grid;
  std::vector<EventSample> events;
  BaselineCosts base;
};

struct EvalResult {
  double improvement_net = 0.0;  // % vs unicast, 100 = ideal
  double improvement_app = 0.0;
  double cost_net = 0.0;
  double cost_app = 0.0;
  double cluster_seconds = 0.0;
  std::size_t wasted = 0;
};

// Cluster the top `max_cells` hyper-cells with `algo` into K groups and
// evaluate grid-based delivery over the pipeline's event stream.
inline EvalResult EvaluateGridAlgorithm(Pipeline& p, const GridAlgorithm& algo,
                                        std::size_t K, std::size_t max_cells,
                                        std::uint64_t algo_seed = 99,
                                        double threshold = 0.0) {
  const std::vector<ClusterCell> cells = p.grid.top_cells(max_cells);
  Rng rng(algo_seed);
  StopwatchClock watch;
  const Assignment assignment = algo.run(cells, K, rng);
  EvalResult r;
  r.cluster_seconds = watch.elapsed_seconds();
  const GridMatcher matcher(p.grid, assignment, static_cast<int>(K), threshold);
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  r.cost_net = c.network;
  r.cost_app = c.applevel;
  r.improvement_net = ImprovementPercent(c.network, p.base);
  r.improvement_app = ImprovementPercent(c.applevel, p.base);
  r.wasted = c.wasted_deliveries;
  return r;
}

// Evaluate the No-Loss matcher built from `result` using its top-K areas.
inline EvalResult EvaluateNoLoss(Pipeline& p, const NoLossResult& result,
                                 std::size_t K, double cluster_seconds = 0.0) {
  const NoLossMatcher matcher(result, K);
  EvalResult r;
  r.cluster_seconds = cluster_seconds;
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  r.cost_net = c.network;
  r.cost_app = c.applevel;
  r.improvement_net = ImprovementPercent(c.network, p.base);
  r.improvement_app = ImprovementPercent(c.applevel, p.base);
  r.wasted = c.wasted_deliveries;
  return r;
}

inline void PrintBaselines(const Pipeline& p, const char* label) {
  std::printf("[%s] events=%zu  unicast=%.0f  broadcast=%.0f  ideal=%.0f  "
              "(per event: %.1f / %.1f / %.1f)\n",
              label, p.base.events, p.base.unicast, p.base.broadcast, p.base.ideal,
              p.base.unicast / static_cast<double>(p.base.events),
              p.base.broadcast / static_cast<double>(p.base.events),
              p.base.ideal / static_cast<double>(p.base.events));
}

}  // namespace pubsub::bench
